//! Right-sizing a disk array for a workload — Fig. 1 as a tuning tool.
//!
//! Given a throughput-test workload, sweep spindle counts and report
//! the best configuration under each objective. A performance DBA and
//! an energy DBA buy different numbers of disks.
//!
//! Run with: `cargo run --release --example rightsize_array`

use grail::core::db::{CompressionMode, EnergyAwareDb, ExecPolicy};
use grail::core::profile::HardwareProfile;
use grail::sim::SimError;
use grail::workload::tpch::TpchScale;

fn main() -> Result<(), SimError> {
    let policy = ExecPolicy {
        compression: CompressionMode::Plain,
        dop: 4,
    };
    let stretch = 30_000.0; // ≈ the audited 300 GB class
    let candidates = [24usize, 36, 48, 66, 90, 108, 150, 204];

    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>16}",
        "disks", "time (s)", "energy (J)", "avg W", "EE (queries/J)"
    );
    let mut rows = Vec::new();
    for d in candidates {
        let mut db = EnergyAwareDb::new(HardwareProfile::server_dl785(d));
        db.load_tpch(TpchScale::toy());
        let r = db.try_run_throughput_test(8, 4, policy, stretch)?;
        println!(
            "{:>6} {:>12.1} {:>14.0} {:>12.0} {:>16.4e}",
            d,
            r.elapsed.as_secs_f64(),
            r.energy.joules(),
            r.avg_power().get(),
            r.efficiency().work_per_joule()
        );
        rows.push((d, r));
    }

    let fastest = rows
        .iter()
        .min_by(|a, b| a.1.elapsed.cmp(&b.1.elapsed))
        .expect("swept");
    let greenest = rows
        .iter()
        .max_by(|a, b| {
            a.1.efficiency()
                .work_per_joule()
                .partial_cmp(&b.1.efficiency().work_per_joule())
                .expect("finite")
        })
        .expect("swept");
    let edp = rows
        .iter()
        .min_by(|a, b| {
            let ea = a.1.energy.delay_product(a.1.elapsed);
            let eb = b.1.energy.delay_product(b.1.elapsed);
            ea.total_cmp(&eb)
        })
        .expect("swept");

    println!();
    println!("performance DBA buys {} disks (fastest mix).", fastest.0);
    println!(
        "energy DBA buys {} disks: {:+.1}% efficiency for {:+.1}% runtime vs the fast config.",
        greenest.0,
        100.0
            * (greenest.1.efficiency().work_per_joule() / fastest.1.efficiency().work_per_joule()
                - 1.0),
        100.0 * (greenest.1.elapsed.as_secs_f64() / fastest.1.elapsed.as_secs_f64() - 1.0),
    );
    println!("EDP referee suggests {} disks.", edp.0);
    Ok(())
}
