//! Capacity planning with energy on the balance sheet — Secs. 2.4 and
//! 5.3 as a procurement exercise.
//!
//! Given a fleet of mixed-generation machines and a daily load profile,
//! compare spread vs consolidate operation, then price the Fig. 1
//! scale-up vs scale-out options over a deployment lifetime.
//!
//! Run with: `cargo run --release --example capacity_planning`

use grail::power::tco::TcoModel;
use grail::power::units::Watts;
use grail::scheduler::cluster::{place, refresh_cycle_fleet, ClusterError, PlacementPolicy};

fn main() -> Result<(), ClusterError> {
    // --- Fleet operation over a daily load profile -------------------
    let fleet = refresh_cycle_fleet();
    let total: f64 = fleet.iter().map(|m| m.capacity).sum();
    // A bursty business day: fraction of peak per 3-hour block.
    let day_profile = [0.10, 0.15, 0.45, 0.70, 0.65, 0.50, 0.30, 0.15];
    let mut spread_kwh = 0.0;
    let mut packed_kwh = 0.0;
    println!(
        "daily operation ({} machines, {:.0} work/s peak):",
        fleet.len(),
        total
    );
    println!(
        "{:>8} {:>8} {:>14} {:>16}",
        "block", "load", "spread (W)", "consolidated (W)"
    );
    for (i, frac) in day_profile.iter().enumerate() {
        let demand = total * frac;
        let spread = place(&fleet, demand, PlacementPolicy::Spread)?;
        let packed = place(&fleet, demand, PlacementPolicy::Consolidate)?;
        println!(
            "{:>7}h {:>7.0}% {:>14.0} {:>11.0} ({} on)",
            i * 3,
            frac * 100.0,
            spread.power(&fleet).get(),
            packed.power(&fleet).get(),
            packed.powered_count()
        );
        spread_kwh += spread.power(&fleet).get() * 3.0 / 1000.0;
        packed_kwh += packed.power(&fleet).get() * 3.0 / 1000.0;
    }
    println!(
        "daily energy: spread {spread_kwh:.1} kWh vs consolidated {packed_kwh:.1} kWh ({:.0}% saved)",
        100.0 * (1.0 - packed_kwh / spread_kwh)
    );

    // --- Pricing the Fig. 1 expansion decision -----------------------
    let m = TcoModel::circa_2008();
    println!();
    println!(
        "lifetime pricing ({:.0}¢/kWh, {:.1} W/W cooling, {:.0}y):",
        m.usd_per_kwh * 100.0,
        m.cooling_per_watt,
        m.lifetime_years
    );
    let chassis = 8000.0;
    let disk = 250.0;
    let options = [
        ("1 node × 66 disks", chassis + 66.0 * disk, 2018.0, 1.0),
        ("1 node × 204 disks", chassis + 204.0 * disk, 4161.0, 1.83),
        (
            "2 nodes × 66 disks",
            2.0 * (chassis + 66.0 * disk),
            2.0 * 2018.0,
            2.0,
        ),
    ];
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10}",
        "option", "perf (×)", "hw ($)", "energy ($)", "total ($)"
    );
    for (name, hw, watts, perf) in options {
        let c = m.evaluate(hw, Watts::new(watts));
        println!(
            "{:<22} {:>10.2} {:>12.0} {:>12.0} {:>10.0}",
            name,
            perf,
            c.hardware_usd,
            c.energy_usd,
            c.total_usd()
        );
    }
    println!();
    println!("the 204-disk scale-up buys 1.83x performance for 72 extra spindles riding a");
    println!("saturated fabric; two 66-disk nodes deliver 2.0x for less money and less power.");
    Ok(())
}
