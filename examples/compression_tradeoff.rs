//! The Fig. 2 decision as an application would face it: should this
//! table be stored compressed?
//!
//! Fast answer: "yes, it's 2× faster." Energy answer: "it depends what
//! your optimizer optimizes." This example runs the same scan under
//! three physical designs and scores each under three objectives.
//!
//! Run with: `cargo run --release --example compression_tradeoff`

use grail::core::db::{CompressionMode, EnergyAwareDb, ExecPolicy, ScanSpec};
use grail::core::profile::HardwareProfile;
use grail::core::report::EnergyReport;
use grail::sim::SimError;
use grail::workload::tpch::TpchScale;

fn main() -> Result<(), SimError> {
    let mut db = EnergyAwareDb::new(HardwareProfile::flash_scanner());
    db.load_tpch(TpchScale::toy());
    let stretch = 15_000.0;

    let modes = [
        ("uncompressed", CompressionMode::Plain),
        ("light codecs (Fig.2)", CompressionMode::Fig2),
        ("aggressive codecs", CompressionMode::Auto),
    ];
    let mut results: Vec<(&str, EnergyReport)> = Vec::new();
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>14}",
        "physical design", "time (s)", "cpu (s)", "energy (J)", "EE (rows/J)"
    );
    for (label, mode) in modes {
        let r = db.try_run_scan(
            &ScanSpec::fig2(),
            ExecPolicy {
                compression: mode,
                dop: 1,
            },
            stretch,
        )?;
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>12.1} {:>14.3e}",
            label,
            r.elapsed.as_secs_f64(),
            r.cpu_busy.as_secs_f64(),
            r.energy.joules(),
            r.efficiency().work_per_joule()
        );
        results.push((label, r));
    }

    let by_time = results
        .iter()
        .min_by(|a, b| a.1.elapsed.cmp(&b.1.elapsed))
        .expect("ran");
    let by_energy = results
        .iter()
        .min_by(|a, b| a.1.energy.partial_cmp(&b.1.energy).expect("finite"))
        .expect("ran");
    let by_edp = results
        .iter()
        .min_by(|a, b| {
            let ea = a.1.energy.delay_product(a.1.elapsed);
            let eb = b.1.energy.delay_product(b.1.elapsed);
            ea.total_cmp(&eb)
        })
        .expect("ran");

    println!();
    println!("MinTime   picks: {}", by_time.0);
    println!("MinEnergy picks: {}", by_energy.0);
    println!("MinEDP    picks: {}", by_edp.0);
    println!();
    println!(
        "the paper's Fig. 2 in one line: the design that is {:.1}x faster costs {:.0}% more energy.",
        results[0].1.elapsed.as_secs_f64() / by_time.1.elapsed.as_secs_f64(),
        100.0 * (by_time.1.energy.joules() / results[0].1.energy.joules() - 1.0)
    );
    Ok(())
}
