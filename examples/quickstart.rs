//! Quickstart: build the Fig. 2 machine, load a toy database, scan a
//! projection, and read the energy meter.
//!
//! Run with: `cargo run --release --example quickstart`

use grail::prelude::*;
use grail::sim::SimError;

fn main() -> Result<(), SimError> {
    // The paper's Fig. 2 hardware: one 90 W CPU, three flash drives
    // drawing 5 W total.
    let mut db = EnergyAwareDb::new(HardwareProfile::flash_scanner());

    // A deterministic TPC-H-like database (10 K orders).
    db.load_tpch(TpchScale::toy());

    // Scan 5 of ORDERS' 7 columns, stretched to the paper's 150 M-row
    // table so the numbers are recognizable.
    let report = db.try_run_scan(&ScanSpec::fig2(), ExecPolicy::default(), 15_000.0)?;

    println!("{}", report.summary());
    println!();
    println!("breakdown:");
    print!("{}", report.ledger);
    println!();
    println!(
        "performance: {:.2e} rows/s   efficiency: {:.2e} rows/J",
        report.perf(),
        report.efficiency().work_per_joule()
    );
    println!(
        "cpu busy {:.2}s of {:.2}s elapsed — the scan is {}-bound",
        report.cpu_busy.as_secs_f64(),
        report.elapsed.as_secs_f64(),
        if report.cpu_busy.as_secs_f64() > 0.9 * report.elapsed.as_secs_f64() {
            "CPU"
        } else {
            "disk"
        }
    );
    Ok(())
}
