//! Picking an idle policy for a lightly loaded database server —
//! Sec. 4.2 as an operations decision.
//!
//! Queries arrive sporadically. How much energy do spin-down governors
//! recover, and what does batching buy on top? (And what does each cost
//! in latency?)
//!
//! Run with: `cargo run --release --example consolidation_policies`

use grail::power::components::{CpuPowerProfile, DiskPowerProfile};
use grail::power::units::{Bytes, Cycles, Hertz, SimDuration, SimInstant};
use grail::scheduler::admission::{AdmissionPolicy, BatchWindow};
use grail::scheduler::governor::{
    IdleGovernor, NeverPark, OracleGovernor, ParkCosts, TimeoutGovernor,
};
use grail::sim::perf::{AccessPattern, CpuPerfProfile, DiskPerfProfile};
use grail::sim::raid::RaidLevel;
use grail::sim::sim::Simulation;
use grail::sim::{SimError, StorageTarget};
use grail::workload::mix::poisson_arrivals;

fn episode(
    admission: AdmissionPolicy,
    governor: &dyn IdleGovernor,
) -> Result<(f64, f64, u64), SimError> {
    let arrivals = poisson_arrivals(1.0 / 45.0, 30, 99);
    let schedule = admission.schedule(&arrivals);
    let costs = ParkCosts::scsi_15k();
    let mut sim = Simulation::new();
    let cpu = sim.add_cpu(
        CpuPerfProfile {
            cores: 2,
            freq: Hertz::ghz(2.3),
        },
        CpuPowerProfile::opteron_socket(),
    );
    let disks = sim.add_disks(2, DiskPerfProfile::scsi_15k(), DiskPowerProfile::scsi_15k());
    let arr = sim.make_array(RaidLevel::Raid0, disks.clone())?;
    let mut prev_end = SimInstant::EPOCH;
    let mut parks = 0;
    let mut latency = 0.0;
    for (i, &dispatch) in schedule.dispatches.iter().enumerate() {
        let start = dispatch.max(prev_end);
        if start > prev_end {
            if let Some(plan) = governor.plan_gap(prev_end, start, &costs) {
                for d in &disks {
                    sim.park_disk(*d, plan.park_at)?;
                }
                parks += 1;
                if let Some(wake) = plan.unpark_at {
                    for d in &disks {
                        sim.unpark_disk(*d, wake)?;
                    }
                }
            }
        }
        let io = sim.read(
            StorageTarget::Array(arr),
            start,
            Bytes::mib(256),
            AccessPattern::Sequential,
        )?;
        let c = sim.compute(cpu, start, Cycles::new(200_000_000))?;
        let end = io.end.max(c.end);
        latency += end.duration_since(arrivals[i]).as_secs_f64();
        prev_end = end;
    }
    let rep = sim.finish(prev_end);
    Ok((rep.total_energy().joules(), latency / 30.0, parks))
}

fn main() -> Result<(), SimError> {
    println!(
        "{:<26} {:>12} {:>14} {:>10}",
        "policy", "energy (J)", "mean lat (s)", "parks"
    );
    let admissions: [(&str, AdmissionPolicy); 2] = [
        ("immediate", AdmissionPolicy::Immediate),
        (
            "batch 90s",
            AdmissionPolicy::Batched(BatchWindow {
                window: SimDuration::from_secs(90),
            }),
        ),
    ];
    let governors: [(&str, Box<dyn IdleGovernor>); 3] = [
        ("never park", Box::new(NeverPark)),
        (
            "timeout 8s",
            Box::new(TimeoutGovernor {
                timeout: SimDuration::from_secs(8),
            }),
        ),
        ("oracle", Box::new(OracleGovernor)),
    ];
    let mut baseline = None;
    for (an, ap) in &admissions {
        for (gn, g) in &governors {
            let (e, lat, parks) = episode(*ap, g.as_ref())?;
            let base = *baseline.get_or_insert(e);
            println!(
                "{:<26} {:>12.0} {:>14.1} {:>10}   ({:>5.1}% of baseline energy)",
                format!("{an} + {gn}"),
                e,
                lat,
                parks,
                100.0 * e / base
            );
        }
    }
    println!();
    println!("the Sec. 4.2 playbook: a timeout governor recovers most of the oracle's savings;");
    println!("batching widens the gaps (cheaper still) if the workload can absorb the latency.");
    Ok(())
}
