//! End-to-end determinism: a real simulation sweep fanned across
//! worker threads is bit-identical to the sequential run.
//!
//! The unit in crates/par proves the runner preserves order for pure
//! functions; this test closes the loop with the actual workload — a
//! small Figure-1-style throughput sweep over full `EnergyAwareDb`
//! worlds — comparing every result down to the f64 bit pattern.

use grail_core::db::{CompressionMode, EnergyAwareDb, ExecPolicy};
use grail_core::profile::HardwareProfile;
use grail_par::Runner;
use grail_workload::tpch::TpchScale;

/// One sweep point rendered to exact bits: any divergence in simulated
/// time, energy, or work across execution modes shows up here.
fn point(disks: usize) -> String {
    let mut db = EnergyAwareDb::new(HardwareProfile::server_dl785(disks));
    db.load_tpch(TpchScale::toy());
    let policy = ExecPolicy {
        compression: CompressionMode::Plain,
        dop: 4,
    };
    let r = db.run_throughput_test(2, 2, policy, 1_000.0);
    format!(
        "disks={} elapsed={:016x} energy={:016x} work={:016x}",
        disks,
        r.elapsed.as_secs_f64().to_bits(),
        r.energy.joules().to_bits(),
        r.work.to_bits(),
    )
}

#[test]
fn parallel_simulation_sweep_is_bit_identical() {
    let disks = [12usize, 24, 36];
    let seq = Runner::sequential().run(&disks, |_, d| point(*d));
    assert_eq!(seq.len(), disks.len());
    for threads in [2usize, 8] {
        let par = Runner::with_threads(threads).run(&disks, |_, d| point(*d));
        assert_eq!(par, seq, "threads={threads}");
    }
}
