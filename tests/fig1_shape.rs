//! Integration: the Fig. 1 reproduction contract (DESIGN.md §3).
//!
//! Runs the full pipeline — generation → storage → templates → executor
//! → simulator — at the bench's parameters and asserts the published
//! shape: an interior efficiency peak at 66 disks, ~14% efficiency for
//! ~45% performance between 66 and 204 disks, and a disk-dominated
//! power budget.

use grail::core::db::{CompressionMode, EnergyAwareDb, ExecPolicy};
use grail::core::profile::HardwareProfile;
use grail::core::report::EnergyReport;
use grail::workload::tpch::TpchScale;

fn sweep() -> Vec<(usize, EnergyReport)> {
    let policy = ExecPolicy {
        compression: CompressionMode::Plain,
        dop: 4,
    };
    [36usize, 66, 108, 204]
        .into_iter()
        .map(|d| {
            let mut db = EnergyAwareDb::new(HardwareProfile::server_dl785(d));
            db.load_tpch(TpchScale::toy());
            (d, db.run_throughput_test(8, 4, policy, 30_000.0))
        })
        .collect()
}

#[test]
fn efficiency_peaks_at_66_disks() {
    let rows = sweep();
    let ee: Vec<f64> = rows
        .iter()
        .map(|(_, r)| r.efficiency().work_per_joule())
        .collect();
    // Interior peak at index 1 (66 disks).
    assert!(ee[1] > ee[0], "EE(66) > EE(36): {ee:?}");
    assert!(ee[1] > ee[2], "EE(66) > EE(108): {ee:?}");
    assert!(ee[1] > ee[3], "EE(66) > EE(204): {ee:?}");
}

#[test]
fn paper_deltas_hold() {
    let rows = sweep();
    let get = |d: usize| rows.iter().find(|(n, _)| *n == d).expect("swept");
    let (_, r66) = get(66);
    let (_, r204) = get(204);
    // ~14% better efficiency at 66 (band: 8–20%).
    let ee_gain = r66.efficiency().work_per_joule() / r204.efficiency().work_per_joule() - 1.0;
    assert!((0.08..0.20).contains(&ee_gain), "EE gain {ee_gain}");
    // ~45% performance drop at 66 (band: 35–55%).
    let perf_drop = 1.0 - r204.elapsed.as_secs_f64() / r66.elapsed.as_secs_f64();
    assert!((0.35..0.55).contains(&perf_drop), "perf drop {perf_drop}");
}

#[test]
fn time_monotonically_improves_with_disks() {
    let rows = sweep();
    for w in rows.windows(2) {
        assert!(
            w[1].1.elapsed < w[0].1.elapsed,
            "more disks must not be slower: {} disks {} vs {} disks {}",
            w[0].0,
            w[0].1.elapsed,
            w[1].0,
            w[1].1.elapsed
        );
    }
}

#[test]
fn disk_subsystem_dominates_power() {
    let rows = sweep();
    // At the audited-like 66+ configs the disk subsystem holds roughly
    // half the energy (the paper claims >50% of power; our measured
    // energy share at 66 disks sits within a point or two of it).
    let (_, r66) = rows.iter().find(|(n, _)| *n == 66).expect("swept");
    assert!(r66.disk_share() > 0.45, "share {}", r66.disk_share());
    let (_, r204) = rows.iter().find(|(n, _)| *n == 204).expect("swept");
    assert!(r204.disk_share() > 0.65, "share {}", r204.disk_share());
}

#[test]
fn reproduction_is_deterministic() {
    let a = sweep();
    let b = sweep();
    for ((d1, r1), (d2, r2)) in a.iter().zip(&b) {
        assert_eq!(d1, d2);
        assert_eq!(r1.elapsed, r2.elapsed);
        assert_eq!(r1.ledger, r2.ledger);
    }
}
