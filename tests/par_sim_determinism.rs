//! End-to-end determinism for intra-simulation parallelism: ONE
//! `grail_sim::parallel` simulation sharded across threads must produce
//! the **same bytes** as its single-shard run — the energy ledger, the
//! JSONL trace, and the Prometheus scrape, compared as strings at shard
//! counts 1, 2, and 8.
//!
//! The unit tests in `sim::parallel` prove the ledger fingerprints
//! agree; this closes the loop through the full artifact pipeline the
//! way the `par_sim` bench binary actually executes — every serialized
//! artifact rendered and compared across shard counts, for a plain
//! scenario, a fault-injected one, and a scripted-chaos one. A proptest
//! then sweeps small random topologies, and a final test crashes a
//! machine *exactly on an epoch-commit horizon* — the nastiest instant
//! for a sharded event loop — and checks Recovery billing to the bit.

use grail_power::components::{CpuPowerProfile, DiskPowerProfile, SsdPowerProfile};
use grail_power::units::{Bytes, Cycles, Hertz, SimDuration, SimInstant, Watts};
use grail_sim::driver::{IoDemand, JobSpec, PhaseSpec};
use grail_sim::{
    run_parallel, ArrayId, CellSpec, ChaosEvent, ChaosEventKind, ChaosSchedule, CpuPerfProfile,
    DiskPerfProfile, FaultConfig, ParReport, SimConfig, SsdPerfProfile, StorageTarget,
};
use proptest::prelude::*;

/// One cell: `streams` closed-loop streams of `jobs` jobs over three
/// 15K spindles (RAID-0) plus a flash SSD, sizes salted by index so
/// cells drift out of lockstep.
fn cell(index: usize, streams: usize, jobs: usize) -> CellSpec {
    let jobs = (0..streams)
        .map(|s| {
            (0..jobs)
                .map(|j| {
                    let salt = (index * 31 + s * 7 + j) as u64;
                    JobSpec::immediate(vec![PhaseSpec::overlapped(
                        Cycles::new(20_000_000 + (salt % 5) * 4_000_000),
                        2,
                        vec![IoDemand::seq_read(
                            StorageTarget::Array(ArrayId(0)),
                            Bytes::mib(2 + salt % 5),
                        )],
                    )])
                })
                .collect()
        })
        .collect();
    CellSpec::new(
        CpuPerfProfile {
            cores: 4,
            freq: Hertz::ghz(2.2),
        },
        CpuPowerProfile::opteron_socket(),
    )
    .with_disks(3, DiskPerfProfile::scsi_15k(), DiskPowerProfile::scsi_15k())
    .with_raid(grail_sim::raid::RaidLevel::Raid0)
    .with_ssds(
        1,
        SsdPerfProfile::fig2_flash(),
        SsdPowerProfile::fig2_flash(),
    )
    .with_streams(jobs)
}

/// The FIG1-like baseline: healthy hardware, tracing and attribution on.
fn plain_config(cells: usize) -> SimConfig {
    let mut cfg = SimConfig::new((0..cells).map(|c| cell(c, 2, 3)).collect());
    cfg.base_power = Watts::new(300.0);
    cfg.seed = 7;
    cfg.trace_capacity = Some(4096);
    cfg.attribution = true;
    cfg
}

/// The EXT-FAULT-like variant: transient IO errors and latent sector
/// errors drawn from each cell's seeded plan, so the retry machinery
/// (and its energy) is live on every shard.
fn faulted_config(cells: usize) -> SimConfig {
    let mut cfg = plain_config(cells);
    cfg.fault = FaultConfig {
        transient_per_io: 0.05,
        latent_per_read: 0.02,
        ..FaultConfig::NONE
    };
    cfg.seed = 11;
    cfg
}

/// The EXT-CHAOS-like variant: two scripted machine crashes, each
/// billing the cold-boot surge to Recovery.
fn chaotic_config(cells: usize) -> SimConfig {
    let mut cfg = plain_config(cells);
    cfg.chaos = Some(ChaosSchedule::scripted(
        cells as u32,
        1,
        SimDuration::from_secs(30),
        vec![
            ChaosEvent {
                at: SimInstant::EPOCH + SimDuration::from_millis(40),
                kind: ChaosEventKind::MachineCrash { machine: 0 },
            },
            ChaosEvent {
                at: SimInstant::EPOCH + SimDuration::from_millis(170),
                kind: ChaosEventKind::MachineCrash {
                    machine: (cells as u32).saturating_sub(1),
                },
            },
        ],
    ));
    cfg.seed = 13;
    cfg
}

/// Every artifact the bench pipeline serializes, rendered to exact
/// bytes: the ledger as `(id, bits)` pairs, the JSONL trace, and the
/// Prometheus scrape of the trace's metrics registry.
fn artifacts(r: &ParReport) -> (Vec<(String, u64)>, String, String) {
    let ledger = r
        .report
        .ledger
        .iter()
        .map(|(id, e)| (id.to_string(), e.joules().to_bits()))
        .collect();
    let rec = r.report.trace.as_ref().expect("scenarios trace");
    (
        ledger,
        grail_trace::to_jsonl(rec),
        grail_metrics::to_prometheus(rec.metrics()),
    )
}

fn assert_shards_agree(cfg: &SimConfig) {
    let want = artifacts(&run_parallel(cfg, 1).expect("1 shard"));
    for shards in [2usize, 8] {
        let got = artifacts(&run_parallel(cfg, shards).expect("sharded run"));
        assert_eq!(want.0, got.0, "ledger diverged at {shards} shards");
        assert_eq!(want.1, got.1, "JSONL trace diverged at {shards} shards");
        assert_eq!(
            want.2, got.2,
            "Prometheus scrape diverged at {shards} shards"
        );
    }
    assert!(!want.1.is_empty(), "trace is non-empty");
    assert!(want.2.contains("grail_"), "scrape rendered metrics");
}

#[test]
fn plain_simulation_is_byte_identical_across_shard_counts() {
    assert_shards_agree(&plain_config(5));
}

#[test]
fn faulted_simulation_is_byte_identical_across_shard_counts() {
    assert_shards_agree(&faulted_config(5));
}

#[test]
fn chaotic_simulation_is_byte_identical_across_shard_counts() {
    assert_shards_agree(&chaotic_config(4));
}

#[test]
fn crash_exactly_on_epoch_horizon_bills_recovery_identically() {
    // The crash lands on the first epoch-commit horizon — the instant a
    // shard's advance window closes. A protocol that processed the
    // horizon instant on one side of the barrier at 1 shard and the
    // other side at 8 would double-bill or drop the cold boot here.
    let mut cfg = plain_config(4);
    let crash_at = SimInstant::EPOCH + cfg.epoch;
    cfg.chaos = Some(ChaosSchedule::scripted(
        4,
        1,
        SimDuration::from_secs(30),
        vec![ChaosEvent {
            at: crash_at,
            kind: ChaosEventKind::MachineCrash { machine: 2 },
        }],
    ));
    let r1 = run_parallel(&cfg, 1).expect("1 shard");
    let r8 = run_parallel(&cfg, 8).expect("8 shards");
    let rec1 = r1.report.recovery_energy().joules();
    let rec8 = r8.report.recovery_energy().joules();
    assert_eq!(
        rec1.to_bits(),
        rec8.to_bits(),
        "Recovery billing diverged: {rec1} J at 1 shard vs {rec8} J at 8"
    );
    assert_eq!(
        rec1.to_bits(),
        cfg.crash_boot_energy.joules().to_bits(),
        "exactly one cold boot is billed"
    );
    assert_eq!(artifacts(&r1), artifacts(&r8));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random small topologies: whatever the cell count, stream shape,
    /// seed, or epoch, every shard count serializes the same bytes.
    #[test]
    fn random_topologies_are_byte_identical_across_shard_counts(
        cells in 1usize..5,
        streams in 1usize..3,
        jobs in 1usize..4,
        seed in any::<u64>(),
        epoch_ms in prop::sample::select(vec![1u64, 50, 250]),
        attribution in any::<bool>(),
    ) {
        let mut cfg = SimConfig::new((0..cells).map(|c| cell(c, streams, jobs)).collect());
        cfg.base_power = Watts::new(250.0);
        cfg.seed = seed;
        cfg.epoch = SimDuration::from_millis(epoch_ms);
        cfg.trace_capacity = Some(4096);
        cfg.attribution = attribution;
        cfg.fault = FaultConfig {
            transient_per_io: 0.03,
            ..FaultConfig::NONE
        };
        let want = artifacts(&run_parallel(&cfg, 1).expect("1 shard"));
        for shards in [2usize, 8] {
            let got = artifacts(&run_parallel(&cfg, shards).expect("sharded run"));
            prop_assert_eq!(&want, &got, "diverged at {} shards", shards);
        }
    }
}
