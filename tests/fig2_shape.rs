//! Integration: the Fig. 2 reproduction contract (DESIGN.md §3).
//!
//! The compressed scan must be ~2× faster yet use substantially more
//! energy than the uncompressed scan on the 90 W-CPU/5 W-flash machine,
//! with the uncompressed run disk-bound and the compressed run
//! CPU-heavy — and the absolute numbers must sit in the paper's bands.

use grail::core::db::{CompressionMode, EnergyAwareDb, ExecPolicy, ScanSpec};
use grail::core::profile::HardwareProfile;
use grail::core::report::EnergyReport;
use grail::workload::tpch::TpchScale;

const STRETCH: f64 = 15_000.0;

fn run(mode: CompressionMode) -> EnergyReport {
    let mut db = EnergyAwareDb::new(HardwareProfile::flash_scanner());
    db.load_tpch(TpchScale::toy());
    db.run_scan(
        &ScanSpec::fig2(),
        ExecPolicy {
            compression: mode,
            dop: 1,
        },
        STRETCH,
    )
}

#[test]
fn uncompressed_matches_paper_point() {
    let r = run(CompressionMode::Plain);
    let t = r.elapsed.as_secs_f64();
    let cpu = r.cpu_busy.as_secs_f64();
    let e = r.energy.joules();
    assert!((9.0..11.0).contains(&t), "total {t} (paper 10s)");
    assert!((2.8..3.7).contains(&cpu), "cpu {cpu} (paper 3.2s)");
    assert!((300.0..380.0).contains(&e), "energy {e} (paper 338J)");
}

#[test]
fn compressed_matches_paper_point() {
    let r = run(CompressionMode::Fig2);
    let t = r.elapsed.as_secs_f64();
    let cpu = r.cpu_busy.as_secs_f64();
    let e = r.energy.joules();
    assert!((4.5..6.5).contains(&t), "total {t} (paper 5.5s)");
    assert!((4.3..5.8).contains(&cpu), "cpu {cpu} (paper 5.1s)");
    assert!((420.0..560.0).contains(&e), "energy {e} (paper 487J)");
}

#[test]
fn the_headline_divergence() {
    let unc = run(CompressionMode::Plain);
    let cmp = run(CompressionMode::Fig2);
    let speedup = unc.elapsed.as_secs_f64() / cmp.elapsed.as_secs_f64();
    let energy_ratio = cmp.energy.joules() / unc.energy.joules();
    assert!(
        (1.6..2.2).contains(&speedup),
        "speedup {speedup} (paper ~1.8x)"
    );
    assert!(
        (1.25..1.65).contains(&energy_ratio),
        "energy ratio {energy_ratio} (paper ~1.44x)"
    );
}

#[test]
fn boundedness_flips_as_the_paper_describes() {
    let unc = run(CompressionMode::Plain);
    // Uncompressed: disk-bound — CPU well under elapsed.
    assert!(unc.cpu_busy.as_secs_f64() < 0.5 * unc.elapsed.as_secs_f64());
    let cmp = run(CompressionMode::Fig2);
    // Compressed: CPU nearly saturates the run.
    assert!(cmp.cpu_busy.as_secs_f64() > 0.85 * cmp.elapsed.as_secs_f64());
}

#[test]
fn same_rows_either_way() {
    let unc = run(CompressionMode::Plain);
    let cmp = run(CompressionMode::Fig2);
    assert_eq!(
        unc.work, cmp.work,
        "physical design must not change answers"
    );
}
