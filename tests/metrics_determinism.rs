//! Byte-identity of the metrics pipeline: scrape snapshots, the
//! Prometheus rendering, and SLO burn-rate reports are pure functions of
//! the simulated run — identical across repeated runs and across any
//! `grail_par` worker-thread count.
//!
//! The fleet sweep is the same shape the `grail-watchdog` binary
//! executes: each sweep point runs the reference storm with a
//! metrics-only recorder and an hourly scrape clock, then renders every
//! observable surface (snapshot series with bit-exact gauges, the
//! Prometheus text of the final registry, the SLO report) to one string.
//! Any nondeterminism anywhere in the instrumentation shows up as a
//! string mismatch between thread counts or re-runs.

use grail::metrics::{evaluate, to_prometheus, SloKind, SloSpec, Snapshot};
use grail::scheduler::chaos::{reference_storm, run_chaos, ChaosPolicy};
use grail::scheduler::cluster::PlacementPolicy;
use grail::trace::{Recorder, Tracer};
use grail_par::Runner;
use proptest::prelude::*;

const HOUR: u64 = 3_600_000_000_000;

const POLICIES: [(&str, PlacementPolicy, u32); 4] = [
    ("spread-r1", PlacementPolicy::Spread, 1),
    ("consolidate-r3", PlacementPolicy::Consolidate, 3),
    ("consolidate-r2", PlacementPolicy::Consolidate, 2),
    ("consolidate-r1", PlacementPolicy::Consolidate, 1),
];

fn storm_recorder(interval: u64, placement: PlacementPolicy, replicas: u32) -> Recorder {
    let (fleet, schedule, demand, base) = reference_storm();
    let policy = ChaosPolicy {
        placement,
        replicas,
        ..base
    };
    let mut tracer = Tracer::on(Recorder::metrics_only().with_scrape_interval(interval));
    run_chaos(&fleet, &schedule, demand, &policy, &mut tracer).expect("reference storm");
    tracer.take().expect("tracer is on")
}

/// A snapshot rendered with bit-exact floats: two renderings agree iff
/// every counter, gauge bit pattern, rate window, and histogram bucket
/// agrees.
fn render_snapshot(s: &Snapshot) -> String {
    let mut out = format!("t={}", s.at_nanos);
    for (n, v) in &s.counters {
        out.push_str(&format!(" {n}={v}"));
    }
    for (n, v) in &s.gauges {
        out.push_str(&format!(" {n}={:016x}", v.to_bits()));
    }
    for (n, v) in &s.rates {
        out.push_str(&format!(" {n}[w]={v}"));
    }
    for h in &s.histograms {
        out.push_str(&format!(
            " {}(n={},sum={:016x})",
            h.name,
            h.hist.count(),
            h.hist.sum().to_bits()
        ));
    }
    out.push('\n');
    out
}

fn storm_slos() -> Vec<SloSpec> {
    vec![SloSpec {
        name: "availability",
        kind: SloKind::RatioAtLeast {
            good: "chaos.served_work",
            total: "chaos.offered_work",
            floor: 0.9,
        },
        fast_windows: 2,
        slow_windows: 12,
        burn_threshold: 1.0,
    }]
}

/// One sweep point: every metrics surface rendered to a string.
fn point(name: &str, placement: PlacementPolicy, replicas: u32) -> String {
    let rec = storm_recorder(HOUR, placement, replicas);
    let series: String = rec.snapshots().iter().map(render_snapshot).collect();
    let slo = evaluate(&storm_slos(), rec.snapshots());
    format!(
        "{name}\n{series}{}\nslo={:?}\n",
        to_prometheus(rec.metrics()),
        slo
    )
}

#[test]
fn metrics_sweep_is_byte_identical_across_thread_counts() {
    let seq = Runner::sequential().run(&POLICIES, |_, (n, p, r)| point(n, *p, *r));
    assert_eq!(seq.len(), POLICIES.len());
    for s in &seq {
        assert!(s.contains("chaos_events"), "prometheus rendered: {s:.200}");
        assert!(s.contains("t="), "snapshots rendered: {s:.200}");
    }
    for threads in [2usize, 8] {
        let par = Runner::with_threads(threads).run(&POLICIES, |_, (n, p, r)| point(n, *p, *r));
        assert_eq!(par, seq, "threads={threads}");
    }
}

#[test]
fn scrape_series_covers_the_horizon_hourly() {
    let rec = storm_recorder(HOUR, PlacementPolicy::Consolidate, 2);
    let snaps = rec.snapshots();
    assert!(
        snaps.len() >= 24,
        "a multi-day storm at hourly scrape yields at least a day of snapshots, got {}",
        snaps.len()
    );
    // Boundaries are exact multiples of the interval, strictly
    // increasing, and the final snapshot carries the run's totals.
    for w in snaps.windows(2) {
        assert!(w[0].at_nanos < w[1].at_nanos);
    }
    for s in snaps {
        assert_eq!(s.at_nanos % HOUR, 0, "boundary {} off-grid", s.at_nanos);
    }
    let last = snaps.last().expect("non-empty");
    assert!(last.counter("chaos.events") > 0);
    assert!(last.gauge("chaos.offered_work").unwrap_or(0.0) > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Re-runs are byte-identical for any policy and scrape interval,
    /// and coarsening the interval never changes the final registry
    /// (the scrape clock observes the run without perturbing it).
    #[test]
    fn reruns_and_scrape_intervals_are_stable(
        which in 0usize..POLICIES.len(),
        hours in 1u64..13,
    ) {
        let (name, placement, replicas) = POLICIES[which];
        let a = point(name, placement, replicas);
        let b = point(name, placement, replicas);
        prop_assert_eq!(a, b, "re-run diverged for {}", name);

        let fine = storm_recorder(HOUR, placement, replicas);
        let coarse = storm_recorder(hours * HOUR, placement, replicas);
        prop_assert_eq!(
            to_prometheus(fine.metrics()),
            to_prometheus(coarse.metrics()),
            "scrape interval perturbed the run"
        );
    }
}
