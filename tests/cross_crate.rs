//! Integration across crate boundaries:
//!
//! * the optimizer's analytic cost model vs the discrete-event
//!   simulator (the model must predict what the machine measures);
//! * scheduler governors driving real simulated disks;
//! * the executor's charges vs the optimizer's operator estimates.

use grail::core::db::{CompressionMode, EnergyAwareDb, ExecPolicy, ScanSpec};
use grail::core::profile::HardwareProfile;
use grail::optimizer::cost::CostModel;
use grail::power::components::{CpuPowerProfile, DiskPowerProfile};
use grail::power::units::{Bytes, Cycles, Hertz, SimDuration, SimInstant};
use grail::scheduler::governor::{
    IdleGovernor, NeverPark, OracleGovernor, ParkCosts, TimeoutGovernor,
};
use grail::sim::perf::{AccessPattern, CpuPerfProfile, DiskPerfProfile};
use grail::sim::raid::RaidLevel;
use grail::sim::sim::Simulation;
use grail::sim::StorageTarget;
use grail::workload::tpch::TpchScale;

/// The cost model and the simulator must agree on the Fig. 2 scan
/// within a few percent — the paper's premise that "simple models may
/// suffice".
#[test]
fn cost_model_predicts_simulator() {
    let profile = HardwareProfile::flash_scanner();
    let mut db = EnergyAwareDb::new(profile.clone());
    db.load_tpch(TpchScale::toy());
    let measured = db.run_scan(&ScanSpec::fig2(), ExecPolicy::default(), 15_000.0);

    let model = CostModel::new(profile.hardware_desc());
    // 5 columns × 10 K rows × 15 000 stretch = 750 M values, 6 GB.
    let predicted = model.scan(750.0e6, 6.0e9, 0.0);

    let t_err = (predicted.elapsed_secs - measured.elapsed.as_secs_f64()).abs()
        / measured.elapsed.as_secs_f64();
    assert!(t_err < 0.05, "time error {t_err}");
    let e_err = (predicted.energy_j - measured.energy.joules()).abs() / measured.energy.joules();
    assert!(e_err < 0.08, "energy error {e_err}");
}

fn governor_episode(governor: &dyn IdleGovernor) -> f64 {
    let costs = ParkCosts::scsi_15k();
    let mut sim = Simulation::new();
    let cpu = sim.add_cpu(
        CpuPerfProfile {
            cores: 1,
            freq: Hertz::ghz(2.3),
        },
        CpuPowerProfile::fig2_cpu(),
    );
    let disks = sim.add_disks(2, DiskPerfProfile::scsi_15k(), DiskPowerProfile::scsi_15k());
    let arr = sim
        .make_array(RaidLevel::Raid0, disks.clone())
        .expect("geometry");
    // Fixed schedule: a burst, a 100 s gap, a burst, a 30 s gap, a burst.
    let mut prev_end = SimInstant::EPOCH;
    for (arrive_s, mib) in [(0.0, 256u64), (120.0, 256), (160.0, 256)] {
        let arrive = SimInstant::from_secs_f64(arrive_s);
        let start = arrive.max(prev_end);
        if start > prev_end {
            if let Some(plan) = governor.plan_gap(prev_end, start, &costs) {
                for d in &disks {
                    sim.park_disk(*d, plan.park_at).expect("disk");
                }
                if let Some(w) = plan.unpark_at {
                    for d in &disks {
                        sim.unpark_disk(*d, w).expect("disk");
                    }
                }
            }
        }
        let io = sim
            .read(
                StorageTarget::Array(arr),
                start,
                Bytes::mib(mib),
                AccessPattern::Sequential,
            )
            .expect("read");
        let c = sim
            .compute(cpu, start, Cycles::new(100_000_000))
            .expect("cpu");
        prev_end = io.end.max(c.end);
    }
    sim.finish(prev_end).total_energy().joules()
}

/// On real simulated disks: oracle ≤ timeout ≤ never, strictly ordered
/// on a schedule with one park-worthy gap.
#[test]
fn governor_energy_ordering_on_real_disks() {
    let never = governor_episode(&NeverPark);
    let timeout = governor_episode(&TimeoutGovernor {
        timeout: SimDuration::from_secs(10),
    });
    let oracle = governor_episode(&OracleGovernor);
    assert!(oracle < timeout, "oracle {oracle} < timeout {timeout}");
    assert!(timeout < never, "timeout {timeout} < never {never}");
    // Magnitudes: the 100 s gap parked saves tens of kJ... sanity only.
    assert!(never > 0.0 && oracle > 0.0);
}

/// The executor's measured charges line up with the optimizer's
/// per-operator estimates for a scan (same constants, same answer).
#[test]
fn executor_charges_match_cost_model_scan() {
    use grail::query::batch::Table;
    use grail::query::cost_charge::CostCharge;
    use grail::query::exec::{run_collect, ExecContext};
    use grail::query::ops::{ColumnarScan, StoredTable};
    use grail::query::schema::{ColumnType, Schema};
    use std::sync::Arc;

    let n = 50_000usize;
    let schema = Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]);
    let table = Arc::new(Table::new(
        "t",
        schema,
        vec![
            (0..n as i64).collect(),
            (0..n as i64).map(|i| i % 5).collect(),
        ],
    ));
    let stored = Arc::new(StoredTable::columnar_plain(
        table,
        grail::core::db::LOGICAL_TARGET,
    ));
    let mut scan = ColumnarScan::new(stored, vec![0, 1]);
    let mut ctx = ExecContext::calibrated();
    run_collect(&mut scan, &mut ctx).expect("scan");
    let cpu = ctx.total_cpu().get() as f64;
    let io = ctx.total_io_bytes().get() as f64;

    let charge = CostCharge::default_calibrated();
    let expected_cpu = 2.0 * n as f64 * charge.scan_cycles_per_value;
    let expected_io = 2.0 * n as f64 * 8.0;
    assert!(
        (cpu - expected_cpu).abs() / expected_cpu < 0.01,
        "{cpu} vs {expected_cpu}"
    );
    assert!((io - expected_io).abs() < 1.0, "{io} vs {expected_io}");
}

/// Loading the same seed twice and running the same workload yields
/// byte-identical reports across the whole stack.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let mut db = EnergyAwareDb::new(HardwareProfile::server_dl785(36));
        db.load_tpch_seeded(TpchScale { orders_rows: 3000 }, 1234);
        let r = db.run_throughput_test(
            4,
            2,
            ExecPolicy {
                compression: CompressionMode::Auto,
                dop: 2,
            },
            100.0,
        );
        (r.elapsed, r.energy, r.ledger)
    };
    let (t1, e1, l1) = run();
    let (t2, e2, l2) = run();
    assert_eq!(t1, t2);
    assert_eq!(e1, e2);
    assert_eq!(l1, l2);
}
