//! End-to-end determinism for the cluster chaos engine: the EXT-CHAOS
//! policy sweep fanned across worker threads is bit-identical to the
//! sequential run, and repeated runs produce byte-identical reports and
//! traces.
//!
//! The unit tests in `grail-scheduler::chaos` prove one run equals the
//! next; this closes the loop through `grail_par` the way the `ext_chaos`
//! binary actually executes — every ledger entry, placement decision,
//! and trace line rendered to exact bits and compared across 1, 2, and
//! 8 threads.

use grail::scheduler::chaos::{reference_storm, run_chaos, ChaosPolicy};
use grail::scheduler::cluster::PlacementPolicy;
use grail::trace::{to_jsonl, Recorder, Tracer};
use grail_par::Runner;

const POLICIES: [(&str, PlacementPolicy, u32); 4] = [
    ("spread-r1", PlacementPolicy::Spread, 1),
    ("consolidate-r3", PlacementPolicy::Consolidate, 3),
    ("consolidate-r2", PlacementPolicy::Consolidate, 2),
    ("consolidate-r1", PlacementPolicy::Consolidate, 1),
];

/// One sweep point rendered to exact bits plus its full trace: any
/// divergence in the ledger, the demand accounting, the placement
/// sequence, or the instrumentation shows up as a string mismatch.
fn point(name: &str, placement: PlacementPolicy, replicas: u32) -> String {
    let (fleet, schedule, demand, base) = reference_storm();
    let policy = ChaosPolicy {
        placement,
        replicas,
        ..base
    };
    let mut tracer = Tracer::on(Recorder::new(1 << 16));
    let r = run_chaos(&fleet, &schedule, demand, &policy, &mut tracer).expect("reference storm");
    let rec = tracer.take().expect("tracer is on");
    format!(
        "{name} avail={:016x} energy={:016x} recovery={:016x} served={:016x} shed={:016x} \
         failed={:016x} crashes={} boots={} trips={} placements={}\n{}",
        r.availability().to_bits(),
        r.total_energy().joules().to_bits(),
        r.recovery_energy().joules().to_bits(),
        r.served.to_bits(),
        r.shed.to_bits(),
        r.failed.to_bits(),
        r.crashes,
        r.cold_boots,
        r.breaker_trips,
        r.placements.len(),
        to_jsonl(&rec),
    )
}

#[test]
fn chaos_sweep_is_bit_identical_across_thread_counts() {
    let seq = Runner::sequential().run(&POLICIES, |_, (n, p, r)| point(n, *p, *r));
    assert_eq!(seq.len(), POLICIES.len());
    for s in &seq {
        assert!(s.contains("avail="), "point rendered: {s:.60}");
    }
    for threads in [2usize, 8] {
        let par = Runner::with_threads(threads).run(&POLICIES, |_, (n, p, r)| point(n, *p, *r));
        assert_eq!(par, seq, "threads={threads}");
    }
}

#[test]
fn chaos_reports_and_traces_repeat_byte_for_byte() {
    let (name, placement, replicas) = POLICIES[2];
    let a = point(name, placement, replicas);
    let b = point(name, placement, replicas);
    assert_eq!(a, b);
    assert!(a.lines().count() > 1, "trace is non-empty");
}
