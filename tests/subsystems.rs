//! Integration: the Sec. 4–5 subsystem experiments' invariants at test
//! scale — every extension bench's headline claim, enforced.

use grail::buffer::policy::PolicyKind;
use grail::buffer::pool::{BufferPool, EnergyModel};
use grail::optimizer::advisor::{advise, KnobWorkload};
use grail::optimizer::cost::HardwareDesc;
use grail::optimizer::knobs::KnobGrid;
use grail::optimizer::objective::Objective;
use grail::power::dvfs::DvfsModel;
use grail::power::tco::TcoModel;
use grail::power::units::{Bytes, Joules, SimDuration, SimInstant, Watts};
use grail::scheduler::cluster::{place, refresh_cycle_fleet, PlacementPolicy};
use grail::scheduler::sharing::share_scans;
use grail::sim::perf::FabricModel;
use grail::storage::btree::BTreeIndex;
use grail::storage::page::PageId;
use grail::storage::prefetch::BurstPlan;
use grail::storage::wal::{schedule, FlushPolicy};

/// EXT-KNOB's claim: the knob advisor's MinTime and MinEnergy picks
/// differ on the flash scanner and each wins its own metric.
#[test]
fn knob_advisor_objectives_diverge() {
    let grid = KnobGrid::small();
    let w = KnobWorkload::scan_sort_default();
    let hw = HardwareDesc::fig2_flash_scanner();
    let dvfs = DvfsModel::opteron_like();
    let t = advise(&grid, &w, hw, &dvfs, Objective::MinTime);
    let e = advise(&grid, &w, hw, &dvfs, Objective::MinEnergy);
    assert_ne!(t.config, e.config);
    assert!(t.cost.elapsed_secs <= e.cost.elapsed_secs);
    assert!(e.cost.energy_j <= t.cost.energy_j);
    assert!(e.cost.energy_j < 0.9 * t.cost.energy_j, "a real saving");
}

/// EXT-CLUSTER's claim: consolidation keeps ≥85% of peak efficiency at
/// quarter load while spread collapses.
#[test]
fn cluster_consolidation_proportionality() {
    let fleet = refresh_cycle_fleet();
    let total: f64 = fleet.iter().map(|m| m.capacity).sum();
    let full = place(&fleet, total, PlacementPolicy::Consolidate).expect("fits");
    let packed = place(&fleet, total * 0.25, PlacementPolicy::Consolidate).expect("fits");
    let spread = place(&fleet, total * 0.25, PlacementPolicy::Spread).expect("fits");
    let peak = full.efficiency(&fleet);
    assert!(packed.efficiency(&fleet) > 0.85 * peak);
    assert!(spread.efficiency(&fleet) < 0.6 * peak);
}

/// EXT-LOG's claim: group commit divides forces by ~the batch size and
/// total bytes shrink accordingly.
#[test]
fn group_commit_amortizes() {
    let commits: Vec<(SimInstant, Bytes)> = (0..1000)
        .map(|i| {
            (
                SimInstant::EPOCH + SimDuration::from_micros(i * 500),
                Bytes::new(300),
            )
        })
        .collect();
    let per = schedule(&commits, FlushPolicy::PerCommit);
    let grouped = schedule(
        &commits,
        FlushPolicy::GroupCommit {
            max_batch: 50,
            max_wait: SimDuration::from_millis(100),
        },
    );
    assert_eq!(per.force_count(), 1000);
    assert_eq!(grouped.force_count(), 20);
    assert!(grouped.total_bytes().get() < per.total_bytes().get() / 5);
    // Latency bound respected.
    let max_added = grouped.mean_added_latency(&commits).as_secs_f64();
    assert!(max_added <= 0.1);
}

/// EXT-PREFETCH's claim: the minimum park-worthy burst derived
/// analytically actually opens gaps beyond break-even.
#[test]
fn burst_prefetch_opens_parkable_gaps() {
    let consume = SimDuration::from_millis(100);
    let service = SimDuration::from_millis(12);
    let break_even = SimDuration::from_secs_f64(14.05);
    let b = BurstPlan::min_burst_for_gap(consume, service, break_even, 10_000).expect("feasible");
    let plan = BurstPlan::plan(10 * b as u64, consume, b, SimDuration::ZERO);
    let gaps = plan.idle_gaps(service * b as u64);
    assert!(gaps.iter().skip(1).all(|g| *g > break_even), "{gaps:?}");
    // One page smaller must not clear the bar.
    let plan_small = BurstPlan::plan(10 * b as u64, consume, b - 1, SimDuration::ZERO);
    let gaps_small = plan_small.idle_gaps(service * (b - 1) as u64);
    assert!(gaps_small.iter().skip(1).all(|g| *g <= break_even));
}

/// EXT-SHARE's claim: sharing converges to a single pass at high
/// concurrency.
#[test]
fn sharing_converges_to_one_pass() {
    let dur = SimDuration::from_secs(10);
    let burst: Vec<SimInstant> = (0..50)
        .map(|i| SimInstant::EPOCH + SimDuration::from_millis(i * 50))
        .collect();
    let out = share_scans(&burst, dur);
    assert_eq!(out.physical_scans, 1);
    assert!(out.savings() > 0.85);
}

/// EXT-BUF's claim: with heterogeneous re-fetch costs the energy-aware
/// policy beats LRU on Joules.
#[test]
fn energy_policy_beats_lru_on_joules() {
    let model = EnergyModel {
        residency_watts_per_page: Watts::new(0.0005),
    };
    let trace: Vec<u32> = {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(11);
        (0..30_000)
            .map(|_| {
                let u: f64 = rng.random_range(0.0f64..1.0);
                ((u.powf(3.0) * 4096.0) as u32).min(4095)
            })
            .collect()
    };
    let run = |kind: PolicyKind| {
        let mut pool = BufferPool::new(512, kind, model);
        for (i, page) in trace.iter().enumerate() {
            let cost = if page % 2 == 0 { 0.05 } else { 2.0 };
            pool.access(
                PageId::new(0, *page),
                SimInstant::EPOCH + SimDuration::from_millis(i as u64 * 5),
                Joules::new(cost),
            );
        }
        pool.finish(SimInstant::EPOCH + SimDuration::from_secs(150))
            .total_energy()
            .joules()
    };
    let lru = run(PolicyKind::Lru);
    let ea = run(PolicyKind::EnergyAware {
        residency_watts_per_page: Watts::new(0.0005),
    });
    assert!(ea < lru, "energy-aware {ea} vs LRU {lru}");
}

/// EXT-TCO's claim: two 66-disk nodes beat one 204-disk node on total
/// lifetime dollars at matched throughput.
#[test]
fn scale_out_beats_scale_up_in_dollars() {
    let m = TcoModel::circa_2008();
    let up = m.evaluate(8000.0 + 204.0 * 250.0, Watts::new(4161.0));
    let out = m.evaluate(2.0 * (8000.0 + 66.0 * 250.0), Watts::new(2.0 * 2018.0));
    assert!(out.total_usd() < up.total_usd());
}

/// The fabric calibration identity behind FIG1: effective bandwidth at
/// 204 disks is ~1.82× that at 66 (the paper's 45% performance delta).
#[test]
fn fabric_calibration_identity() {
    let f = FabricModel::dl785_sas();
    let eff = |n: u32| n as f64 * f.factor(n);
    let ratio = eff(204) / eff(66);
    assert!((ratio - 1.82).abs() < 0.02, "{ratio}");
}

/// EXT-OLTP's substrate: index height at Fig. 2 scale is 3 pages.
#[test]
fn index_descent_is_three_pages_at_scale() {
    // 150 M keys with fanout 4096: 36 622 leaf pages → 9 L1 pages →
    // 1 root ⇒ height 3. Verify the arithmetic with a real (smaller)
    // tree of the same shape: fanout² keys needs height 3.
    let fanout = grail::storage::btree::FANOUT as i64;
    let idx = BTreeIndex::build((0..fanout * fanout / 16).collect());
    assert!(idx.height() >= 2);
    let pages_150m = (150_000_000u64).div_ceil(fanout as u64);
    let l1 = pages_150m.div_ceil(fanout as u64);
    assert!(l1 > 1, "needs a second inner level");
    assert!(l1 <= fanout as u64, "root fits one page ⇒ height 3");
}

/// EXT-CHAOS's claim: under the reference two-day storm (correlated
/// fault-domain outages, crash/restart cycles, brownouts, surges), the
/// default replicated-consolidation policy keeps availability at or
/// above the documented floor, sheds rather than silently drops what it
/// cannot serve, and bills every cold boot and hedged re-dispatch to a
/// Recovery ledger line that sums exactly into the wall-socket total.
#[test]
fn chaos_reference_storm_degrades_gracefully() {
    use grail::power::ComponentKind;
    use grail::scheduler::chaos::{reference_storm, run_chaos, DOCUMENTED_AVAILABILITY_FLOOR};
    use grail::trace::Tracer;

    let (fleet, schedule, demand, policy) = reference_storm();
    let r = run_chaos(&fleet, &schedule, demand, &policy, &mut Tracer::off()).expect("storm runs");
    // A storm, not a breeze: machines actually crash and recovery is paid.
    assert!(r.crashes > 0, "the reference storm must crash machines");
    assert!(r.recovery_energy().joules() > 0.0);
    // Graceful degradation: availability holds the documented floor.
    let avail = r.availability();
    assert!(
        avail >= DOCUMENTED_AVAILABILITY_FLOOR,
        "availability {avail} below documented floor {DOCUMENTED_AVAILABILITY_FLOOR}"
    );
    // Nothing vanishes: served + shed + failed == offered.
    assert!(
        r.conservation_error() <= 1e-6 * r.offered.max(1.0),
        "served {} + shed {} + failed {} != offered {}",
        r.served,
        r.shed,
        r.failed,
        r.offered
    );
    // The Recovery line is re-attribution, not double counting: summing
    // every component kind reproduces the wall-socket total exactly.
    let kinds = [
        ComponentKind::Cpu,
        ComponentKind::Disk,
        ComponentKind::Ssd,
        ComponentKind::Dram,
        ComponentKind::Nic,
        ComponentKind::Base,
        ComponentKind::Recovery,
        ComponentKind::Other,
    ];
    let by_kind: f64 = kinds.iter().map(|k| r.ledger.kind_total(*k).joules()).sum();
    let total = r.total_energy().joules();
    assert!(
        (by_kind - total).abs() <= 1e-6 * total.max(1.0),
        "kind sum {by_kind} != wall-socket {total}"
    );
    assert!(
        r.recovery_energy().joules() < total,
        "recovery is a share, not the whole bill"
    );
}
