//! Trace determinism and attribution-conservation properties.
//!
//! The flight recorder's contract: a trace is a pure function of the
//! simulated run, so identical seed + fault plan ⇒ byte-identical JSONL
//! export, and the attribution table's rows always sum to the ledger's
//! wall-socket total (the PR-2 conservation invariant, per query).

use grail::core::db::{CompressionMode, EnergyAwareDb, ExecPolicy, ScanSpec, TracedRun};
use grail::prelude::*;
use grail::trace::{to_chrome, to_jsonl};
use proptest::prelude::*;

fn loaded_db(profile: HardwareProfile) -> EnergyAwareDb {
    let mut db = EnergyAwareDb::new(profile);
    db.load_tpch(TpchScale::toy());
    db
}

fn traced_scan(db: &EnergyAwareDb) -> TracedRun {
    db.try_run_scan_traced(&ScanSpec::fig2(), ExecPolicy::default(), 100.0)
        .expect("loaded db scans")
}

/// |table sum − ledger total| within f64 accumulation tolerance.
fn assert_attribution_conserves(run: &TracedRun) {
    let table = run.report.attribution.as_ref().expect("traced");
    let total = run.report.ledger.total().joules();
    let sum = table.sum().joules();
    assert!(
        (sum - total).abs() <= total.abs() * 1e-9 + 1e-9,
        "attribution sum {sum} != ledger total {total}"
    );
}

#[test]
fn identical_runs_export_byte_identical_jsonl() {
    let db = loaded_db(HardwareProfile::flash_scanner());
    let a = traced_scan(&db);
    let b = traced_scan(&db);
    let ja = to_jsonl(&a.trace);
    let jb = to_jsonl(&b.trace);
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "same run must export byte-identical JSONL");
    assert_eq!(to_chrome(&a.trace), to_chrome(&b.trace));
}

#[test]
fn throughput_trace_is_deterministic_and_conserving() {
    let db = loaded_db(HardwareProfile::server_dl785(36));
    let run = || {
        db.try_run_throughput_test_traced(2, 2, ExecPolicy::default(), 10.0)
            .expect("loaded db runs")
    };
    let a = run();
    let b = run();
    assert_eq!(to_jsonl(&a.trace), to_jsonl(&b.trace));
    assert_attribution_conserves(&a);
    // Attributed energy is real: every query row is positive.
    let table = a.report.attribution.as_ref().expect("traced");
    assert!(table
        .rows
        .iter()
        .filter(|r| r.stream.is_some())
        .all(|r| r.energy.joules() > 0.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Identical seed and fault plan ⇒ byte-identical JSONL, across a
    /// sweep of fault seeds and rates; and the attribution rows sum to
    /// the ledger total whether or not faults fired.
    #[test]
    fn seeded_fault_runs_are_byte_identical(
        seed in 0u64..500,
        transient_millis in 0u32..400,
    ) {
        let cfg = FaultConfig {
            transient_per_io: transient_millis as f64 / 1000.0,
            ..FaultConfig::NONE
        };
        let run = || {
            let mut db = loaded_db(HardwareProfile::flash_scanner());
            db.set_fault_profile(cfg, seed);
            db.try_run_scan_traced(&ScanSpec::fig2(), ExecPolicy::default(), 100.0)
        };
        match (run(), run()) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(to_jsonl(&a.trace), to_jsonl(&b.trace));
                prop_assert_eq!(to_chrome(&a.trace), to_chrome(&b.trace));
                assert_attribution_conserves(&a);
                prop_assert_eq!(a.report.energy, b.report.energy);
                prop_assert_eq!(a.report.retries, b.report.retries);
            }
            // A hostile fault rate may exhaust retries — deterministically.
            (Err(ea), Err(eb)) => prop_assert_eq!(ea.to_string(), eb.to_string()),
            (a, b) => prop_assert!(
                false,
                "identical runs diverged: {:?} vs {:?}",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }
}
