//! Trace determinism and attribution-conservation properties.
//!
//! The flight recorder's contract: a trace is a pure function of the
//! simulated run, so identical seed + fault plan ⇒ byte-identical JSONL
//! export, and the attribution table's rows always sum to the ledger's
//! wall-socket total (the PR-2 conservation invariant, per query).

use grail::core::db::{CompressionMode, EnergyAwareDb, ExecPolicy, ScanSpec, TracedRun};
use grail::prelude::*;
use grail::trace::{to_chrome, to_jsonl};
use proptest::prelude::*;

fn loaded_db(profile: HardwareProfile) -> EnergyAwareDb {
    let mut db = EnergyAwareDb::new(profile);
    db.load_tpch(TpchScale::toy());
    db
}

fn traced_scan(db: &EnergyAwareDb) -> TracedRun {
    db.try_run_scan_traced(&ScanSpec::fig2(), ExecPolicy::default(), 100.0)
        .expect("loaded db scans")
}

/// |table sum − ledger total| within f64 accumulation tolerance.
fn assert_attribution_conserves(run: &TracedRun) {
    let table = run.report.attribution.as_ref().expect("traced");
    let total = run.report.ledger.total().joules();
    let sum = table.sum().joules();
    assert!(
        (sum - total).abs() <= total.abs() * 1e-9 + 1e-9,
        "attribution sum {sum} != ledger total {total}"
    );
}

#[test]
fn identical_runs_export_byte_identical_jsonl() {
    let db = loaded_db(HardwareProfile::flash_scanner());
    let a = traced_scan(&db);
    let b = traced_scan(&db);
    let ja = to_jsonl(&a.trace);
    let jb = to_jsonl(&b.trace);
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "same run must export byte-identical JSONL");
    assert_eq!(to_chrome(&a.trace), to_chrome(&b.trace));
}

#[test]
fn throughput_trace_is_deterministic_and_conserving() {
    let db = loaded_db(HardwareProfile::server_dl785(36));
    let run = || {
        db.try_run_throughput_test_traced(2, 2, ExecPolicy::default(), 10.0)
            .expect("loaded db runs")
    };
    let a = run();
    let b = run();
    assert_eq!(to_jsonl(&a.trace), to_jsonl(&b.trace));
    assert_attribution_conserves(&a);
    // Attributed energy is real: every query row is positive.
    let table = a.report.attribution.as_ref().expect("traced");
    assert!(table
        .rows
        .iter()
        .filter(|r| r.stream.is_some())
        .all(|r| r.energy.joules() > 0.0));
}

#[test]
fn trace_overflow_is_counted_and_deterministic() {
    use grail::scheduler::chaos::{reference_storm, run_chaos};
    use grail::trace::{Recorder, Tracer};
    let run = |cap: usize| {
        let (fleet, schedule, demand, policy) = reference_storm();
        let mut tracer = Tracer::on(Recorder::new(cap));
        run_chaos(&fleet, &schedule, demand, &policy, &mut tracer).expect("reference storm");
        tracer.take().expect("tracer is on")
    };
    // A storm emits far more than 8 events: the ring overflows, and the
    // overflow surfaces both as the struct counter and as the
    // `trace.dropped` metric (silent loss would poison any analysis
    // done on the kept suffix).
    let tiny = run(8);
    assert!(tiny.dropped() > 0, "reference storm must overflow cap=8");
    assert_eq!(tiny.metrics().counter("trace.dropped"), tiny.dropped());
    assert_eq!(tiny.len(), 8, "ring keeps exactly its capacity");
    // Dropping is part of the deterministic contract: same run, same
    // drops, same surviving suffix.
    let again = run(8);
    assert_eq!(again.dropped(), tiny.dropped());
    assert_eq!(to_jsonl(&again), to_jsonl(&tiny));
    // A roomy recorder loses nothing, and the conservation law holds:
    // emitted = kept + dropped.
    let big = run(1 << 20);
    assert_eq!(big.metrics().counter("trace.dropped"), 0);
    assert_eq!(big.len() as u64, 8 + tiny.dropped());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Identical seed and fault plan ⇒ byte-identical JSONL, across a
    /// sweep of fault seeds and rates; and the attribution rows sum to
    /// the ledger total whether or not faults fired.
    #[test]
    fn seeded_fault_runs_are_byte_identical(
        seed in 0u64..500,
        transient_millis in 0u32..400,
    ) {
        let cfg = FaultConfig {
            transient_per_io: transient_millis as f64 / 1000.0,
            ..FaultConfig::NONE
        };
        let run = || {
            let mut db = loaded_db(HardwareProfile::flash_scanner());
            db.set_fault_profile(cfg, seed);
            db.try_run_scan_traced(&ScanSpec::fig2(), ExecPolicy::default(), 100.0)
        };
        match (run(), run()) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(to_jsonl(&a.trace), to_jsonl(&b.trace));
                prop_assert_eq!(to_chrome(&a.trace), to_chrome(&b.trace));
                assert_attribution_conserves(&a);
                prop_assert_eq!(a.report.energy, b.report.energy);
                prop_assert_eq!(a.report.retries, b.report.retries);
            }
            // A hostile fault rate may exhaust retries — deterministically.
            (Err(ea), Err(eb)) => prop_assert_eq!(ea.to_string(), eb.to_string()),
            (a, b) => prop_assert!(
                false,
                "identical runs diverged: {:?} vs {:?}",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }
}
