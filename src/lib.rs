//! # GRAIL — energy-aware data management
//!
//! GRAIL reproduces, as a working system, the research agenda of
//! *"Energy Efficiency: The New Holy Grail of Data Management Systems
//! Research"* (Harizopoulos, Meza, Shah, Ranganathan — CIDR 2009): a
//! relational engine in which physical design, buffer management, query
//! optimization and scheduling can all be driven by an **energy objective**
//! instead of (or alongside) a performance objective, measured against a
//! deterministic hardware power/performance simulator.
//!
//! This crate is a thin facade that re-exports the workspace:
//!
//! * [`metrics`] — the deterministic metrics registry: counters, gauges,
//!   histograms, scrape snapshots, SLO burn-rate evaluation, and the
//!   Prometheus/CSV exporters ([`grail_metrics`]).
//! * [`trace`] — the deterministic energy flight recorder: structured
//!   events, metrics, JSONL/Perfetto export ([`grail_trace`]).
//! * [`power`] — units, power-state machines, component power models, the
//!   energy ledger ([`grail_power`]).
//! * [`sim`] — the discrete-event hardware simulator ([`grail_sim`]).
//! * [`storage`] — pages, columnar segments, compression, partitioning
//!   ([`grail_storage`]).
//! * [`buffer`] — the energy-aware buffer manager ([`grail_buffer`]).
//! * [`workload`] — TPC-H-like generation and query mixes
//!   ([`grail_workload`]).
//! * [`query`] — the relational executor and column scanner
//!   ([`grail_query`]).
//! * [`optimizer`] — the dual time/energy cost model and plan selection
//!   ([`grail_optimizer`]).
//! * [`scheduler`] — consolidation, batching, and idle governors
//!   ([`grail_scheduler`]).
//! * [`core`] — the [`grail_core::EnergyAwareDb`] facade and hardware
//!   profiles.
//!
//! ## Quickstart
//!
//! ```
//! use grail::prelude::*;
//!
//! // Fig. 2's machine: one 90 W CPU, three 5 W-total flash drives.
//! let mut db = EnergyAwareDb::new(HardwareProfile::flash_scanner());
//! db.load_tpch(TpchScale::toy());
//! // Scan 5 of ORDERS' 7 columns at the loaded size.
//! let report = db.run_scan(&ScanSpec::orders_projection(5), ExecPolicy::default(), 1.0);
//! assert!(report.energy.joules() > 0.0);
//! println!("{} J over {}", report.energy.joules(), report.elapsed);
//! ```

#![forbid(unsafe_code)]

pub use grail_buffer as buffer;
pub use grail_check as check;
pub use grail_core as core;
pub use grail_metrics as metrics;
pub use grail_optimizer as optimizer;
pub use grail_power as power;
pub use grail_query as query;
pub use grail_scheduler as scheduler;
pub use grail_sim as sim;
pub use grail_storage as storage;
pub use grail_trace as trace;
pub use grail_workload as workload;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use grail_core::{
        EnergyAwareDb, EnergyReport, ExecPolicy, HardwareProfile, ScanSpec, TpchScale, TracedRun,
    };
    pub use grail_power::units::{Joules, SimDuration, SimInstant, Watts};
    pub use grail_sim::{AttributionTable, FaultConfig, FaultStats};
    pub use grail_trace::{Category, Recorder, Tracer};
}
