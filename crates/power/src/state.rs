//! Power-state machines with explicit, costed transitions.
//!
//! The paper (Sec. 2.4, 4.2) stresses that current components "are either
//! on … or off, and the transitions can be expensive", and that software
//! must reason about whether an idle period is long enough to amortize a
//! state switch. [`PowerStateMachine`] makes that reasoning checkable: a
//! machine declares its states (each with a power draw) and its legal
//! transitions (each with a latency and an energy cost), accumulates energy
//! in closed form as simulated time advances, and refuses undeclared or
//! time-travelling state changes.

use crate::error::PowerError;
use crate::units::{Joules, SimDuration, SimInstant, Watts};
use serde::{Deserialize, Serialize};

/// Identifier of a state within one [`PowerStateMachine`] (dense index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PowerStateId(pub u8);

/// One power state: a name (for reports) and a steady-state power draw.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PowerState {
    /// Human-readable name ("active", "idle", "standby", …).
    pub name: &'static str,
    /// Steady-state power drawn while in this state.
    pub power: Watts,
}

/// A declared transition between two power states.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Source state.
    pub from: PowerStateId,
    /// Destination state.
    pub to: PowerStateId,
    /// Time during which the component is unavailable.
    pub latency: SimDuration,
    /// Total energy consumed by the transition itself (e.g. a disk
    /// spin-up's motor surge). Charged in addition to neither endpoint
    /// state's steady power: during the transition the machine draws
    /// `energy / latency` on average.
    pub energy: Joules,
}

/// Per-state occupancy statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StateOccupancy {
    /// Total simulated time spent in the state.
    pub time: SimDuration,
    /// Total energy consumed while in the state.
    pub energy: Joules,
    /// Number of times the state was entered.
    pub entries: u64,
}

/// Summary of a machine's whole history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSummary {
    /// Total energy including transitions.
    pub total_energy: Joules,
    /// Occupancy per state, indexed by [`PowerStateId`].
    pub per_state: Vec<StateOccupancy>,
    /// Energy consumed by transitions alone.
    pub transition_energy: Joules,
    /// Number of transitions performed.
    pub transitions: u64,
    /// Time spent inside transitions (unavailable).
    pub transition_time: SimDuration,
}

impl MachineSummary {
    /// Accumulate this machine's lifetime statistics into a metrics
    /// registry. Counters and gauges *add* so summaries from several
    /// machines (one per device, one per CPU core) aggregate into
    /// fleet-wide totals.
    pub fn feed_metrics(&self, reg: &mut grail_metrics::Registry) {
        reg.add("power.transitions", self.transitions);
        reg.add(
            "power.state_entries",
            self.per_state.iter().map(|s| s.entries).sum(),
        );
        reg.add_gauge("power.transition_joules", self.transition_energy.joules());
        reg.add_gauge("power.transition_secs", self.transition_time.as_secs_f64());
    }
}

/// A power-state machine that integrates energy as simulated time advances.
#[derive(Debug, Clone)]
pub struct PowerStateMachine {
    states: Vec<PowerState>,
    /// Declared transitions, looked up linearly (machines have ≤ a handful
    /// of states, so a flat vec beats a hash map).
    transitions: Vec<Transition>,
    current: PowerStateId,
    /// Last instant up to which energy has been accumulated.
    cursor: SimInstant,
    /// If a transition is in flight, when it completes.
    busy_until: Option<SimInstant>,
    /// Power drawn right now (state power, or average transition power).
    current_power: Watts,
    total_energy: Joules,
    per_state: Vec<StateOccupancy>,
    transition_energy: Joules,
    transition_count: u64,
    transition_time: SimDuration,
}

impl PowerStateMachine {
    /// Build a machine starting in `initial` at `start`.
    ///
    /// # Panics
    /// Panics if `states` is empty, `initial` is out of range, or any
    /// transition references an unknown state — these are construction
    /// bugs, not runtime conditions.
    pub fn new(
        states: Vec<PowerState>,
        transitions: Vec<Transition>,
        initial: PowerStateId,
        start: SimInstant,
    ) -> Self {
        assert!(!states.is_empty(), "a power-state machine needs states");
        assert!(
            (initial.0 as usize) < states.len(),
            "initial state {initial:?} out of range"
        );
        for t in &transitions {
            assert!(
                (t.from.0 as usize) < states.len() && (t.to.0 as usize) < states.len(),
                "transition {t:?} references unknown state"
            );
        }
        let mut per_state = vec![StateOccupancy::default(); states.len()];
        per_state[initial.0 as usize].entries = 1;
        let current_power = states[initial.0 as usize].power;
        PowerStateMachine {
            states,
            transitions,
            current: initial,
            cursor: start,
            busy_until: None,
            current_power,
            total_energy: Joules::ZERO,
            per_state,
            transition_energy: Joules::ZERO,
            transition_count: 0,
            transition_time: SimDuration::ZERO,
        }
    }

    /// Convenience: a two-state machine (`active` / `idle`) with free,
    /// instant transitions — the "limited power knobs" servers of
    /// Sec. 2.4 collapse to this.
    pub fn active_idle(active: Watts, idle: Watts, start: SimInstant) -> Self {
        let states = vec![
            PowerState {
                name: "active",
                power: active,
            },
            PowerState {
                name: "idle",
                power: idle,
            },
        ];
        let transitions = vec![
            Transition {
                from: PowerStateId(0),
                to: PowerStateId(1),
                latency: SimDuration::ZERO,
                energy: Joules::ZERO,
            },
            Transition {
                from: PowerStateId(1),
                to: PowerStateId(0),
                latency: SimDuration::ZERO,
                energy: Joules::ZERO,
            },
        ];
        PowerStateMachine::new(states, transitions, PowerStateId(1), start)
    }

    /// The state id named `name`, if any.
    pub fn state_named(&self, name: &str) -> Option<PowerStateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| PowerStateId(i as u8))
    }

    /// The machine's current state.
    #[inline]
    pub fn current(&self) -> PowerStateId {
        self.current
    }

    /// The power being drawn right now (including mid-transition draw).
    #[inline]
    pub fn current_power(&self) -> Watts {
        self.current_power
    }

    /// The steady power of state `id`.
    pub fn state_power(&self, id: PowerStateId) -> Result<Watts, PowerError> {
        self.states
            .get(id.0 as usize)
            .map(|s| s.power)
            .ok_or(PowerError::UnknownState(id))
    }

    /// If a transition is in flight, when the machine becomes available.
    #[inline]
    pub fn busy_until(&self) -> Option<SimInstant> {
        self.busy_until
    }

    /// The declared transition from `from` to `to`, if any.
    pub fn transition(&self, from: PowerStateId, to: PowerStateId) -> Option<&Transition> {
        self.transitions
            .iter()
            .find(|t| t.from == from && t.to == to)
    }

    /// Accumulate energy up to `t` without changing state.
    ///
    /// Idempotent for equal `t`; errors if `t` is in the machine's past.
    pub fn advance_to(&mut self, t: SimInstant) -> Result<(), PowerError> {
        if t < self.cursor {
            return Err(PowerError::TimeWentBackwards {
                now: self.cursor,
                requested: t,
            });
        }
        // If a transition completes within [cursor, t], split the interval.
        if let Some(done) = self.busy_until {
            if done <= t {
                let span = done.saturating_duration_since(self.cursor);
                let e = self.current_power * span;
                self.total_energy += e;
                self.transition_energy += e;
                self.transition_time += span;
                self.cursor = done;
                self.busy_until = None;
                self.current_power = self.states[self.current.0 as usize].power;
            } else {
                let span = t.saturating_duration_since(self.cursor);
                let e = self.current_power * span;
                self.total_energy += e;
                self.transition_energy += e;
                self.transition_time += span;
                self.cursor = t;
                return Ok(());
            }
        }
        let span = t.saturating_duration_since(self.cursor);
        if !span.is_zero() {
            let e = self.current_power * span;
            self.total_energy += e;
            let occ = &mut self.per_state[self.current.0 as usize];
            occ.time += span;
            occ.energy += e;
            self.cursor = t;
        }
        Ok(())
    }

    /// Request a state change at time `at`.
    ///
    /// Returns the instant at which the new state is fully entered
    /// (`at + latency`). A change to the current state is a no-op that
    /// still advances the clock. Errors if the transition is undeclared,
    /// `at` precedes the machine's cursor, or a transition is in flight.
    pub fn set_state(
        &mut self,
        at: SimInstant,
        to: PowerStateId,
    ) -> Result<SimInstant, PowerError> {
        if (to.0 as usize) >= self.states.len() {
            return Err(PowerError::UnknownState(to));
        }
        if let Some(done) = self.busy_until {
            if at < done {
                return Err(PowerError::TransitionInFlight {
                    busy_until: done,
                    requested: at,
                });
            }
        }
        self.advance_to(at)?;
        if to == self.current {
            return Ok(at);
        }
        let tr = *self
            .transition(self.current, to)
            .ok_or(PowerError::UndeclaredTransition {
                from: self.current,
                to,
            })?;
        self.transition_count += 1;
        self.current = to;
        self.per_state[to.0 as usize].entries += 1;
        if tr.latency.is_zero() {
            // Instant transition: charge its energy as a point spike.
            self.total_energy += tr.energy;
            self.transition_energy += tr.energy;
            self.current_power = self.states[to.0 as usize].power;
            Ok(at)
        } else {
            // During the transition the machine draws the transition's
            // average power; `advance_to` settles it when time passes.
            let done = at + tr.latency;
            self.busy_until = Some(done);
            self.current_power = tr.energy.avg_power_over(tr.latency);
            Ok(done)
        }
    }

    /// Whether switching to `to` and back pays for itself over an idle gap
    /// of length `gap`: compares energy of staying in the current state
    /// for `gap` against transitioning to `to`, idling there, and coming
    /// back. This is the "minimum-length idle period" calculus of
    /// Sec. 4.2.
    pub fn break_even_worth_it(&self, to: PowerStateId, gap: SimDuration) -> bool {
        let Some(down) = self.transition(self.current, to) else {
            return false;
        };
        let Some(up) = self.transition(to, self.current) else {
            return false;
        };
        let switch_time = down.latency + up.latency;
        if switch_time > gap {
            return false;
        }
        let stay = self.states[self.current.0 as usize].power * gap;
        let low_time = gap - switch_time;
        let go = down.energy + up.energy + self.states[to.0 as usize].power * low_time;
        go < stay
    }

    /// The minimum idle-gap length at which dropping to `to` saves energy,
    /// or `None` if it never does (or the round trip is undeclared).
    pub fn break_even_gap(&self, to: PowerStateId) -> Option<SimDuration> {
        let down = self.transition(self.current, to)?;
        let up = self.transition(to, self.current)?;
        let p_hi = self.states[self.current.0 as usize].power.get();
        let p_lo = self.states[to.0 as usize].power.get();
        if p_lo >= p_hi {
            return None;
        }
        let switch_time = (down.latency + up.latency).as_secs_f64();
        let switch_energy = (down.energy + up.energy).joules();
        // Solve p_hi * g = switch_energy + p_lo * (g - switch_time)
        // =>   g = (switch_energy - p_lo * switch_time) / (p_hi - p_lo)
        let g = (switch_energy - p_lo * switch_time) / (p_hi - p_lo);
        let g = g.max(switch_time);
        Some(SimDuration::from_secs_f64(g))
    }

    /// Total energy accumulated so far (through the cursor).
    #[inline]
    pub fn total_energy(&self) -> Joules {
        self.total_energy
    }

    /// The machine's time cursor.
    #[inline]
    pub fn cursor(&self) -> SimInstant {
        self.cursor
    }

    /// Finalize at `end` and summarize.
    pub fn finish(mut self, end: SimInstant) -> Result<MachineSummary, PowerError> {
        self.advance_to(end)?;
        Ok(MachineSummary {
            total_energy: self.total_energy,
            per_state: self.per_state,
            transition_energy: self.transition_energy,
            transitions: self.transition_count,
            transition_time: self.transition_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs_f64(s)
    }

    /// A three-state disk-like machine: active 15 W, idle 11 W,
    /// standby 2 W; spin-down 1 s / 5 J, spin-up 6 s / 135 J.
    fn disk_machine() -> PowerStateMachine {
        let states = vec![
            PowerState {
                name: "active",
                power: Watts::new(15.0),
            },
            PowerState {
                name: "idle",
                power: Watts::new(11.0),
            },
            PowerState {
                name: "standby",
                power: Watts::new(2.0),
            },
        ];
        let z = SimDuration::ZERO;
        let transitions = vec![
            Transition {
                from: PowerStateId(0),
                to: PowerStateId(1),
                latency: z,
                energy: Joules::ZERO,
            },
            Transition {
                from: PowerStateId(1),
                to: PowerStateId(0),
                latency: z,
                energy: Joules::ZERO,
            },
            Transition {
                from: PowerStateId(1),
                to: PowerStateId(2),
                latency: SimDuration::from_secs(1),
                energy: Joules::new(5.0),
            },
            Transition {
                from: PowerStateId(2),
                to: PowerStateId(1),
                latency: SimDuration::from_secs(6),
                energy: Joules::new(135.0),
            },
        ];
        PowerStateMachine::new(states, transitions, PowerStateId(1), SimInstant::EPOCH)
    }

    #[test]
    fn steady_state_energy() {
        let mut m = PowerStateMachine::active_idle(Watts::new(90.0), Watts::new(10.0), secs(0.0));
        m.advance_to(secs(10.0)).unwrap();
        assert!((m.total_energy().joules() - 100.0).abs() < 1e-9);
        m.set_state(secs(10.0), PowerStateId(0)).unwrap();
        m.advance_to(secs(13.2)).unwrap();
        // 10 s idle at 10 W + 3.2 s active at 90 W = 388 J.
        assert!((m.total_energy().joules() - 388.0).abs() < 1e-9);
    }

    #[test]
    fn undeclared_transition_rejected() {
        let mut m = disk_machine();
        // active <-> standby was never declared.
        m.set_state(secs(1.0), PowerStateId(0)).unwrap();
        let err = m.set_state(secs(2.0), PowerStateId(2)).unwrap_err();
        assert!(matches!(err, PowerError::UndeclaredTransition { .. }));
    }

    #[test]
    fn time_backwards_rejected() {
        let mut m = disk_machine();
        m.advance_to(secs(5.0)).unwrap();
        let err = m.advance_to(secs(4.0)).unwrap_err();
        assert!(matches!(err, PowerError::TimeWentBackwards { .. }));
    }

    #[test]
    fn transition_energy_and_latency() {
        let mut m = disk_machine();
        // idle 0..10 s (110 J), spin down at 10 s (1 s, 5 J), standby
        // 11..20 s (18 J).
        let done = m.set_state(secs(10.0), PowerStateId(2)).unwrap();
        assert_eq!(done, secs(11.0));
        assert_eq!(m.busy_until(), Some(secs(11.0)));
        m.advance_to(secs(20.0)).unwrap();
        assert!((m.total_energy().joules() - (110.0 + 5.0 + 18.0)).abs() < 1e-9);
        let s = m.finish(secs(20.0)).unwrap();
        assert_eq!(s.transitions, 1);
        assert!((s.transition_energy.joules() - 5.0).abs() < 1e-9);
        assert_eq!(s.transition_time, SimDuration::from_secs(1));
        assert!((s.per_state[2].energy.joules() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn change_during_transition_rejected() {
        let mut m = disk_machine();
        m.set_state(secs(10.0), PowerStateId(2)).unwrap();
        let err = m.set_state(secs(10.5), PowerStateId(1)).unwrap_err();
        assert!(matches!(err, PowerError::TransitionInFlight { .. }));
        // At completion time it is allowed again.
        m.set_state(secs(11.0), PowerStateId(1)).unwrap();
    }

    #[test]
    fn self_transition_is_noop() {
        let mut m = disk_machine();
        m.set_state(secs(3.0), PowerStateId(1)).unwrap();
        let s = m.finish(secs(3.0)).unwrap();
        assert_eq!(s.transitions, 0);
    }

    #[test]
    fn advance_splits_transition_interval() {
        let mut m = disk_machine();
        m.set_state(secs(0.0), PowerStateId(2)).unwrap(); // 1 s, 5 J
        m.advance_to(secs(0.5)).unwrap();
        // Half the transition: 2.5 J.
        assert!((m.total_energy().joules() - 2.5).abs() < 1e-9);
        m.advance_to(secs(2.0)).unwrap();
        // Rest of transition + 1 s standby = 5 + 2 J.
        assert!((m.total_energy().joules() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn break_even_calculus() {
        let m = disk_machine();
        // Round trip idle->standby->idle costs 140 J + 7 s of switching.
        // Break-even: g = (140 - 2*7) / (11 - 2) = 14.0 s.
        let g = m.break_even_gap(PowerStateId(2)).unwrap();
        assert!((g.as_secs_f64() - 14.0).abs() < 1e-6);
        assert!(!m.break_even_worth_it(PowerStateId(2), SimDuration::from_secs(10)));
        assert!(m.break_even_worth_it(PowerStateId(2), SimDuration::from_secs(20)));
    }

    #[test]
    fn break_even_to_higher_power_state_is_none() {
        let mut m = disk_machine();
        m.set_state(secs(0.0), PowerStateId(2)).unwrap();
        m.advance_to(secs(1.0)).unwrap();
        // From standby, "dropping" to idle costs more power: never worth it.
        assert_eq!(m.break_even_gap(PowerStateId(1)), None);
    }

    #[test]
    fn state_lookup() {
        let m = disk_machine();
        assert_eq!(m.state_named("standby"), Some(PowerStateId(2)));
        assert_eq!(m.state_named("nope"), None);
        assert!(m.state_power(PowerStateId(9)).is_err());
    }

    #[test]
    fn entries_counted() {
        let mut m = disk_machine();
        m.set_state(secs(1.0), PowerStateId(0)).unwrap();
        m.set_state(secs(2.0), PowerStateId(1)).unwrap();
        m.set_state(secs(3.0), PowerStateId(0)).unwrap();
        let s = m.finish(secs(4.0)).unwrap();
        assert_eq!(s.per_state[0].entries, 2);
        assert_eq!(s.per_state[1].entries, 2); // initial + one re-entry
    }
}
