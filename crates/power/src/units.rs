//! Dimensioned units for simulated time, power, energy, data volume and
//! CPU work.
//!
//! Time is kept as integer **nanoseconds** so that event ordering in the
//! simulator is exact; power and energy are `f64` because they are only
//! ever integrated/aggregated, never used for ordering.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

// ---------------------------------------------------------------------------
// SimDuration / SimInstant
// ---------------------------------------------------------------------------

/// A span of simulated time, in integer nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration (~584 simulated years).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A duration of `nanos` nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// A duration of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// A duration of `millis` milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// A duration of `secs` whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// A duration of `secs` fractional seconds, rounded to the nearest
    /// nanosecond. Negative or non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * NANOS_PER_SEC as f64;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// This duration in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Addition that clamps at [`SimDuration::MAX`] instead of overflowing.
    #[inline]
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Subtraction that clamps at zero instead of underflowing.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub const fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        match self.0.checked_add(rhs.0) {
            Some(n) => Some(SimDuration(n)),
            None => None,
        }
    }

    /// Scale by a non-negative factor, rounding to the nearest nanosecond.
    ///
    /// Useful for slowdown/speedup factors (e.g. DVFS). Saturates on
    /// overflow; a non-finite or negative factor yields zero.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Integer division of this duration into `n` equal parts (floor).
    #[inline]
    pub const fn div_u64(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }

    /// Multiplication by an integer factor that clamps at
    /// [`SimDuration::MAX`] instead of overflowing — the safe form of
    /// `dur * n` for factors derived from untrusted exponents (retry
    /// backoff, breaker quarantines).
    #[inline]
    pub const fn saturating_mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc.saturating_add(d))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A point in simulated time, in integer nanoseconds since simulation
/// start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimInstant = SimInstant(0);
    /// The largest representable instant.
    pub const MAX: SimInstant = SimInstant(u64::MAX);

    /// The instant `nanos` nanoseconds after the epoch.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimInstant(nanos)
    }

    /// The instant `secs` fractional seconds after the epoch.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimInstant(SimDuration::from_secs_f64(secs).as_nanos())
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so this indicates a logic error in the caller.
    #[inline]
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({}) is after self ({})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// `duration_since` that yields zero instead of panicking.
    #[inline]
    pub const fn saturating_duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimInstant) -> SimInstant {
        SimInstant(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimInstant) -> SimInstant {
        SimInstant(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimInstant {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 - rhs.as_nanos())
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

// ---------------------------------------------------------------------------
// Watts / Joules
// ---------------------------------------------------------------------------

/// Instantaneous power, in Watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// `w` Watts.
    ///
    /// # Panics
    /// Panics on negative or non-finite input: components never *produce*
    /// power, and a NaN would silently poison every downstream ledger sum.
    #[inline]
    pub fn new(w: f64) -> Self {
        assert!(w.is_finite() && w >= 0.0, "invalid power: {w} W");
        Watts(w)
    }

    /// The raw Watt value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The larger of two powers.
    #[inline]
    pub fn max(self, other: Watts) -> Watts {
        Watts(self.0.max(other.0))
    }
}

impl Add for Watts {
    type Output = Watts;
    #[inline]
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    #[inline]
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    #[inline]
    fn sub(self, rhs: Watts) -> Watts {
        Watts((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Mul<SimDuration> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: SimDuration) -> Joules {
        Joules(self.0 * rhs.as_secs_f64())
    }
}

impl Mul<Watts> for SimDuration {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, |acc, w| acc + w)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}W", self.0)
    }
}

/// An amount of energy, in Joules. `1 J = 1 W × 1 s` (paper, Sec. 2.1).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Joules(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// `j` Joules.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn new(j: f64) -> Self {
        assert!(j.is_finite() && j >= 0.0, "invalid energy: {j} J");
        Joules(j)
    }

    /// The raw Joule value.
    #[inline]
    pub const fn joules(self) -> f64 {
        self.0
    }

    /// This energy in kilowatt-hours (the billing unit of Sec. 2.2).
    #[inline]
    pub fn as_kwh(self) -> f64 {
        self.0 / 3_600_000.0
    }

    /// Average power if this energy were spent evenly over `d`.
    ///
    /// Returns zero power for a zero-length interval.
    #[inline]
    pub fn avg_power_over(self, d: SimDuration) -> Watts {
        if d.is_zero() {
            Watts::ZERO
        } else {
            Watts(self.0 / d.as_secs_f64())
        }
    }

    /// The energy-delay product of this energy and `d` (Sec. 3.1's
    /// balanced figure of merit): `E × T`, in Joule-seconds.
    #[inline]
    pub fn delay_product(self, d: SimDuration) -> JouleSeconds {
        JouleSeconds(self.0 * d.as_secs_f64())
    }
}

impl Add for Joules {
    type Output = Joules;
    #[inline]
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    #[inline]
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    #[inline]
    fn sub(self, rhs: Joules) -> Joules {
        Joules((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

impl Div<f64> for Joules {
    type Output = Joules;
    #[inline]
    fn div(self, rhs: f64) -> Joules {
        Joules(self.0 / rhs)
    }
}

impl Div<Joules> for Joules {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Joules) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, |acc, j| acc + j)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}J", self.0)
    }
}

/// An energy-delay product, in Joule-seconds (`E × T`).
///
/// EDP is the referee metric between a performance-first and an
/// energy-first configuration: it penalizes both wasted Joules and
/// wasted wall-clock equally. Build one with
/// [`Joules::delay_product`]; it is ordered so callers can `min_by`
/// over candidate configurations without unwrapping raw `f64`s.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct JouleSeconds(f64);

impl JouleSeconds {
    /// Zero energy-delay product.
    pub const ZERO: JouleSeconds = JouleSeconds(0.0);

    /// `js` Joule-seconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn new(js: f64) -> Self {
        assert!(
            js.is_finite() && js >= 0.0,
            "invalid energy-delay product: {js} J*s"
        );
        JouleSeconds(js)
    }

    /// The raw Joule-second value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Total order for ranking configurations (the payload is finite by
    /// construction, so `partial_cmp` cannot fail).
    #[inline]
    pub fn total_cmp(&self, other: &JouleSeconds) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for JouleSeconds {
    type Output = JouleSeconds;
    #[inline]
    fn add(self, rhs: JouleSeconds) -> JouleSeconds {
        JouleSeconds(self.0 + rhs.0)
    }
}

impl fmt::Display for JouleSeconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}J*s", self.0)
    }
}

// ---------------------------------------------------------------------------
// Bytes / Cycles / Hertz
// ---------------------------------------------------------------------------

/// A data volume, in bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// `n` bytes.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// `n` kibibytes.
    #[inline]
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// `n` mebibytes.
    #[inline]
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// `n` gibibytes.
    #[inline]
    pub const fn gib(n: u64) -> Self {
        Bytes(n * 1024 * 1024 * 1024)
    }

    /// The raw byte count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The byte count as `f64` (for rate arithmetic).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Time to move this many bytes at `bytes_per_sec`.
    ///
    /// Returns [`SimDuration::MAX`] for a non-positive rate.
    #[inline]
    pub fn time_at_rate(self, bytes_per_sec: f64) -> SimDuration {
        if bytes_per_sec <= 0.0 {
            SimDuration::MAX
        } else {
            SimDuration::from_secs_f64(self.0 as f64 / bytes_per_sec)
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |acc, b| acc + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
        let mut v = self.0 as f64;
        let mut u = 0;
        while v >= 1024.0 && u < UNITS.len() - 1 {
            v /= 1024.0;
            u += 1;
        }
        write!(f, "{v:.1}{}", UNITS[u])
    }
}

/// An amount of CPU work, in cycles.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// `n` cycles.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Time to execute this many cycles at clock `f`.
    #[inline]
    pub fn time_at(self, f: Hertz) -> SimDuration {
        if f.get() <= 0.0 {
            SimDuration::MAX
        } else {
            SimDuration::from_secs_f64(self.0 as f64 / f.get())
        }
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |acc, c| acc + c)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A frequency, in Hertz (cycles per second).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Hertz(f64);

impl Hertz {
    /// `hz` Hertz.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn new(hz: f64) -> Self {
        assert!(hz.is_finite() && hz >= 0.0, "invalid frequency: {hz} Hz");
        Hertz(hz)
    }

    /// `mhz` megahertz.
    #[inline]
    pub fn mhz(mhz: f64) -> Self {
        Hertz::new(mhz * 1e6)
    }

    /// `ghz` gigahertz.
    #[inline]
    pub fn ghz(ghz: f64) -> Self {
        Hertz::new(ghz * 1e9)
    }

    /// The raw Hz value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}GHz", self.0 / 1e9)
    }
}

// ---------------------------------------------------------------------------
// Energy efficiency
// ---------------------------------------------------------------------------

/// Energy efficiency: "computing work done per unit energy" (paper,
/// Sec. 2.1) — the miles-per-gallon of a data management system.
///
/// Work is a caller-defined scalar (queries completed, tuples scanned,
/// records sorted, …); units are work/Joule.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct EnergyEfficiency(f64);

impl EnergyEfficiency {
    /// Efficiency from work done and energy spent. Zero energy yields zero
    /// efficiency (no free lunch, and no infinities in reports).
    #[inline]
    pub fn from_work_energy(work: f64, energy: Joules) -> Self {
        if energy.joules() <= 0.0 {
            EnergyEfficiency(0.0)
        } else {
            EnergyEfficiency(work / energy.joules())
        }
    }

    /// Efficiency from a performance rate (work/s) and power draw — the
    /// paper's equivalent formulation `EE = Perf / Power`.
    #[inline]
    pub fn from_perf_power(work_per_sec: f64, power: Watts) -> Self {
        if power.get() <= 0.0 {
            EnergyEfficiency(0.0)
        } else {
            EnergyEfficiency(work_per_sec / power.get())
        }
    }

    /// Work per Joule.
    #[inline]
    pub const fn work_per_joule(self) -> f64 {
        self.0
    }

    /// Relative improvement of `self` over `base`, as a fraction
    /// (`0.14` = 14% more efficient).
    #[inline]
    pub fn gain_over(self, base: EnergyEfficiency) -> f64 {
        if base.0 <= 0.0 {
            0.0
        } else {
            self.0 / base.0 - 1.0
        }
    }
}

impl fmt::Display for EnergyEfficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6e}/J", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_product_is_energy_times_delay() {
        let edp = Joules::new(10.0).delay_product(SimDuration::from_secs(3));
        assert!((edp.get() - 30.0).abs() < 1e-12);
        assert_eq!(edp + JouleSeconds::new(2.0), JouleSeconds::new(32.0));
        assert_eq!(format!("{edp}"), "30.00J*s");
    }

    #[test]
    fn delay_product_orders_configurations() {
        let fast = Joules::new(20.0).delay_product(SimDuration::from_secs(1));
        let green = Joules::new(5.0).delay_product(SimDuration::from_secs(10));
        assert!(fast < green);
        assert_eq!(fast.total_cmp(&green), std::cmp::Ordering::Less);
        assert_eq!(
            JouleSeconds::ZERO.total_cmp(&JouleSeconds::ZERO),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    #[should_panic(expected = "invalid energy-delay product")]
    fn negative_delay_product_panics() {
        let _ = JouleSeconds::new(-1.0);
    }

    #[test]
    fn duration_roundtrip_secs() {
        let d = SimDuration::from_secs_f64(3.25);
        assert_eq!(d.as_nanos(), 3_250_000_000);
        assert!((d.as_secs_f64() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn duration_from_negative_or_nan_is_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn duration_saturating_ops() {
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_secs(5);
        assert_eq!(t1.duration_since(t0), SimDuration::from_secs(5));
        assert_eq!(t1 - t0, SimDuration::from_secs(5));
        assert_eq!(
            t1.saturating_duration_since(t1 + SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn instant_backwards_panics() {
        let t0 = SimInstant::EPOCH + SimDuration::from_secs(1);
        let _ = SimInstant::EPOCH.duration_since(t0);
    }

    #[test]
    fn watts_times_duration_is_joules() {
        // The paper's Fig. 2 arithmetic: 90 W × 3.2 s = 288 J.
        let e = Watts::new(90.0) * SimDuration::from_secs_f64(3.2);
        assert!((e.joules() - 288.0).abs() < 1e-9);
    }

    #[test]
    fn fig2_energy_totals() {
        // Uncompressed: 90 W × 3.2 s + 5 W × 10 s = 338 J.
        let uncompressed = Watts::new(90.0) * SimDuration::from_secs_f64(3.2)
            + Watts::new(5.0) * SimDuration::from_secs(10);
        assert!((uncompressed.joules() - 338.0).abs() < 1e-9);
        // Compressed: 90 W × 5.1 s + 5 W × 5.5 s = 486.5 J (~487 in paper).
        let compressed = Watts::new(90.0) * SimDuration::from_secs_f64(5.1)
            + Watts::new(5.0) * SimDuration::from_secs_f64(5.5);
        assert!((compressed.joules() - 486.5).abs() < 1e-9);
        assert!(compressed > uncompressed);
    }

    #[test]
    #[should_panic(expected = "invalid power")]
    fn negative_watts_panics() {
        let _ = Watts::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid energy")]
    fn nan_joules_panics() {
        let _ = Joules::new(f64::NAN);
    }

    #[test]
    fn joules_kwh() {
        assert!((Joules::new(3_600_000.0).as_kwh() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn avg_power() {
        let p = Joules::new(100.0).avg_power_over(SimDuration::from_secs(4));
        assert!((p.get() - 25.0).abs() < 1e-12);
        assert_eq!(
            Joules::new(100.0).avg_power_over(SimDuration::ZERO),
            Watts::ZERO
        );
    }

    #[test]
    fn bytes_rates_and_display() {
        let b = Bytes::gib(6);
        let t = b.time_at_rate(600.0 * 1024.0 * 1024.0 * 1024.0 / 1024.0 / 1024.0 / 1024.0 * 1e9);
        // 6 GiB at ~6.44e9 B/s ≈ 1 s — sanity only; exact below.
        assert!(t.as_secs_f64() > 0.0);
        let exact = Bytes::new(1000).time_at_rate(500.0);
        assert_eq!(exact, SimDuration::from_secs(2));
        assert_eq!(Bytes::new(0).time_at_rate(0.0), SimDuration::MAX);
        assert_eq!(format!("{}", Bytes::mib(3)), "3.0MiB");
    }

    #[test]
    fn cycles_at_frequency() {
        let t = Cycles::new(2_000_000_000).time_at(Hertz::ghz(2.0));
        assert_eq!(t, SimDuration::from_secs(1));
        assert_eq!(Cycles::new(1).time_at(Hertz::new(0.0)), SimDuration::MAX);
    }

    #[test]
    fn ee_two_formulations_agree() {
        // EE = Work/Energy = Perf/Power for fixed work over fixed time.
        let work = 1000.0;
        let time = SimDuration::from_secs(20);
        let power = Watts::new(250.0);
        let energy = power * time;
        let ee1 = EnergyEfficiency::from_work_energy(work, energy);
        let ee2 = EnergyEfficiency::from_perf_power(work / time.as_secs_f64(), power);
        assert!((ee1.work_per_joule() - ee2.work_per_joule()).abs() < 1e-12);
    }

    #[test]
    fn ee_gain() {
        let base = EnergyEfficiency::from_work_energy(100.0, Joules::new(100.0));
        let better = EnergyEfficiency::from_work_energy(114.0, Joules::new(100.0));
        assert!((better.gain_over(base) - 0.14).abs() < 1e-12);
    }

    #[test]
    fn zero_energy_zero_power_ee() {
        assert_eq!(
            EnergyEfficiency::from_work_energy(5.0, Joules::ZERO).work_per_joule(),
            0.0
        );
        assert_eq!(
            EnergyEfficiency::from_perf_power(5.0, Watts::ZERO).work_per_joule(),
            0.0
        );
    }

    #[test]
    fn duration_mul_f64() {
        let d = SimDuration::from_secs(10).mul_f64(0.5);
        assert_eq!(d, SimDuration::from_secs(5));
        assert_eq!(SimDuration::from_secs(1).mul_f64(-2.0), SimDuration::ZERO);
    }
}
