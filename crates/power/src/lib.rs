//! # grail-power — power and energy models
//!
//! The substrate every other GRAIL crate builds on: dimensioned units,
//! power-state machines with transition costs, per-component power models
//! calibrated to the hardware classes of Harizopoulos et al. (CIDR 2009),
//! an exact interval-based **energy ledger**, energy-proportionality
//! metrics in the sense of Barroso & Hölzle, and a DVFS model.
//!
//! ## Design rules
//!
//! * **No raw `f64` power math across module boundaries.** [`units`]
//!   defines newtypes ([`units::Watts`], [`units::Joules`],
//!   [`units::SimDuration`], …) and implements only dimensionally sound
//!   arithmetic (`Watts * SimDuration = Joules`, `Joules / SimDuration =
//!   Watts`, …).
//! * **Closed-form integration.** Components report *intervals* spent in a
//!   power state; the [`ledger::EnergyLedger`] integrates `P·Δt` exactly.
//!   There is no sampling and no wall-clock dependence, so energy results
//!   are deterministic and unit-testable to float epsilon.
//! * **Transitions are first-class.** Real devices pay latency *and*
//!   energy to change power states (disk spin-up being the canonical
//!   example, Sec. 4.2 of the paper); [`state::PowerStateMachine`] refuses
//!   undeclared transitions and charges declared ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod components;
pub mod dvfs;
pub mod error;
pub mod ledger;
pub mod proportionality;
pub mod state;
pub mod tco;
pub mod units;

pub use error::PowerError;
pub use ledger::{ComponentId, ComponentKind, EnergyLedger, LedgerOp};
pub use state::{PowerState, PowerStateId, PowerStateMachine, Transition};
pub use units::{
    Bytes, Cycles, EnergyEfficiency, Hertz, JouleSeconds, Joules, SimDuration, SimInstant, Watts,
};
