//! Energy-proportionality models and metrics (Barroso & Hölzle, cited by
//! the paper as \[BH07\]).
//!
//! A server's power-vs-utilization curve determines whether its energy
//! efficiency is constant across load (ideal proportionality) or collapses
//! at the low utilizations where real servers spend most of their lives
//! (the 10–50% band \[BH07\] observed). [`PowerCurve`] models the curve;
//! the metrics here quantify how far a machine is from proportional.

use crate::units::{EnergyEfficiency, Watts};
use serde::{Deserialize, Serialize};

/// Shape of a power-vs-utilization curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CurveShape {
    /// `P(u) = idle + (peak - idle) · u` — the classic server: a large
    /// constant floor plus a modest dynamic range.
    Linear,
    /// `P(u) = peak · u` — the energy-proportional ideal: "no power when
    /// not used and power only in proportion to delivered performance".
    Ideal,
    /// `P(u) = idle + (peak - idle) · u^e` — sub-linear (`e < 1`, power
    /// rises fast then flattens, the worst case) or super-linear
    /// (`e > 1`, dominated by a near-peak knee).
    Power {
        /// The exponent `e`.
        exponent: f64,
    },
}

/// A component's or server's power as a function of utilization in
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCurve {
    /// Power at zero utilization.
    pub idle: Watts,
    /// Power at full utilization.
    pub peak: Watts,
    /// Curve shape between the endpoints.
    pub shape: CurveShape,
}

impl PowerCurve {
    /// A linear curve between `idle` and `peak`.
    pub fn linear(idle: Watts, peak: Watts) -> Self {
        assert!(idle.get() <= peak.get(), "idle power above peak");
        PowerCurve {
            idle,
            peak,
            shape: CurveShape::Linear,
        }
    }

    /// The energy-proportional ideal peaking at `peak`.
    pub fn ideal(peak: Watts) -> Self {
        PowerCurve {
            idle: Watts::ZERO,
            peak,
            shape: CurveShape::Ideal,
        }
    }

    /// A curve typical of the TPC-C/SPECpower-era servers the paper cites
    /// (\[PN08\], \[Riv08\]): "little power variance from no load to peak
    /// use" — idle is 75% of peak.
    pub fn classic_server(peak: Watts) -> Self {
        PowerCurve::linear(peak * 0.75, peak)
    }

    /// Power at utilization `u` (clamped to `[0, 1]`).
    pub fn power_at(&self, u: f64) -> Watts {
        let u = u.clamp(0.0, 1.0);
        let span = self.peak.get() - self.idle.get();
        let w = match self.shape {
            CurveShape::Linear => self.idle.get() + span * u,
            CurveShape::Ideal => self.peak.get() * u,
            CurveShape::Power { exponent } => self.idle.get() + span * u.powf(exponent.max(0.0)),
        };
        Watts::new(w.max(0.0))
    }

    /// Energy efficiency at utilization `u`, with performance proportional
    /// to utilization and `peak_perf` work/s at `u = 1`.
    pub fn efficiency_at(&self, u: f64, peak_perf: f64) -> EnergyEfficiency {
        let u = u.clamp(0.0, 1.0);
        EnergyEfficiency::from_perf_power(peak_perf * u, self.power_at(u))
    }

    /// Dynamic power range `(peak - idle) / peak` in `[0, 1]`; ~1 for
    /// proportional hardware, near 0 for the rigid servers of Sec. 2.4.
    pub fn dynamic_range(&self) -> f64 {
        if self.peak.get() <= 0.0 {
            0.0
        } else {
            (self.peak.get() - self.idle.get()) / self.peak.get()
        }
    }

    /// Energy-proportionality index in `[0, 1]`: 1 minus the mean excess
    /// power over the ideal curve, normalized by peak. 1.0 means ideal
    /// proportionality; a classic 75%-idle server scores ~0.25 over a
    /// uniform utilization distribution.
    pub fn proportionality_index(&self) -> f64 {
        const STEPS: usize = 1000;
        let mut excess = 0.0;
        for i in 0..=STEPS {
            let u = i as f64 / STEPS as f64;
            let actual = self.power_at(u).get();
            let ideal = self.peak.get() * u;
            excess += (actual - ideal).max(0.0);
        }
        let mean_excess = excess / (STEPS + 1) as f64;
        if self.peak.get() <= 0.0 {
            return 0.0;
        }
        (1.0 - mean_excess / self.peak.get()).clamp(0.0, 1.0)
    }

    /// Sample `(utilization, power, efficiency)` at `n + 1` evenly spaced
    /// utilizations — the series behind the \[BH07\]-style figure.
    pub fn sample(&self, n: usize, peak_perf: f64) -> Vec<ProportionalitySample> {
        (0..=n)
            .map(|i| {
                let u = i as f64 / n.max(1) as f64;
                ProportionalitySample {
                    utilization: u,
                    power: self.power_at(u),
                    efficiency: self.efficiency_at(u, peak_perf),
                }
            })
            .collect()
    }
}

/// One sampled point of a proportionality curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProportionalitySample {
    /// Utilization in `[0, 1]`.
    pub utilization: f64,
    /// Power drawn at this utilization.
    pub power: Watts,
    /// Energy efficiency at this utilization.
    pub efficiency: EnergyEfficiency,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_curve_constant_efficiency() {
        let c = PowerCurve::ideal(Watts::new(400.0));
        let e50 = c.efficiency_at(0.5, 1000.0).work_per_joule();
        let e100 = c.efficiency_at(1.0, 1000.0).work_per_joule();
        assert!((e50 - e100).abs() < 1e-9, "ideal EE must be load-invariant");
        assert!((c.dynamic_range() - 1.0).abs() < 1e-12);
        assert!(c.proportionality_index() > 0.999);
    }

    #[test]
    fn classic_server_efficiency_collapses_at_low_load() {
        let c = PowerCurve::classic_server(Watts::new(400.0));
        let e10 = c.efficiency_at(0.1, 1000.0).work_per_joule();
        let e100 = c.efficiency_at(1.0, 1000.0).work_per_joule();
        // At 10% load a 75%-idle server is far less efficient than at peak.
        assert!(e10 < 0.35 * e100, "e10={e10} e100={e100}");
        assert!((c.dynamic_range() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn linear_power_values() {
        let c = PowerCurve::linear(Watts::new(100.0), Watts::new(200.0));
        assert!((c.power_at(0.0).get() - 100.0).abs() < 1e-12);
        assert!((c.power_at(0.5).get() - 150.0).abs() < 1e-12);
        assert!((c.power_at(1.0).get() - 200.0).abs() < 1e-12);
        // Clamped outside [0,1].
        assert!((c.power_at(2.0).get() - 200.0).abs() < 1e-12);
        assert!((c.power_at(-1.0).get() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn sublinear_curve_is_worse_than_linear() {
        let lin = PowerCurve::linear(Watts::new(100.0), Watts::new(200.0));
        let sub = PowerCurve {
            idle: Watts::new(100.0),
            peak: Watts::new(200.0),
            shape: CurveShape::Power { exponent: 0.5 },
        };
        assert!(sub.power_at(0.25).get() > lin.power_at(0.25).get());
        assert!(sub.proportionality_index() < lin.proportionality_index());
    }

    #[test]
    fn proportionality_index_of_classic_server() {
        let c = PowerCurve::classic_server(Watts::new(400.0));
        // Mean excess over ideal for linear idle=0.75·peak is
        // 0.75·peak·(1-u) averaged = 0.375·peak ⇒ index 0.625.
        let idx = c.proportionality_index();
        assert!((idx - 0.625).abs() < 0.01, "idx={idx}");
    }

    #[test]
    fn sample_grid() {
        let c = PowerCurve::ideal(Watts::new(100.0));
        let s = c.sample(10, 500.0);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].utilization, 0.0);
        assert_eq!(s[10].utilization, 1.0);
        assert!((s[5].power.get() - 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "idle power above peak")]
    fn linear_requires_idle_below_peak() {
        let _ = PowerCurve::linear(Watts::new(300.0), Watts::new(200.0));
    }
}
