//! Error types for power modeling.

use crate::state::PowerStateId;
use crate::units::SimInstant;
use std::fmt;

/// Errors raised by power-state machines and ledgers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PowerError {
    /// A transition between two states that was never declared.
    UndeclaredTransition {
        /// State the machine was in.
        from: PowerStateId,
        /// State that was requested.
        to: PowerStateId,
    },
    /// A state id that does not exist in the machine.
    UnknownState(PowerStateId),
    /// An operation was requested at a time earlier than the machine's
    /// current position; simulated time is monotone.
    TimeWentBackwards {
        /// Where the machine already is.
        now: SimInstant,
        /// The (earlier) time that was requested.
        requested: SimInstant,
    },
    /// A state change was requested while a transition is still in flight.
    TransitionInFlight {
        /// When the in-flight transition completes.
        busy_until: SimInstant,
        /// The time the new change was requested.
        requested: SimInstant,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::UndeclaredTransition { from, to } => {
                write!(f, "undeclared power-state transition {from:?} -> {to:?}")
            }
            PowerError::UnknownState(id) => write!(f, "unknown power state {id:?}"),
            PowerError::TimeWentBackwards { now, requested } => {
                write!(f, "time went backwards: at {now}, requested {requested}")
            }
            PowerError::TransitionInFlight {
                busy_until,
                requested,
            } => write!(
                f,
                "power-state transition in flight until {busy_until}, requested change at {requested}"
            ),
        }
    }
}

impl std::error::Error for PowerError {}
