//! Dynamic voltage and frequency scaling (DVFS): the one real power knob
//! the paper credits CPUs with (Sec. 2.3/2.4), "a good first step but far
//! from ideal".
//!
//! The model follows the standard CMOS first-order form: dynamic power
//! `P_dyn ∝ C·V²·f`, plus a static (leakage + uncore) floor that does not
//! scale. Because voltage must rise with frequency, halving frequency
//! saves *more* than half the dynamic power — but the static floor keeps
//! burning while work stretches out, which is why "race to idle" can beat
//! "slow and steady" and vice versa depending on the floor.

use crate::units::{Cycles, Hertz, Joules, SimDuration, Watts};
use serde::Serialize;

/// One DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PState {
    /// Name ("P0", "P1", …).
    pub name: &'static str,
    /// Clock frequency at this point.
    pub freq: Hertz,
    /// Core voltage at this point (relative units are fine; only ratios
    /// matter).
    pub voltage: f64,
}

/// A DVFS-capable CPU's power model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DvfsModel {
    /// Operating points, fastest first. Must be non-empty.
    pub pstates: Vec<PState>,
    /// Dynamic power at the *fastest* p-state, used to derive the CMOS
    /// constant.
    pub dynamic_at_p0: Watts,
    /// Static floor (leakage, uncore) paid whenever the CPU is powered,
    /// regardless of p-state.
    pub static_power: Watts,
    /// Power when idle (clock-gated), including the floor.
    pub idle_power: Watts,
}

impl DvfsModel {
    /// A model shaped like the paper-era Opterons: 2.3 GHz P0 down to
    /// 1.15 GHz, ~75 W dynamic at P0, 15 W static floor, 10 W idle.
    pub fn opteron_like() -> Self {
        DvfsModel {
            pstates: vec![
                PState {
                    name: "P0",
                    freq: Hertz::ghz(2.3),
                    voltage: 1.20,
                },
                PState {
                    name: "P1",
                    freq: Hertz::ghz(2.0),
                    voltage: 1.15,
                },
                PState {
                    name: "P2",
                    freq: Hertz::ghz(1.7),
                    voltage: 1.10,
                },
                PState {
                    name: "P3",
                    freq: Hertz::ghz(1.4),
                    voltage: 1.05,
                },
                PState {
                    name: "P4",
                    freq: Hertz::ghz(1.15),
                    voltage: 1.00,
                },
            ],
            dynamic_at_p0: Watts::new(75.0),
            static_power: Watts::new(15.0),
            idle_power: Watts::new(10.0),
        }
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.pstates.len()
    }

    /// True if the model has no operating points (invalid but checkable).
    pub fn is_empty(&self) -> bool {
        self.pstates.is_empty()
    }

    /// Active power at p-state `i`: static floor plus `C·V²·f` dynamic
    /// power scaled from the P0 calibration point.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn active_power(&self, i: usize) -> Watts {
        let p0 = &self.pstates[0];
        let p = &self.pstates[i];
        let scale =
            (p.voltage * p.voltage * p.freq.get()) / (p0.voltage * p0.voltage * p0.freq.get());
        self.static_power + self.dynamic_at_p0 * scale
    }

    /// Time to execute `work` at p-state `i`.
    pub fn exec_time(&self, work: Cycles, i: usize) -> SimDuration {
        work.time_at(self.pstates[i].freq)
    }

    /// Energy to execute `work` at p-state `i` (busy power × busy time;
    /// no idle tail).
    pub fn exec_energy(&self, work: Cycles, i: usize) -> Joules {
        self.active_power(i) * self.exec_time(work, i)
    }

    /// Energy to execute `work` at p-state `i` and then idle until
    /// `deadline` (total window energy). Returns `None` if the work does
    /// not fit in the window at that speed.
    pub fn window_energy(&self, work: Cycles, i: usize, deadline: SimDuration) -> Option<Joules> {
        let busy = self.exec_time(work, i);
        if busy > deadline {
            return None;
        }
        let idle = deadline - busy;
        Some(self.exec_energy(work, i) + self.idle_power * idle)
    }

    /// The p-state minimizing total window energy for `work` within
    /// `deadline` — the "race-to-idle vs slow-and-steady" decision.
    /// Returns `(index, energy)`; `None` if no p-state meets the deadline.
    pub fn best_pstate(&self, work: Cycles, deadline: SimDuration) -> Option<(usize, Joules)> {
        let mut best: Option<(usize, Joules)> = None;
        for i in 0..self.pstates.len() {
            if let Some(e) = self.window_energy(work, i, deadline) {
                match best {
                    Some((_, be)) if be <= e => {}
                    _ => best = Some((i, e)),
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p0_power_is_calibration_point() {
        let m = DvfsModel::opteron_like();
        assert!((m.active_power(0).get() - 90.0).abs() < 1e-9); // 15 + 75
    }

    #[test]
    fn lower_pstates_draw_less_power_but_run_longer() {
        let m = DvfsModel::opteron_like();
        let w = Cycles::new(2_300_000_000); // 1 s at P0
        for i in 1..m.len() {
            assert!(m.active_power(i).get() < m.active_power(i - 1).get());
            assert!(m.exec_time(w, i) > m.exec_time(w, i - 1));
        }
    }

    #[test]
    fn voltage_scaling_saves_energy_per_cycle() {
        // With a zero static floor, busy energy strictly drops at lower
        // voltage-frequency points: fewer Joules per cycle.
        let mut m = DvfsModel::opteron_like();
        m.static_power = Watts::ZERO;
        m.idle_power = Watts::ZERO;
        let w = Cycles::new(10_000_000_000);
        for i in 1..m.len() {
            assert!(
                m.exec_energy(w, i).joules() < m.exec_energy(w, i - 1).joules(),
                "pstate {i} should use less busy energy than {}",
                i - 1
            );
        }
    }

    #[test]
    fn high_static_floor_favors_race_to_idle() {
        // With a huge floor and a "deep idle" that is cheap, finishing
        // fast and idling wins.
        let m = DvfsModel {
            pstates: DvfsModel::opteron_like().pstates,
            dynamic_at_p0: Watts::new(20.0),
            static_power: Watts::new(70.0),
            idle_power: Watts::new(5.0),
        };
        let w = Cycles::new(2_300_000_000); // 1 s at P0
        let deadline = SimDuration::from_secs(4);
        let (best, _) = m.best_pstate(w, deadline).unwrap();
        assert_eq!(best, 0, "race to idle should win with a big static floor");
    }

    #[test]
    fn low_floor_favors_slow_and_steady() {
        let m = DvfsModel {
            pstates: DvfsModel::opteron_like().pstates,
            dynamic_at_p0: Watts::new(75.0),
            static_power: Watts::ZERO,
            idle_power: Watts::ZERO,
        };
        let w = Cycles::new(2_300_000_000);
        let deadline = SimDuration::from_secs(4);
        let (best, _) = m.best_pstate(w, deadline).unwrap();
        assert_eq!(
            best,
            m.len() - 1,
            "with no floor, the slowest p-state that fits wins"
        );
    }

    #[test]
    fn deadline_too_tight_is_none() {
        let m = DvfsModel::opteron_like();
        let w = Cycles::new(23_000_000_000); // 10 s at P0
        assert!(m.best_pstate(w, SimDuration::from_secs(5)).is_none());
        // And window_energy refuses per-pstate too.
        assert!(m.window_energy(w, 0, SimDuration::from_secs(5)).is_none());
    }

    #[test]
    fn window_energy_includes_idle_tail() {
        let m = DvfsModel::opteron_like();
        let w = Cycles::new(2_300_000_000); // 1 s at P0
        let e = m.window_energy(w, 0, SimDuration::from_secs(3)).unwrap();
        let expect = m.exec_energy(w, 0) + m.idle_power * SimDuration::from_secs(2);
        assert!((e.joules() - expect.joules()).abs() < 1e-9);
    }
}
