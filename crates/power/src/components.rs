//! Concrete component power profiles, calibrated to the hardware classes
//! of the paper's two experiments.
//!
//! Each profile is plain data plus a constructor for the matching
//! [`PowerStateMachine`]. Numbers come from the paper where it gives them
//! (90 W CPU, 5 W for three flash drives, ~15 W per 15K SCSI spindle) and
//! from era-typical datasheets elsewhere; every figure is a named field so
//! experiments can recalibrate without touching model code.

use crate::state::{PowerState, PowerStateId, PowerStateMachine, Transition};
use crate::units::{Joules, SimDuration, SimInstant, Watts};
use serde::{Deserialize, Serialize};

/// State ids shared by all disk-like machines built here.
pub mod disk_states {
    use super::PowerStateId;
    /// Seeking/transferring.
    pub const ACTIVE: PowerStateId = PowerStateId(0);
    /// Spinning, no I/O.
    pub const IDLE: PowerStateId = PowerStateId(1);
    /// Spun down.
    pub const STANDBY: PowerStateId = PowerStateId(2);
}

/// State ids for simple active/idle machines (CPU core, SSD, DRAM rank).
pub mod duo_states {
    use super::PowerStateId;
    /// Doing work.
    pub const ACTIVE: PowerStateId = PowerStateId(0);
    /// Not doing work.
    pub const IDLE: PowerStateId = PowerStateId(1);
}

// ---------------------------------------------------------------------------
// Disk
// ---------------------------------------------------------------------------

/// Power profile of one rotating disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskPowerProfile {
    /// Power while seeking/transferring.
    pub active: Watts,
    /// Power while spinning idle.
    pub idle: Watts,
    /// Power while spun down.
    pub standby: Watts,
    /// Spin-down latency.
    pub spin_down_latency: SimDuration,
    /// Spin-down energy.
    pub spin_down_energy: Joules,
    /// Spin-up latency.
    pub spin_up_latency: SimDuration,
    /// Spin-up energy (motor surge).
    pub spin_up_energy: Joules,
}

impl DiskPowerProfile {
    /// A 15K RPM 73 GB SCSI drive of the Fig. 1 era (HP/Seagate class):
    /// the paper's configuration used 36–204 of these. Idle ≈ active for
    /// such drives — the spindle dominates — which is exactly why the
    /// paper treats "each additional disk" as a constant power adder.
    pub fn scsi_15k() -> Self {
        DiskPowerProfile {
            active: Watts::new(15.0),
            idle: Watts::new(12.5),
            standby: Watts::new(2.5),
            spin_down_latency: SimDuration::from_secs(1),
            spin_down_energy: Joules::new(8.0),
            spin_up_latency: SimDuration::from_secs(6),
            spin_up_energy: Joules::new(140.0),
        }
    }

    /// A 7.2K nearline SATA drive: lower power, slower, cheaper to park.
    pub fn nearline_7k2() -> Self {
        DiskPowerProfile {
            active: Watts::new(11.0),
            idle: Watts::new(8.0),
            standby: Watts::new(1.5),
            spin_down_latency: SimDuration::from_secs(1),
            spin_down_energy: Joules::new(6.0),
            spin_up_latency: SimDuration::from_secs(8),
            spin_up_energy: Joules::new(110.0),
        }
    }

    /// Build the three-state machine for one drive, starting spinning
    /// idle.
    pub fn machine(&self, start: SimInstant) -> PowerStateMachine {
        let states = vec![
            PowerState {
                name: "active",
                power: self.active,
            },
            PowerState {
                name: "idle",
                power: self.idle,
            },
            PowerState {
                name: "standby",
                power: self.standby,
            },
        ];
        let z = SimDuration::ZERO;
        let transitions = vec![
            Transition {
                from: disk_states::ACTIVE,
                to: disk_states::IDLE,
                latency: z,
                energy: Joules::ZERO,
            },
            Transition {
                from: disk_states::IDLE,
                to: disk_states::ACTIVE,
                latency: z,
                energy: Joules::ZERO,
            },
            Transition {
                from: disk_states::IDLE,
                to: disk_states::STANDBY,
                latency: self.spin_down_latency,
                energy: self.spin_down_energy,
            },
            Transition {
                from: disk_states::STANDBY,
                to: disk_states::IDLE,
                latency: self.spin_up_latency,
                energy: self.spin_up_energy,
            },
        ];
        PowerStateMachine::new(states, transitions, disk_states::IDLE, start)
    }
}

// ---------------------------------------------------------------------------
// SSD
// ---------------------------------------------------------------------------

/// Power profile of one solid-state drive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdPowerProfile {
    /// Power while transferring.
    pub active: Watts,
    /// Power while idle.
    pub idle: Watts,
}

impl SsdPowerProfile {
    /// One of the three flash drives of Fig. 2: the paper charges the
    /// trio 5 W *for the full query duration*, i.e. ~1.667 W each with
    /// no active/idle distinction.
    pub fn fig2_flash() -> Self {
        SsdPowerProfile {
            active: Watts::new(5.0 / 3.0),
            idle: Watts::new(5.0 / 3.0),
        }
    }

    /// A more modern enterprise SSD with a real active/idle split.
    pub fn enterprise() -> Self {
        SsdPowerProfile {
            active: Watts::new(6.0),
            idle: Watts::new(1.2),
        }
    }

    /// Build the two-state machine for one SSD, starting idle.
    pub fn machine(&self, start: SimInstant) -> PowerStateMachine {
        PowerStateMachine::active_idle(self.active, self.idle, start)
    }
}

// ---------------------------------------------------------------------------
// CPU
// ---------------------------------------------------------------------------

/// Power profile of a CPU socket: a shared uncore floor plus per-core
/// active/idle draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuPowerProfile {
    /// Per-core power while executing.
    pub core_active: Watts,
    /// Per-core power while halted.
    pub core_idle: Watts,
    /// Socket-wide floor (uncore, caches, memory controller).
    pub uncore: Watts,
    /// Cores per socket.
    pub cores: u32,
}

impl CpuPowerProfile {
    /// The Fig. 2 accounting: "the CPU has a power consumption of 90
    /// Watts … assuming that an idle CPU does not consume any power".
    /// One core, 90 W active, 0 W idle, no uncore.
    pub fn fig2_cpu() -> Self {
        CpuPowerProfile {
            core_active: Watts::new(90.0),
            core_idle: Watts::ZERO,
            uncore: Watts::ZERO,
            cores: 1,
        }
    }

    /// A quad-core Opteron socket of the Fig. 1 server (8 of these):
    /// ~95 W TDP ≈ 18 W/core active + 4 W/core idle + 15 W uncore.
    pub fn opteron_socket() -> Self {
        CpuPowerProfile {
            core_active: Watts::new(18.0),
            core_idle: Watts::new(4.0),
            uncore: Watts::new(15.0),
            cores: 4,
        }
    }

    /// Socket power with `busy` of the socket's cores executing.
    ///
    /// # Panics
    /// Panics if `busy` exceeds the core count.
    pub fn socket_power(&self, busy: u32) -> Watts {
        assert!(busy <= self.cores, "busy cores {busy} > {}", self.cores);
        let idle = self.cores - busy;
        self.uncore + self.core_active * busy as f64 + self.core_idle * idle as f64
    }

    /// Build one core's two-state machine, starting idle. The uncore
    /// floor is charged separately (it exists whether or not cores work).
    pub fn core_machine(&self, start: SimInstant) -> PowerStateMachine {
        PowerStateMachine::active_idle(self.core_active, self.core_idle, start)
    }
}

// ---------------------------------------------------------------------------
// DRAM
// ---------------------------------------------------------------------------

/// Power profile of one DRAM rank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramPowerProfile {
    /// Power while the rank is being accessed.
    pub active: Watts,
    /// Power while idle but instantly accessible (precharge standby).
    pub idle: Watts,
    /// Power in self-refresh (contents retained, access requires wake).
    pub self_refresh: Watts,
    /// Latency to leave self-refresh.
    pub wake_latency: SimDuration,
    /// Rank capacity in GiB (for per-GiB reasoning in the buffer manager).
    pub capacity_gib: u32,
}

impl DramPowerProfile {
    /// A DDR2-era 8 GiB rank of the Fig. 1 server's 64 GiB.
    pub fn ddr2_8gib() -> Self {
        DramPowerProfile {
            active: Watts::new(7.0),
            idle: Watts::new(4.0),
            self_refresh: Watts::new(0.8),
            wake_latency: SimDuration::from_micros(10),
            capacity_gib: 8,
        }
    }

    /// Build the rank's three-state machine, starting idle.
    pub fn machine(&self, start: SimInstant) -> PowerStateMachine {
        let states = vec![
            PowerState {
                name: "active",
                power: self.active,
            },
            PowerState {
                name: "idle",
                power: self.idle,
            },
            PowerState {
                name: "self_refresh",
                power: self.self_refresh,
            },
        ];
        let z = SimDuration::ZERO;
        let transitions = vec![
            Transition {
                from: PowerStateId(0),
                to: PowerStateId(1),
                latency: z,
                energy: Joules::ZERO,
            },
            Transition {
                from: PowerStateId(1),
                to: PowerStateId(0),
                latency: z,
                energy: Joules::ZERO,
            },
            Transition {
                from: PowerStateId(1),
                to: PowerStateId(2),
                latency: z,
                energy: Joules::ZERO,
            },
            Transition {
                from: PowerStateId(2),
                to: PowerStateId(1),
                latency: self.wake_latency,
                energy: Joules::ZERO,
            },
        ];
        PowerStateMachine::new(states, transitions, PowerStateId(1), start)
    }

    /// Joules to keep one page of `page_bytes` resident in this rank for
    /// `d` — the "keeping a page in RAM will require energy, proportional
    /// to the time the page is cached" cost of Sec. 4.3.
    pub fn residency_energy(&self, page_bytes: u64, d: SimDuration) -> Joules {
        let bytes = self.capacity_gib as f64 * 1024.0 * 1024.0 * 1024.0;
        let per_byte = self.idle.get() / bytes;
        Joules::new(per_byte * page_bytes as f64 * d.as_secs_f64())
    }
}

// ---------------------------------------------------------------------------
// PSU and base
// ---------------------------------------------------------------------------

/// A power-supply model: wall power exceeds DC power by the conversion
/// loss, and \[PBS+03\]'s cooling tax adds 0.5–1 W per served Watt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsuModel {
    /// Conversion efficiency in (0, 1].
    pub efficiency: f64,
    /// Additional cooling power per Watt delivered (0.5–1.0 in
    /// \[PBS+03\]).
    pub cooling_per_watt: f64,
}

impl PsuModel {
    /// A decent 2008 server supply: 85% efficient, 0.5 W/W cooling.
    pub fn typical_2008() -> Self {
        PsuModel {
            efficiency: 0.85,
            cooling_per_watt: 0.5,
        }
    }

    /// An ideal supply (for experiments that want DC-side numbers only).
    pub fn ideal() -> Self {
        PsuModel {
            efficiency: 1.0,
            cooling_per_watt: 0.0,
        }
    }

    /// Wall power required to deliver `dc` to components.
    pub fn wall_power(&self, dc: Watts) -> Watts {
        assert!(
            self.efficiency > 0.0 && self.efficiency <= 1.0,
            "efficiency out of range"
        );
        Watts::new(dc.get() / self.efficiency)
    }

    /// Wall power plus the data-center cooling tax.
    pub fn facility_power(&self, dc: Watts) -> Watts {
        let wall = self.wall_power(dc);
        wall + wall * self.cooling_per_watt
    }
}

/// A constant base draw (fans, chassis, board) that is on whenever the
/// server is on — the reason classic servers have a tiny dynamic range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BasePowerProfile {
    /// The constant draw.
    pub power: Watts,
}

impl BasePowerProfile {
    /// A fixed base draw of `w` Watts.
    pub fn constant(w: Watts) -> Self {
        BasePowerProfile { power: w }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_machine_wiring() {
        let p = DiskPowerProfile::scsi_15k();
        let mut m = p.machine(SimInstant::EPOCH);
        assert_eq!(m.current(), disk_states::IDLE);
        // idle -> active is instant and free.
        let done = m
            .set_state(
                SimInstant::EPOCH + SimDuration::from_secs(1),
                disk_states::ACTIVE,
            )
            .unwrap();
        assert_eq!(done, SimInstant::EPOCH + SimDuration::from_secs(1));
        // active -> standby is undeclared (must pass through idle).
        assert!(m
            .set_state(
                SimInstant::EPOCH + SimDuration::from_secs(2),
                disk_states::STANDBY
            )
            .is_err());
    }

    #[test]
    fn disk_spin_round_trip_energy() {
        let p = DiskPowerProfile::scsi_15k();
        let mut m = p.machine(SimInstant::EPOCH);
        let t = |s: u64| SimInstant::EPOCH + SimDuration::from_secs(s);
        m.set_state(t(0), disk_states::STANDBY).unwrap(); // 1 s, 8 J
        m.set_state(t(100), disk_states::IDLE).unwrap(); // 6 s, 140 J
        let s = m.finish(t(106)).unwrap();
        // 8 + 140 transition J + 99 s standby at 2.5 W.
        let expect = 8.0 + 140.0 + 99.0 * 2.5;
        assert!((s.total_energy.joules() - expect).abs() < 1e-6);
    }

    #[test]
    fn fig2_flash_draws_five_watts_total() {
        let p = SsdPowerProfile::fig2_flash();
        let total = p.active + p.active + p.active;
        assert!((total.get() - 5.0).abs() < 1e-9);
        // Idle equals active: the paper charges flash for wall time.
        assert_eq!(p.active, p.idle);
    }

    #[test]
    fn fig2_cpu_energy_matches_paper() {
        let p = CpuPowerProfile::fig2_cpu();
        let mut core = p.core_machine(SimInstant::EPOCH);
        core.set_state(SimInstant::EPOCH, duo_states::ACTIVE)
            .unwrap();
        let busy_end = SimInstant::EPOCH + SimDuration::from_secs_f64(3.2);
        core.set_state(busy_end, duo_states::IDLE).unwrap();
        let s = core
            .finish(SimInstant::EPOCH + SimDuration::from_secs(10))
            .unwrap();
        // 90 W × 3.2 s = 288 J, and nothing while idle.
        assert!((s.total_energy.joules() - 288.0).abs() < 1e-9);
    }

    #[test]
    fn socket_power_composition() {
        let p = CpuPowerProfile::opteron_socket();
        assert!((p.socket_power(0).get() - (15.0 + 16.0)).abs() < 1e-9);
        assert!((p.socket_power(4).get() - (15.0 + 72.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "busy cores")]
    fn socket_power_rejects_overcount() {
        let _ = CpuPowerProfile::opteron_socket().socket_power(5);
    }

    #[test]
    fn dram_residency_energy_scales() {
        let p = DramPowerProfile::ddr2_8gib();
        let one_page = p.residency_energy(8192, SimDuration::from_secs(100));
        let two_pages = p.residency_energy(16384, SimDuration::from_secs(100));
        let twice_long = p.residency_energy(8192, SimDuration::from_secs(200));
        assert!((two_pages.joules() - 2.0 * one_page.joules()).abs() < 1e-12);
        assert!((twice_long.joules() - 2.0 * one_page.joules()).abs() < 1e-12);
        // Whole rank for 1 s = idle power.
        let whole = p.residency_energy(8u64 << 30, SimDuration::from_secs(1));
        assert!((whole.joules() - p.idle.get()).abs() < 1e-9);
    }

    #[test]
    fn psu_wall_and_facility() {
        let psu = PsuModel::typical_2008();
        let wall = psu.wall_power(Watts::new(850.0));
        assert!((wall.get() - 1000.0).abs() < 1e-9);
        let fac = psu.facility_power(Watts::new(850.0));
        assert!((fac.get() - 1500.0).abs() < 1e-9);
        assert_eq!(PsuModel::ideal().wall_power(Watts::new(100.0)).get(), 100.0);
    }

    #[test]
    fn dram_machine_self_refresh_wake_has_latency() {
        let p = DramPowerProfile::ddr2_8gib();
        let mut m = p.machine(SimInstant::EPOCH);
        m.set_state(SimInstant::EPOCH, PowerStateId(2)).unwrap();
        let woke = m
            .set_state(
                SimInstant::EPOCH + SimDuration::from_secs(1),
                PowerStateId(1),
            )
            .unwrap();
        assert_eq!(
            woke,
            SimInstant::EPOCH + SimDuration::from_secs(1) + p.wake_latency
        );
    }
}
