//! Total-cost-of-ownership arithmetic (Sec. 5.3 and the Sec. 2.2 cost
//! trends).
//!
//! The paper: management, hardware, and energy are the three TCO
//! pillars; "energy costs are rising and hardware costs are dropping
//! relatively", so designs will eventually "sacrifice hardware cost for
//! improved energy efficiency" — buy more, cooler hardware and
//! parallelize instead of driving hot hardware into its diminishing-
//! returns region. This module prices that argument.

use crate::units::{Joules, Watts};
use serde::Serialize;

/// Seconds in a (365-day) year.
const SECONDS_PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;

/// The economic parameters of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TcoModel {
    /// Electricity price, $/kWh.
    pub usd_per_kwh: f64,
    /// Cooling overhead per delivered Watt (\[PBS+03\]: 0.5–1.0).
    pub cooling_per_watt: f64,
    /// Amortization horizon in years.
    pub lifetime_years: f64,
}

impl TcoModel {
    /// 2008-ish US numbers: $0.10/kWh, 0.5 W/W cooling, 4-year life.
    pub fn circa_2008() -> Self {
        TcoModel {
            usd_per_kwh: 0.10,
            cooling_per_watt: 0.5,
            lifetime_years: 4.0,
        }
    }

    /// Lifetime energy (including cooling) for a constant draw.
    pub fn lifetime_energy(&self, avg_power: Watts) -> Joules {
        let effective = avg_power.get() * (1.0 + self.cooling_per_watt);
        Joules::new(effective * SECONDS_PER_YEAR * self.lifetime_years)
    }

    /// Lifetime energy cost in dollars for a constant draw.
    pub fn lifetime_energy_usd(&self, avg_power: Watts) -> f64 {
        self.lifetime_energy(avg_power).as_kwh() * self.usd_per_kwh
    }

    /// Full evaluation of one deployment option.
    pub fn evaluate(&self, hardware_usd: f64, avg_power: Watts) -> CostBreakdown {
        let energy_usd = self.lifetime_energy_usd(avg_power);
        CostBreakdown {
            hardware_usd,
            energy_usd,
        }
    }

    /// The average power at which lifetime energy cost equals a given
    /// hardware price — the paper's "energy will eventually outstrip
    /// hardware" crossover (\[Bar05\]).
    pub fn breakeven_power(&self, hardware_usd: f64) -> Watts {
        let usd_per_watt_lifetime =
            (1.0 + self.cooling_per_watt) * SECONDS_PER_YEAR * self.lifetime_years / 3_600_000.0
                * self.usd_per_kwh;
        Watts::new(hardware_usd / usd_per_watt_lifetime)
    }
}

/// Dollars over the lifetime, by pillar (management excluded: the paper
/// treats it as orthogonal to the hardware/energy trade).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CostBreakdown {
    /// Hardware acquisition cost.
    pub hardware_usd: f64,
    /// Lifetime electricity + cooling cost.
    pub energy_usd: f64,
}

impl CostBreakdown {
    /// Total dollars.
    pub fn total_usd(&self) -> f64 {
        self.hardware_usd + self.energy_usd
    }

    /// Energy's share of the total.
    pub fn energy_share(&self) -> f64 {
        let t = self.total_usd();
        if t <= 0.0 {
            0.0
        } else {
            self.energy_usd / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kwh_arithmetic() {
        let m = TcoModel {
            usd_per_kwh: 0.10,
            cooling_per_watt: 0.0,
            lifetime_years: 1.0,
        };
        // 1 kW for a year = 8760 kWh = $876.
        let usd = m.lifetime_energy_usd(Watts::new(1000.0));
        assert!((usd - 876.0).abs() < 0.5, "{usd}");
    }

    #[test]
    fn cooling_tax_applies() {
        let base = TcoModel {
            usd_per_kwh: 0.10,
            cooling_per_watt: 0.0,
            lifetime_years: 4.0,
        };
        let cooled = TcoModel {
            cooling_per_watt: 1.0,
            ..base
        };
        let p = Watts::new(500.0);
        assert!((cooled.lifetime_energy_usd(p) - 2.0 * base.lifetime_energy_usd(p)).abs() < 1e-6);
    }

    #[test]
    fn fig1_configs_priced() {
        // 66 disks vs 204 disks at ~$250/spindle: the energy saved by
        // the efficient config over 4 years covers a large slice of the
        // hardware delta — the Sec. 5.3 trade in dollars.
        let m = TcoModel::circa_2008();
        let cfg66 = m.evaluate(66.0 * 250.0, Watts::new(2018.0));
        let cfg204 = m.evaluate(204.0 * 250.0, Watts::new(4161.0));
        assert!(cfg66.total_usd() < cfg204.total_usd());
        // At 2008 prices energy is already ~30% of TCO for the big
        // config; at the trends the paper cites ([Bar05]: prices up,
        // hardware down) it crosses 50% — "energy costs will eventually
        // outstrip the cost of hardware".
        assert!(cfg204.energy_share() > 0.25, "{}", cfg204.energy_share());
        let later = TcoModel {
            usd_per_kwh: 0.20,
            cooling_per_watt: 0.5,
            lifetime_years: 5.0,
        };
        let cfg204_later = later.evaluate(204.0 * 150.0, Watts::new(4161.0));
        assert!(
            cfg204_later.energy_share() > 0.5,
            "{}",
            cfg204_later.energy_share()
        );
    }

    #[test]
    fn breakeven_power_is_consistent() {
        let m = TcoModel::circa_2008();
        let hw = 5000.0;
        let p = m.breakeven_power(hw);
        let energy = m.lifetime_energy_usd(p);
        assert!((energy - hw).abs() / hw < 1e-9, "{energy} vs {hw}");
    }

    #[test]
    fn scale_out_argument() {
        // Paper: "pay for more hardware … and parallelize, keeping the
        // same energy efficiency" beats "waste energy … with diminishing
        // returns". Two ways to reach ≥1.8× the 66-disk throughput:
        // scale-up to 204 disks on one fabric (perf 1.83×, EE −12%) vs
        // two 66-disk nodes (perf 2.0×, EE preserved). Because the
        // scale-up config burns 72 spindles past the fabric knee for
        // sublinear return, scale-out needs *fewer total spindles* for
        // more throughput — it dominates on hardware AND energy, the
        // strongest form of the paper's Sec. 5.3 speculation.
        let m = TcoModel::circa_2008();
        let disk_usd = 250.0;
        let node_base_usd = 8000.0;
        let up = m.evaluate(node_base_usd + 204.0 * disk_usd, Watts::new(4161.0));
        let out = m.evaluate(
            2.0 * (node_base_usd + 66.0 * disk_usd),
            Watts::new(2.0 * 2018.0),
        );
        assert!(out.hardware_usd < up.hardware_usd, "132 spindles beat 204");
        assert!(out.energy_usd < up.energy_usd);
        assert!(out.total_usd() < up.total_usd());
        // The dominance must survive any electricity price (both terms
        // scale the same way) and even a steep chassis premium.
        for price in [0.05, 0.10, 0.30, 1.00] {
            let m2 = TcoModel {
                usd_per_kwh: price,
                ..m
            };
            let up2 = m2.evaluate(node_base_usd + 204.0 * disk_usd, Watts::new(4161.0));
            let out2 = m2.evaluate(
                2.0 * (node_base_usd + 66.0 * disk_usd),
                Watts::new(2.0 * 2018.0),
            );
            assert!(out2.total_usd() < up2.total_usd(), "at {price} $/kWh");
        }
        // Find the chassis price at which scale-up becomes competitive
        // (each extra node must pay a full base): it exists and is far
        // above a 2008 tray's cost.
        let mut base = node_base_usd;
        while m
            .evaluate(2.0 * (base + 66.0 * disk_usd), Watts::new(2.0 * 2018.0))
            .total_usd()
            < m.evaluate(base + 204.0 * disk_usd, Watts::new(4161.0))
                .total_usd()
        {
            base += 1000.0;
            assert!(base < 1.0e6, "crossover must exist");
        }
        assert!(base > 15_000.0, "chassis crossover at {base}");
    }
}
