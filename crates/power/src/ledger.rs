//! The energy ledger: exact, per-component energy accounting.
//!
//! Every simulated component settles its consumed Joules here. The ledger
//! is the software stand-in for the wall-socket power meter of the paper's
//! experiments, but with per-component resolution — which is exactly what
//! the paper laments real meters cannot give ("most of this past work has
//! been application and database agnostic").

use crate::units::{EnergyEfficiency, Joules, SimDuration, SimInstant, Watts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Coarse component category, used for power-breakdown reports (e.g. the
/// paper's ">50% of system power is the disk subsystem" claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// Processor packages/cores.
    Cpu,
    /// Rotating disks.
    Disk,
    /// Solid-state drives.
    Ssd,
    /// Main memory.
    Dram,
    /// Network interfaces.
    Nic,
    /// Chassis, fans, power-supply losses, motherboard — the constant
    /// floor.
    Base,
    /// Failure-handling work: RAID rebuilds, degraded-mode
    /// reconstruction, retried IO, failed spin-ups. Energy here is
    /// *re-attributed* from the physical component that performed the
    /// work (see [`EnergyLedger::transfer`]), so the ledger total still
    /// matches the wall socket.
    Recovery,
    /// Anything else.
    Other,
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentKind::Cpu => "cpu",
            ComponentKind::Disk => "disk",
            ComponentKind::Ssd => "ssd",
            ComponentKind::Dram => "dram",
            ComponentKind::Nic => "nic",
            ComponentKind::Base => "base",
            ComponentKind::Recovery => "recovery",
            ComponentKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// Identity of one physical component instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComponentId {
    /// The component's category.
    pub kind: ComponentKind,
    /// Instance number within the category (disk 0, disk 1, …).
    pub index: u32,
}

impl ComponentId {
    /// A component id.
    pub const fn new(kind: ComponentKind, index: u32) -> Self {
        ComponentId { kind, index }
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.kind, self.index)
    }
}

/// Share of one component category in a breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Category.
    pub kind: ComponentKind,
    /// Energy the category consumed.
    pub energy: Joules,
    /// Fraction of the ledger total in [0, 1].
    pub share: f64,
}

/// One audited ledger movement, recorded when journaling is enabled
/// (see [`EnergyLedger::enable_journal`]). The journal is how the
/// trace layer observes *every* charge and transfer without the ledger
/// taking a dependency on it: the simulator drains the journal into
/// trace events at settlement time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LedgerOp {
    /// `energy` was credited to `component`.
    Charge {
        /// Charged component.
        component: ComponentId,
        /// Amount credited.
        energy: Joules,
    },
    /// `moved` Joules were re-attributed `from → to` (total unchanged).
    Transfer {
        /// Source component.
        from: ComponentId,
        /// Destination component.
        to: ComponentId,
        /// Amount actually moved after clamping.
        moved: Joules,
    },
}

/// Exact per-component energy accounting over a simulation window.
///
/// Iteration order (and therefore report order and serialization) is
/// deterministic: components sort by `(kind, index)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    #[serde(with = "entries_as_pairs")]
    entries: BTreeMap<ComponentId, Joules>,
    total: Joules,
    window_start: Option<SimInstant>,
    window_end: Option<SimInstant>,
    // Not part of the accounting state: excluded from serialization so
    // a journaled ledger round-trips to the same JSON as an untraced
    // one. (It *does* participate in `PartialEq`; determinism tests
    // compare ledgers in matching journal modes.)
    #[serde(skip)]
    journal: Option<Vec<LedgerOp>>,
}

/// JSON object keys must be strings; serialize the component map as a
/// list of `(component, joules)` pairs instead.
mod entries_as_pairs {
    use super::{ComponentId, Joules};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<ComponentId, Joules>,
        s: S,
    ) -> Result<S::Ok, S::Error> {
        let pairs: Vec<(&ComponentId, &Joules)> = map.iter().collect();
        pairs.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> Result<BTreeMap<ComponentId, Joules>, D::Error> {
        let pairs: Vec<(ComponentId, Joules)> = Vec::deserialize(d)?;
        Ok(pairs.into_iter().collect())
    }
}

impl EnergyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Debug-only conservation audit: the wall-socket total must equal
    /// the sum over component entries, up to float accumulation order.
    /// Compiled out of release builds (the entry sum is O(components)).
    #[cfg(debug_assertions)]
    fn assert_conserved(&self, op: &str) {
        let sum: f64 = self.entries.values().map(|e| e.joules()).sum();
        let total = self.total.joules();
        let tol = 1e-9_f64.max(total.abs() * 1e-9);
        debug_assert!(
            (sum - total).abs() <= tol,
            "ledger conservation violated after {op}: components sum to {sum} J but \
             total is {total} J"
        );
    }

    #[cfg(not(debug_assertions))]
    #[inline]
    fn assert_conserved(&self, _op: &str) {}

    /// Start journaling every subsequent [`charge`](Self::charge) and
    /// [`transfer`](Self::transfer) (see [`LedgerOp`]). Idempotent.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Take the recorded journal, turning journaling off. Returns an
    /// empty `Vec` when journaling was never enabled.
    pub fn take_journal(&mut self) -> Vec<LedgerOp> {
        self.journal.take().unwrap_or_default()
    }

    /// Credit `energy` to `component`.
    pub fn charge(&mut self, component: ComponentId, energy: Joules) {
        *self.entries.entry(component).or_insert(Joules::ZERO) += energy;
        self.total += energy;
        if let Some(journal) = &mut self.journal {
            journal.push(LedgerOp::Charge { component, energy });
        }
        self.assert_conserved("charge");
    }

    /// Credit `power × duration` to `component`.
    pub fn charge_interval(&mut self, component: ComponentId, power: Watts, d: SimDuration) {
        self.charge(component, power * d);
    }

    /// Extend the covered time window to include `[start, end]`.
    pub fn cover(&mut self, start: SimInstant, end: SimInstant) {
        self.window_start = Some(match self.window_start {
            Some(s) => s.min(start),
            None => start,
        });
        self.window_end = Some(match self.window_end {
            Some(e) => e.max(end),
            None => end,
        });
    }

    /// Total energy across all components.
    #[inline]
    pub fn total(&self) -> Joules {
        self.total
    }

    /// The covered simulated window, if [`EnergyLedger::cover`] was called.
    pub fn window(&self) -> Option<(SimInstant, SimInstant)> {
        Some((self.window_start?, self.window_end?))
    }

    /// The window's length, or zero if uncovered.
    pub fn elapsed(&self) -> SimDuration {
        match self.window() {
            Some((s, e)) => e.saturating_duration_since(s),
            None => SimDuration::ZERO,
        }
    }

    /// Average total power over the covered window.
    pub fn avg_power(&self) -> Watts {
        self.total.avg_power_over(self.elapsed())
    }

    /// Energy consumed by one component.
    pub fn component(&self, id: ComponentId) -> Joules {
        self.entries.get(&id).copied().unwrap_or(Joules::ZERO)
    }

    /// Energy consumed by all components of `kind`.
    pub fn kind_total(&self, kind: ComponentKind) -> Joules {
        self.entries
            .iter()
            .filter(|(id, _)| id.kind == kind)
            .map(|(_, e)| *e)
            .sum()
    }

    /// Fraction of total energy consumed by `kind` (0 if ledger empty).
    pub fn kind_share(&self, kind: ComponentKind) -> f64 {
        if self.total.joules() <= 0.0 {
            0.0
        } else {
            self.kind_total(kind).joules() / self.total.joules()
        }
    }

    /// Per-category breakdown, sorted by category, with shares.
    pub fn breakdown(&self) -> Vec<BreakdownRow> {
        let mut by_kind: BTreeMap<ComponentKind, Joules> = BTreeMap::new();
        for (id, e) in &self.entries {
            *by_kind.entry(id.kind).or_insert(Joules::ZERO) += *e;
        }
        by_kind
            .into_iter()
            .map(|(kind, energy)| BreakdownRow {
                kind,
                energy,
                share: if self.total.joules() > 0.0 {
                    energy.joules() / self.total.joules()
                } else {
                    0.0
                },
            })
            .collect()
    }

    /// All `(component, energy)` entries in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (ComponentId, Joules)> + '_ {
        self.entries.iter().map(|(id, e)| (*id, *e))
    }

    /// Number of distinct components charged.
    pub fn component_count(&self) -> usize {
        self.entries.len()
    }

    /// Re-attribute up to `energy` from `from` to `to`, clamped to
    /// `from`'s current balance (never drives a component negative).
    /// The ledger total is unchanged — this moves Joules between
    /// categories, it does not create them. Returns the amount moved.
    ///
    /// Used to carve failure-handling work (rebuild IO, retried
    /// requests) out of the physical component that performed it and
    /// into [`ComponentKind::Recovery`].
    pub fn transfer(&mut self, from: ComponentId, to: ComponentId, energy: Joules) -> Joules {
        #[cfg(debug_assertions)]
        let total_before = self.total.joules().to_bits();
        let avail = self.component(from);
        let moved = Joules::new(energy.joules().min(avail.joules()).max(0.0));
        if moved.joules() > 0.0 {
            self.entries.insert(from, avail - moved);
            *self.entries.entry(to).or_insert(Joules::ZERO) += moved;
            if let Some(journal) = &mut self.journal {
                journal.push(LedgerOp::Transfer { from, to, moved });
            }
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.total.joules().to_bits(),
            total_before,
            "transfer must leave the wall-socket total bit-identical"
        );
        self.assert_conserved("transfer");
        moved
    }

    /// Fold another ledger into this one (component-wise sum, union
    /// window).
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (id, e) in other.iter() {
            self.charge(id, e);
        }
        if let Some((s, e)) = other.window() {
            self.cover(s, e);
        }
    }

    /// Energy efficiency for `work` units of work against this ledger's
    /// total energy.
    pub fn efficiency(&self, work: f64) -> EnergyEfficiency {
        EnergyEfficiency::from_work_energy(work, self.total)
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total {} over {} (avg {})",
            self.total,
            self.elapsed(),
            self.avg_power()
        )?;
        for row in self.breakdown() {
            writeln!(
                f,
                "  {:<6} {:>12}  {:>5.1}%",
                row.kind.to_string(),
                row.energy.to_string(),
                row.share * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DISK0: ComponentId = ComponentId::new(ComponentKind::Disk, 0);
    const DISK1: ComponentId = ComponentId::new(ComponentKind::Disk, 1);
    const CPU0: ComponentId = ComponentId::new(ComponentKind::Cpu, 0);

    #[test]
    fn charge_and_totals() {
        let mut l = EnergyLedger::new();
        l.charge(DISK0, Joules::new(10.0));
        l.charge(DISK1, Joules::new(20.0));
        l.charge(CPU0, Joules::new(70.0));
        assert!((l.total().joules() - 100.0).abs() < 1e-12);
        assert!((l.kind_total(ComponentKind::Disk).joules() - 30.0).abs() < 1e-12);
        assert!((l.kind_share(ComponentKind::Disk) - 0.3).abs() < 1e-12);
        assert_eq!(l.component_count(), 3);
        assert_eq!(
            l.component(ComponentId::new(ComponentKind::Nic, 0)),
            Joules::ZERO
        );
    }

    #[test]
    fn charge_interval_is_watts_times_time() {
        let mut l = EnergyLedger::new();
        l.charge_interval(CPU0, Watts::new(90.0), SimDuration::from_secs_f64(3.2));
        assert!((l.total().joules() - 288.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let mut l = EnergyLedger::new();
        l.charge(DISK0, Joules::new(55.0));
        l.charge(CPU0, Joules::new(30.0));
        l.charge(ComponentId::new(ComponentKind::Base, 0), Joules::new(15.0));
        let rows = l.breakdown();
        let sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Deterministic category order: Cpu < Disk < ... (enum order).
        assert_eq!(rows[0].kind, ComponentKind::Cpu);
        assert_eq!(rows[1].kind, ComponentKind::Disk);
    }

    #[test]
    fn window_and_avg_power() {
        let mut l = EnergyLedger::new();
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_secs(10);
        l.cover(t0, t1);
        l.charge(DISK0, Joules::new(50.0));
        assert_eq!(l.elapsed(), SimDuration::from_secs(10));
        assert!((l.avg_power().get() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_and_extends() {
        let mut a = EnergyLedger::new();
        a.charge(DISK0, Joules::new(1.0));
        a.cover(SimInstant::EPOCH, SimInstant::from_nanos(5));
        let mut b = EnergyLedger::new();
        b.charge(DISK0, Joules::new(2.0));
        b.charge(CPU0, Joules::new(3.0));
        b.cover(SimInstant::from_nanos(3), SimInstant::from_nanos(9));
        a.merge(&b);
        assert!((a.component(DISK0).joules() - 3.0).abs() < 1e-12);
        assert!((a.total().joules() - 6.0).abs() < 1e-12);
        assert_eq!(
            a.window(),
            Some((SimInstant::EPOCH, SimInstant::from_nanos(9)))
        );
    }

    #[test]
    fn transfer_moves_without_changing_total() {
        let mut l = EnergyLedger::new();
        l.charge(DISK0, Joules::new(100.0));
        let rec = ComponentId::new(ComponentKind::Recovery, 0);
        let moved = l.transfer(DISK0, rec, Joules::new(30.0));
        assert!((moved.joules() - 30.0).abs() < 1e-12);
        assert!((l.component(DISK0).joules() - 70.0).abs() < 1e-12);
        assert!((l.component(rec).joules() - 30.0).abs() < 1e-12);
        assert!((l.total().joules() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_clamps_to_balance() {
        let mut l = EnergyLedger::new();
        l.charge(DISK0, Joules::new(10.0));
        let rec = ComponentId::new(ComponentKind::Recovery, 0);
        let moved = l.transfer(DISK0, rec, Joules::new(50.0));
        assert!((moved.joules() - 10.0).abs() < 1e-12);
        assert!(l.component(DISK0).joules().abs() < 1e-12);
        // Transfer from an uncharged component moves nothing.
        let moved = l.transfer(CPU0, rec, Joules::new(5.0));
        assert_eq!(moved, Joules::ZERO);
        assert!((l.total().joules() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_is_harmless() {
        let l = EnergyLedger::new();
        assert_eq!(l.total(), Joules::ZERO);
        assert_eq!(l.avg_power(), Watts::ZERO);
        assert_eq!(l.kind_share(ComponentKind::Disk), 0.0);
        assert!(l.breakdown().is_empty());
        assert_eq!(l.window(), None);
    }

    #[test]
    fn journal_records_charges_and_transfers_in_order() {
        let mut l = EnergyLedger::new();
        l.charge(DISK0, Joules::new(5.0)); // before enable: not journaled
        l.enable_journal();
        l.enable_journal(); // idempotent
        l.charge(CPU0, Joules::new(2.0));
        let rec = ComponentId::new(ComponentKind::Recovery, 0);
        l.transfer(DISK0, rec, Joules::new(1.0));
        l.transfer(CPU0, rec, Joules::new(0.0)); // no-op move: not journaled
        let ops = l.take_journal();
        assert_eq!(ops.len(), 2);
        assert_eq!(
            ops[0],
            LedgerOp::Charge {
                component: CPU0,
                energy: Joules::new(2.0)
            }
        );
        assert_eq!(
            ops[1],
            LedgerOp::Transfer {
                from: DISK0,
                to: rec,
                moved: Joules::new(1.0)
            }
        );
        // Journaling off again after take; totals were unaffected.
        assert!(l.take_journal().is_empty());
        assert!((l.total().joules() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_from_ledger() {
        let mut l = EnergyLedger::new();
        l.charge(CPU0, Joules::new(200.0));
        let ee = l.efficiency(100.0);
        assert!((ee.work_per_joule() - 0.5).abs() < 1e-12);
    }
}
