//! Property-based tests for the power substrate's core invariants.

use grail_power::components::DiskPowerProfile;
use grail_power::ledger::{ComponentId, ComponentKind, EnergyLedger};
use grail_power::proportionality::PowerCurve;
use grail_power::units::{EnergyEfficiency, Joules, SimDuration, SimInstant, Watts};
use proptest::prelude::*;

fn small_secs() -> impl Strategy<Value = f64> {
    (0.0f64..100_000.0).prop_map(|s| (s * 1e6).round() / 1e6)
}

proptest! {
    /// Energy integration is additive: charging [a,b] then [b,c] equals
    /// charging [a,c] at the same power.
    #[test]
    fn ledger_interval_additivity(a in small_secs(), d1 in small_secs(), d2 in small_secs(), w in 0.0f64..10_000.0) {
        let _ = a;
        let id = ComponentId::new(ComponentKind::Disk, 0);
        let p = Watts::new(w);
        let mut split = EnergyLedger::new();
        split.charge_interval(id, p, SimDuration::from_secs_f64(d1));
        split.charge_interval(id, p, SimDuration::from_secs_f64(d2));
        let mut whole = EnergyLedger::new();
        whole.charge_interval(
            id,
            p,
            SimDuration::from_secs_f64(d1) + SimDuration::from_secs_f64(d2),
        );
        let a = split.total().joules();
        let b = whole.total().joules();
        prop_assert!((a - b).abs() <= 1e-6 * a.max(b).max(1.0));
    }

    /// The two EE formulations agree for any fixed work/time/power.
    #[test]
    fn ee_formulations_agree(work in 0.0f64..1e9, secs in 1e-6f64..1e6, watts in 1e-6f64..1e6) {
        let t = SimDuration::from_secs_f64(secs);
        let p = Watts::new(watts);
        let e1 = EnergyEfficiency::from_work_energy(work, p * t);
        let e2 = EnergyEfficiency::from_perf_power(work / t.as_secs_f64(), p);
        let (a, b) = (e1.work_per_joule(), e2.work_per_joule());
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0));
    }

    /// Ledger merge is commutative in totals and per-component sums.
    #[test]
    fn ledger_merge_commutes(charges in proptest::collection::vec((0u32..4, 0.0f64..1e6), 0..20)) {
        let mut l1 = EnergyLedger::new();
        let mut l2 = EnergyLedger::new();
        for (i, (idx, j)) in charges.iter().enumerate() {
            let id = ComponentId::new(ComponentKind::Disk, *idx);
            if i % 2 == 0 {
                l1.charge(id, Joules::new(*j));
            } else {
                l2.charge(id, Joules::new(*j));
            }
        }
        let mut ab = l1.clone();
        ab.merge(&l2);
        let mut ba = l2.clone();
        ba.merge(&l1);
        prop_assert!((ab.total().joules() - ba.total().joules()).abs() < 1e-6);
        for idx in 0..4 {
            let id = ComponentId::new(ComponentKind::Disk, idx);
            prop_assert!((ab.component(id).joules() - ba.component(id).joules()).abs() < 1e-6);
        }
    }

    /// Power curves are monotone non-decreasing in utilization.
    #[test]
    fn power_curve_monotone(idle in 0.0f64..500.0, extra in 0.0f64..500.0, u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let c = PowerCurve::linear(Watts::new(idle), Watts::new(idle + extra));
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(c.power_at(lo).get() <= c.power_at(hi).get() + 1e-9);
    }

    /// A state machine's total energy equals the sum of its per-state
    /// energies plus its transition energy, for an arbitrary schedule of
    /// idle/active toggles and occasional standby round trips.
    #[test]
    fn machine_energy_conserved(gaps in proptest::collection::vec(0.01f64..50.0, 1..30)) {
        use grail_power::components::disk_states as ds;
        let profile = DiskPowerProfile::scsi_15k();
        let mut m = profile.machine(SimInstant::EPOCH);
        let mut t = SimInstant::EPOCH;
        let mut next_active = true;
        for (i, g) in gaps.iter().enumerate() {
            t += SimDuration::from_secs_f64(*g);
            if let Some(done) = m.busy_until() {
                if t < done {
                    t = done;
                }
            }
            if i % 5 == 4 {
                // Park and immediately schedule wake after the spin-down.
                if m.current() == ds::IDLE {
                    let done = m.set_state(t, ds::STANDBY).unwrap();
                    t = done + SimDuration::from_secs_f64(*g);
                    let woke = m.set_state(t, ds::IDLE).unwrap();
                    t = woke;
                    continue;
                }
            }
            let target = if next_active { ds::ACTIVE } else { ds::IDLE };
            next_active = !next_active;
            if m.current() != target {
                m.set_state(t, target).unwrap();
            }
        }
        let end = t + SimDuration::from_secs(1);
        let s = m.finish(end).unwrap();
        let sum: f64 = s.per_state.iter().map(|o| o.energy.joules()).sum::<f64>()
            + s.transition_energy.joules();
        let total = s.total_energy.joules();
        prop_assert!((sum - total).abs() <= 1e-6 * total.max(1.0), "sum={sum} total={total}");
        // And time is conserved too.
        let time_sum: f64 = s.per_state.iter().map(|o| o.time.as_secs_f64()).sum::<f64>()
            + s.transition_time.as_secs_f64();
        let span = end.duration_since(SimInstant::EPOCH).as_secs_f64();
        prop_assert!((time_sum - span).abs() <= 1e-6 * span.max(1.0), "time_sum={time_sum} span={span}");
    }

    /// Conservation under arbitrary charge/transfer interleavings: the
    /// wall-socket total always equals the sum over component entries,
    /// and a transfer leaves the total bit-identical. (Debug builds also
    /// check this inside the ledger after every mutation.)
    #[test]
    fn ledger_conserves_under_random_charges_and_transfers(
        ops in proptest::collection::vec((0u8..2, 0u32..4, 0u32..4, 0.0f64..1e6), 1..40)
    ) {
        let mut l = EnergyLedger::new();
        for (op, a, b, j) in ops {
            let from = ComponentId::new(ComponentKind::Disk, a);
            let to = ComponentId::new(ComponentKind::Recovery, b);
            if op == 0 {
                l.charge(from, Joules::new(j));
            } else {
                let before = l.total().joules().to_bits();
                let moved = l.transfer(from, to, Joules::new(j));
                prop_assert_eq!(
                    l.total().joules().to_bits(),
                    before,
                    "transfer changed the total"
                );
                prop_assert!(moved.joules() <= j + 1e-12);
                prop_assert!(l.component(from).joules() >= -1e-12);
            }
            let sum: f64 = l.iter().map(|(_, e)| e.joules()).sum();
            let total = l.total().joules();
            prop_assert!(
                (sum - total).abs() <= 1e-9f64.max(total * 1e-9),
                "sum={} total={}", sum, total
            );
        }
    }

    /// Break-even gap really is break-even: below it parking loses,
    /// sufficiently above it parking wins.
    #[test]
    fn break_even_gap_is_threshold(scale in 1.1f64..10.0) {
        use grail_power::components::disk_states as ds;
        let profile = DiskPowerProfile::scsi_15k();
        let m = profile.machine(SimInstant::EPOCH);
        let g = m.break_even_gap(ds::STANDBY).expect("standby saves power");
        let below = SimDuration::from_secs_f64(g.as_secs_f64() / scale);
        let above = SimDuration::from_secs_f64(g.as_secs_f64() * scale);
        prop_assert!(!m.break_even_worth_it(ds::STANDBY, below));
        prop_assert!(m.break_even_worth_it(ds::STANDBY, above));
    }
}
