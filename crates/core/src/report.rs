//! Energy reports: what the power meter plus stopwatch would have said,
//! with per-component resolution the meter never had.

use grail_power::ledger::{ComponentKind, EnergyLedger};
use grail_power::units::{EnergyEfficiency, Joules, SimDuration, Watts};
use grail_sim::AttributionTable;
use serde::Serialize;

/// The outcome of one measured run.
#[derive(Debug, Clone, Serialize)]
pub struct EnergyReport {
    /// Profile the run executed on.
    pub profile: &'static str,
    /// What ran (free-form label).
    pub label: String,
    /// Simulated elapsed time.
    pub elapsed: SimDuration,
    /// Total energy.
    pub energy: Joules,
    /// Units of work completed (queries, rows, records — caller
    /// defined).
    pub work: f64,
    /// CPU busy time summed over cores.
    pub cpu_busy: SimDuration,
    /// Energy spent on fault recovery: retried work, degraded-mode
    /// reconstruction, rebuilds, spin-up surges lost to faults. Zero
    /// when no fault profile is active.
    pub recovery: Joules,
    /// IO retries performed across the run.
    pub retries: u64,
    /// The full per-component ledger.
    pub ledger: EnergyLedger,
    /// Per-query energy attribution (traced runs only): rows sum to the
    /// ledger's wall-socket total, with a residual row for idle/base
    /// draw no query caused.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub attribution: Option<AttributionTable>,
}

impl EnergyReport {
    /// Average power over the run.
    pub fn avg_power(&self) -> Watts {
        self.energy.avg_power_over(self.elapsed)
    }

    /// Energy efficiency (work per Joule) — the paper's Sec. 2.1 metric.
    pub fn efficiency(&self) -> EnergyEfficiency {
        EnergyEfficiency::from_work_energy(self.work, self.energy)
    }

    /// Performance as work per second.
    pub fn perf(&self) -> f64 {
        let t = self.elapsed.as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            self.work / t
        }
    }

    /// Share of energy consumed by the disk subsystem.
    pub fn disk_share(&self) -> f64 {
        self.ledger.kind_share(ComponentKind::Disk)
    }

    /// Share of energy consumed by CPUs.
    pub fn cpu_share(&self) -> f64 {
        self.ledger.kind_share(ComponentKind::Cpu)
    }

    /// Share of energy spent recovering from faults — the overhead the
    /// wall-socket meter hides inside "useful" work.
    pub fn recovery_share(&self) -> f64 {
        self.ledger.kind_share(ComponentKind::Recovery)
    }

    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{:<24} {:>9.3}s {:>12.1}J {:>9.1}W  EE={:.4e}/J",
            self.label,
            self.elapsed.as_secs_f64(),
            self.energy.joules(),
            self.avg_power().get(),
            self.efficiency().work_per_joule(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grail_power::ledger::ComponentId;
    use grail_power::units::SimInstant;

    fn report() -> EnergyReport {
        let mut ledger = EnergyLedger::new();
        ledger.charge(ComponentId::new(ComponentKind::Disk, 0), Joules::new(60.0));
        ledger.charge(ComponentId::new(ComponentKind::Cpu, 0), Joules::new(40.0));
        ledger.cover(SimInstant::EPOCH, SimInstant::from_secs_f64(10.0));
        EnergyReport {
            profile: "test",
            label: "scan".to_string(),
            elapsed: SimDuration::from_secs(10),
            energy: Joules::new(100.0),
            work: 50.0,
            cpu_busy: SimDuration::from_secs(4),
            recovery: Joules::ZERO,
            retries: 0,
            ledger,
            attribution: None,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.avg_power().get() - 10.0).abs() < 1e-12);
        assert!((r.efficiency().work_per_joule() - 0.5).abs() < 1e-12);
        assert!((r.perf() - 5.0).abs() < 1e-12);
        assert!((r.disk_share() - 0.6).abs() < 1e-12);
        assert!((r.cpu_share() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn recovery_share_reads_the_ledger() {
        let mut r = report();
        assert_eq!(r.recovery_share(), 0.0);
        r.ledger.charge(
            ComponentId::new(ComponentKind::Recovery, 0),
            Joules::new(25.0),
        );
        // 25 of 125 J on the ledger is recovery.
        assert!((r.recovery_share() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn summary_contains_the_numbers() {
        let s = report().summary();
        assert!(s.contains("scan"));
        assert!(s.contains("10.000s"));
        assert!(s.contains("100.0J"));
    }

    #[test]
    fn serializes_to_json() {
        let r = report();
        let j = serde_json::to_string(&r).unwrap();
        assert!(j.contains("\"energy\""));
        assert!(j.contains("\"ledger\""));
    }
}
