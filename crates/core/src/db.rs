//! The [`EnergyAwareDb`] facade: load data, run work, read the meter.

use crate::profile::HardwareProfile;
use crate::report::EnergyReport;
use grail_power::units::{Bytes, SimDuration};
use grail_query::colscan;
use grail_query::cost_charge::CostCharge;
use grail_query::exec::{run_collect, ExecContext, OpTally};
use grail_query::expr::Expr;
use grail_sim::driver::{run_streams, IoDemand, JobResult, JobSpec};
use grail_sim::ids::CpuId;
use grail_sim::sim::Simulation;
use grail_sim::AttributionTable;
use grail_sim::DiskId;
use grail_sim::OperatorShare;
use grail_sim::StorageTarget;
use grail_sim::{FaultConfig, FaultPlan, SimError};
use grail_trace::metrics::{JOULES_BUCKETS, SECONDS_BUCKETS};
use grail_trace::{Category, Recorder, TraceEvent, TraceSink, TraceTime, Tracer, Track};
use grail_workload::mix::{closed_mix, job_from_tallies, scale_tally};
use grail_workload::queries::{QueryTemplate, StoredCatalog};
use grail_workload::tpch::{self, TpchScale, TpchTables, ORDERS_FIG2_PROJECTION};

/// How tables are physically stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionMode {
    /// Columnar, uncompressed.
    Plain,
    /// Columnar, heuristically chosen codecs.
    Auto,
    /// The conservative Fig. 2 codec set (~1.8–2× on ORDERS).
    Fig2,
}

/// Execution policy: the knobs a run is performed under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecPolicy {
    /// Physical storage mode.
    pub compression: CompressionMode,
    /// Per-query degree of parallelism.
    pub dop: u32,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            compression: CompressionMode::Plain,
            dop: 1,
        }
    }
}

/// A projection scan request over ORDERS.
#[derive(Debug, Clone)]
pub struct ScanSpec {
    /// Column indices to project.
    pub projection: Vec<usize>,
    /// Optional predicate.
    pub predicate: Option<Expr>,
}

impl ScanSpec {
    /// The first `k` ORDERS columns (Fig. 2 uses 5 of 7).
    pub fn orders_projection(k: usize) -> Self {
        ScanSpec {
            projection: (0..k.min(7)).collect(),
            predicate: None,
        }
    }

    /// Fig. 2's exact projection.
    pub fn fig2() -> Self {
        ScanSpec {
            projection: ORDERS_FIG2_PROJECTION.to_vec(),
            predicate: None,
        }
    }
}

/// Default event capacity for traced runs: plenty for the small
/// configurations `trace_dump` captures; bigger runs evict oldest
/// events deterministically and report the drop count.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// A metered run plus its flight-recorder capture.
#[derive(Debug)]
pub struct TracedRun {
    /// The metered outcome; `report.attribution` is populated.
    pub report: EnergyReport,
    /// The recorder holding the run's events and metrics, ready for
    /// [`grail_trace::export::to_jsonl`] or
    /// [`grail_trace::export::to_chrome`].
    pub trace: Recorder,
}

/// The logical storage target tables are bound to before a run maps
/// them onto a concrete profile's devices. Any job built against it
/// must pass through [`stripe_job`] before dispatch.
pub const LOGICAL_TARGET: StorageTarget = StorageTarget::Disk(DiskId(u32::MAX));

/// Split every IO demand of `job` evenly across `targets` (column files
/// striped over the drives / the RAID array).
pub fn stripe_job(job: &JobSpec, targets: &[StorageTarget]) -> JobSpec {
    let n = targets.len().max(1) as u64;
    JobSpec {
        arrival: job.arrival,
        phases: job
            .phases
            .iter()
            .map(|p| {
                let mut io = Vec::with_capacity(p.io.len() * targets.len());
                for d in &p.io {
                    let per = d.bytes.get() / n;
                    let rem = d.bytes.get() - per * n;
                    for (i, t) in targets.iter().enumerate() {
                        let share = if i == 0 { per + rem } else { per };
                        if share > 0 {
                            io.push(IoDemand {
                                target: *t,
                                bytes: Bytes::new(share),
                                access: d.access,
                                op: d.op,
                            });
                        }
                    }
                }
                grail_sim::driver::PhaseSpec {
                    cpu: p.cpu,
                    dop: p.dop,
                    io,
                    overlap: p.overlap,
                }
            })
            .collect(),
    }
}

/// The energy-aware database: a hardware profile plus loaded tables.
#[derive(Debug)]
pub struct EnergyAwareDb {
    profile: HardwareProfile,
    tables: Option<TpchTables>,
    charge: CostCharge,
    fault: Option<(FaultConfig, u64)>,
    scrape_interval: Option<u64>,
}

impl EnergyAwareDb {
    /// A database on `profile` with nothing loaded.
    pub fn new(profile: HardwareProfile) -> Self {
        EnergyAwareDb {
            profile,
            tables: None,
            charge: CostCharge::default_calibrated(),
            fault: None,
            scrape_interval: None,
        }
    }

    /// Scrape the metrics registry into snapshots every `nanos` of
    /// simulated time during traced runs. The recorder's snapshot
    /// series then shows how counters, latencies and rates evolved
    /// over the run rather than only the end-of-run totals.
    pub fn set_scrape_interval(&mut self, nanos: u64) {
        self.scrape_interval = Some(nanos);
    }

    /// The active profile.
    pub fn profile(&self) -> &HardwareProfile {
        &self.profile
    }

    /// Inject faults into every subsequent run: each run builds a fresh
    /// [`FaultPlan`] from `cfg` and `seed`, so repeated runs are
    /// bit-identical, and retry/recovery costs land on the report's
    /// `recovery` and `retries` fields. A zero-rate config is
    /// indistinguishable from no profile at all.
    pub fn set_fault_profile(&mut self, cfg: FaultConfig, seed: u64) {
        self.fault = Some((cfg, seed));
    }

    /// Remove the fault profile; runs are fault-free again.
    pub fn clear_fault_profile(&mut self) {
        self.fault = None;
    }

    /// The active fault profile, if any.
    pub fn fault_profile(&self) -> Option<(FaultConfig, u64)> {
        self.fault
    }

    /// Install the flight recorder on `sim` (honoring the configured
    /// scrape interval) and enable per-query energy attribution.
    fn install_tracer(&self, sim: &mut Simulation) {
        let mut rec = Recorder::new(DEFAULT_TRACE_CAPACITY);
        if let Some(iv) = self.scrape_interval {
            rec = rec.with_scrape_interval(iv);
        }
        sim.set_tracer(Tracer::on(rec));
        sim.enable_attribution();
    }

    /// Build the profile's simulation, arming the fault plan when one is
    /// configured.
    fn build_sim(&self) -> (Simulation, CpuId, Vec<StorageTarget>) {
        let (mut sim, cpu, targets) = self.profile.build();
        if let Some((cfg, seed)) = self.fault {
            sim.set_fault_plan(FaultPlan::new(cfg, seed));
        }
        (sim, cpu, targets)
    }

    /// Generate and load TPC-H-like tables at `scale` (seed 42).
    pub fn load_tpch(&mut self, scale: TpchScale) {
        self.load_tpch_seeded(scale, 42);
    }

    /// Generate and load with an explicit seed.
    pub fn load_tpch_seeded(&mut self, scale: TpchScale, seed: u64) {
        self.tables = Some(tpch::generate(scale, seed));
    }

    /// The loaded tables, or [`SimError::NotLoaded`].
    pub fn try_tables(&self) -> Result<&TpchTables, SimError> {
        self.tables.as_ref().ok_or(SimError::NotLoaded)
    }

    /// The loaded tables.
    ///
    /// # Panics
    /// Panics if nothing is loaded; [`Self::try_tables`] is the fallible
    /// form.
    pub fn tables(&self) -> &TpchTables {
        // grail-lint: allow(error-hygiene, documented panicking facade over try_tables)
        self.try_tables().expect("load_tpch first")
    }

    fn try_catalog(&self, mode: CompressionMode) -> Result<StoredCatalog, SimError> {
        let tables = self.try_tables()?;
        Ok(match mode {
            CompressionMode::Plain => StoredCatalog::plain(tables, LOGICAL_TARGET),
            CompressionMode::Auto => StoredCatalog::compressed(tables, LOGICAL_TARGET),
            CompressionMode::Fig2 => StoredCatalog::fig2(tables, LOGICAL_TARGET),
        })
    }

    /// Run a projection scan of ORDERS (the Fig. 2 experiment) and
    /// return the metered outcome. `scale_to` stretches the measured
    /// demands to a larger ORDERS row count without materializing it
    /// (1.0 = run at the loaded size).
    ///
    /// # Panics
    /// Panics when nothing is loaded, the projection is invalid, or the
    /// fault profile exhausts retries; [`Self::try_run_scan`] is the
    /// fallible form.
    pub fn run_scan(&self, spec: &ScanSpec, policy: ExecPolicy, scale_to: f64) -> EnergyReport {
        self.try_run_scan(spec, policy, scale_to)
            .expect("scan runs on a loaded db") // grail-lint: allow(error-hygiene, documented panicking facade over try_run_scan)
    }

    /// Fallible form of [`Self::run_scan`].
    pub fn try_run_scan(
        &self,
        spec: &ScanSpec,
        policy: ExecPolicy,
        scale_to: f64,
    ) -> Result<EnergyReport, SimError> {
        self.scan_inner(spec, policy, scale_to, false)
            .map(|(report, _)| report)
    }

    /// [`Self::try_run_scan`] with the flight recorder on: every device
    /// reservation, power transition, and ledger movement becomes a
    /// trace event, and the report carries a per-query attribution
    /// table. Tracing observes the same simulation — the physics (time,
    /// Joules) are identical to the untraced run.
    pub fn try_run_scan_traced(
        &self,
        spec: &ScanSpec,
        policy: ExecPolicy,
        scale_to: f64,
    ) -> Result<TracedRun, SimError> {
        let (report, trace) = self.scan_inner(spec, policy, scale_to, true)?;
        let trace = trace.expect("traced run carries a recorder"); // grail-lint: allow(error-hygiene, scan_inner(traced=true) always installs a tracer)
        Ok(TracedRun { report, trace })
    }

    fn scan_inner(
        &self,
        spec: &ScanSpec,
        policy: ExecPolicy,
        scale_to: f64,
        traced: bool,
    ) -> Result<(EnergyReport, Option<Recorder>), SimError> {
        let catalog = self.try_catalog(policy.compression)?;
        let run = colscan::scan_job(
            catalog.orders.clone(),
            &spec.projection,
            spec.predicate.clone(),
            self.charge,
            policy.dop,
        )
        .map_err(|e| SimError::Plan {
            reason: e.to_string(),
        })?;
        let (mut sim, cpu, targets) = self.build_sim();
        if traced {
            self.install_tracer(&mut sim);
        }
        let mut job = run.job.clone();
        if (scale_to - 1.0).abs() > 1e-9 {
            for p in &mut job.phases {
                p.cpu =
                    grail_power::units::Cycles::new((p.cpu.get() as f64 * scale_to).round() as u64);
                for d in &mut p.io {
                    d.bytes = Bytes::new((d.bytes.get() as f64 * scale_to).round() as u64);
                }
            }
        }
        let job = stripe_job(&job, &targets);
        let out = run_streams(&mut sim, cpu, &[vec![job]])?;
        record_query_metrics(sim.tracer_mut(), &out.results);
        let cpu_busy = sim.cpu(cpu)?.stats().busy;
        let report = sim.finish(out.makespan);
        let energy = report.total_energy();
        let recovery = report.recovery_energy();
        let mut attribution = report.attribution;
        let mut trace = report.trace;
        // The single scan job is every query; template 0 describes it.
        attach_operator_detail(trace.as_mut(), attribution.as_mut(), &[run.ops], |_, _| 0);
        feed_query_energy(trace.as_mut(), attribution.as_ref());
        Ok((
            EnergyReport {
                profile: self.profile.name,
                label: format!(
                    "scan[{} cols, {:?}]",
                    spec.projection.len(),
                    policy.compression
                ),
                elapsed: report.elapsed,
                energy,
                work: (run.rows as f64 * scale_to).max(0.0),
                cpu_busy,
                recovery,
                retries: out.total_retries,
                ledger: report.ledger,
                attribution,
            },
            trace,
        ))
    }

    /// Measure one template's real demands at the loaded scale,
    /// stretched by `scale_to`, as a dispatchable job plus its result
    /// row count and per-operator tallies.
    fn template_job(
        &self,
        template: QueryTemplate,
        catalog: &StoredCatalog,
        policy: ExecPolicy,
        scale_to: f64,
    ) -> Result<(JobSpec, usize, Vec<OpTally>), SimError> {
        let mut plan = template.plan(catalog);
        let mut ctx = ExecContext::new(self.charge);
        let out = run_collect(plan.as_mut(), &mut ctx).map_err(|e| SimError::Plan {
            reason: e.to_string(),
        })?;
        let rows = out.iter().map(|b| b.len()).sum();
        let ops = ctx.take_op_tallies();
        let tallies: Vec<_> = ctx
            .finish()
            .iter()
            .map(|tally| scale_tally(tally, scale_to))
            .collect();
        Ok((job_from_tallies(&tallies, policy.dop), rows, ops))
    }

    /// Run one query template by itself and meter it.
    ///
    /// # Panics
    /// Panics when nothing is loaded or the template fails to execute;
    /// [`Self::try_run_template`] is the fallible form.
    pub fn run_template(
        &self,
        template: QueryTemplate,
        policy: ExecPolicy,
        scale_to: f64,
    ) -> EnergyReport {
        self.try_run_template(template, policy, scale_to)
            .expect("template runs on a loaded db") // grail-lint: allow(error-hygiene, documented panicking facade over try_run_template)
    }

    /// Fallible form of [`Self::run_template`].
    pub fn try_run_template(
        &self,
        template: QueryTemplate,
        policy: ExecPolicy,
        scale_to: f64,
    ) -> Result<EnergyReport, SimError> {
        let catalog = self.try_catalog(policy.compression)?;
        let (job, rows, _ops) = self.template_job(template, &catalog, policy, scale_to)?;
        let (mut sim, cpu, targets) = self.build_sim();
        let job = stripe_job(&job, &targets);
        let out = run_streams(&mut sim, cpu, &[vec![job]])?;
        let cpu_busy = sim.cpu(cpu)?.stats().busy;
        let report = sim.finish(out.makespan);
        Ok(EnergyReport {
            profile: self.profile.name,
            label: template.name().to_string(),
            elapsed: report.elapsed,
            energy: report.total_energy(),
            work: rows as f64,
            cpu_busy,
            recovery: report.recovery_energy(),
            retries: out.total_retries,
            ledger: report.ledger,
            attribution: None,
        })
    }

    /// Run the Fig. 1 throughput test: `streams` concurrent clients,
    /// each issuing `queries_per_stream` queries round-robin over the
    /// four templates, with per-query demands measured at the loaded
    /// scale and stretched by `scale_to`.
    ///
    /// # Panics
    /// Panics when nothing is loaded or a template fails to execute;
    /// [`Self::try_run_throughput_test`] is the fallible form.
    pub fn run_throughput_test(
        &self,
        streams: usize,
        queries_per_stream: usize,
        policy: ExecPolicy,
        scale_to: f64,
    ) -> EnergyReport {
        self.try_run_throughput_test(streams, queries_per_stream, policy, scale_to)
            .expect("throughput test runs on a loaded db") // grail-lint: allow(error-hygiene, documented panicking facade over try_run_throughput_test)
    }

    /// Fallible form of [`Self::run_throughput_test`].
    pub fn try_run_throughput_test(
        &self,
        streams: usize,
        queries_per_stream: usize,
        policy: ExecPolicy,
        scale_to: f64,
    ) -> Result<EnergyReport, SimError> {
        self.throughput_inner(streams, queries_per_stream, policy, scale_to, false)
            .map(|(report, _)| report)
    }

    /// [`Self::try_run_throughput_test`] with the flight recorder on.
    /// The report gains a per-query attribution table (rows sum to the
    /// ledger total) with per-operator demand detail, and the recorder
    /// holds the full event/metric capture.
    pub fn try_run_throughput_test_traced(
        &self,
        streams: usize,
        queries_per_stream: usize,
        policy: ExecPolicy,
        scale_to: f64,
    ) -> Result<TracedRun, SimError> {
        let (report, trace) =
            self.throughput_inner(streams, queries_per_stream, policy, scale_to, true)?;
        let trace = trace.expect("traced run carries a recorder"); // grail-lint: allow(error-hygiene, throughput_inner(traced=true) always installs a tracer)
        Ok(TracedRun { report, trace })
    }

    fn throughput_inner(
        &self,
        streams: usize,
        queries_per_stream: usize,
        policy: ExecPolicy,
        scale_to: f64,
        traced: bool,
    ) -> Result<(EnergyReport, Option<Recorder>), SimError> {
        let catalog = self.try_catalog(policy.compression)?;
        // Measure each template's real demands once.
        let mut template_ops: Vec<Vec<OpTally>> = Vec::with_capacity(QueryTemplate::MIX.len());
        let prototypes: Vec<JobSpec> = QueryTemplate::MIX
            .iter()
            .map(|t| {
                let (job, _rows, ops) = self.template_job(*t, &catalog, policy, scale_to)?;
                template_ops.push(ops);
                Ok(job)
            })
            .collect::<Result<_, SimError>>()?;
        let (mut sim, cpu, targets) = self.build_sim();
        if traced {
            self.install_tracer(&mut sim);
        }
        let striped: Vec<JobSpec> = prototypes.iter().map(|j| stripe_job(j, &targets)).collect();
        let mix = closed_mix(&striped, streams, queries_per_stream);
        let out = run_streams(&mut sim, cpu, &mix)?;
        record_query_metrics(sim.tracer_mut(), &out.results);
        let cpu_busy = sim.cpu(cpu)?.stats().busy;
        let report = sim.finish(out.makespan);
        let energy = report.total_energy();
        let recovery = report.recovery_energy();
        let mut attribution = report.attribution;
        let mut trace = report.trace;
        // closed_mix deals template (s + q) % MIX.len() to stream s's
        // q-th query; use the same formula to attach operator detail.
        let n = prototypes.len();
        attach_operator_detail(
            trace.as_mut(),
            attribution.as_mut(),
            &template_ops,
            |s, q| (s as usize + q as usize) % n,
        );
        feed_query_energy(trace.as_mut(), attribution.as_ref());
        Ok((
            EnergyReport {
                profile: self.profile.name,
                label: format!("throughput[{streams}x{queries_per_stream}]"),
                elapsed: report.elapsed,
                energy,
                work: out.results.len() as f64,
                cpu_busy,
                recovery,
                retries: out.total_retries,
                ledger: report.ledger,
                attribution,
            },
            trace,
        ))
    }

    /// Ask the knob advisor (Sec. 4.1) for the best configuration of
    /// this machine for a scan-and-sort workload under `objective`.
    pub fn advise_knobs(
        &self,
        workload: &grail_optimizer::advisor::KnobWorkload,
        objective: grail_optimizer::objective::Objective,
    ) -> grail_optimizer::advisor::Advice {
        grail_optimizer::advisor::advise(
            &grail_optimizer::knobs::KnobGrid::small(),
            workload,
            self.profile.hardware_desc(),
            &grail_power::dvfs::DvfsModel::opteron_like(),
            objective,
        )
    }

    /// Idle the machine for `d` and meter it (the baseline burn the
    /// paper's Sec. 2.4 calls out: classic servers draw most of their
    /// peak power doing nothing).
    pub fn run_idle(&self, d: SimDuration) -> EnergyReport {
        let (sim, _, _) = self.build_sim();
        let report = sim.finish(grail_power::units::SimInstant::EPOCH + d);
        EnergyReport {
            profile: self.profile.name,
            label: "idle".to_string(),
            elapsed: report.elapsed,
            energy: report.total_energy(),
            work: 0.0,
            cpu_busy: SimDuration::ZERO,
            recovery: report.recovery_energy(),
            retries: 0,
            ledger: report.ledger,
            attribution: None,
        }
    }
}

/// Record per-query completion metrics for every finished job: a query
/// counter, a latency histogram, and a 1-second-windowed completion
/// rate keyed on each query's finish instant. Runs *before*
/// [`Simulation::finish`] so the horizon scrape snapshot includes them.
fn record_query_metrics(tracer: &mut Tracer, results: &[JobResult]) {
    for r in results {
        tracer.count("db.queries", 1);
        tracer.observe(
            "db.query_secs",
            SECONDS_BUCKETS,
            r.end.duration_since(r.start).as_secs_f64(),
        );
        tracer.rate("db.query_rate", 1_000_000_000, r.end.as_nanos(), 1);
    }
}

/// Feed per-query energy from the settled attribution table into the
/// recorder's registry: a Joules histogram over query rows (the
/// residual row has no stream and is skipped) and the mean
/// joules-per-query gauge the regression watchdog guards. Attribution
/// settles only at finish, so these land after the last scrape — they
/// are end-of-run aggregates, not time series.
fn feed_query_energy(trace: Option<&mut Recorder>, attribution: Option<&AttributionTable>) {
    let (Some(rec), Some(table)) = (trace, attribution) else {
        return;
    };
    let mut queries = 0u64;
    let mut total = 0.0;
    for row in table.rows.iter().filter(|r| r.stream.is_some()) {
        rec.metrics_mut()
            .observe("db.query_joules", JOULES_BUCKETS, row.energy.joules());
        queries += 1;
        total += row.energy.joules();
    }
    if queries > 0 {
        rec.metrics_mut()
            .set_gauge("db.joules_per_query", total / queries as f64);
    }
}

/// Attach per-operator demand detail to a traced run's outputs.
///
/// `per_template[k]` holds the operator tallies measured for prototype
/// `k`; `template_of(stream, index)` maps a query back to its template
/// (the same formula the mix builder used). Attribution rows gain
/// [`OperatorShare`] breakdowns, and the recorder gains one
/// [`Category::Query`] span per operator on [`Track::Exec`] in
/// pseudo-time (1 CPU cycle = 1 ns), so Perfetto shows relative operator
/// weight without pretending the executor ran on the simulated clock.
fn attach_operator_detail(
    trace: Option<&mut Recorder>,
    attribution: Option<&mut AttributionTable>,
    per_template: &[Vec<OpTally>],
    template_of: impl Fn(u32, u32) -> usize,
) {
    if let Some(table) = attribution {
        for row in &mut table.rows {
            if let (Some(s), Some(q)) = (row.stream, row.index) {
                let Some(tallies) = per_template.get(template_of(s, q)) else {
                    continue;
                };
                row.operators = tallies
                    .iter()
                    .map(|t| OperatorShare {
                        name: t.name.to_string(),
                        calls: t.calls,
                        cpu_cycles: t.cpu.get(),
                        io_bytes: t.io_bytes.get(),
                    })
                    .collect();
            }
        }
    }
    if let Some(rec) = trace {
        for (k, tallies) in per_template.iter().enumerate() {
            let mut cursor = 0u64;
            for t in tallies {
                let dur = t.cpu.get().max(1);
                rec.record(
                    TraceEvent::span(
                        TraceTime::from_nanos(cursor),
                        dur,
                        Category::Query,
                        t.name,
                        Track::Exec,
                    )
                    .arg("template", k as u64)
                    .arg("calls", t.calls)
                    .arg("cpu_cycles", t.cpu.get())
                    .arg("io_bytes", t.io_bytes.get()),
                );
                cursor += dur;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(profile: HardwareProfile) -> EnergyAwareDb {
        let mut db = EnergyAwareDb::new(profile);
        db.load_tpch(TpchScale::toy());
        db
    }

    #[test]
    fn fig2_shape_compressed_faster_but_hungrier() {
        let db = db(HardwareProfile::flash_scanner());
        // Stretch toy ORDERS (10 K rows) to Fig. 2's ~150 M rows.
        let stretch = 15_000.0;
        let plain = db.run_scan(&ScanSpec::fig2(), ExecPolicy::default(), stretch);
        let packed = db.run_scan(
            &ScanSpec::fig2(),
            ExecPolicy {
                compression: CompressionMode::Fig2,
                dop: 1,
            },
            stretch,
        );
        assert!(
            packed.elapsed < plain.elapsed,
            "compressed is faster: {} vs {}",
            packed.elapsed,
            plain.elapsed
        );
        assert!(
            packed.energy > plain.energy,
            "compressed costs more energy: {} vs {}",
            packed.energy,
            plain.energy
        );
    }

    #[test]
    fn fig2_absolute_band() {
        // At the full stretch the uncompressed scan should land near the
        // paper's 10 s / 338 J and the compressed near 5.5 s / 487 J
        // (shape contract: ±25%).
        let db = db(HardwareProfile::flash_scanner());
        let stretch = 15_000.0;
        let plain = db.run_scan(&ScanSpec::fig2(), ExecPolicy::default(), stretch);
        let t = plain.elapsed.as_secs_f64();
        let e = plain.energy.joules();
        assert!((7.5..12.5).contains(&t), "uncompressed time {t}");
        assert!((250.0..430.0).contains(&e), "uncompressed energy {e}");
        let packed = db.run_scan(
            &ScanSpec::fig2(),
            ExecPolicy {
                compression: CompressionMode::Fig2,
                dop: 1,
            },
            stretch,
        );
        let t2 = packed.elapsed.as_secs_f64();
        let e2 = packed.energy.joules();
        assert!(t2 < t * 0.75, "speedup: {t2} vs {t}");
        assert!(e2 > e * 1.1, "energy up: {e2} vs {e}");
    }

    #[test]
    fn throughput_test_runs_and_counts_queries() {
        let db = db(HardwareProfile::server_dl785(36));
        let r = db.run_throughput_test(4, 2, ExecPolicy::default(), 1.0);
        assert_eq!(r.work, 8.0);
        assert!(r.elapsed > SimDuration::ZERO);
        assert!(r.disk_share() > 0.0);
    }

    #[test]
    fn more_disks_faster_throughput() {
        let mk = |d: usize| {
            let db = db(HardwareProfile::server_dl785(d));
            db.run_throughput_test(8, 2, ExecPolicy::default(), 30.0)
        };
        let slow = mk(36);
        let fast = mk(204);
        assert!(fast.elapsed < slow.elapsed);
        assert!(fast.avg_power().get() > slow.avg_power().get());
    }

    #[test]
    fn run_template_meters_single_queries() {
        let db = db(HardwareProfile::server_dl785(36));
        for t in QueryTemplate::MIX {
            let r = db.run_template(t, ExecPolicy::default(), 100.0);
            assert!(r.work > 0.0, "{} returned rows", t.name());
            assert!(r.elapsed > SimDuration::ZERO);
            assert!(r.energy.joules() > 0.0);
            assert_eq!(r.label, t.name());
        }
        // The scan-heavy template costs more energy than the tiny join
        // at the same stretch.
        let q1 = db.run_template(QueryTemplate::PricingSummary, ExecPolicy::default(), 100.0);
        let q3 = db.run_template(QueryTemplate::SegmentRevenue, ExecPolicy::default(), 100.0);
        assert!(q1.energy.joules() > q3.energy.joules());
    }

    #[test]
    fn advise_knobs_through_the_facade() {
        use grail_optimizer::advisor::KnobWorkload;
        use grail_optimizer::objective::Objective;
        let db = db(HardwareProfile::flash_scanner());
        let w = KnobWorkload::scan_sort_default();
        let t = db.advise_knobs(&w, Objective::MinTime);
        let e = db.advise_knobs(&w, Objective::MinEnergy);
        assert!(e.cost.energy_j <= t.cost.energy_j);
        assert!(t.cost.elapsed_secs <= e.cost.elapsed_secs);
    }

    #[test]
    fn predicate_scans_through_the_facade() {
        use grail_query::expr::Expr;
        let db = db(HardwareProfile::flash_scanner());
        let all = db.run_scan(&ScanSpec::fig2(), ExecPolicy::default(), 1.0);
        let some = db.run_scan(
            &ScanSpec {
                projection: ScanSpec::fig2().projection,
                // o_orderstatus = 2 ('P') is the rare status (~2%).
                predicate: Some(Expr::eq(Expr::Col(2), Expr::Lit(2))),
            },
            ExecPolicy::default(),
            1.0,
        );
        assert!(some.work < all.work * 0.1, "{} vs {}", some.work, all.work);
        assert!(some.work > 0.0);
        // Same bytes off the device; the predicate filters after read.
        let io = |r: &crate::report::EnergyReport| {
            r.ledger
                .kind_total(grail_power::ledger::ComponentKind::Ssd)
                .joules()
        };
        assert!((io(&all) - io(&some)).abs() < io(&all) * 0.2);
    }

    #[test]
    fn idle_run_matches_profile_floor() {
        let db = db(HardwareProfile::server_dl785(66));
        let r = db.run_idle(SimDuration::from_secs(100));
        let expect = (941.0 + 66.0 * 15.0) * 100.0;
        assert!(
            (r.energy.joules() - expect).abs() < expect * 0.01,
            "{} vs {expect}",
            r.energy.joules()
        );
        assert_eq!(r.work, 0.0);
    }

    #[test]
    #[should_panic(expected = "load_tpch")]
    fn unloaded_db_panics() {
        let db = EnergyAwareDb::new(HardwareProfile::flash_scanner());
        let _ = db.tables();
    }

    #[test]
    fn unloaded_db_errors_through_try_api() {
        let db = EnergyAwareDb::new(HardwareProfile::flash_scanner());
        assert!(matches!(db.try_tables(), Err(SimError::NotLoaded)));
        assert!(matches!(
            db.try_run_scan(&ScanSpec::fig2(), ExecPolicy::default(), 1.0),
            Err(SimError::NotLoaded)
        ));
        assert!(matches!(
            db.try_run_template(QueryTemplate::PricingSummary, ExecPolicy::default(), 1.0),
            Err(SimError::NotLoaded)
        ));
        assert!(matches!(
            db.try_run_throughput_test(1, 1, ExecPolicy::default(), 1.0),
            Err(SimError::NotLoaded)
        ));
        assert_eq!(
            SimError::NotLoaded.to_string(),
            "no tables loaded; call load_tpch first"
        );
    }

    #[test]
    fn try_scan_succeeds_and_matches_panicking_facade() {
        let db = db(HardwareProfile::flash_scanner());
        let a = db
            .try_run_scan(&ScanSpec::fig2(), ExecPolicy::default(), 1.0)
            .expect("loaded db scans");
        let b = db.run_scan(&ScanSpec::fig2(), ExecPolicy::default(), 1.0);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn zero_rate_fault_profile_changes_nothing() {
        let mut db = db(HardwareProfile::flash_scanner());
        let clean = db.run_scan(&ScanSpec::fig2(), ExecPolicy::default(), 1.0);
        db.set_fault_profile(FaultConfig::NONE, 123);
        let armed = db.run_scan(&ScanSpec::fig2(), ExecPolicy::default(), 1.0);
        assert_eq!(clean.energy, armed.energy);
        assert_eq!(clean.elapsed, armed.elapsed);
        assert_eq!(armed.retries, 0);
        assert_eq!(armed.recovery, grail_power::units::Joules::ZERO);
        assert_eq!(armed.recovery_share(), 0.0);
    }

    #[test]
    fn fault_profile_surfaces_retry_and_recovery_costs() {
        let mut db = db(HardwareProfile::flash_scanner());
        let clean = db.run_scan(&ScanSpec::fig2(), ExecPolicy::default(), 1.0);
        assert_eq!(clean.retries, 0);
        let cfg = FaultConfig {
            transient_per_io: 0.35,
            ..FaultConfig::NONE
        };
        // Some seed in a small window must produce at least one fault;
        // for any fixed seed the outcome is deterministic.
        let mut hit = false;
        for seed in 0..10 {
            db.set_fault_profile(cfg, seed);
            let r = db.run_scan(&ScanSpec::fig2(), ExecPolicy::default(), 1.0);
            assert_eq!(db.fault_profile(), Some((cfg, seed)));
            if r.retries > 0 {
                assert!(r.recovery.joules() > 0.0, "retries must bill recovery");
                assert!(r.recovery_share() > 0.0);
                assert!(r.energy.joules() > clean.energy.joules());
                hit = true;
                break;
            }
        }
        assert!(hit, "a 35% transient rate must fault within 10 seeds");
        db.clear_fault_profile();
        let back = db.run_scan(&ScanSpec::fig2(), ExecPolicy::default(), 1.0);
        assert_eq!(back.retries, 0);
        assert_eq!(back.energy, clean.energy);
    }

    #[test]
    fn traced_scan_attributes_energy_without_changing_physics() {
        let db = db(HardwareProfile::flash_scanner());
        let plain = db
            .try_run_scan(&ScanSpec::fig2(), ExecPolicy::default(), 1.0)
            .expect("loaded db scans");
        let traced = db
            .try_run_scan_traced(&ScanSpec::fig2(), ExecPolicy::default(), 1.0)
            .expect("loaded db scans");
        // Tracing must not perturb the physics.
        assert_eq!(traced.report.energy, plain.energy);
        assert_eq!(traced.report.elapsed, plain.elapsed);
        assert!(plain.attribution.is_none());
        // The recorder saw the run.
        assert!(!traced.trace.is_empty());
        assert!(traced.trace.events().any(|e| e.name == "sim.finish"));
        assert!(traced.trace.events().any(|e| e.name == "scan"));
        // Attribution rows sum to the wall-socket total, and the single
        // scan query carries operator detail.
        let table = traced.report.attribution.as_ref().expect("traced");
        let total = traced.report.ledger.total().joules();
        assert!((table.sum().joules() - total).abs() <= total * 1e-9 + 1e-9);
        let q = table.query(0, 0).expect("the scan is s0.q0");
        assert!(q.energy.joules() > 0.0);
        assert_eq!(q.operators.len(), 1);
        assert_eq!(q.operators[0].name, "scan");
        assert!(q.operators[0].io_bytes > 0);
    }

    #[test]
    fn traced_throughput_attributes_every_query() {
        let db = db(HardwareProfile::server_dl785(36));
        let plain = db
            .try_run_throughput_test(2, 2, ExecPolicy::default(), 1.0)
            .expect("loaded db runs");
        let traced = db
            .try_run_throughput_test_traced(2, 2, ExecPolicy::default(), 1.0)
            .expect("loaded db runs");
        assert_eq!(traced.report.energy, plain.energy);
        assert_eq!(traced.report.elapsed, plain.elapsed);
        let table = traced.report.attribution.as_ref().expect("traced");
        // 2 streams x 2 queries + residual.
        assert_eq!(table.rows.len(), 5);
        let total = traced.report.ledger.total().joules();
        assert!((table.sum().joules() - total).abs() <= total * 1e-9 + 1e-9);
        // Every query row carries its template's operator breakdown.
        for s in 0..2u32 {
            for q in 0..2u32 {
                let row = table.query(s, q).expect("query row present");
                assert!(row.energy.joules() > 0.0, "{} burned energy", row.label);
                assert!(!row.operators.is_empty(), "{} has operators", row.label);
            }
        }
        // Round-robin dealing hands template (s + q) % 4 to stream s's
        // q-th query: s0.q1 and s1.q0 share template 1's operator set,
        // while s0.q0 (template 0, single-scan) and s1.q1 (template 2,
        // a join) must differ.
        let ops = |s: u32, q: u32| -> Vec<String> {
            table
                .query(s, q)
                .unwrap()
                .operators
                .iter()
                .map(|o| o.name.clone())
                .collect()
        };
        assert_eq!(ops(0, 1), ops(1, 0));
        assert_ne!(ops(0, 0), ops(1, 1));
    }
}
