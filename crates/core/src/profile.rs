//! Hardware profiles: the paper's two test systems, and constructors
//! for variations.

use grail_optimizer::cost::HardwareDesc;
use grail_power::components::{CpuPowerProfile, DiskPowerProfile, SsdPowerProfile};
use grail_power::units::Watts;
use grail_sim::perf::{CpuPerfProfile, DiskPerfProfile, FabricModel, SsdPerfProfile};
use grail_sim::raid::RaidLevel;
use grail_sim::sim::Simulation;
use grail_sim::{CpuId, StorageTarget};

/// A complete machine description: performance and power for every
/// component class, plus topology.
#[derive(Debug, Clone)]
pub struct HardwareProfile {
    /// Profile name (reports).
    pub name: &'static str,
    /// CPU pool performance.
    pub cpu_perf: CpuPerfProfile,
    /// CPU power.
    pub cpu_power: CpuPowerProfile,
    /// Number of rotating disks.
    pub disks: usize,
    /// Disk performance.
    pub disk_perf: DiskPerfProfile,
    /// Disk power.
    pub disk_power: DiskPowerProfile,
    /// RAID level over the disks (if any disks exist).
    pub raid: RaidLevel,
    /// Storage-fabric scaling model for the disk array.
    pub fabric: FabricModel,
    /// Number of SSDs.
    pub ssds: usize,
    /// SSD performance.
    pub ssd_perf: SsdPerfProfile,
    /// SSD power.
    pub ssd_power: SsdPowerProfile,
    /// Constant base draw (chassis, board, fans).
    pub base_power: Watts,
}

impl HardwareProfile {
    /// The Fig. 1 server: an HP ProLiant DL785-class machine — 8 ×
    /// quad-core 2.3 GHz Opterons, `disks` 15K SCSI spindles in RAID-5.
    ///
    /// Calibration: the paper reports a 14% efficiency gain for a 45%
    /// performance drop between 66 and 204 disks, which pins the base
    /// (non-disk) power at ~941 W given 15 W/spindle (see DESIGN.md).
    /// Disks draw a constant 15 W while spinning (idle ≈ active for 15K
    /// SCSI), matching the paper's "each additional disk contributes the
    /// same power".
    pub fn server_dl785(disks: usize) -> Self {
        HardwareProfile {
            name: "server_dl785",
            cpu_perf: CpuPerfProfile::dl785(),
            cpu_power: CpuPowerProfile::opteron_socket(),
            disks,
            disk_perf: DiskPerfProfile::scsi_15k(),
            disk_power: DiskPowerProfile {
                active: Watts::new(15.0),
                idle: Watts::new(15.0),
                ..DiskPowerProfile::scsi_15k()
            },
            raid: RaidLevel::Raid5,
            fabric: FabricModel::dl785_sas(),
            ssds: 0,
            ssd_perf: SsdPerfProfile::fig2_flash(),
            ssd_power: SsdPowerProfile::fig2_flash(),
            // 941 W = CPUs + memory + chassis, minus what the explicit
            // CPU model already charges; the CPU model contributes
            // ~248 W idle (32 cores × 4 W + 8 × 15 W uncore), so the
            // remainder is charged as base.
            base_power: Watts::new(941.0 - 248.0),
        }
    }

    /// The Fig. 2 scan box: one 90 W CPU (free when idle) and three
    /// flash drives totalling 5 W, charged for wall time as the paper
    /// does.
    pub fn flash_scanner() -> Self {
        HardwareProfile {
            name: "flash_scanner",
            cpu_perf: CpuPerfProfile::fig2_single(),
            cpu_power: CpuPowerProfile::fig2_cpu(),
            disks: 0,
            disk_perf: DiskPerfProfile::scsi_15k(),
            disk_power: DiskPowerProfile::scsi_15k(),
            raid: RaidLevel::Raid0,
            fabric: FabricModel::unconstrained(),
            ssds: 3,
            ssd_perf: SsdPerfProfile::fig2_flash(),
            ssd_power: SsdPowerProfile::fig2_flash(),
            base_power: Watts::ZERO,
        }
    }

    /// A variant with a different spindle count (Fig. 1's knob).
    pub fn with_disks(mut self, disks: usize) -> Self {
        self.disks = disks;
        self
    }

    /// Instantiate the simulator: returns the machine, its CPU pool,
    /// and the *stripe targets* — the physical units a logical IO demand
    /// is split across (one RAID array for disk profiles, each SSD for
    /// flash profiles, matching Fig. 2's scanner striping its columns
    /// over all three drives).
    pub fn build(&self) -> (Simulation, CpuId, Vec<StorageTarget>) {
        let mut sim = Simulation::new();
        let cpu = sim.add_cpu(self.cpu_perf, self.cpu_power);
        sim.set_base_power(self.base_power);
        sim.set_fabric(self.fabric);
        let targets = if self.disks > 0 {
            let ids = sim.add_disks(self.disks, self.disk_perf, self.disk_power);
            let arr = sim
                .make_array(self.raid, ids)
                .expect("profile disk counts satisfy RAID minimums"); // grail-lint: allow(error-hygiene, profile disk counts satisfy RAID minimums by construction)
            vec![StorageTarget::Array(arr)]
        } else {
            sim.add_ssds(self.ssds.max(1), self.ssd_perf, self.ssd_power)
                .into_iter()
                .map(StorageTarget::Ssd)
                .collect()
        };
        (sim, cpu, targets)
    }

    /// Aggregate storage read bandwidth (bytes/s) of the primary target,
    /// including the fabric factor.
    pub fn storage_bandwidth(&self) -> f64 {
        if self.disks > 0 {
            let data_disks = match self.raid {
                RaidLevel::Raid0 => self.disks,
                RaidLevel::Raid5 => self.disks.saturating_sub(1),
            };
            data_disks as f64
                * self.disk_perf.transfer_bytes_per_sec
                * self.fabric.factor(self.disks as u32)
        } else {
            self.ssds.max(1) as f64 * self.ssd_perf.read_bytes_per_sec
        }
    }

    /// The matching first-order description for the optimizer's cost
    /// model.
    pub fn hardware_desc(&self) -> HardwareDesc {
        let cores = self.cpu_perf.cores;
        let sockets = (cores as f64 / self.cpu_power.cores.max(1) as f64).ceil();
        let (io_active, io_idle) = if self.disks > 0 {
            (
                Watts::new(self.disks as f64 * self.disk_power.active.get()),
                Watts::new(self.disks as f64 * self.disk_power.idle.get()),
            )
        } else {
            let n = self.ssds.max(1) as f64;
            (
                Watts::new(n * self.ssd_power.active.get()),
                Watts::new(n * self.ssd_power.idle.get()),
            )
        };
        HardwareDesc {
            cpu_hz: self.cpu_perf.freq.get(),
            cpu_active: Watts::new(
                cores as f64 * self.cpu_power.core_active.get()
                    + sockets * self.cpu_power.uncore.get(),
            ),
            cpu_idle: Watts::new(
                cores as f64 * self.cpu_power.core_idle.get()
                    + sockets * self.cpu_power.uncore.get(),
            ),
            io_bytes_per_sec: self.storage_bandwidth(),
            io_active,
            io_idle,
            mem_watts_per_byte: 0.0,
            base: self.base_power,
            io_random_secs_per_op: if self.disks > 0 {
                (self.disk_perf.avg_seek + self.disk_perf.avg_rotation).as_secs_f64()
            } else {
                self.ssd_perf.request_latency.as_secs_f64()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grail_power::units::{Bytes, Cycles, SimInstant};
    use grail_sim::perf::AccessPattern;

    #[test]
    fn dl785_base_plus_disks_matches_calibration() {
        // Total idle power at N disks ≈ 941 + 15 N (the DESIGN.md
        // calibration for the Fig. 1 efficiency arithmetic).
        for disks in [36usize, 66, 108, 204] {
            let p = HardwareProfile::server_dl785(disks);
            let (sim, _, _) = p.build();
            let report = sim.finish(SimInstant::from_secs_f64(100.0));
            let avg = report.avg_power().get();
            let expect = 941.0 + 15.0 * disks as f64;
            assert!(
                (avg - expect).abs() < 2.0,
                "disks={disks}: {avg} vs {expect}"
            );
        }
    }

    #[test]
    fn flash_scanner_idle_draws_five_watts() {
        let p = HardwareProfile::flash_scanner();
        let (sim, _, _) = p.build();
        let report = sim.finish(SimInstant::from_secs_f64(10.0));
        assert!((report.total_energy().joules() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn build_produces_usable_devices() {
        let p = HardwareProfile::server_dl785(36);
        let (mut sim, cpu, targets) = p.build();
        assert_eq!(targets.len(), 1);
        sim.read(
            targets[0],
            SimInstant::EPOCH,
            Bytes::gib(1),
            AccessPattern::Sequential,
        )
        .unwrap();
        sim.compute(cpu, SimInstant::EPOCH, Cycles::new(1_000_000))
            .unwrap();
        assert!(sim.horizon() > SimInstant::EPOCH);
        // Flash profile exposes one target per drive.
        let (_, _, flash_targets) = HardwareProfile::flash_scanner().build();
        assert_eq!(flash_targets.len(), 3);
    }

    #[test]
    fn storage_bandwidth_raid5_loses_one_disk() {
        let p = HardwareProfile::server_dl785(66);
        assert!((p.storage_bandwidth() - 65.0 * 90.0e6).abs() < 1.0);
        let f = HardwareProfile::flash_scanner();
        assert!((f.storage_bandwidth() - 600.0e6).abs() < 1.0);
    }

    #[test]
    fn hardware_desc_mirrors_profile() {
        let p = HardwareProfile::server_dl785(66);
        let d = p.hardware_desc();
        assert!((d.io_active.get() - 990.0).abs() < 1e-9);
        assert!((d.base.get() - 693.0).abs() < 1e-9);
        assert!((d.cpu_hz - 2.3e9).abs() < 1.0);
    }

    #[test]
    fn with_disks_changes_topology() {
        let p = HardwareProfile::server_dl785(36).with_disks(204);
        assert_eq!(p.disks, 204);
    }
}
