//! # grail-core — the GRAIL facade
//!
//! Wires hardware profiles, workload generation, the executor, and the
//! simulator into one [`EnergyAwareDb`] with an [`EnergyReport`] per run —
//! the programmatic equivalent of racking the paper's test systems and
//! reading the power meter.
//!
//! * [`profile`] — hardware profiles: [`profile::HardwareProfile::server_dl785`]
//!   (Fig. 1's 32-core, N-disk RAID server) and
//!   [`profile::HardwareProfile::flash_scanner`] (Fig. 2's 1 CPU + 3
//!   SSDs), plus constructors for custom machines.
//! * [`db`] — the facade: load tables, run scans/mixes under an
//!   [`db::ExecPolicy`], collect reports.
//! * [`report`] — [`report::EnergyReport`]: time, Joules, per-component
//!   breakdown, energy efficiency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod db;
pub mod profile;
pub mod report;

pub use db::{EnergyAwareDb, ExecPolicy, ScanSpec, TracedRun, DEFAULT_TRACE_CAPACITY};
pub use grail_workload::TpchScale;
pub use profile::HardwareProfile;
pub use report::EnergyReport;
