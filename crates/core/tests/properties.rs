//! Property tests for the facade: report consistency and monotonicity
//! across arbitrary profiles and workload intensities.

use grail_core::db::{CompressionMode, EnergyAwareDb, ExecPolicy, ScanSpec};
use grail_core::profile::HardwareProfile;
use grail_workload::tpch::TpchScale;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The report's totals equal its ledger; elapsed and energy are
    /// positive; efficiency = work/energy.
    #[test]
    fn report_internally_consistent(stretch in 1.0f64..20_000.0, cols in 1usize..7) {
        let mut db = EnergyAwareDb::new(HardwareProfile::flash_scanner());
        db.load_tpch(TpchScale { orders_rows: 2000 });
        let r = db.run_scan(&ScanSpec::orders_projection(cols), ExecPolicy::default(), stretch);
        prop_assert!(r.elapsed.as_secs_f64() > 0.0);
        prop_assert!((r.energy.joules() - r.ledger.total().joules()).abs() < 1e-6);
        let ee = r.efficiency().work_per_joule();
        prop_assert!((ee - r.work / r.energy.joules()).abs() < 1e-9 * ee.max(1.0));
        prop_assert!(r.cpu_busy <= r.elapsed);
    }

    /// More data never takes less time or less energy (monotone in
    /// stretch).
    #[test]
    fn scan_monotone_in_stretch(a in 1.0f64..5_000.0, mult in 1.1f64..10.0) {
        let mut db = EnergyAwareDb::new(HardwareProfile::flash_scanner());
        db.load_tpch(TpchScale { orders_rows: 2000 });
        let small = db.run_scan(&ScanSpec::fig2(), ExecPolicy::default(), a);
        let big = db.run_scan(&ScanSpec::fig2(), ExecPolicy::default(), a * mult);
        prop_assert!(big.elapsed >= small.elapsed);
        prop_assert!(big.energy.joules() >= small.energy.joules() - 1e-9);
    }

    /// Compression never changes the row count, only time/energy.
    #[test]
    fn compression_preserves_work(seed in 0u64..100) {
        let mut db = EnergyAwareDb::new(HardwareProfile::flash_scanner());
        db.load_tpch_seeded(TpchScale { orders_rows: 1500 }, seed);
        let modes = [CompressionMode::Plain, CompressionMode::Auto, CompressionMode::Fig2];
        let works: Vec<f64> = modes
            .iter()
            .map(|m| {
                db.run_scan(
                    &ScanSpec::fig2(),
                    ExecPolicy { compression: *m, dop: 1 },
                    1.0,
                )
                .work
            })
            .collect();
        prop_assert!(works.windows(2).all(|w| w[0] == w[1]), "{works:?}");
    }

    /// Throughput-test reports count every submitted query once.
    #[test]
    fn throughput_counts_queries(streams in 1usize..6, qps in 1usize..5) {
        let mut db = EnergyAwareDb::new(HardwareProfile::server_dl785(36));
        db.load_tpch(TpchScale { orders_rows: 1000 });
        let r = db.run_throughput_test(streams, qps, ExecPolicy::default(), 10.0);
        prop_assert_eq!(r.work, (streams * qps) as f64);
    }
}
