//! JouleSort-style records (\[RSR+07\]): the benchmark the paper cites as
//! the first energy-efficiency benchmark for data management tasks.
//!
//! Canonical JouleSort sorts 100-byte records with 10-byte keys and
//! scores *records sorted per Joule*. GRAIL's engine is i64-coded, so a
//! record is one key datum plus 11 payload datums (96 bytes ≈ the
//! canonical 100).

use grail_query::batch::Table;
use grail_query::schema::{ColumnType, Schema};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;

/// Payload columns per record (key + 11 × 8 B = 96 B/record).
pub const PAYLOAD_COLUMNS: usize = 11;

/// Bytes per record in this representation.
pub const RECORD_BYTES: u64 = (1 + PAYLOAD_COLUMNS as u64) * 8;

/// Generate `n` records from `seed`.
pub fn records(n: u64, seed: u64) -> Arc<Table> {
    let mut fields = vec![("key", ColumnType::Id)];
    let names: Vec<String> = (0..PAYLOAD_COLUMNS).map(|i| format!("p{i}")).collect();
    for name in &names {
        fields.push((name.as_str(), ColumnType::Int));
    }
    let schema = Schema::new(fields);
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut cols: Vec<Vec<i64>> = (0..=PAYLOAD_COLUMNS)
        .map(|_| Vec::with_capacity(n as usize))
        .collect();
    for _ in 0..n {
        cols[0].push(rng.random::<i64>());
        for c in cols.iter_mut().skip(1) {
            c.push(rng.random::<i64>());
        }
    }
    Arc::new(Table::new("joulesort", schema, cols))
}

/// The JouleSort score: records sorted per Joule.
pub fn score(records_sorted: u64, joules: f64) -> f64 {
    if joules <= 0.0 {
        0.0
    } else {
        records_sorted as f64 / joules
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_shape() {
        let t = records(1000, 1);
        assert_eq!(t.row_count(), 1000);
        assert_eq!(t.schema.arity(), 1 + PAYLOAD_COLUMNS);
        assert_eq!(t.raw_bytes(), 1000 * RECORD_BYTES);
    }

    #[test]
    fn deterministic() {
        assert_eq!(records(500, 7).columns, records(500, 7).columns);
        assert_ne!(records(500, 7).columns, records(500, 8).columns);
    }

    #[test]
    fn keys_look_uniform() {
        let t = records(10_000, 3);
        let negatives = t.columns[0].iter().filter(|v| **v < 0).count();
        assert!((4000..6000).contains(&negatives), "{negatives}");
    }

    #[test]
    fn score_math() {
        assert_eq!(score(1000, 10.0), 100.0);
        assert_eq!(score(1000, 0.0), 0.0);
    }
}
