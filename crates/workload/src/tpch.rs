//! Seeded TPC-H-like table generation.
//!
//! Audited TPC-H data is not reproducible here, and does not need to be:
//! the experiments depend on table *shapes* — cardinality ratios, dense
//! vs uniform keys, low-cardinality flags, clustered dates — not on
//! audited content. Generation is deterministic: the same
//! `(scale, seed)` yields bit-identical tables on any platform
//! (ChaCha12).

use grail_query::batch::Table;
use grail_query::schema::{ColumnType, Schema};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;

/// Scale of a generated database, in ORDERS rows; other tables follow
/// TPC-H's cardinality ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchScale {
    /// Rows in ORDERS.
    pub orders_rows: u64,
}

impl TpchScale {
    /// TPC-H scale factor `sf` (SF 1 = 1.5 M orders).
    pub fn sf(sf: f64) -> Self {
        TpchScale {
            orders_rows: (1_500_000.0 * sf).round().max(1.0) as u64,
        }
    }

    /// A laptop-friendly scale for tests and examples (10 K orders).
    pub fn toy() -> Self {
        TpchScale {
            orders_rows: 10_000,
        }
    }

    /// LINEITEM rows (4 lines per order on average, exact here).
    pub fn lineitem_rows(&self) -> u64 {
        self.orders_rows * 4
    }

    /// CUSTOMER rows (1 customer per 10 orders).
    pub fn customer_rows(&self) -> u64 {
        (self.orders_rows / 10).max(1)
    }

    /// PART rows.
    pub fn part_rows(&self) -> u64 {
        (self.orders_rows / 8).max(1)
    }

    /// SUPPLIER rows.
    pub fn supplier_rows(&self) -> u64 {
        (self.orders_rows / 150).max(1)
    }
}

/// The generated database.
#[derive(Debug, Clone)]
pub struct TpchTables {
    /// ORDERS (7 columns; Fig. 2 projects 5 of them).
    pub orders: Arc<Table>,
    /// LINEITEM (10 columns).
    pub lineitem: Arc<Table>,
    /// CUSTOMER (5 columns).
    pub customer: Arc<Table>,
    /// PART (5 columns).
    pub part: Arc<Table>,
    /// SUPPLIER (4 columns).
    pub supplier: Arc<Table>,
}

/// Days in the TPC-H date domain (1992-01-01 .. 1998-08-02).
pub const DATE_DAYS: i64 = 2406;

fn rng_for(seed: u64, table: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ table)
}

/// Generate the database at `scale` from `seed`.
pub fn generate(scale: TpchScale, seed: u64) -> TpchTables {
    TpchTables {
        orders: Arc::new(gen_orders(scale, seed)),
        lineitem: Arc::new(gen_lineitem(scale, seed)),
        customer: Arc::new(gen_customer(scale, seed)),
        part: Arc::new(gen_part(scale, seed)),
        supplier: Arc::new(gen_supplier(scale, seed)),
    }
}

/// The 5-of-7 ORDERS projection of Fig. 2 (orderkey, custkey, status,
/// totalprice, orderdate).
pub const ORDERS_FIG2_PROJECTION: [usize; 5] = [0, 1, 2, 3, 4];

fn gen_orders(scale: TpchScale, seed: u64) -> Table {
    let n = scale.orders_rows;
    let customers = scale.customer_rows() as i64;
    let mut rng = rng_for(seed, 1);
    let schema = Schema::new(vec![
        ("o_orderkey", ColumnType::Id),
        ("o_custkey", ColumnType::Id),
        ("o_orderstatus", ColumnType::Code),
        ("o_totalprice", ColumnType::Decimal),
        ("o_orderdate", ColumnType::Date),
        ("o_orderpriority", ColumnType::Code),
        ("o_shippriority", ColumnType::Int),
    ]);
    let mut orderkey = Vec::with_capacity(n as usize);
    let mut custkey = Vec::with_capacity(n as usize);
    let mut status = Vec::with_capacity(n as usize);
    let mut price = Vec::with_capacity(n as usize);
    let mut date = Vec::with_capacity(n as usize);
    let mut priority = Vec::with_capacity(n as usize);
    let mut shippriority = Vec::with_capacity(n as usize);
    for i in 0..n {
        // Sparse keys as in TPC-H (4 of every 32 key values used).
        orderkey.push((i as i64 / 4) * 32 + (i as i64 % 4));
        custkey.push(rng.random_range(0..customers));
        // F/O dominate; P is rare.
        let s = match rng.random_range(0..100) {
            0..=48 => 0,
            49..=97 => 1,
            _ => 2,
        };
        status.push(s);
        // Price in cents, 857.71 .. ~555285.16 like TPC-H's domain.
        price.push(rng.random_range(85_771..55_528_516));
        date.push(rng.random_range(0..DATE_DAYS));
        priority.push(rng.random_range(0..5));
        shippriority.push(0);
    }
    Table::new(
        "orders",
        schema,
        vec![
            orderkey,
            custkey,
            status,
            price,
            date,
            priority,
            shippriority,
        ],
    )
}

fn gen_lineitem(scale: TpchScale, seed: u64) -> Table {
    let orders = scale.orders_rows;
    let parts = scale.part_rows() as i64;
    let suppliers = scale.supplier_rows() as i64;
    let mut rng = rng_for(seed, 2);
    let schema = Schema::new(vec![
        ("l_orderkey", ColumnType::Id),
        ("l_partkey", ColumnType::Id),
        ("l_suppkey", ColumnType::Id),
        ("l_quantity", ColumnType::Int),
        ("l_extendedprice", ColumnType::Decimal),
        ("l_discount", ColumnType::Int),
        ("l_tax", ColumnType::Int),
        ("l_returnflag", ColumnType::Code),
        ("l_linestatus", ColumnType::Code),
        ("l_shipdate", ColumnType::Date),
    ]);
    let n = scale.lineitem_rows() as usize;
    let mut cols: Vec<Vec<i64>> = (0..10).map(|_| Vec::with_capacity(n)).collect();
    for o in 0..orders {
        let okey = (o as i64 / 4) * 32 + (o as i64 % 4);
        for _ in 0..4 {
            let qty = rng.random_range(1..=50);
            let unit_price = rng.random_range(90_000..=200_000);
            cols[0].push(okey);
            cols[1].push(rng.random_range(0..parts));
            cols[2].push(rng.random_range(0..suppliers));
            cols[3].push(qty);
            cols[4].push(qty * unit_price);
            cols[5].push(rng.random_range(0..=10));
            cols[6].push(rng.random_range(0..=8));
            cols[7].push(rng.random_range(0..3));
            cols[8].push(rng.random_range(0..2));
            cols[9].push(rng.random_range(0..DATE_DAYS));
        }
    }
    Table::new("lineitem", schema, cols)
}

fn gen_customer(scale: TpchScale, seed: u64) -> Table {
    let n = scale.customer_rows() as usize;
    let mut rng = rng_for(seed, 3);
    let schema = Schema::new(vec![
        ("c_custkey", ColumnType::Id),
        ("c_nationkey", ColumnType::Id),
        ("c_acctbal", ColumnType::Decimal),
        ("c_mktsegment", ColumnType::Code),
        ("c_ordercount", ColumnType::Int),
    ]);
    let mut cols: Vec<Vec<i64>> = (0..5).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        cols[0].push(i as i64);
        cols[1].push(rng.random_range(0..25));
        cols[2].push(rng.random_range(-99_999..999_999));
        cols[3].push(rng.random_range(0..5));
        cols[4].push(0);
    }
    Table::new("customer", schema, cols)
}

fn gen_part(scale: TpchScale, seed: u64) -> Table {
    let n = scale.part_rows() as usize;
    let mut rng = rng_for(seed, 4);
    let schema = Schema::new(vec![
        ("p_partkey", ColumnType::Id),
        ("p_brand", ColumnType::Code),
        ("p_type", ColumnType::Code),
        ("p_size", ColumnType::Int),
        ("p_retailprice", ColumnType::Decimal),
    ]);
    let mut cols: Vec<Vec<i64>> = (0..5).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        cols[0].push(i as i64);
        cols[1].push(rng.random_range(0..25));
        cols[2].push(rng.random_range(0..150));
        cols[3].push(rng.random_range(1..=50));
        cols[4].push(90_000 + (i as i64 % 200_001));
    }
    Table::new("part", schema, cols)
}

fn gen_supplier(scale: TpchScale, seed: u64) -> Table {
    let n = scale.supplier_rows() as usize;
    let mut rng = rng_for(seed, 5);
    let schema = Schema::new(vec![
        ("s_suppkey", ColumnType::Id),
        ("s_nationkey", ColumnType::Id),
        ("s_acctbal", ColumnType::Decimal),
        ("s_phoneprefix", ColumnType::Code),
    ]);
    let mut cols: Vec<Vec<i64>> = (0..4).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        cols[0].push(i as i64);
        cols[1].push(rng.random_range(0..25));
        cols[2].push(rng.random_range(-99_999..999_999));
        cols[3].push(rng.random_range(10..35));
    }
    Table::new("supplier", schema, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_ratios() {
        let s = TpchScale::toy();
        let t = generate(s, 42);
        assert_eq!(t.orders.row_count() as u64, s.orders_rows);
        assert_eq!(t.lineitem.row_count() as u64, s.orders_rows * 4);
        assert_eq!(t.customer.row_count() as u64, s.orders_rows / 10);
        assert!(t.part.row_count() > 0 && t.supplier.row_count() > 0);
        assert_eq!(TpchScale::sf(1.0).orders_rows, 1_500_000);
    }

    #[test]
    fn determinism_across_runs() {
        let a = generate(TpchScale { orders_rows: 500 }, 7);
        let b = generate(TpchScale { orders_rows: 500 }, 7);
        assert_eq!(a.orders.columns, b.orders.columns);
        assert_eq!(a.lineitem.columns, b.lineitem.columns);
        // Different seed, different data.
        let c = generate(TpchScale { orders_rows: 500 }, 8);
        assert_ne!(a.orders.columns, c.orders.columns);
    }

    #[test]
    fn orders_domains() {
        let t = generate(TpchScale::toy(), 1);
        let o = &t.orders;
        let customers = TpchScale::toy().customer_rows() as i64;
        for r in 0..o.row_count() {
            let row: Vec<i64> = o.columns.iter().map(|c| c[r]).collect();
            assert!(row[1] >= 0 && row[1] < customers, "custkey in range");
            assert!((0..3).contains(&row[2]), "status code");
            assert!((0..DATE_DAYS).contains(&row[4]), "date in domain");
            assert!((0..5).contains(&row[5]), "priority code");
        }
        // Sparse keys ascend.
        let keys = &o.columns[0];
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn foreign_keys_resolve() {
        let s = TpchScale::toy();
        let t = generate(s, 3);
        let parts = s.part_rows() as i64;
        let supps = s.supplier_rows() as i64;
        for r in 0..1000 {
            assert!(t.lineitem.columns[1][r] < parts);
            assert!(t.lineitem.columns[2][r] < supps);
        }
        // Every lineitem orderkey exists in orders (same sparse formula).
        let okeys: std::collections::HashSet<i64> = t.orders.columns[0].iter().copied().collect();
        for r in 0..1000 {
            assert!(okeys.contains(&t.lineitem.columns[0][r]));
        }
    }

    #[test]
    fn status_skew_matches_tpch_shape() {
        let t = generate(TpchScale::toy(), 11);
        let mut counts = [0u32; 3];
        for v in t.orders.columns[2].iter() {
            counts[*v as usize] += 1;
        }
        assert!(counts[2] < counts[0] / 10, "P status is rare: {counts:?}");
        assert!(counts[0] > 4000 && counts[1] > 4000);
    }
}
