//! # grail-workload — deterministic workload generation
//!
//! The paper's experiments run (a) a TPC-H throughput-test mix at 300 GB
//! scale (Fig. 1) and (b) a projection scan of TPC-H's ORDERS table
//! (Fig. 2). Neither audited kit nor its data is reproducible here, so
//! this crate generates TPC-H-*like* tables with the right shapes —
//! cardinality ratios, key distributions, low-cardinality flag columns,
//! date-ish columns — from a caller-supplied seed, bit-identical across
//! runs and platforms.
//!
//! * [`tpch`] — schemas and the seeded generator (ORDERS, LINEITEM,
//!   CUSTOMER, PART, SUPPLIER).
//! * [`queries`] — the throughput-test query templates (scan-filter,
//!   scan-aggregate, join, sort) with per-template resource shapes.
//! * [`mix`] — multi-stream mixes: the closed-loop throughput test of
//!   Fig. 1 and open arrival processes for the consolidation
//!   experiments.
//! * [`joulesort`] — JouleSort-style records (\[RSR+07\]): 100-byte
//!   records with 10-byte keys, for the records-sorted-per-Joule
//!   benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod joulesort;
pub mod mix;
pub mod queries;
pub mod tpch;

pub use tpch::{TpchScale, TpchTables};
