//! Multi-stream mixes and arrival processes.
//!
//! The Fig. 1 throughput test is *closed*: each of S streams issues its
//! next query the moment the previous one finishes. The consolidation
//! experiments (Sec. 4.2) need *open* arrivals with real idle gaps —
//! Poisson by default. Demand scaling lets toy-scale measured tallies
//! stand in for 300 GB-scale queries: operator demands are linear in
//! input size (n·log n for sort, handled by the caller's factor).

use grail_power::units::{Bytes, Cycles, SimDuration, SimInstant};
use grail_query::exec::Tally;
use grail_sim::driver::{IoDemand, JobSpec, PhaseSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Scale a measured tally's demands by `factor` (queries at N× the data
/// touch N× the bytes and N× the values).
pub fn scale_tally(t: &Tally, factor: f64) -> Tally {
    Tally {
        cpu: Cycles::new((t.cpu.get() as f64 * factor).round() as u64),
        reads: t
            .reads
            .iter()
            .map(|r| grail_query::exec::ReadDemand {
                target: r.target,
                bytes: Bytes::new((r.bytes.get() as f64 * factor).round() as u64),
                access: r.access,
                op: r.op,
            })
            .collect(),
    }
}

/// Build a simulator job from (possibly scaled) tallies, overlapping
/// CPU and IO within each phase and splitting CPU over `dop` cores.
pub fn job_from_tallies(tallies: &[Tally], dop: u32) -> JobSpec {
    JobSpec::immediate(
        tallies
            .iter()
            .map(|t| PhaseSpec {
                cpu: t.cpu,
                dop,
                io: t
                    .reads
                    .iter()
                    .map(|r| IoDemand {
                        target: r.target,
                        bytes: r.bytes,
                        access: r.access,
                        op: r.op,
                    })
                    .collect(),
                overlap: true,
            })
            .collect(),
    )
}

/// A closed throughput-test mix: `streams` streams, each running
/// `queries_per_stream` jobs round-robin over the prototypes, with each
/// stream starting at a different offset (as TPC-H's throughput test
/// prescribes).
pub fn closed_mix(
    prototypes: &[JobSpec],
    streams: usize,
    queries_per_stream: usize,
) -> Vec<Vec<JobSpec>> {
    (0..streams)
        .map(|s| {
            (0..queries_per_stream)
                .map(|q| prototypes[(s + q) % prototypes.len()].clone())
                .collect()
        })
        .collect()
}

/// Deterministic Poisson arrivals: `n` arrival instants at `rate_hz`
/// mean rate from `seed`.
pub fn poisson_arrivals(rate_hz: f64, n: usize, seed: u64) -> Vec<SimInstant> {
    assert!(rate_hz > 0.0, "rate must be positive");
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.random_range(f64::EPSILON..1.0);
        t += -u.ln() / rate_hz;
        out.push(SimInstant::from_secs_f64(t));
    }
    out
}

/// Attach arrivals to a repeated job prototype: one single-stream open
/// workload.
pub fn open_stream(prototype: &JobSpec, arrivals: &[SimInstant]) -> Vec<JobSpec> {
    arrivals
        .iter()
        .map(|a| {
            let mut j = prototype.clone();
            j.arrival = *a;
            j
        })
        .collect()
}

/// The idle gaps between consecutive arrivals (for governor reasoning).
pub fn arrival_gaps(arrivals: &[SimInstant]) -> Vec<SimDuration> {
    arrivals
        .windows(2)
        .map(|w| w[1].saturating_duration_since(w[0]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grail_query::exec::ReadDemand;
    use grail_sim::driver::IoOp;
    use grail_sim::perf::AccessPattern;
    use grail_sim::{DiskId, StorageTarget};

    fn tally(cpu: u64, bytes: u64) -> Tally {
        Tally {
            cpu: Cycles::new(cpu),
            reads: vec![ReadDemand {
                target: StorageTarget::Disk(DiskId(0)),
                bytes: Bytes::new(bytes),
                access: AccessPattern::Sequential,
                op: IoOp::Read,
            }],
        }
    }

    #[test]
    fn scaling_is_linear() {
        let t = scale_tally(&tally(1000, 4096), 30.0);
        assert_eq!(t.cpu, Cycles::new(30_000));
        assert_eq!(t.reads[0].bytes, Bytes::new(122_880));
    }

    #[test]
    fn job_structure_preserved() {
        let job = job_from_tallies(&[tally(10, 100), tally(20, 0)], 4);
        assert_eq!(job.phases.len(), 2);
        assert_eq!(job.phases[0].dop, 4);
        assert_eq!(job.phases[1].cpu, Cycles::new(20));
    }

    #[test]
    fn closed_mix_round_robins_with_offset() {
        let protos: Vec<JobSpec> = (0..3)
            .map(|i| job_from_tallies(&[tally(i + 1, 0)], 1))
            .collect();
        let mix = closed_mix(&protos, 2, 4);
        assert_eq!(mix.len(), 2);
        assert_eq!(mix[0].len(), 4);
        // Stream 0 starts at proto 0; stream 1 at proto 1.
        assert_eq!(mix[0][0].phases[0].cpu, Cycles::new(1));
        assert_eq!(mix[1][0].phases[0].cpu, Cycles::new(2));
        assert_eq!(mix[1][2].phases[0].cpu, Cycles::new(1));
    }

    #[test]
    fn poisson_is_deterministic_and_mean_close() {
        let a = poisson_arrivals(2.0, 4000, 9);
        let b = poisson_arrivals(2.0, 4000, 9);
        assert_eq!(a, b);
        let span = a.last().unwrap().as_secs_f64();
        let rate = 4000.0 / span;
        assert!((rate - 2.0).abs() < 0.2, "empirical rate {rate}");
        // Strictly increasing.
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn open_stream_attaches_arrivals() {
        let proto = job_from_tallies(&[tally(5, 5)], 1);
        let arrivals = poisson_arrivals(1.0, 10, 3);
        let jobs = open_stream(&proto, &arrivals);
        assert_eq!(jobs.len(), 10);
        for (j, a) in jobs.iter().zip(&arrivals) {
            assert_eq!(j.arrival, *a);
        }
        let gaps = arrival_gaps(&arrivals);
        assert_eq!(gaps.len(), 9);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn zero_rate_rejected() {
        let _ = poisson_arrivals(0.0, 1, 0);
    }
}
