//! The throughput-test query templates.
//!
//! Fig. 1's workload "issues a mixture of TPC-H queries simultaneously
//! from multiple clients". These four templates cover the mixture's
//! resource shapes: a wide aggregation scan (Q1-like), a selective
//! filter scan (Q6-like), a join-and-group (Q3/Q5-like), and a top-k
//! sort (Q10-like). Each builds a real operator tree over stored tables.

use crate::tpch::{TpchTables, DATE_DAYS};
use grail_query::exec::Operator;
use grail_query::expr::Expr;
use grail_query::ops::sort::SortOrder;
use grail_query::ops::{
    AggFunc, AggSpec, ColumnarScan, Filter, HashAggregate, HashJoin, Sort, SortSpec, StoredTable,
};
use grail_sim::StorageTarget;
use grail_storage::compress::Encoding;
use std::sync::Arc;

/// The physically stored database: every table bound to a layout and a
/// storage target.
#[derive(Debug, Clone)]
pub struct StoredCatalog {
    /// ORDERS.
    pub orders: Arc<StoredTable>,
    /// LINEITEM.
    pub lineitem: Arc<StoredTable>,
    /// CUSTOMER.
    pub customer: Arc<StoredTable>,
    /// PART.
    pub part: Arc<StoredTable>,
    /// SUPPLIER.
    pub supplier: Arc<StoredTable>,
}

impl StoredCatalog {
    /// Store every table column-wise, uncompressed, on `target`.
    pub fn plain(tables: &TpchTables, target: StorageTarget) -> Self {
        StoredCatalog {
            orders: Arc::new(StoredTable::columnar_plain(tables.orders.clone(), target)),
            lineitem: Arc::new(StoredTable::columnar_plain(tables.lineitem.clone(), target)),
            customer: Arc::new(StoredTable::columnar_plain(tables.customer.clone(), target)),
            part: Arc::new(StoredTable::columnar_plain(tables.part.clone(), target)),
            supplier: Arc::new(StoredTable::columnar_plain(tables.supplier.clone(), target)),
        }
    }

    /// Store every table column-wise with auto-chosen codecs on
    /// `target`.
    pub fn compressed(tables: &TpchTables, target: StorageTarget) -> Self {
        StoredCatalog {
            orders: Arc::new(StoredTable::columnar_auto(tables.orders.clone(), target)),
            lineitem: Arc::new(StoredTable::columnar_auto(tables.lineitem.clone(), target)),
            customer: Arc::new(StoredTable::columnar_auto(tables.customer.clone(), target)),
            part: Arc::new(StoredTable::columnar_auto(tables.part.clone(), target)),
            supplier: Arc::new(StoredTable::columnar_auto(tables.supplier.clone(), target)),
        }
    }

    /// Store ORDERS with the conservative per-column codecs whose
    /// overall ratio (~1.8–2×) matches the \[HLA+06\] scanner's Fig. 2
    /// configuration; other tables auto.
    pub fn fig2(tables: &TpchTables, target: StorageTarget) -> Self {
        let orders_enc = [
            Encoding::Plain,   // o_orderkey (sparse keys kept verbatim)
            Encoding::Plain,   // o_custkey
            Encoding::Dict,    // o_orderstatus
            Encoding::BitPack, // o_totalprice
            Encoding::BitPack, // o_orderdate
            Encoding::Dict,    // o_orderpriority
            Encoding::Rle,     // o_shippriority
        ];
        StoredCatalog {
            orders: Arc::new(StoredTable::columnar(
                tables.orders.clone(),
                target,
                &orders_enc,
            )),
            lineitem: Arc::new(StoredTable::columnar_auto(tables.lineitem.clone(), target)),
            customer: Arc::new(StoredTable::columnar_auto(tables.customer.clone(), target)),
            part: Arc::new(StoredTable::columnar_auto(tables.part.clone(), target)),
            supplier: Arc::new(StoredTable::columnar_auto(tables.supplier.clone(), target)),
        }
    }
}

/// The throughput-test templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryTemplate {
    /// Wide aggregation scan of LINEITEM (Q1-like).
    PricingSummary,
    /// Selective filter-sum scan of LINEITEM (Q6-like).
    RevenueForecast,
    /// ORDERS ⋈ CUSTOMER, grouped by market segment (Q3/Q5-like).
    SegmentRevenue,
    /// Filtered ORDERS sorted by price descending (Q10-like top-k).
    BigSpenders,
}

impl QueryTemplate {
    /// All templates, in the mix's round-robin order.
    pub const MIX: [QueryTemplate; 4] = [
        QueryTemplate::PricingSummary,
        QueryTemplate::RevenueForecast,
        QueryTemplate::SegmentRevenue,
        QueryTemplate::BigSpenders,
    ];

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            QueryTemplate::PricingSummary => "q1_pricing_summary",
            QueryTemplate::RevenueForecast => "q6_revenue_forecast",
            QueryTemplate::SegmentRevenue => "q3_segment_revenue",
            QueryTemplate::BigSpenders => "q10_big_spenders",
        }
    }

    /// Build the operator tree over `catalog`.
    pub fn plan(self, catalog: &StoredCatalog) -> Box<dyn Operator> {
        match self {
            QueryTemplate::PricingSummary => {
                // SELECT returnflag, linestatus, sum(qty), sum(price),
                //        avg(discount), count(*)
                // FROM lineitem WHERE shipdate <= cutoff
                // GROUP BY returnflag, linestatus
                let scan = ColumnarScan::new(
                    catalog.lineitem.clone(),
                    vec![3, 4, 5, 7, 8, 9], // qty, price, disc, rflag, lstatus, shipdate
                );
                let filtered = Filter::new(
                    Box::new(scan),
                    Expr::le(Expr::Col(5), Expr::Lit(DATE_DAYS - 90)),
                );
                Box::new(HashAggregate::new(
                    Box::new(filtered),
                    vec![3, 4],
                    vec![
                        AggSpec::new(AggFunc::Sum, 0, "sum_qty"),
                        AggSpec::new(AggFunc::Sum, 1, "sum_price"),
                        AggSpec::new(AggFunc::Avg, 2, "avg_disc"),
                        AggSpec::new(AggFunc::Count, 0, "count"),
                    ],
                ))
            }
            QueryTemplate::RevenueForecast => {
                // SELECT sum(price * discount) FROM lineitem
                // WHERE shipdate in year AND discount in 4..=6
                //   AND quantity < 24
                let scan = ColumnarScan::new(
                    catalog.lineitem.clone(),
                    vec![3, 4, 5, 9], // qty, price, disc, shipdate
                );
                let filtered = Filter::new(
                    Box::new(scan),
                    Expr::and(
                        Expr::and(
                            Expr::le(Expr::Lit(365), Expr::Col(3)),
                            Expr::lt(Expr::Col(3), Expr::Lit(730)),
                        ),
                        Expr::and(
                            Expr::and(
                                Expr::le(Expr::Lit(4), Expr::Col(2)),
                                Expr::le(Expr::Col(2), Expr::Lit(6)),
                            ),
                            Expr::lt(Expr::Col(0), Expr::Lit(24)),
                        ),
                    ),
                );
                Box::new(HashAggregate::new(
                    Box::new(filtered),
                    vec![],
                    vec![AggSpec::new(AggFunc::Sum, 1, "revenue")],
                ))
            }
            QueryTemplate::SegmentRevenue => {
                // SELECT mktsegment, sum(totalprice), count(*)
                // FROM customer ⋈ orders GROUP BY mktsegment
                let cust = ColumnarScan::new(catalog.customer.clone(), vec![0, 3]);
                let ords = ColumnarScan::new(catalog.orders.clone(), vec![1, 3]);
                let join = HashJoin::new(Box::new(cust), Box::new(ords), 0, 0);
                Box::new(HashAggregate::new(
                    Box::new(join),
                    vec![1], // mktsegment
                    vec![
                        AggSpec::new(AggFunc::Sum, 3, "revenue"),
                        AggSpec::new(AggFunc::Count, 0, "orders"),
                    ],
                ))
            }
            QueryTemplate::BigSpenders => {
                // SELECT * FROM orders WHERE totalprice > cutoff
                // ORDER BY totalprice DESC
                let scan = ColumnarScan::new(catalog.orders.clone(), vec![0, 1, 3, 4]);
                let filtered = Filter::new(
                    Box::new(scan),
                    Expr::gt(Expr::Col(2), Expr::Lit(50_000_000)),
                );
                Box::new(Sort::new(
                    Box::new(filtered),
                    SortSpec {
                        keys: vec![(2, SortOrder::Desc)],
                        memory_grant: 256 * 1024 * 1024,
                        spill_target: catalog.orders.target,
                    },
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{generate, TpchScale};
    use grail_query::exec::{run_collect, ExecContext};
    use grail_sim::DiskId;

    fn catalog() -> StoredCatalog {
        let tables = generate(TpchScale { orders_rows: 2000 }, 42);
        StoredCatalog::plain(&tables, StorageTarget::Disk(DiskId(0)))
    }

    #[test]
    fn every_template_executes() {
        let cat = catalog();
        for t in QueryTemplate::MIX {
            let mut plan = t.plan(&cat);
            let mut ctx = ExecContext::calibrated();
            let out = run_collect(plan.as_mut(), &mut ctx).unwrap();
            let rows: usize = out.iter().map(|b| b.len()).sum();
            assert!(rows > 0, "{} returned no rows", t.name());
            assert!(ctx.total_cpu().get() > 0, "{} charged no CPU", t.name());
            assert!(ctx.total_io_bytes().get() > 0, "{} charged no IO", t.name());
        }
    }

    #[test]
    fn pricing_summary_has_flag_status_groups() {
        let cat = catalog();
        let mut plan = QueryTemplate::PricingSummary.plan(&cat);
        let mut ctx = ExecContext::calibrated();
        let out = run_collect(plan.as_mut(), &mut ctx).unwrap();
        let rows: usize = out.iter().map(|b| b.len()).sum();
        // 3 returnflags × 2 linestatuses.
        assert_eq!(rows, 6);
    }

    #[test]
    fn big_spenders_sorted_descending() {
        let cat = catalog();
        let mut plan = QueryTemplate::BigSpenders.plan(&cat);
        let mut ctx = ExecContext::calibrated();
        let out = run_collect(plan.as_mut(), &mut ctx).unwrap();
        let prices: Vec<i64> = out.iter().flat_map(|b| b.column(2).to_vec()).collect();
        assert!(prices.windows(2).all(|w| w[0] >= w[1]));
        assert!(prices.iter().all(|p| *p > 50_000_000));
    }

    #[test]
    fn segment_revenue_counts_all_orders() {
        let cat = catalog();
        let mut plan = QueryTemplate::SegmentRevenue.plan(&cat);
        let mut ctx = ExecContext::calibrated();
        let out = run_collect(plan.as_mut(), &mut ctx).unwrap();
        let total_orders: i64 = out.iter().flat_map(|b| b.column(2).to_vec()).sum();
        assert_eq!(total_orders, 2000, "every order joins exactly one customer");
    }

    #[test]
    fn compressed_catalog_same_answers_less_io() {
        let tables = generate(TpchScale { orders_rows: 2000 }, 42);
        let target = StorageTarget::Disk(DiskId(0));
        let plain = StoredCatalog::plain(&tables, target);
        let packed = StoredCatalog::compressed(&tables, target);
        for t in QueryTemplate::MIX {
            let run = |cat: &StoredCatalog| {
                let mut plan = t.plan(cat);
                let mut ctx = ExecContext::calibrated();
                let out = run_collect(plan.as_mut(), &mut ctx).unwrap();
                let rows: Vec<Vec<i64>> = out
                    .iter()
                    .flat_map(|b| (0..b.len()).map(|r| b.row(r)).collect::<Vec<_>>())
                    .collect();
                (rows, ctx.total_io_bytes())
            };
            let (r1, io1) = run(&plain);
            let (r2, io2) = run(&packed);
            assert_eq!(r1, r2, "{} answers must not change", t.name());
            assert!(io2 < io1, "{} compressed must read less", t.name());
        }
    }

    #[test]
    fn fig2_catalog_ratio_matches_paper_band() {
        let tables = generate(TpchScale::toy(), 42);
        let cat = StoredCatalog::fig2(&tables, StorageTarget::Disk(DiskId(0)));
        // Projection ratio over the 5 scanned columns (Fig. 2 trades
        // ~1.8× bandwidth for CPU).
        let proj = crate::tpch::ORDERS_FIG2_PROJECTION;
        let raw = proj.len() as u64 * 8 * cat.orders.table.row_count() as u64;
        let stored = cat.orders.scan_bytes(&proj);
        let ratio = raw as f64 / stored as f64;
        assert!((1.5..2.5).contains(&ratio), "ratio {ratio}");
    }
}
