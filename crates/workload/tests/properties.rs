//! Property tests for workload generation: determinism, domains, and
//! referential integrity at arbitrary scales/seeds.

use grail_power::units::{Bytes, Cycles};
use grail_query::exec::{ReadDemand, Tally};
use grail_sim::driver::IoOp;
use grail_sim::perf::AccessPattern;
use grail_sim::{DiskId, StorageTarget};
use grail_workload::joulesort;
use grail_workload::mix::{arrival_gaps, poisson_arrivals, scale_tally};
use grail_workload::tpch::{generate, TpchScale, DATE_DAYS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generation is bit-deterministic in (scale, seed) and all column
    /// domains hold.
    #[test]
    fn tpch_generation_sound(orders in 16u64..3000, seed in 0u64..1_000_000) {
        let scale = TpchScale { orders_rows: orders };
        let a = generate(scale, seed);
        let b = generate(scale, seed);
        prop_assert_eq!(&a.orders.columns, &b.orders.columns);
        prop_assert_eq!(&a.lineitem.columns, &b.lineitem.columns);
        prop_assert_eq!(a.orders.row_count() as u64, orders);
        prop_assert_eq!(a.lineitem.row_count(), a.orders.row_count() * 4);
        // Domains.
        let customers = scale.customer_rows() as i64;
        for r in 0..a.orders.row_count() {
            prop_assert!((0..customers).contains(&a.orders.columns[1][r]));
            prop_assert!((0..3).contains(&a.orders.columns[2][r]));
            prop_assert!((0..DATE_DAYS).contains(&a.orders.columns[4][r]));
        }
        // Lineitem FKs resolve into parts/suppliers.
        let parts = scale.part_rows() as i64;
        let supps = scale.supplier_rows() as i64;
        for r in 0..a.lineitem.row_count() {
            prop_assert!(a.lineitem.columns[1][r] < parts);
            prop_assert!(a.lineitem.columns[2][r] < supps);
        }
    }

    /// Poisson arrivals are strictly increasing, deterministic, and
    /// their empirical rate converges.
    #[test]
    fn poisson_sound(rate_centi in 1u64..500, seed in 0u64..1000) {
        let rate = rate_centi as f64 / 100.0;
        let n = 2000;
        let a = poisson_arrivals(rate, n, seed);
        prop_assert_eq!(&a, &poisson_arrivals(rate, n, seed));
        prop_assert!(a.windows(2).all(|w| w[0] < w[1]));
        let gaps = arrival_gaps(&a);
        prop_assert_eq!(gaps.len(), n - 1);
        let mean_gap: f64 = gaps.iter().map(|g| g.as_secs_f64()).sum::<f64>() / gaps.len() as f64;
        let expect = 1.0 / rate;
        prop_assert!((mean_gap - expect).abs() < expect * 0.15, "{mean_gap} vs {expect}");
    }

    /// Tally scaling is linear and exact up to rounding.
    #[test]
    fn tally_scaling_linear(cpu in 0u64..1_000_000_000, bytes in 0u64..1_000_000_000, factor in 1.0f64..100_000.0) {
        let t = Tally {
            cpu: Cycles::new(cpu),
            reads: vec![ReadDemand {
                target: StorageTarget::Disk(DiskId(0)),
                bytes: Bytes::new(bytes),
                access: AccessPattern::Sequential,
                op: IoOp::Read,
            }],
        };
        let s = scale_tally(&t, factor);
        let expect_cpu = (cpu as f64 * factor).round();
        prop_assert!((s.cpu.get() as f64 - expect_cpu).abs() <= 1.0);
        let expect_bytes = (bytes as f64 * factor).round();
        prop_assert!((s.reads[0].bytes.get() as f64 - expect_bytes).abs() <= 1.0);
    }

    /// JouleSort records: deterministic, right shape, near-uniform keys.
    #[test]
    fn joulesort_records_sound(n in 1u64..20_000, seed in 0u64..1000) {
        let t = joulesort::records(n, seed);
        prop_assert_eq!(t.row_count() as u64, n);
        prop_assert_eq!(t.raw_bytes(), n * joulesort::RECORD_BYTES);
        prop_assert_eq!(&t.columns, &joulesort::records(n, seed).columns);
    }
}
