//! Property tests for the consolidation policies.

use grail_power::units::{SimDuration, SimInstant};
use grail_scheduler::admission::{AdmissionPolicy, BatchWindow};
use grail_scheduler::cluster::{place, refresh_cycle_fleet, PlacementPolicy};
use grail_scheduler::governor::{gap_energy, IdleGovernor, OracleGovernor, ParkCosts};
use grail_scheduler::sharing::share_scans;
use proptest::prelude::*;

fn sorted_arrivals() -> impl Strategy<Value = Vec<SimInstant>> {
    proptest::collection::vec(0u64..1_000_000, 0..60).prop_map(|mut ms| {
        ms.sort_unstable();
        ms.into_iter()
            .map(|m| SimInstant::EPOCH + SimDuration::from_millis(m))
            .collect()
    })
}

proptest! {
    /// Batched admission never dispatches before arrival, preserves
    /// order and count, and never produces more batches than arrivals.
    #[test]
    fn admission_invariants(arrivals in sorted_arrivals(), window_ms in 1u64..120_000) {
        let policy = AdmissionPolicy::Batched(BatchWindow {
            window: SimDuration::from_millis(window_ms),
        });
        let out = policy.schedule(&arrivals);
        prop_assert_eq!(out.dispatches.len(), arrivals.len());
        prop_assert!(out.batches <= arrivals.len().max(1));
        for (d, a) in out.dispatches.iter().zip(&arrivals) {
            prop_assert!(d >= a);
            // Bounded delay: within one window.
            prop_assert!(
                d.saturating_duration_since(*a) <= SimDuration::from_millis(window_ms)
            );
        }
        // Dispatches are nondecreasing.
        prop_assert!(out.dispatches.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The oracle governor never loses to staying idle, on any gap.
    #[test]
    fn oracle_never_loses(gap_ms in 1u64..10_000_000) {
        let costs = ParkCosts::scsi_15k();
        let start = SimInstant::EPOCH;
        let end = start + SimDuration::from_millis(gap_ms);
        let plan = OracleGovernor.plan_gap(start, end, &costs);
        let with = gap_energy(plan.as_ref(), start, end, &costs);
        let without = gap_energy(None, start, end, &costs);
        prop_assert!(with.joules() <= without.joules() + 1e-9,
            "gap {gap_ms}ms: {with} vs {without}");
    }

    /// Scan sharing: per-query latency always equals the solo latency,
    /// device busy time never exceeds solo, and savings ∈ [0, 1).
    #[test]
    fn sharing_invariants(arrivals in sorted_arrivals(), dur_ms in 1u64..60_000) {
        let dur = SimDuration::from_millis(dur_ms);
        let out = share_scans(&arrivals, dur);
        prop_assert_eq!(out.completions.len(), arrivals.len());
        for (c, a) in out.completions.iter().zip(&arrivals) {
            prop_assert_eq!(c.saturating_duration_since(*a), dur);
        }
        prop_assert!(out.shared_busy_secs <= out.solo_busy_secs + 1e-9);
        prop_assert!(out.physical_scans <= arrivals.len());
        let s = out.savings();
        prop_assert!((0.0..1.0).contains(&s) || arrivals.is_empty());
    }

    /// Cluster placement: demand conserved, capacities respected, and
    /// consolidation never draws more power than spread.
    #[test]
    fn cluster_invariants(frac in 0.0f64..1.0) {
        let fleet = refresh_cycle_fleet();
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        let demand = total * frac;
        let spread = place(&fleet, demand, PlacementPolicy::Spread).expect("fits");
        let packed = place(&fleet, demand, PlacementPolicy::Consolidate).expect("fits");
        for p in [&spread, &packed] {
            let served: f64 = p.loads.iter().sum();
            prop_assert!((served - demand).abs() < 1e-6);
            for (m, l) in fleet.iter().zip(&p.loads) {
                prop_assert!(*l <= m.capacity + 1e-9);
                prop_assert!(*l >= 0.0);
            }
        }
        prop_assert!(
            packed.power(&fleet).get() <= spread.power(&fleet).get() + 1e-9
        );
    }
}
