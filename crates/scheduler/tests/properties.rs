//! Property tests for the consolidation policies.

use grail_power::units::{SimDuration, SimInstant};
use grail_scheduler::admission::{AdmissionPolicy, BatchWindow};
use grail_scheduler::chaos::{run_chaos, ChaosPolicy};
use grail_scheduler::cluster::{
    chaos_fleet, fail_over, fail_over_multi, place, refresh_cycle_fleet, ClusterError,
    PlacementPolicy,
};
use grail_scheduler::governor::{gap_energy, IdleGovernor, OracleGovernor, ParkCosts};
use grail_scheduler::sharing::share_scans;
use grail_sim::fault::{ChaosEvent, ChaosEventKind, ChaosSchedule};
use grail_trace::Tracer;
use proptest::prelude::*;

fn sorted_arrivals() -> impl Strategy<Value = Vec<SimInstant>> {
    proptest::collection::vec(0u64..1_000_000, 0..60).prop_map(|mut ms| {
        ms.sort_unstable();
        ms.into_iter()
            .map(|m| SimInstant::EPOCH + SimDuration::from_millis(m))
            .collect()
    })
}

proptest! {
    /// Batched admission never dispatches before arrival, preserves
    /// order and count, and never produces more batches than arrivals.
    #[test]
    fn admission_invariants(arrivals in sorted_arrivals(), window_ms in 1u64..120_000) {
        let policy = AdmissionPolicy::Batched(BatchWindow {
            window: SimDuration::from_millis(window_ms),
        });
        let out = policy.schedule(&arrivals);
        prop_assert_eq!(out.dispatches.len(), arrivals.len());
        prop_assert!(out.batches <= arrivals.len().max(1));
        for (d, a) in out.dispatches.iter().zip(&arrivals) {
            prop_assert!(d >= a);
            // Bounded delay: within one window.
            prop_assert!(
                d.saturating_duration_since(*a) <= SimDuration::from_millis(window_ms)
            );
        }
        // Dispatches are nondecreasing.
        prop_assert!(out.dispatches.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The oracle governor never loses to staying idle, on any gap.
    #[test]
    fn oracle_never_loses(gap_ms in 1u64..10_000_000) {
        let costs = ParkCosts::scsi_15k();
        let start = SimInstant::EPOCH;
        let end = start + SimDuration::from_millis(gap_ms);
        let plan = OracleGovernor.plan_gap(start, end, &costs);
        let with = gap_energy(plan.as_ref(), start, end, &costs);
        let without = gap_energy(None, start, end, &costs);
        prop_assert!(with.joules() <= without.joules() + 1e-9,
            "gap {gap_ms}ms: {with} vs {without}");
    }

    /// Scan sharing: per-query latency always equals the solo latency,
    /// device busy time never exceeds solo, and savings ∈ [0, 1).
    #[test]
    fn sharing_invariants(arrivals in sorted_arrivals(), dur_ms in 1u64..60_000) {
        let dur = SimDuration::from_millis(dur_ms);
        let out = share_scans(&arrivals, dur);
        prop_assert_eq!(out.completions.len(), arrivals.len());
        for (c, a) in out.completions.iter().zip(&arrivals) {
            prop_assert_eq!(c.saturating_duration_since(*a), dur);
        }
        prop_assert!(out.shared_busy_secs <= out.solo_busy_secs + 1e-9);
        prop_assert!(out.physical_scans <= arrivals.len());
        let s = out.savings();
        prop_assert!((0.0..1.0).contains(&s) || arrivals.is_empty());
    }

    /// Cluster placement: demand conserved, capacities respected, and
    /// consolidation never draws more power than spread.
    #[test]
    fn cluster_invariants(frac in 0.0f64..1.0) {
        let fleet = refresh_cycle_fleet();
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        let demand = total * frac;
        let spread = place(&fleet, demand, PlacementPolicy::Spread).expect("fits");
        let packed = place(&fleet, demand, PlacementPolicy::Consolidate).expect("fits");
        for p in [&spread, &packed] {
            let served: f64 = p.loads.iter().sum();
            prop_assert!((served - demand).abs() < 1e-6);
            for (m, l) in fleet.iter().zip(&p.loads) {
                prop_assert!(*l <= m.capacity + 1e-9);
                prop_assert!(*l >= 0.0);
            }
        }
        prop_assert!(
            packed.power(&fleet).get() <= spread.power(&fleet).get() + 1e-9
        );
    }

    /// Multi-machine fail-over: work is conserved (`served + shed ==
    /// offered`), dead machines carry nothing, capacities hold, cold
    /// boots only hit previously-dark machines, and the recovery bill is
    /// exactly the sum of the booted machines' boot energies.
    #[test]
    fn multi_failover_invariants(
        frac in 0.0f64..1.0,
        dead_mask in 0u16..512,
    ) {
        let fleet = refresh_cycle_fleet();
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        let demand = total * frac;
        let before = place(&fleet, demand, PlacementPolicy::Consolidate).expect("fits");
        let failed: Vec<usize> =
            (0..fleet.len()).filter(|i| dead_mask & (1 << i) != 0).collect();
        let fo = fail_over_multi(&fleet, &before, &failed, PlacementPolicy::Consolidate)
            .expect("valid indices never error");
        let offered: f64 = before.loads.iter().sum();
        prop_assert!(
            (fo.served + fo.shed - offered).abs() < 1e-6 * offered.max(1.0),
            "served {} + shed {} != offered {offered}", fo.served, fo.shed
        );
        prop_assert!(fo.shed >= 0.0 && fo.served >= 0.0);
        for &i in &failed {
            prop_assert_eq!(fo.placement.loads[i], 0.0);
            prop_assert!(!fo.placement.powered[i]);
        }
        for (m, l) in fleet.iter().zip(&fo.placement.loads) {
            prop_assert!(*l >= 0.0 && *l <= m.capacity + 1e-9);
        }
        let mut boot_sum = 0.0;
        for &b in &fo.booted {
            prop_assert!(!before.powered[b], "cold boot on an already-hot machine");
            prop_assert!(!failed.contains(&b), "booted a dead machine");
            boot_sum += fleet[b].boot_energy.joules();
        }
        prop_assert!((fo.boot_energy.joules() - boot_sum).abs() < 1e-9);
    }

    /// On a single survivable failure, `fail_over_multi(&[f])` agrees
    /// with the original `fail_over(f)`; when `fail_over` reports
    /// `Overloaded`, the multi path serves what it can and sheds the
    /// rest instead of erroring.
    #[test]
    fn multi_failover_matches_single(frac in 0.05f64..1.0, failed in 0usize..9) {
        let fleet = refresh_cycle_fleet();
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        let demand = total * frac;
        let before = place(&fleet, demand, PlacementPolicy::Consolidate).expect("fits");
        let multi = fail_over_multi(&fleet, &before, &[failed], PlacementPolicy::Consolidate)
            .expect("valid index");
        match fail_over(&fleet, &before, failed, PlacementPolicy::Consolidate) {
            Ok(single) => {
                prop_assert_eq!(&multi.placement.loads, &single.placement.loads);
                prop_assert_eq!(&multi.booted, &single.booted);
                prop_assert_eq!(multi.boot_energy, single.boot_energy);
                prop_assert!((multi.displaced - single.displaced).abs() < 1e-9);
                prop_assert!(multi.shed < 1e-6);
            }
            Err(ClusterError::Overloaded) => {
                prop_assert!(multi.shed > 0.0, "overload must shed, not vanish");
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// The chaos engine conserves work (`served + shed + failed ==
    /// offered`) and is deterministic for any scripted crash/restart
    /// sequence.
    #[test]
    fn chaos_conservation_and_determinism(
        frac in 0.0f64..1.0,
        crashes in proptest::collection::vec((0u32..8, 1u64..40_000, 1u64..5_000), 0..6),
    ) {
        let fleet = chaos_fleet(4, 2);
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        let mut events = Vec::new();
        for &(m, at_s, down_s) in &crashes {
            let down = SimInstant::EPOCH + SimDuration::from_secs(at_s);
            events.push(ChaosEvent {
                at: down,
                kind: ChaosEventKind::MachineCrash { machine: m },
            });
            events.push(ChaosEvent {
                at: down + SimDuration::from_secs(down_s),
                kind: ChaosEventKind::MachineUp { machine: m },
            });
        }
        let schedule = ChaosSchedule::scripted(
            fleet.len() as u32,
            4,
            SimDuration::from_secs(50_000),
            events,
        );
        let policy = ChaosPolicy::default();
        let r1 = run_chaos(&fleet, &schedule, total * frac, &policy, &mut Tracer::off())
            .expect("valid run");
        let r2 = run_chaos(&fleet, &schedule, total * frac, &policy, &mut Tracer::off())
            .expect("valid run");
        prop_assert!(
            r1.conservation_error() <= 1e-6 * r1.offered.max(1.0),
            "served {} + shed {} + failed {} != offered {}",
            r1.served, r1.shed, r1.failed, r1.offered
        );
        prop_assert!(r1.availability() >= 0.0 && r1.availability() <= 1.0 + 1e-9);
        prop_assert!(r1.recovery_energy().joules() <= r1.total_energy().joules() + 1e-9);
        prop_assert_eq!(r1, r2);
    }
}
