//! Admission policies: when an arriving query is actually dispatched.
//!
//! Sec. 4.2 expects "workload management policies that encourage
//! identifiable periods of low and high activity — perhaps batching
//! requests at the cost of increased latency". [`BatchWindow`] is that
//! policy; [`AdmissionPolicy::Immediate`] is the baseline.

use grail_power::units::{SimDuration, SimInstant};
use serde::Serialize;

/// An admission policy mapping arrivals to dispatch times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum AdmissionPolicy {
    /// Dispatch on arrival.
    Immediate,
    /// Hold arrivals and release them in batches.
    Batched(BatchWindow),
}

/// Batching configuration: the first arrival opens a window; everything
/// arriving within it is released together when it closes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BatchWindow {
    /// Window length.
    pub window: SimDuration,
}

/// The dispatch schedule an admission policy produced.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionOutcome {
    /// Dispatch instant per arrival (same order as input).
    pub dispatches: Vec<SimInstant>,
    /// Number of release points (batches).
    pub batches: usize,
}

impl AdmissionOutcome {
    /// Added latency per query (dispatch − arrival).
    pub fn added_latency(&self, arrivals: &[SimInstant]) -> Vec<SimDuration> {
        self.dispatches
            .iter()
            .zip(arrivals)
            .map(|(d, a)| d.saturating_duration_since(*a))
            .collect()
    }

    /// Mean added latency in seconds.
    pub fn mean_added_latency_secs(&self, arrivals: &[SimInstant]) -> f64 {
        if arrivals.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .added_latency(arrivals)
            .iter()
            .map(|d| d.as_secs_f64())
            .sum();
        total / arrivals.len() as f64
    }
}

impl AdmissionPolicy {
    /// Apply the policy to sorted `arrivals`.
    ///
    /// # Panics
    /// Panics if arrivals are not sorted ascending.
    pub fn schedule(&self, arrivals: &[SimInstant]) -> AdmissionOutcome {
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "arrivals must be sorted"
        );
        match self {
            AdmissionPolicy::Immediate => AdmissionOutcome {
                dispatches: arrivals.to_vec(),
                batches: arrivals.len(),
            },
            AdmissionPolicy::Batched(bw) => {
                let mut dispatches = Vec::with_capacity(arrivals.len());
                let mut batches = 0usize;
                let mut i = 0usize;
                while i < arrivals.len() {
                    let release = arrivals[i] + bw.window;
                    let mut j = i;
                    while j < arrivals.len() && arrivals[j] <= release {
                        dispatches.push(release);
                        j += 1;
                    }
                    batches += 1;
                    i = j;
                }
                AdmissionOutcome {
                    dispatches,
                    batches,
                }
            }
        }
    }

    /// The policy's display name.
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::Immediate => "immediate",
            AdmissionPolicy::Batched(_) => "batched",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: f64) -> SimInstant {
        SimInstant::from_secs_f64(s)
    }

    #[test]
    fn immediate_is_identity() {
        let arrivals = vec![at(1.0), at(2.0), at(5.0)];
        let out = AdmissionPolicy::Immediate.schedule(&arrivals);
        assert_eq!(out.dispatches, arrivals);
        assert_eq!(out.batches, 3);
        assert_eq!(out.mean_added_latency_secs(&arrivals), 0.0);
    }

    #[test]
    fn batching_groups_within_windows() {
        let arrivals = vec![at(0.0), at(1.0), at(2.0), at(10.0), at(11.0)];
        let out = AdmissionPolicy::Batched(BatchWindow {
            window: SimDuration::from_secs(3),
        })
        .schedule(&arrivals);
        // First window opens at 0, closes at 3: takes 0,1,2.
        // Second opens at 10, closes at 13: takes 10,11.
        assert_eq!(out.batches, 2);
        assert_eq!(
            out.dispatches,
            vec![at(3.0); 3]
                .into_iter()
                .chain(vec![at(13.0); 2])
                .collect::<Vec<_>>()
        );
        // Added latency: 3,2,1,3,2 → mean 2.2.
        assert!((out.mean_added_latency_secs(&arrivals) - 2.2).abs() < 1e-9);
    }

    #[test]
    fn batching_never_dispatches_before_arrival() {
        let arrivals: Vec<SimInstant> = (0..50).map(|i| at(i as f64 * 0.7)).collect();
        let out = AdmissionPolicy::Batched(BatchWindow {
            window: SimDuration::from_secs(2),
        })
        .schedule(&arrivals);
        for (d, a) in out.dispatches.iter().zip(&arrivals) {
            assert!(d >= a);
        }
        assert!(out.batches < arrivals.len(), "batching must coalesce");
    }

    #[test]
    fn empty_arrivals() {
        let out = AdmissionPolicy::Batched(BatchWindow {
            window: SimDuration::from_secs(1),
        })
        .schedule(&[]);
        assert!(out.dispatches.is_empty());
        assert_eq!(out.batches, 0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_rejected() {
        let _ = AdmissionPolicy::Immediate.schedule(&[at(2.0), at(1.0)]);
    }
}
