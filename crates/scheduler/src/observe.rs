//! Bridge from scheduler decisions to trace events.
//!
//! The scheduler's policies are pure functions over plain data — they
//! know nothing about tracing. This module converts their outcomes
//! ([`Placement`], [`Failover`], [`AdmissionOutcome`]) into
//! [`grail_trace`] events after the fact, so callers that carry a
//! [`Tracer`] can make every consolidation and fail-over decision
//! visible without the policies themselves growing a tracing
//! dependency in their signatures.

use crate::admission::{AdmissionOutcome, AdmissionPolicy};
use crate::cluster::{Failover, Machine, Placement};
use grail_power::units::SimInstant;
use grail_trace::{Category, TraceEvent, TraceTime, Tracer, Track};

#[inline]
fn tt(at: SimInstant) -> TraceTime {
    TraceTime::from_nanos(at.as_nanos())
}

/// Record a computed placement: how many machines stay powered, the
/// fleet power, and the resulting efficiency.
pub fn record_placement(
    tracer: &mut Tracer,
    at: SimInstant,
    fleet: &[Machine],
    placement: &Placement,
    policy: &'static str,
) {
    tracer.count("scheduler.placements", 1);
    tracer.emit(Category::Scheduler, || {
        let demand: f64 = placement.loads.iter().sum();
        TraceEvent::instant(tt(at), Category::Scheduler, "scheduler.placement", {
            Track::Main
        })
        .arg("policy", policy)
        .arg("powered", placement.powered_count() as u64)
        .arg("fleet", fleet.len() as u64)
        .arg("demand", demand)
        .arg("power_w", placement.power(fleet).get())
        .arg("efficiency", placement.efficiency(fleet))
    });
}

/// Record a fail-over: the displaced load, which machines cold-booted,
/// and what the recovery cost in energy and latency.
pub fn record_failover(tracer: &mut Tracer, at: SimInstant, failed: usize, failover: &Failover) {
    tracer.count("scheduler.failovers", 1);
    tracer.count("scheduler.cold_boots", failover.booted.len() as u64);
    tracer.emit(Category::Scheduler, || {
        TraceEvent::instant(tt(at), Category::Scheduler, "scheduler.failover", {
            Track::Main
        })
        .arg("failed", failed as u64)
        .arg("displaced", failover.displaced)
        .arg("booted", failover.booted.len() as u64)
        .arg("boot_j", failover.boot_energy.joules())
        .arg("boot_latency_s", failover.boot_latency.as_secs_f64())
    });
}

/// Record an admission schedule: one instant per release point (batch),
/// carrying the batch size, plus a summary instant with the mean added
/// latency the batching bought.
pub fn record_admission(
    tracer: &mut Tracer,
    policy: &AdmissionPolicy,
    arrivals: &[SimInstant],
    outcome: &AdmissionOutcome,
) {
    tracer.count("scheduler.admitted", outcome.dispatches.len() as u64);
    tracer.count("scheduler.batches", outcome.batches as u64);
    if !tracer.enabled(Category::Scheduler) || outcome.dispatches.is_empty() {
        return;
    }
    // One instant per distinct release point; dispatches are
    // nondecreasing, so a linear group-by suffices.
    let mut i = 0usize;
    while i < outcome.dispatches.len() {
        let release = outcome.dispatches[i];
        let mut j = i;
        while j < outcome.dispatches.len() && outcome.dispatches[j] == release {
            j += 1;
        }
        let size = (j - i) as u64;
        tracer.emit(Category::Scheduler, || {
            TraceEvent::instant(tt(release), Category::Scheduler, "scheduler.release", {
                Track::Main
            })
            .arg("policy", policy.name())
            .arg("queries", size)
        });
        i = j;
    }
    let Some(&last) = outcome.dispatches.last() else {
        return; // unreachable: emptiness checked above
    };
    tracer.emit(Category::Scheduler, || {
        TraceEvent::instant(tt(last), Category::Scheduler, "scheduler.admission", {
            Track::Main
        })
        .arg("policy", policy.name())
        .arg("queries", outcome.dispatches.len() as u64)
        .arg("batches", outcome.batches as u64)
        .arg(
            "mean_added_latency_s",
            outcome.mean_added_latency_secs(arrivals),
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::BatchWindow;
    use crate::cluster::{fail_over, place, refresh_cycle_fleet, PlacementPolicy};
    use grail_power::units::SimDuration;
    use grail_trace::Recorder;

    fn at(s: f64) -> SimInstant {
        SimInstant::from_secs_f64(s)
    }

    #[test]
    fn placement_and_failover_events_recorded() {
        let fleet = refresh_cycle_fleet();
        let p = place(&fleet, 4000.0, PlacementPolicy::Consolidate).expect("fits");
        let fo = fail_over(&fleet, &p, 4, PlacementPolicy::Consolidate).expect("survivable");
        let mut tracer = Tracer::on(Recorder::new(64));
        record_placement(&mut tracer, at(0.0), &fleet, &p, "consolidate");
        record_failover(&mut tracer, at(10.0), 4, &fo);
        let rec = tracer.take().expect("tracer is on");
        let names: Vec<&str> = rec.events().map(|e| e.name).collect();
        assert_eq!(names, vec!["scheduler.placement", "scheduler.failover"]);
        assert_eq!(rec.metrics().counter("scheduler.placements"), 1);
        assert_eq!(rec.metrics().counter("scheduler.failovers"), 1);
        assert!(rec.metrics().counter("scheduler.cold_boots") > 0);
    }

    #[test]
    fn admission_releases_group_by_batch() {
        let arrivals = vec![at(0.0), at(1.0), at(2.0), at(10.0)];
        let policy = AdmissionPolicy::Batched(BatchWindow {
            window: SimDuration::from_secs(3),
        });
        let outcome = policy.schedule(&arrivals);
        let mut tracer = Tracer::on(Recorder::new(64));
        record_admission(&mut tracer, &policy, &arrivals, &outcome);
        let rec = tracer.take().expect("tracer is on");
        let releases: Vec<_> = rec
            .events()
            .filter(|e| e.name == "scheduler.release")
            .collect();
        assert_eq!(releases.len(), 2, "two batches, two release instants");
        assert_eq!(rec.metrics().counter("scheduler.admitted"), 4);
        assert_eq!(rec.metrics().counter("scheduler.batches"), 2);
        assert!(rec.events().any(|e| e.name == "scheduler.admission"));
    }

    #[test]
    fn off_tracer_records_nothing() {
        let fleet = refresh_cycle_fleet();
        let p = place(&fleet, 1000.0, PlacementPolicy::Spread).expect("fits");
        let mut tracer = Tracer::off();
        record_placement(&mut tracer, at(0.0), &fleet, &p, "spread");
        assert!(tracer.take().is_none());
    }
}
