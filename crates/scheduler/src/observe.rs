//! Bridge from scheduler decisions to trace events.
//!
//! The scheduler's policies are pure functions over plain data — they
//! know nothing about tracing. This module converts their outcomes
//! ([`Placement`], [`Failover`], [`AdmissionOutcome`]) into
//! [`grail_trace`] events after the fact, so callers that carry a
//! [`Tracer`] can make every consolidation and fail-over decision
//! visible without the policies themselves growing a tracing
//! dependency in their signatures.

use crate::admission::{AdmissionOutcome, AdmissionPolicy};
use crate::cluster::{Failover, Machine, Placement};
use grail_power::units::{Joules, SimDuration, SimInstant};
use grail_sim::fault::{ChaosEvent, ChaosEventKind};
use grail_trace::{Category, TraceEvent, TraceTime, Tracer, Track};

#[inline]
fn tt(at: SimInstant) -> TraceTime {
    TraceTime::from_nanos(at.as_nanos())
}

/// Record a computed placement: how many machines stay powered, the
/// fleet power, and the resulting efficiency.
pub fn record_placement(
    tracer: &mut Tracer,
    at: SimInstant,
    fleet: &[Machine],
    placement: &Placement,
    policy: &'static str,
) {
    tracer.count("scheduler.placements", 1);
    tracer.emit(Category::Scheduler, || {
        let demand: f64 = placement.loads.iter().sum();
        TraceEvent::instant(tt(at), Category::Scheduler, "scheduler.placement", {
            Track::Main
        })
        .arg("policy", policy)
        .arg("powered", placement.powered_count() as u64)
        .arg("fleet", fleet.len() as u64)
        .arg("demand", demand)
        .arg("power_w", placement.power(fleet).get())
        .arg("efficiency", placement.efficiency(fleet))
    });
}

/// Record a fail-over: the displaced load, which machines cold-booted,
/// and what the recovery cost in energy and latency.
pub fn record_failover(tracer: &mut Tracer, at: SimInstant, failed: usize, failover: &Failover) {
    tracer.count("scheduler.failovers", 1);
    tracer.count("scheduler.cold_boots", failover.booted.len() as u64);
    tracer.emit(Category::Scheduler, || {
        TraceEvent::instant(tt(at), Category::Scheduler, "scheduler.failover", {
            Track::Main
        })
        .arg("failed", failed as u64)
        .arg("displaced", failover.displaced)
        .arg("booted", failover.booted.len() as u64)
        .arg("boot_j", failover.boot_energy.joules())
        .arg("boot_latency_s", failover.boot_latency.as_secs_f64())
    });
}

/// Record an admission schedule: one instant per release point (batch),
/// carrying the batch size, plus a summary instant with the mean added
/// latency the batching bought.
pub fn record_admission(
    tracer: &mut Tracer,
    policy: &AdmissionPolicy,
    arrivals: &[SimInstant],
    outcome: &AdmissionOutcome,
) {
    tracer.count("scheduler.admitted", outcome.dispatches.len() as u64);
    tracer.count("scheduler.batches", outcome.batches as u64);
    if !tracer.enabled(Category::Scheduler) || outcome.dispatches.is_empty() {
        return;
    }
    // One instant per distinct release point; dispatches are
    // nondecreasing, so a linear group-by suffices.
    let mut i = 0usize;
    while i < outcome.dispatches.len() {
        let release = outcome.dispatches[i];
        let mut j = i;
        while j < outcome.dispatches.len() && outcome.dispatches[j] == release {
            j += 1;
        }
        let size = (j - i) as u64;
        tracer.emit(Category::Scheduler, || {
            TraceEvent::instant(tt(release), Category::Scheduler, "scheduler.release", {
                Track::Main
            })
            .arg("policy", policy.name())
            .arg("queries", size)
        });
        i = j;
    }
    let Some(&last) = outcome.dispatches.last() else {
        return; // unreachable: emptiness checked above
    };
    tracer.emit(Category::Scheduler, || {
        TraceEvent::instant(tt(last), Category::Scheduler, "scheduler.admission", {
            Track::Main
        })
        .arg("policy", policy.name())
        .arg("queries", outcome.dispatches.len() as u64)
        .arg("batches", outcome.batches as u64)
        .arg(
            "mean_added_latency_s",
            outcome.mean_added_latency_secs(arrivals),
        )
    });
}

/// Record a chaos-schedule event (crash, restart, outage, brownout,
/// surge) as a fault instant named after the event kind.
pub fn record_chaos_event(tracer: &mut Tracer, ev: &ChaosEvent) {
    tracer.count("chaos.events", 1);
    // Hour-windowed event rate: storms show up as spikes in the scrape
    // series without anyone post-processing the raw counter.
    tracer.rate("chaos.event_rate", 3_600_000_000_000, ev.at.as_nanos(), 1);
    tracer.emit(Category::Fault, || {
        let e = TraceEvent::instant(tt(ev.at), Category::Fault, ev.kind.name(), Track::Main);
        match ev.kind {
            ChaosEventKind::MachineCrash { machine } | ChaosEventKind::MachineUp { machine } => {
                e.arg("machine", machine as u64)
            }
            ChaosEventKind::DomainDown { domain } | ChaosEventKind::DomainUp { domain } => {
                e.arg("domain", domain as u64)
            }
            ChaosEventKind::BrownoutStart { cap_frac } => e.arg("cap_frac", cap_frac),
            ChaosEventKind::SurgeStart { factor } => e.arg("factor", factor),
            ChaosEventKind::BrownoutEnd | ChaosEventKind::SurgeEnd => e,
        }
    });
}

/// Record a chaos-engine re-placement: what is powered, served, shed,
/// and at what replication level, after reacting to an event.
pub fn record_chaos_placement(
    tracer: &mut Tracer,
    at: SimInstant,
    powered: u32,
    served_rate: f64,
    shed_rate: f64,
    replicas: u32,
) {
    tracer.count("chaos.placements", 1);
    tracer.gauge("chaos.served_rate", served_rate);
    tracer.gauge("chaos.shed_rate", shed_rate);
    tracer.gauge("chaos.replicas", f64::from(replicas));
    tracer.emit(Category::Scheduler, || {
        TraceEvent::instant(tt(at), Category::Scheduler, "chaos.placement", Track::Main)
            .arg("powered", powered as u64)
            .arg("served_rate", served_rate)
            .arg("shed_rate", shed_rate)
            .arg("replicas", replicas as u64)
    });
}

/// Record a circuit-breaker trip: a flapping machine held in quarantine
/// after restart instead of rejoining the fleet.
pub fn record_chaos_breaker(
    tracer: &mut Tracer,
    at: SimInstant,
    machine: usize,
    trips: u32,
    hold: SimDuration,
) {
    tracer.count("chaos.breaker_trips", 1);
    tracer.emit(Category::Scheduler, || {
        TraceEvent::instant(tt(at), Category::Scheduler, "chaos.breaker", Track::Main)
            .arg("machine", machine as u64)
            .arg("trips", trips as u64)
            .arg("quarantine_s", hold.as_secs_f64())
    });
}

/// Record a re-dispatch attempt for stranded work: recovered (with the
/// hedged replay energy billed to Recovery) or finally failed.
pub fn record_chaos_redispatch(
    tracer: &mut Tracer,
    at: SimInstant,
    work: f64,
    attempt: u32,
    recovered: bool,
    replay: Joules,
) {
    tracer.count("chaos.redispatches", 1);
    tracer.emit(Category::Scheduler, || {
        TraceEvent::instant(tt(at), Category::Scheduler, "chaos.redispatch", Track::Main)
            .arg("work", work)
            .arg("attempt", attempt as u64)
            .arg("recovered", recovered as u64)
            .arg("replay_j", replay.joules())
    });
}

/// Record a recovery cold boot billed by the chaos engine.
pub fn record_chaos_boot(tracer: &mut Tracer, at: SimInstant, machine: usize, boot: Joules) {
    tracer.count("chaos.cold_boots", 1);
    tracer.emit(Category::Scheduler, || {
        TraceEvent::instant(tt(at), Category::Scheduler, "chaos.cold_boot", Track::Main)
            .arg("machine", machine as u64)
            .arg("boot_j", boot.joules())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::BatchWindow;
    use crate::cluster::{fail_over, place, refresh_cycle_fleet, PlacementPolicy};
    use grail_power::units::SimDuration;
    use grail_trace::Recorder;

    fn at(s: f64) -> SimInstant {
        SimInstant::from_secs_f64(s)
    }

    #[test]
    fn placement_and_failover_events_recorded() {
        let fleet = refresh_cycle_fleet();
        let p = place(&fleet, 4000.0, PlacementPolicy::Consolidate).expect("fits");
        let fo = fail_over(&fleet, &p, 4, PlacementPolicy::Consolidate).expect("survivable");
        let mut tracer = Tracer::on(Recorder::new(64));
        record_placement(&mut tracer, at(0.0), &fleet, &p, "consolidate");
        record_failover(&mut tracer, at(10.0), 4, &fo);
        let rec = tracer.take().expect("tracer is on");
        let names: Vec<&str> = rec.events().map(|e| e.name).collect();
        assert_eq!(names, vec!["scheduler.placement", "scheduler.failover"]);
        assert_eq!(rec.metrics().counter("scheduler.placements"), 1);
        assert_eq!(rec.metrics().counter("scheduler.failovers"), 1);
        assert!(rec.metrics().counter("scheduler.cold_boots") > 0);
    }

    #[test]
    fn admission_releases_group_by_batch() {
        let arrivals = vec![at(0.0), at(1.0), at(2.0), at(10.0)];
        let policy = AdmissionPolicy::Batched(BatchWindow {
            window: SimDuration::from_secs(3),
        });
        let outcome = policy.schedule(&arrivals);
        let mut tracer = Tracer::on(Recorder::new(64));
        record_admission(&mut tracer, &policy, &arrivals, &outcome);
        let rec = tracer.take().expect("tracer is on");
        let releases: Vec<_> = rec
            .events()
            .filter(|e| e.name == "scheduler.release")
            .collect();
        assert_eq!(releases.len(), 2, "two batches, two release instants");
        assert_eq!(rec.metrics().counter("scheduler.admitted"), 4);
        assert_eq!(rec.metrics().counter("scheduler.batches"), 2);
        assert!(rec.events().any(|e| e.name == "scheduler.admission"));
    }

    #[test]
    fn chaos_helpers_emit_named_events_and_counters() {
        let mut tracer = Tracer::on(Recorder::new(64));
        let ev = ChaosEvent {
            at: at(5.0),
            kind: ChaosEventKind::MachineCrash { machine: 3 },
        };
        record_chaos_event(&mut tracer, &ev);
        record_chaos_placement(&mut tracer, at(5.0), 7, 1000.0, 250.0, 2);
        record_chaos_breaker(&mut tracer, at(6.0), 3, 2, SimDuration::from_secs(300));
        record_chaos_redispatch(&mut tracer, at(7.0), 42.0, 1, true, Joules::new(10.0));
        record_chaos_boot(&mut tracer, at(8.0), 5, Joules::new(9_000.0));
        let rec = tracer.take().expect("tracer is on");
        let names: Vec<&str> = rec.events().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "chaos.machine_crash",
                "chaos.placement",
                "chaos.breaker",
                "chaos.redispatch",
                "chaos.cold_boot"
            ]
        );
        assert_eq!(rec.metrics().counter("chaos.events"), 1);
        assert_eq!(rec.metrics().counter("chaos.breaker_trips"), 1);
        assert_eq!(rec.metrics().counter("chaos.redispatches"), 1);
        assert_eq!(rec.metrics().counter("chaos.cold_boots"), 1);
    }

    #[test]
    fn off_tracer_records_nothing() {
        let fleet = refresh_cycle_fleet();
        let p = place(&fleet, 1000.0, PlacementPolicy::Spread).expect("fits");
        let mut tracer = Tracer::off();
        record_placement(&mut tracer, at(0.0), &fleet, &p, "spread");
        assert!(tracer.take().is_none());
    }
}
