//! Scan sharing: attach queries to in-flight scans.
//!
//! Sec. 5.2: "techniques that enable and encourage work sharing across
//! queries will become increasingly attractive". The circular-scan
//! model: a full table scan takes `duration`; a query arriving while a
//! scan is in flight attaches mid-stream, reads to the end, and the scan
//! wraps around to serve its missed prefix. Each attached query still
//! finishes `duration` after it arrived (no latency penalty), but the
//! device performs one continuous pass instead of N separate ones.

use grail_power::units::{SimDuration, SimInstant};
use serde::Serialize;

/// The outcome of sharing a set of scan queries.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SharingOutcome {
    /// Per-query completion times (same order as arrivals).
    pub completions: Vec<SimInstant>,
    /// Number of physical scan passes started.
    pub physical_scans: usize,
    /// Total device-busy seconds with sharing.
    pub shared_busy_secs: f64,
    /// Total device-busy seconds without sharing (N independent scans).
    pub solo_busy_secs: f64,
}

impl SharingOutcome {
    /// Fraction of device time saved by sharing, clamped to `[0, 1]`
    /// (float accumulation over many groups can otherwise dip a few
    /// ULPs below zero on savings-free schedules).
    pub fn savings(&self) -> f64 {
        if self.solo_busy_secs <= 0.0 {
            0.0
        } else {
            (1.0 - self.shared_busy_secs / self.solo_busy_secs).clamp(0.0, 1.0)
        }
    }
}

/// Share full-table scans of `duration` across sorted `arrivals`.
///
/// A scan group stays open while new queries keep arriving before the
/// group's current *device* end; the device end extends to cover each
/// attacher's wrap-around. A query arriving after the device has gone
/// idle starts a new physical scan.
///
/// # Panics
/// Panics if arrivals are unsorted.
pub fn share_scans(arrivals: &[SimInstant], duration: SimDuration) -> SharingOutcome {
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be sorted"
    );
    let mut completions = Vec::with_capacity(arrivals.len());
    let mut physical = 0usize;
    let mut shared_busy = 0.0f64;
    let mut group_device_end: Option<SimInstant> = None;
    let mut group_device_start = SimInstant::EPOCH;

    for &a in arrivals {
        let completion = a + duration;
        match group_device_end {
            Some(end) if a < end => {
                // Attach: extend the pass to cover this query's wrap.
                group_device_end = Some(end.max(completion));
            }
            _ => {
                // Close the previous group.
                if let Some(end) = group_device_end {
                    shared_busy += end.duration_since(group_device_start).as_secs_f64();
                }
                physical += 1;
                group_device_start = a;
                group_device_end = Some(completion);
            }
        }
        completions.push(completion);
    }
    if let Some(end) = group_device_end {
        shared_busy += end.duration_since(group_device_start).as_secs_f64();
    }
    SharingOutcome {
        completions,
        physical_scans: physical,
        shared_busy_secs: shared_busy,
        solo_busy_secs: arrivals.len() as f64 * duration.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: f64) -> SimInstant {
        SimInstant::from_secs_f64(s)
    }

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn simultaneous_queries_share_one_pass() {
        let out = share_scans(&[at(0.0), at(0.0), at(0.0)], secs(10.0));
        assert_eq!(out.physical_scans, 1);
        assert_eq!(out.shared_busy_secs, 10.0);
        assert_eq!(out.solo_busy_secs, 30.0);
        assert!((out.savings() - 2.0 / 3.0).abs() < 1e-12);
        assert!(out.completions.iter().all(|c| *c == at(10.0)));
    }

    #[test]
    fn mid_scan_attacher_wraps() {
        let out = share_scans(&[at(0.0), at(4.0)], secs(10.0));
        assert_eq!(out.physical_scans, 1);
        // Device busy 0..14 (wraps for the second query's prefix).
        assert_eq!(out.shared_busy_secs, 14.0);
        assert_eq!(out.completions, vec![at(10.0), at(14.0)]);
        assert!((out.savings() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn disjoint_queries_do_not_share() {
        let out = share_scans(&[at(0.0), at(100.0)], secs(10.0));
        assert_eq!(out.physical_scans, 2);
        assert_eq!(out.shared_busy_secs, 20.0);
        assert_eq!(out.savings(), 0.0);
    }

    #[test]
    fn latency_never_worse_than_solo() {
        let arrivals: Vec<SimInstant> = (0..20).map(|i| at(i as f64 * 1.7)).collect();
        let out = share_scans(&arrivals, secs(5.0));
        for (c, a) in out.completions.iter().zip(&arrivals) {
            assert_eq!(c.duration_since(*a), secs(5.0));
        }
        assert!(out.shared_busy_secs <= out.solo_busy_secs);
    }

    #[test]
    fn chained_attachers_extend_one_group() {
        // Each arrival lands inside the (extended) pass of the previous.
        let out = share_scans(&[at(0.0), at(8.0), at(16.0), at(24.0)], secs(10.0));
        assert_eq!(out.physical_scans, 1);
        assert_eq!(out.shared_busy_secs, 34.0);
        assert!(out.savings() > 0.0);
    }

    #[test]
    fn empty() {
        let out = share_scans(&[], secs(10.0));
        assert_eq!(out.physical_scans, 0);
        assert_eq!(out.savings(), 0.0);
    }
}
