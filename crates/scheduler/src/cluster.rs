//! Cluster-level consolidation: the \[TWM+08\] idea the paper endorses —
//! "using virtual machine migration and turning off servers to effect
//! energy-proportionality" over a heterogeneous fleet (Sec. 2.4).
//!
//! Machines have linear power curves and different peak efficiencies
//! (the technology-refresh heterogeneity the paper notes). A placement
//! policy maps an aggregate demand onto the fleet; consolidation packs
//! the most efficient machines full and powers the rest off, making the
//! *cluster* energy-proportional even though no single machine is.

use grail_power::units::Watts;
use serde::Serialize;
use std::fmt;

/// One machine in the fleet.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Machine {
    /// Name for reports.
    pub name: String,
    /// Peak throughput, work/s.
    pub capacity: f64,
    /// Power at zero load (while on).
    pub idle: Watts,
    /// Power at full load.
    pub peak: Watts,
}

impl Machine {
    /// A machine description.
    ///
    /// # Panics
    /// Panics on non-positive capacity or idle above peak.
    pub fn new(name: &str, capacity: f64, idle: Watts, peak: Watts) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(idle.get() <= peak.get(), "idle above peak");
        Machine {
            name: name.to_string(),
            capacity,
            idle,
            peak,
        }
    }

    /// Power at `load` work/s (clamped to capacity).
    pub fn power_at(&self, load: f64) -> Watts {
        let u = (load / self.capacity).clamp(0.0, 1.0);
        Watts::new(self.idle.get() + (self.peak.get() - self.idle.get()) * u)
    }

    /// Work per Joule at full load.
    pub fn peak_efficiency(&self) -> f64 {
        self.capacity / self.peak.get()
    }
}

/// How demand is spread over the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PlacementPolicy {
    /// Load-balance across every machine, all powered (the classic
    /// availability-first layout).
    Spread,
    /// Fill the most (peak-)efficient machines to capacity first; power
    /// off machines that receive nothing.
    Consolidate,
}

/// A computed placement.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Placement {
    /// Work/s assigned per machine (fleet order).
    pub loads: Vec<f64>,
    /// Whether each machine stays powered.
    pub powered: Vec<bool>,
}

/// Placement failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Aggregate demand exceeds fleet capacity.
    Overloaded,
    /// The fleet is empty.
    EmptyFleet,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Overloaded => f.write_str("demand exceeds fleet capacity"),
            ClusterError::EmptyFleet => f.write_str("empty fleet"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Place `demand` work/s on `fleet` under `policy`.
pub fn place(
    fleet: &[Machine],
    demand: f64,
    policy: PlacementPolicy,
) -> Result<Placement, ClusterError> {
    if fleet.is_empty() {
        return Err(ClusterError::EmptyFleet);
    }
    let total: f64 = fleet.iter().map(|m| m.capacity).sum();
    if demand > total * (1.0 + 1e-9) {
        return Err(ClusterError::Overloaded);
    }
    let demand = demand.max(0.0);
    match policy {
        PlacementPolicy::Spread => {
            let loads = fleet.iter().map(|m| demand * m.capacity / total).collect();
            Ok(Placement {
                loads,
                powered: vec![true; fleet.len()],
            })
        }
        PlacementPolicy::Consolidate => {
            // Most peak-efficient machines first; ties broken by fleet
            // order for determinism.
            let mut order: Vec<usize> = (0..fleet.len()).collect();
            order.sort_by(|a, b| {
                fleet[*b]
                    .peak_efficiency()
                    .partial_cmp(&fleet[*a].peak_efficiency())
                    .expect("finite efficiencies")
                    .then(a.cmp(b))
            });
            let mut loads = vec![0.0; fleet.len()];
            let mut powered = vec![false; fleet.len()];
            let mut rest = demand;
            for i in order {
                if rest <= 0.0 {
                    break;
                }
                let take = rest.min(fleet[i].capacity);
                loads[i] = take;
                powered[i] = true;
                rest -= take;
            }
            Ok(Placement { loads, powered })
        }
    }
}

impl Placement {
    /// Total fleet power under this placement (off machines draw
    /// nothing).
    pub fn power(&self, fleet: &[Machine]) -> Watts {
        fleet
            .iter()
            .zip(&self.loads)
            .zip(&self.powered)
            .map(
                |((m, load), on)| {
                    if *on {
                        m.power_at(*load)
                    } else {
                        Watts::ZERO
                    }
                },
            )
            .sum()
    }

    /// Cluster energy efficiency (work/s per Watt = work/Joule).
    pub fn efficiency(&self, fleet: &[Machine]) -> f64 {
        let p = self.power(fleet).get();
        let served: f64 = self.loads.iter().sum();
        if p <= 0.0 {
            0.0
        } else {
            served / p
        }
    }

    /// Number of powered machines.
    pub fn powered_count(&self) -> usize {
        self.powered.iter().filter(|p| **p).count()
    }
}

/// A mixed-generation fleet for experiments: two old brawny boxes, two
/// newer mid-range, two efficient recent ones (the refresh-cycle
/// heterogeneity of Sec. 2.4).
pub fn refresh_cycle_fleet() -> Vec<Machine> {
    vec![
        Machine::new("old-a", 1000.0, Watts::new(300.0), Watts::new(400.0)),
        Machine::new("old-b", 1000.0, Watts::new(300.0), Watts::new(400.0)),
        Machine::new("mid-a", 1500.0, Watts::new(250.0), Watts::new(380.0)),
        Machine::new("mid-b", 1500.0, Watts::new(250.0), Watts::new(380.0)),
        Machine::new("new-a", 2000.0, Watts::new(180.0), Watts::new(350.0)),
        Machine::new("new-b", 2000.0, Watts::new(180.0), Watts::new(350.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidation_beats_spread_at_partial_load() {
        let fleet = refresh_cycle_fleet();
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        for frac in [0.1, 0.25, 0.5, 0.75] {
            let demand = total * frac;
            let spread = place(&fleet, demand, PlacementPolicy::Spread).expect("fits");
            let packed = place(&fleet, demand, PlacementPolicy::Consolidate).expect("fits");
            assert!(
                packed.power(&fleet).get() < spread.power(&fleet).get(),
                "at {frac}: {} vs {}",
                packed.power(&fleet),
                spread.power(&fleet)
            );
            assert!(packed.efficiency(&fleet) > spread.efficiency(&fleet));
        }
    }

    #[test]
    fn policies_converge_at_full_load() {
        let fleet = refresh_cycle_fleet();
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        let spread = place(&fleet, total, PlacementPolicy::Spread).expect("fits");
        let packed = place(&fleet, total, PlacementPolicy::Consolidate).expect("fits");
        assert!((spread.power(&fleet).get() - packed.power(&fleet).get()).abs() < 1e-6);
        assert_eq!(packed.powered_count(), fleet.len());
    }

    #[test]
    fn consolidation_fills_efficient_machines_first() {
        let fleet = refresh_cycle_fleet();
        // Demand exactly the two new machines' capacity.
        let p = place(&fleet, 4000.0, PlacementPolicy::Consolidate).expect("fits");
        assert_eq!(p.powered_count(), 2);
        assert!(p.powered[4] && p.powered[5], "new machines power on first");
        assert_eq!(p.loads[4], 2000.0);
        assert_eq!(p.loads[5], 2000.0);
    }

    #[test]
    fn demand_conserved() {
        let fleet = refresh_cycle_fleet();
        for policy in [PlacementPolicy::Spread, PlacementPolicy::Consolidate] {
            let p = place(&fleet, 3123.0, policy).expect("fits");
            let served: f64 = p.loads.iter().sum();
            assert!((served - 3123.0).abs() < 1e-6);
            // No machine over capacity.
            for (m, l) in fleet.iter().zip(&p.loads) {
                assert!(*l <= m.capacity + 1e-9);
            }
        }
    }

    #[test]
    fn cluster_proportionality_emerges_from_consolidation() {
        // EE at 25% load under consolidation stays near peak EE; under
        // spread it collapses — the cluster-level [BH07] curve.
        let fleet = refresh_cycle_fleet();
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        let full = place(&fleet, total, PlacementPolicy::Consolidate).expect("fits");
        let quarter_packed =
            place(&fleet, total * 0.25, PlacementPolicy::Consolidate).expect("fits");
        let quarter_spread = place(&fleet, total * 0.25, PlacementPolicy::Spread).expect("fits");
        let peak_ee = full.efficiency(&fleet);
        assert!(quarter_packed.efficiency(&fleet) > 0.85 * peak_ee);
        assert!(quarter_spread.efficiency(&fleet) < 0.60 * peak_ee);
    }

    #[test]
    fn errors() {
        assert_eq!(
            place(&[], 1.0, PlacementPolicy::Spread).unwrap_err(),
            ClusterError::EmptyFleet
        );
        let fleet = refresh_cycle_fleet();
        assert_eq!(
            place(&fleet, 1e9, PlacementPolicy::Consolidate).unwrap_err(),
            ClusterError::Overloaded
        );
        // Zero demand consolidation powers nothing.
        let p = place(&fleet, 0.0, PlacementPolicy::Consolidate).expect("fits");
        assert_eq!(p.powered_count(), 0);
        assert_eq!(p.power(&fleet), Watts::ZERO);
    }

    #[test]
    #[should_panic(expected = "idle above peak")]
    fn bad_machine_rejected() {
        let _ = Machine::new("x", 1.0, Watts::new(10.0), Watts::new(5.0));
    }
}
