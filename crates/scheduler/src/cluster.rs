//! Cluster-level consolidation: the \[TWM+08\] idea the paper endorses —
//! "using virtual machine migration and turning off servers to effect
//! energy-proportionality" over a heterogeneous fleet (Sec. 2.4).
//!
//! Machines have linear power curves and different peak efficiencies
//! (the technology-refresh heterogeneity the paper notes). A placement
//! policy maps an aggregate demand onto the fleet; consolidation packs
//! the most efficient machines full and powers the rest off, making the
//! *cluster* energy-proportional even though no single machine is.

use grail_power::units::{Joules, SimDuration, Watts};
use serde::Serialize;
use std::fmt;

/// One machine in the fleet.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Machine {
    /// Name for reports.
    pub name: String,
    /// Peak throughput, work/s.
    pub capacity: f64,
    /// Power at zero load (while on).
    pub idle: Watts,
    /// Power at full load.
    pub peak: Watts,
    /// Cold-boot latency when a powered-off machine is brought back.
    pub boot_latency: SimDuration,
    /// Energy burned by one cold boot (drawn before any work is served).
    pub boot_energy: Joules,
    /// Fault domain (rack / PDU group): machines sharing a domain fail
    /// together under correlated outages. Defaults to 0.
    pub domain: u32,
}

/// Default cold-boot latency: two minutes of POST + OS + service start.
const DEFAULT_BOOT_LATENCY: SimDuration = SimDuration::from_secs(120);

impl Machine {
    /// A machine description.
    ///
    /// # Panics
    /// Panics on non-positive capacity or idle above peak. Use
    /// [`Machine::try_new`] for a non-panicking variant.
    pub fn new(name: &str, capacity: f64, idle: Watts, peak: Watts) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(idle.get() <= peak.get(), "idle above peak");
        Machine {
            name: name.to_string(),
            capacity,
            idle,
            peak,
            boot_latency: DEFAULT_BOOT_LATENCY,
            boot_energy: peak * DEFAULT_BOOT_LATENCY,
            domain: 0,
        }
    }

    /// A machine description, rejecting bad geometry instead of
    /// panicking. The whole description — including the default boot
    /// cost — passes [`Machine::validate`].
    ///
    /// # Errors
    /// [`ClusterError::BadMachine`] on non-positive (or non-finite)
    /// capacity, idle above peak, or negative power.
    pub fn try_new(
        name: &str,
        capacity: f64,
        idle: Watts,
        peak: Watts,
    ) -> Result<Self, ClusterError> {
        let m = Machine {
            name: name.to_string(),
            capacity,
            idle,
            peak,
            boot_latency: DEFAULT_BOOT_LATENCY,
            // Placeholder until the power curve is known valid; the real
            // default (peak × latency) is derived below.
            boot_energy: Joules::ZERO,
            domain: 0,
        };
        m.validate()?;
        let boot_energy = m.peak * DEFAULT_BOOT_LATENCY;
        m.try_with_boot(DEFAULT_BOOT_LATENCY, boot_energy)
    }

    /// Check every field of a (possibly hand-assembled, builder-mutated,
    /// or deserialized) machine description.
    ///
    /// # Errors
    /// [`ClusterError::BadMachine`] on non-positive or non-finite
    /// capacity, non-finite or negative power, idle above peak, or a
    /// non-finite boot energy (arithmetic on `Joules` can overflow to
    /// infinity even though its constructor rejects it).
    pub fn validate(&self) -> Result<(), ClusterError> {
        let name = &self.name;
        if !self.capacity.is_finite() || self.capacity <= 0.0 {
            return Err(ClusterError::BadMachine(format!(
                "{name}: capacity must be positive, got {}",
                self.capacity
            )));
        }
        if self.idle.get() < 0.0 || !self.idle.get().is_finite() || !self.peak.get().is_finite() {
            return Err(ClusterError::BadMachine(format!(
                "{name}: power draws must be finite and non-negative"
            )));
        }
        if self.idle.get() > self.peak.get() {
            return Err(ClusterError::BadMachine(format!(
                "{name}: idle {} above peak {}",
                self.idle, self.peak
            )));
        }
        if !self.boot_energy.joules().is_finite() || self.boot_energy.joules() < 0.0 {
            return Err(ClusterError::BadMachine(format!(
                "{name}: boot energy must be finite and non-negative, got {} J",
                self.boot_energy.joules()
            )));
        }
        Ok(())
    }

    /// Override the cold-boot cost (builder style).
    pub fn with_boot(mut self, latency: SimDuration, energy: Joules) -> Self {
        self.boot_latency = latency;
        self.boot_energy = energy;
        self
    }

    /// Override the cold-boot cost, rejecting bad geometry (a non-finite
    /// energy from overflowed `Joules` arithmetic) instead of letting it
    /// poison recovery billing.
    ///
    /// # Errors
    /// [`ClusterError::BadMachine`] if the resulting description fails
    /// [`Machine::validate`].
    pub fn try_with_boot(
        mut self,
        latency: SimDuration,
        energy: Joules,
    ) -> Result<Self, ClusterError> {
        self.boot_latency = latency;
        self.boot_energy = energy;
        self.validate()?;
        Ok(self)
    }

    /// Assign this machine to a fault domain (builder style).
    pub fn with_domain(mut self, domain: u32) -> Self {
        self.domain = domain;
        self
    }

    /// Power at `load` work/s (clamped to capacity).
    pub fn power_at(&self, load: f64) -> Watts {
        let u = (load / self.capacity).clamp(0.0, 1.0);
        Watts::new(self.idle.get() + (self.peak.get() - self.idle.get()) * u)
    }

    /// Work per Joule at full load.
    pub fn peak_efficiency(&self) -> f64 {
        self.capacity / self.peak.get()
    }
}

/// How demand is spread over the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PlacementPolicy {
    /// Load-balance across every machine, all powered (the classic
    /// availability-first layout).
    Spread,
    /// Fill the most (peak-)efficient machines to capacity first; power
    /// off machines that receive nothing.
    Consolidate,
}

/// A computed placement.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Placement {
    /// Work/s assigned per machine (fleet order).
    pub loads: Vec<f64>,
    /// Whether each machine stays powered.
    pub powered: Vec<bool>,
}

/// Placement failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// Aggregate demand exceeds fleet capacity.
    Overloaded,
    /// The fleet is empty.
    EmptyFleet,
    /// A machine description is invalid (bad capacity or power curve).
    BadMachine(String),
    /// A machine index is out of range for the fleet.
    UnknownMachine(usize),
    /// A chaos schedule (or its run parameters) does not fit the fleet:
    /// wrong machine/domain shape, or non-finite demand/policy inputs.
    BadSchedule(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Overloaded => f.write_str("demand exceeds fleet capacity"),
            ClusterError::EmptyFleet => f.write_str("empty fleet"),
            ClusterError::BadMachine(why) => write!(f, "bad machine: {why}"),
            ClusterError::UnknownMachine(i) => write!(f, "unknown machine index {i}"),
            ClusterError::BadSchedule(why) => write!(f, "bad chaos schedule: {why}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Place `demand` work/s on `fleet` under `policy`.
pub fn place(
    fleet: &[Machine],
    demand: f64,
    policy: PlacementPolicy,
) -> Result<Placement, ClusterError> {
    if fleet.is_empty() {
        return Err(ClusterError::EmptyFleet);
    }
    let total: f64 = fleet.iter().map(|m| m.capacity).sum();
    if demand > total * (1.0 + 1e-9) {
        return Err(ClusterError::Overloaded);
    }
    let demand = demand.max(0.0);
    match policy {
        PlacementPolicy::Spread => {
            let loads = fleet.iter().map(|m| demand * m.capacity / total).collect();
            Ok(Placement {
                loads,
                powered: vec![true; fleet.len()],
            })
        }
        PlacementPolicy::Consolidate => {
            // Most peak-efficient machines first; ties broken by fleet
            // order for determinism.
            let mut order: Vec<usize> = (0..fleet.len()).collect();
            order.sort_by(|a, b| {
                fleet[*b]
                    .peak_efficiency()
                    .partial_cmp(&fleet[*a].peak_efficiency())
                    .expect("finite efficiencies") // grail-lint: allow(error-hygiene, peak_efficiency is finite for all power models)
                    .then(a.cmp(b))
            });
            let mut loads = vec![0.0; fleet.len()];
            let mut powered = vec![false; fleet.len()];
            let mut rest = demand;
            for i in order {
                if rest <= 0.0 {
                    break;
                }
                let take = rest.min(fleet[i].capacity);
                loads[i] = take;
                powered[i] = true;
                rest -= take;
            }
            Ok(Placement { loads, powered })
        }
    }
}

impl Placement {
    /// Total fleet power under this placement (off machines draw
    /// nothing).
    pub fn power(&self, fleet: &[Machine]) -> Watts {
        fleet
            .iter()
            .zip(&self.loads)
            .zip(&self.powered)
            .map(
                |((m, load), on)| {
                    if *on {
                        m.power_at(*load)
                    } else {
                        Watts::ZERO
                    }
                },
            )
            .sum()
    }

    /// Cluster energy efficiency (work/s per Watt = work/Joule).
    pub fn efficiency(&self, fleet: &[Machine]) -> f64 {
        let p = self.power(fleet).get();
        let served: f64 = self.loads.iter().sum();
        if p <= 0.0 {
            0.0
        } else {
            served / p
        }
    }

    /// Number of powered machines.
    pub fn powered_count(&self) -> usize {
        self.powered.iter().filter(|p| **p).count()
    }
}

/// The outcome of failing a machine out of a running placement.
///
/// Consolidation's dark side: the paper's Sec. 2.4 powers servers off to
/// approximate energy-proportionality, but a machine failure then forces
/// displaced load onto boxes that must first *boot* — paying a latency
/// and an energy surge that a spread (availability-first) layout never
/// sees. This struct makes that recovery cost explicit so experiments
/// can put it on the ledger.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Failover {
    /// The new placement over the full fleet; the failed machine carries
    /// zero load and is not powered.
    pub placement: Placement,
    /// Indices of machines that had to be powered on (cold-booted) to
    /// absorb the displaced load.
    pub booted: Vec<usize>,
    /// Total cold-boot energy across `booted`.
    pub boot_energy: Joules,
    /// Worst-case boot latency — how long displaced work waits before
    /// full capacity is back.
    pub boot_latency: SimDuration,
    /// Work/s that had to move off the failed machine.
    pub displaced: f64,
}

/// Re-place a running placement after machine `failed` dies.
///
/// The total demand (the sum of `before.loads`) is re-placed on the
/// surviving machines under `policy`. Machines that were powered off in
/// `before` but receive load now must cold-boot; their boot energy and
/// the worst-case boot latency are reported so callers can charge them
/// to a recovery ledger.
///
/// # Errors
/// [`ClusterError::UnknownMachine`] if `failed` is out of range,
/// [`ClusterError::EmptyFleet`] for a one-machine fleet, and
/// [`ClusterError::Overloaded`] if the survivors cannot absorb the
/// demand.
pub fn fail_over(
    fleet: &[Machine],
    before: &Placement,
    failed: usize,
    policy: PlacementPolicy,
) -> Result<Failover, ClusterError> {
    if failed >= fleet.len() {
        return Err(ClusterError::UnknownMachine(failed));
    }
    let demand: f64 = before.loads.iter().sum();
    let displaced = before.loads.get(failed).copied().unwrap_or(0.0);
    // Place on the survivor sub-fleet, then map back to full-fleet
    // indices (the failed slot keeps zero load and stays dark).
    let survivors: Vec<Machine> = fleet
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != failed)
        .map(|(_, m)| m.clone())
        .collect();
    let sub = place(&survivors, demand, policy)?;
    let mut loads = vec![0.0; fleet.len()];
    let mut powered = vec![false; fleet.len()];
    let mut booted = Vec::new();
    let mut boot_energy = Joules::ZERO;
    let mut boot_latency = SimDuration::ZERO;
    let mut sub_idx = 0;
    for i in 0..fleet.len() {
        if i == failed {
            continue;
        }
        loads[i] = sub.loads[sub_idx];
        powered[i] = sub.powered[sub_idx];
        sub_idx += 1;
        let was_on = before.powered.get(i).copied().unwrap_or(false);
        if powered[i] && !was_on {
            booted.push(i);
            boot_energy += fleet[i].boot_energy;
            boot_latency = boot_latency.max(fleet[i].boot_latency);
        }
    }
    Ok(Failover {
        placement: Placement { loads, powered },
        booted,
        boot_energy,
        boot_latency,
        displaced,
    })
}

/// The outcome of failing *several* machines out of a running placement
/// at once — a correlated failure (rack loss, PDU trip).
///
/// Unlike [`fail_over`], insufficient surviving capacity is not an
/// error: demand the survivors cannot absorb is **shed** and reported,
/// never silently dropped. `served + shed == offered` always holds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MultiFailover {
    /// The new placement over the full fleet; failed machines carry zero
    /// load and are not powered.
    pub placement: Placement,
    /// Indices of machines that had to be powered on (cold-booted) to
    /// absorb the displaced load.
    pub booted: Vec<usize>,
    /// Total cold-boot energy across `booted`.
    pub boot_energy: Joules,
    /// Worst-case boot latency across `booted`.
    pub boot_latency: SimDuration,
    /// Work/s that had to move off the failed machines.
    pub displaced: f64,
    /// Work/s the survivors actually serve.
    pub served: f64,
    /// Work/s shed because surviving capacity was insufficient.
    pub shed: f64,
}

/// Re-place a running placement after every machine in `failed` dies at
/// once.
///
/// The offered demand (the sum of `before.loads`) is re-placed on the
/// surviving machines under `policy`; demand beyond their total capacity
/// is shed and reported in [`MultiFailover::shed`] (`served + shed ==
/// offered`). Losing the whole fleet sheds everything rather than
/// erroring — graceful degradation, not collapse.
///
/// # Errors
/// [`ClusterError::UnknownMachine`] if any index in `failed` is out of
/// range.
pub fn fail_over_multi(
    fleet: &[Machine],
    before: &Placement,
    failed: &[usize],
    policy: PlacementPolicy,
) -> Result<MultiFailover, ClusterError> {
    let mut dead = vec![false; fleet.len()];
    for &f in failed {
        if f >= fleet.len() {
            return Err(ClusterError::UnknownMachine(f));
        }
        dead[f] = true;
    }
    let offered: f64 = before.loads.iter().sum();
    let displaced: f64 = before
        .loads
        .iter()
        .zip(&dead)
        .filter(|(_, d)| **d)
        .map(|(l, _)| *l)
        .sum();
    let survivors: Vec<Machine> = fleet
        .iter()
        .zip(&dead)
        .filter(|(_, d)| !**d)
        .map(|(m, _)| m.clone())
        .collect();
    if survivors.is_empty() {
        // The whole fleet is dark: everything is shed, nothing served.
        return Ok(MultiFailover {
            placement: Placement {
                loads: vec![0.0; fleet.len()],
                powered: vec![false; fleet.len()],
            },
            booted: Vec::new(),
            boot_energy: Joules::ZERO,
            boot_latency: SimDuration::ZERO,
            displaced,
            served: 0.0,
            shed: offered,
        });
    }
    let survivor_cap: f64 = survivors.iter().map(|m| m.capacity).sum();
    let served = offered.min(survivor_cap);
    let shed = (offered - served).max(0.0);
    let sub = place(&survivors, served, policy)?;
    let mut loads = vec![0.0; fleet.len()];
    let mut powered = vec![false; fleet.len()];
    let mut booted = Vec::new();
    let mut boot_energy = Joules::ZERO;
    let mut boot_latency = SimDuration::ZERO;
    let mut sub_idx = 0;
    for i in 0..fleet.len() {
        if dead[i] {
            continue;
        }
        loads[i] = sub.loads[sub_idx];
        powered[i] = sub.powered[sub_idx];
        sub_idx += 1;
        let was_on = before.powered.get(i).copied().unwrap_or(false);
        if powered[i] && !was_on {
            booted.push(i);
            boot_energy += fleet[i].boot_energy;
            boot_latency = boot_latency.max(fleet[i].boot_latency);
        }
    }
    Ok(MultiFailover {
        placement: Placement { loads, powered },
        booted,
        boot_energy,
        boot_latency,
        displaced,
        served,
        shed,
    })
}

/// A mixed-generation fleet for experiments: two old brawny boxes, two
/// newer mid-range, two efficient recent ones (the refresh-cycle
/// heterogeneity of Sec. 2.4).
pub fn refresh_cycle_fleet() -> Vec<Machine> {
    vec![
        Machine::new("old-a", 1000.0, Watts::new(300.0), Watts::new(400.0)),
        Machine::new("old-b", 1000.0, Watts::new(300.0), Watts::new(400.0)),
        Machine::new("mid-a", 1500.0, Watts::new(250.0), Watts::new(380.0)),
        Machine::new("mid-b", 1500.0, Watts::new(250.0), Watts::new(380.0)),
        Machine::new("new-a", 2000.0, Watts::new(180.0), Watts::new(350.0)),
        Machine::new("new-b", 2000.0, Watts::new(180.0), Watts::new(350.0)),
    ]
}

/// A fleet for chaos experiments: `domains` racks of `per_domain`
/// machines each, cycling the three refresh-cycle machine classes so
/// every domain holds a heterogeneous mix. Machine `i` lands in domain
/// `i / per_domain` and is named `d{domain}-m{slot}-{class}`.
pub fn chaos_fleet(domains: u32, per_domain: u32) -> Vec<Machine> {
    let classes = [
        ("old", 1000.0, 300.0, 400.0),
        ("mid", 1500.0, 250.0, 380.0),
        ("new", 2000.0, 180.0, 350.0),
    ];
    let mut fleet = Vec::with_capacity((domains * per_domain) as usize);
    for d in 0..domains {
        for s in 0..per_domain {
            let (class, cap, idle, peak) = classes[(d * per_domain + s) as usize % classes.len()];
            fleet.push(
                Machine::new(
                    &format!("d{d}-m{s}-{class}"),
                    cap,
                    Watts::new(idle),
                    Watts::new(peak),
                )
                .with_domain(d),
            );
        }
    }
    fleet
}

/// Number of fault domains a fleet spans (highest domain index + 1).
pub fn domain_count(fleet: &[Machine]) -> u32 {
    fleet.iter().map(|m| m.domain + 1).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidation_beats_spread_at_partial_load() {
        let fleet = refresh_cycle_fleet();
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        for frac in [0.1, 0.25, 0.5, 0.75] {
            let demand = total * frac;
            let spread = place(&fleet, demand, PlacementPolicy::Spread).expect("fits");
            let packed = place(&fleet, demand, PlacementPolicy::Consolidate).expect("fits");
            assert!(
                packed.power(&fleet).get() < spread.power(&fleet).get(),
                "at {frac}: {} vs {}",
                packed.power(&fleet),
                spread.power(&fleet)
            );
            assert!(packed.efficiency(&fleet) > spread.efficiency(&fleet));
        }
    }

    #[test]
    fn policies_converge_at_full_load() {
        let fleet = refresh_cycle_fleet();
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        let spread = place(&fleet, total, PlacementPolicy::Spread).expect("fits");
        let packed = place(&fleet, total, PlacementPolicy::Consolidate).expect("fits");
        assert!((spread.power(&fleet).get() - packed.power(&fleet).get()).abs() < 1e-6);
        assert_eq!(packed.powered_count(), fleet.len());
    }

    #[test]
    fn consolidation_fills_efficient_machines_first() {
        let fleet = refresh_cycle_fleet();
        // Demand exactly the two new machines' capacity.
        let p = place(&fleet, 4000.0, PlacementPolicy::Consolidate).expect("fits");
        assert_eq!(p.powered_count(), 2);
        assert!(p.powered[4] && p.powered[5], "new machines power on first");
        assert_eq!(p.loads[4], 2000.0);
        assert_eq!(p.loads[5], 2000.0);
    }

    #[test]
    fn demand_conserved() {
        let fleet = refresh_cycle_fleet();
        for policy in [PlacementPolicy::Spread, PlacementPolicy::Consolidate] {
            let p = place(&fleet, 3123.0, policy).expect("fits");
            let served: f64 = p.loads.iter().sum();
            assert!((served - 3123.0).abs() < 1e-6);
            // No machine over capacity.
            for (m, l) in fleet.iter().zip(&p.loads) {
                assert!(*l <= m.capacity + 1e-9);
            }
        }
    }

    #[test]
    fn cluster_proportionality_emerges_from_consolidation() {
        // EE at 25% load under consolidation stays near peak EE; under
        // spread it collapses — the cluster-level [BH07] curve.
        let fleet = refresh_cycle_fleet();
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        let full = place(&fleet, total, PlacementPolicy::Consolidate).expect("fits");
        let quarter_packed =
            place(&fleet, total * 0.25, PlacementPolicy::Consolidate).expect("fits");
        let quarter_spread = place(&fleet, total * 0.25, PlacementPolicy::Spread).expect("fits");
        let peak_ee = full.efficiency(&fleet);
        assert!(quarter_packed.efficiency(&fleet) > 0.85 * peak_ee);
        assert!(quarter_spread.efficiency(&fleet) < 0.60 * peak_ee);
    }

    #[test]
    fn errors() {
        assert_eq!(
            place(&[], 1.0, PlacementPolicy::Spread).unwrap_err(),
            ClusterError::EmptyFleet
        );
        let fleet = refresh_cycle_fleet();
        assert_eq!(
            place(&fleet, 1e9, PlacementPolicy::Consolidate).unwrap_err(),
            ClusterError::Overloaded
        );
        // Zero demand consolidation powers nothing.
        let p = place(&fleet, 0.0, PlacementPolicy::Consolidate).expect("fits");
        assert_eq!(p.powered_count(), 0);
        assert_eq!(p.power(&fleet), Watts::ZERO);
    }

    #[test]
    #[should_panic(expected = "idle above peak")]
    fn bad_machine_rejected() {
        let _ = Machine::new("x", 1.0, Watts::new(10.0), Watts::new(5.0));
    }

    #[test]
    fn try_new_rejects_without_panicking() {
        assert!(matches!(
            Machine::try_new("x", 0.0, Watts::new(1.0), Watts::new(2.0)),
            Err(ClusterError::BadMachine(_))
        ));
        assert!(matches!(
            Machine::try_new("x", f64::NAN, Watts::new(1.0), Watts::new(2.0)),
            Err(ClusterError::BadMachine(_))
        ));
        assert!(matches!(
            Machine::try_new("x", 1.0, Watts::new(10.0), Watts::new(5.0)),
            Err(ClusterError::BadMachine(_))
        ));
        let ok = Machine::try_new("x", 1.0, Watts::new(1.0), Watts::new(2.0)).expect("valid");
        assert_eq!(ok, Machine::new("x", 1.0, Watts::new(1.0), Watts::new(2.0)));
    }

    #[test]
    fn failover_boots_dark_machines_and_reports_their_cost() {
        let fleet = refresh_cycle_fleet();
        // Consolidated at 4000 work/s: only the two new machines run.
        let before = place(&fleet, 4000.0, PlacementPolicy::Consolidate).expect("fits");
        assert_eq!(before.powered_count(), 2);
        // Kill new-a (index 4): its 2000 work/s must land somewhere that
        // was powered off, paying a cold boot.
        let fo = fail_over(&fleet, &before, 4, PlacementPolicy::Consolidate).expect("survivable");
        assert!((fo.displaced - 2000.0).abs() < 1e-9);
        assert!(!fo.placement.powered[4]);
        assert_eq!(fo.placement.loads[4], 0.0);
        let served: f64 = fo.placement.loads.iter().sum();
        assert!((served - 4000.0).abs() < 1e-6, "demand conserved: {served}");
        assert!(!fo.booted.is_empty(), "someone had to cold-boot");
        assert!(!fo.booted.contains(&4));
        assert!(fo.boot_energy.joules() > 0.0);
        assert!(fo.boot_latency > SimDuration::ZERO);
        // Booted machines were dark before and carry load now.
        for &i in &fo.booted {
            assert!(!before.powered[i]);
            assert!(fo.placement.powered[i]);
        }
    }

    #[test]
    fn failover_under_spread_boots_nothing() {
        let fleet = refresh_cycle_fleet();
        let before = place(&fleet, 4000.0, PlacementPolicy::Spread).expect("fits");
        let fo = fail_over(&fleet, &before, 0, PlacementPolicy::Spread).expect("survivable");
        // Everyone was already on — availability-first pays no boot.
        assert!(fo.booted.is_empty());
        assert_eq!(fo.boot_energy, Joules::ZERO);
        assert_eq!(fo.boot_latency, SimDuration::ZERO);
        assert_eq!(fo.placement.loads[0], 0.0);
        let served: f64 = fo.placement.loads.iter().sum();
        assert!((served - 4000.0).abs() < 1e-6);
    }

    #[test]
    fn failover_errors() {
        let fleet = refresh_cycle_fleet();
        let before = place(&fleet, 4000.0, PlacementPolicy::Consolidate).expect("fits");
        assert_eq!(
            fail_over(&fleet, &before, 99, PlacementPolicy::Consolidate).unwrap_err(),
            ClusterError::UnknownMachine(99)
        );
        // Survivors cannot absorb near-total demand after losing 2000.
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        let full = place(&fleet, total, PlacementPolicy::Consolidate).expect("fits");
        assert_eq!(
            fail_over(&fleet, &full, 5, PlacementPolicy::Consolidate).unwrap_err(),
            ClusterError::Overloaded
        );
        // A one-machine fleet has no survivors.
        let solo = vec![Machine::new("only", 10.0, Watts::new(1.0), Watts::new(2.0))];
        let p = place(&solo, 5.0, PlacementPolicy::Spread).expect("fits");
        assert_eq!(
            fail_over(&solo, &p, 0, PlacementPolicy::Spread).unwrap_err(),
            ClusterError::EmptyFleet
        );
    }

    #[test]
    fn validate_rejects_bad_boot_geometry() {
        // Joules arithmetic saturates Sub at zero but overflows Mul to
        // infinity — exactly what try_with_boot must catch.
        let inf = Watts::new(f64::MAX) * SimDuration::from_secs(10);
        assert!(!inf.joules().is_finite());
        let m = Machine::new("x", 1.0, Watts::new(1.0), Watts::new(2.0));
        assert!(matches!(
            m.clone().try_with_boot(SimDuration::from_secs(30), inf),
            Err(ClusterError::BadMachine(_))
        ));
        assert!(m.validate().is_ok());
        assert!(m.with_boot(SimDuration::ZERO, inf).validate().is_err());
        // The happy path still sets the fields.
        let ok = Machine::new("x", 1.0, Watts::new(1.0), Watts::new(2.0))
            .try_with_boot(SimDuration::from_secs(30), Joules::new(500.0))
            .expect("valid boot geometry");
        assert_eq!(ok.boot_energy, Joules::new(500.0));
        // try_new validates the derived default boot cost too.
        assert!(Machine::try_new("x", 1.0, Watts::new(1.0), Watts::new(f64::MAX)).is_err());
    }

    #[test]
    fn chaos_fleet_spans_domains() {
        let fleet = chaos_fleet(4, 6);
        assert_eq!(fleet.len(), 24);
        assert_eq!(domain_count(&fleet), 4);
        for (i, m) in fleet.iter().enumerate() {
            assert_eq!(m.domain, i as u32 / 6);
            assert!(m.validate().is_ok());
        }
        // Every domain holds all three classes (heterogeneous racks).
        for d in 0..4u32 {
            let caps: Vec<f64> = fleet
                .iter()
                .filter(|m| m.domain == d)
                .map(|m| m.capacity)
                .collect();
            for class_cap in [1000.0, 1500.0, 2000.0] {
                assert!(caps.contains(&class_cap), "domain {d} missing {class_cap}");
            }
        }
        assert_eq!(domain_count(&[]), 0);
        assert_eq!(domain_count(&refresh_cycle_fleet()), 1);
    }

    #[test]
    fn multi_failover_matches_single_when_survivable() {
        let fleet = refresh_cycle_fleet();
        let before = place(&fleet, 4000.0, PlacementPolicy::Consolidate).expect("fits");
        let single = fail_over(&fleet, &before, 4, PlacementPolicy::Consolidate).expect("ok");
        let multi =
            fail_over_multi(&fleet, &before, &[4], PlacementPolicy::Consolidate).expect("in range");
        assert_eq!(multi.placement, single.placement);
        assert_eq!(multi.booted, single.booted);
        assert_eq!(multi.boot_energy, single.boot_energy);
        assert_eq!(multi.boot_latency, single.boot_latency);
        assert_eq!(multi.shed, 0.0);
        assert!((multi.served - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn multi_failover_sheds_instead_of_erroring() {
        let fleet = refresh_cycle_fleet();
        let total: f64 = fleet.iter().map(|m| m.capacity).sum();
        let before = place(&fleet, total, PlacementPolicy::Consolidate).expect("fits");
        // Lose both new machines (4000 of 9000 capacity): survivors hold
        // 5000, so 4000 must be shed — and reported, not dropped.
        let mf = fail_over_multi(&fleet, &before, &[4, 5], PlacementPolicy::Consolidate)
            .expect("in range");
        assert!((mf.served - 5000.0).abs() < 1e-9);
        assert!((mf.shed - 4000.0).abs() < 1e-9);
        assert!((mf.served + mf.shed - total).abs() < 1e-9, "no demand lost");
        assert!((mf.displaced - 4000.0).abs() < 1e-9);
        let placed: f64 = mf.placement.loads.iter().sum();
        assert!((placed - mf.served).abs() < 1e-6);
        assert_eq!(mf.placement.loads[4], 0.0);
        assert_eq!(mf.placement.loads[5], 0.0);
    }

    #[test]
    fn multi_failover_total_fleet_loss_sheds_everything() {
        let fleet = refresh_cycle_fleet();
        let before = place(&fleet, 4000.0, PlacementPolicy::Spread).expect("fits");
        let mf = fail_over_multi(
            &fleet,
            &before,
            &[0, 1, 2, 3, 4, 5],
            PlacementPolicy::Spread,
        )
        .expect("in range");
        assert_eq!(mf.served, 0.0);
        assert!((mf.shed - 4000.0).abs() < 1e-9);
        assert_eq!(mf.placement.powered_count(), 0);
        assert_eq!(mf.boot_energy, Joules::ZERO);
        // Duplicate indices are tolerated; out-of-range ones are not.
        assert!(fail_over_multi(&fleet, &before, &[0, 0], PlacementPolicy::Spread).is_ok());
        assert_eq!(
            fail_over_multi(&fleet, &before, &[99], PlacementPolicy::Spread).unwrap_err(),
            ClusterError::UnknownMachine(99)
        );
    }

    #[test]
    fn with_boot_overrides_default_cost() {
        let m = Machine::new("x", 1.0, Watts::new(1.0), Watts::new(2.0))
            .with_boot(SimDuration::from_secs(30), Joules::new(500.0));
        assert_eq!(m.boot_latency, SimDuration::from_secs(30));
        assert_eq!(m.boot_energy, Joules::new(500.0));
        // Default: peak power for the default boot window.
        let d = Machine::new("x", 1.0, Watts::new(1.0), Watts::new(2.0));
        assert!((d.boot_energy.joules() - 2.0 * 120.0).abs() < 1e-9);
    }
}
