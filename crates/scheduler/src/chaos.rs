//! The cluster chaos engine: drive a fleet through a seeded
//! [`ChaosSchedule`] and bill what resilience costs.
//!
//! PR 1 made *device* failure a first-class deterministic input; this
//! module does the same for the *fleet*. A [`ChaosSchedule`] (generated
//! in `grail-sim::fault`) delivers correlated fault-domain outages,
//! machine crash/restart cycles, brownouts, and demand surges; the
//! engine responds with the policies the paper's Sec. 2.4 consolidation
//! story needs to survive them:
//!
//! * **Fault-domain-aware placement** — demand is served as `r` replicas
//!   and no domain ever holds more than one replica's worth of it, so a
//!   rack loss never takes out every copy.
//! * **Admission control with SLA-aware shedding** — when surviving
//!   capacity cannot carry the offered demand, redundancy degrades
//!   first (fewer replicas), then excess demand is *shed*: recorded in
//!   the report and the trace, never silently dropped.
//!   `served + shed + failed == offered` holds exactly.
//! * **Per-machine circuit breaker** — a machine that flaps (crashes
//!   repeatedly within the breaker's reset window) is quarantined after
//!   restart with exponentially growing holdoff before it may rejoin.
//! * **Hedged re-dispatch** — work stranded in flight on a crashed
//!   machine is re-issued via the existing [`RetryPolicy`] backoff, with
//!   a hedge fraction of duplicate issue; the replay energy (and every
//!   cold boot) is re-attributed to [`ComponentKind::Recovery`], so the
//!   wall-socket price of resilience is a visible ledger line.
//!
//! Everything is a pure function of `(fleet, schedule, demand, policy)`:
//! same seed ⇒ byte-identical placements, ledger, and trace.

use crate::cluster::{domain_count, ClusterError, Machine, Placement, PlacementPolicy};
use crate::observe;
use grail_power::units::{Joules, SimDuration, SimInstant, Watts};
use grail_power::{ComponentId, ComponentKind, EnergyLedger};
use grail_sim::driver::RetryPolicy;
use grail_sim::event::EventQueue;
use grail_sim::fault::{ChaosEventKind, ChaosSchedule};
use grail_trace::Tracer;
use serde::Serialize;

/// The per-machine circuit breaker: how long a flapping machine is
/// quarantined after each restart before it may take load again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BreakerPolicy {
    /// Quarantine after the second crash inside the reset window; each
    /// further crash multiplies it.
    pub base_quarantine: SimDuration,
    /// Quarantine growth factor per additional crash.
    pub multiplier: u32,
    /// Crashes further apart than this reset the trip counter — the
    /// machine is considered healthy again.
    pub reset_window: SimDuration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            base_quarantine: SimDuration::from_secs(300),
            multiplier: 2,
            reset_window: SimDuration::from_secs(4 * 3600),
        }
    }
}

impl BreakerPolicy {
    /// Quarantine after the `trips`-th crash inside the reset window:
    /// zero for the first (an isolated crash rejoins right after
    /// restart), then `base · multiplier^(trips-2)`, saturating — the
    /// same overflow discipline as [`RetryPolicy::backoff`].
    pub fn quarantine(&self, trips: u32) -> SimDuration {
        if trips <= 1 {
            return SimDuration::ZERO;
        }
        let exp = (trips - 2).min(16);
        self.base_quarantine
            .saturating_mul((self.multiplier as u64).saturating_pow(exp))
    }
}

/// How the fleet responds to chaos.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChaosPolicy {
    /// How served demand is packed onto the available machines.
    pub placement: PlacementPolicy,
    /// Target replica count: the demand is served `replicas` times, each
    /// copy in a different fault domain (degraded when fewer live
    /// domains or less capacity remain).
    pub replicas: u32,
    /// The per-machine circuit breaker.
    pub breaker: BreakerPolicy,
    /// Backoff schedule for re-dispatching stranded work.
    pub retry: RetryPolicy,
    /// How much in-flight work a crash strands: the crashed machine's
    /// load integrated over this window is lost and must be re-issued.
    pub inflight_window: SimDuration,
    /// Fraction of duplicate (hedged) issue on every re-dispatch — the
    /// tail-taming overcommit, billed to Recovery like the rest.
    pub hedge_frac: f64,
}

impl Default for ChaosPolicy {
    fn default() -> Self {
        ChaosPolicy {
            placement: PlacementPolicy::Consolidate,
            replicas: 2,
            breaker: BreakerPolicy::default(),
            retry: RetryPolicy::default(),
            inflight_window: SimDuration::from_secs(30),
            hedge_frac: 0.1,
        }
    }
}

/// One placement decision in the run, recorded every time the engine
/// reacts to an event (and once at the start).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlacementChange {
    /// When the decision took effect.
    pub at: SimInstant,
    /// Work/s assigned per machine (fleet order).
    pub loads: Vec<f64>,
    /// Number of powered machines.
    pub powered: u32,
    /// Demand rate served from here on (one logical copy).
    pub served_rate: f64,
    /// Demand rate shed from here on.
    pub shed_rate: f64,
    /// Effective replica count from here on.
    pub replicas: u32,
}

/// The full outcome of a chaos run: the energy ledger, the demand
/// accounting (`served + shed + failed == offered`), event counters, and
/// the complete placement sequence.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosReport {
    /// Every Joule the run drew, by component; recovery work sits under
    /// [`ComponentKind::Recovery`] and still sums into the wall-socket
    /// total.
    pub ledger: EnergyLedger,
    /// The simulated horizon.
    pub horizon: SimDuration,
    /// Demand offered over the run, in work units (rate × seconds).
    pub offered: f64,
    /// Work served to completion.
    pub served: f64,
    /// Work shed by admission control (refused up front, SLA-visible).
    pub shed: f64,
    /// Work accepted but lost: stranded by crashes and never
    /// re-dispatched successfully within the retry budget.
    pub failed: f64,
    /// Work stranded in flight by crashes (before re-dispatch).
    pub stranded: f64,
    /// Stranded work successfully re-dispatched.
    pub recovered: f64,
    /// Machine crash events.
    pub crashes: u64,
    /// Machine restart events.
    pub restarts: u64,
    /// Fault-domain outage events.
    pub domain_outages: u64,
    /// Brownout events.
    pub brownouts: u64,
    /// Demand-surge events.
    pub surges: u64,
    /// Times the circuit breaker held a restarted machine in quarantine.
    pub breaker_trips: u64,
    /// Cold boots billed to Recovery.
    pub cold_boots: u64,
    /// Re-dispatch attempts that recovered stranded work.
    pub redispatches: u64,
    /// Simulated seconds spent below the target replica count.
    pub redundancy_degraded_secs: f64,
    /// Every placement decision, in order.
    pub placements: Vec<PlacementChange>,
}

impl ChaosReport {
    /// Fraction of offered work actually served (1.0 when nothing was
    /// offered).
    pub fn availability(&self) -> f64 {
        if self.offered > 0.0 {
            self.served / self.offered
        } else {
            1.0
        }
    }

    /// Energy attributed to resilience: cold boots, hedged re-dispatch.
    pub fn recovery_energy(&self) -> Joules {
        self.ledger.kind_total(ComponentKind::Recovery)
    }

    /// Wall-socket total for the run.
    pub fn total_energy(&self) -> Joules {
        self.ledger.total()
    }

    /// Work per Joule over the run, counting only served work.
    pub fn efficiency(&self) -> f64 {
        let e = self.total_energy().joules();
        if e > 0.0 {
            self.served / e
        } else {
            0.0
        }
    }

    /// `|served + shed + failed - offered|` — zero up to float
    /// association error; tests pin it below 1e-6 of offered.
    pub fn conservation_error(&self) -> f64 {
        (self.served + self.shed + self.failed - self.offered).abs()
    }
}

/// Runtime events beyond the pre-generated schedule: breaker rejoins and
/// stranded-work re-dispatch, both scheduled by the engine itself.
#[derive(Debug, Clone, Copy)]
enum Runtime {
    /// A schedule event, by index into [`ChaosSchedule::events`].
    Chaos(usize),
    /// A quarantined machine may rejoin.
    Rejoin(usize),
    /// Re-dispatch `work` stranded units, on their `attempt`-th try.
    Redispatch {
        /// Stranded work units to replay.
        work: f64,
        /// 1-based attempt counter, bounded by the retry budget.
        attempt: u32,
    },
}

/// Largest per-domain rate `S` such that serving `S` in each of `r`
/// replica slots fits the live domains: `Σ_d min(cap_d, S) ≥ r·S`.
/// `f(S) = Σ_d min(cap_d, S) - r·S` is concave piecewise-linear with
/// `f(0) = 0`; walk its breakpoints (the sorted domain capacities) and
/// return the root of the first descending segment.
///
/// Public because the `grail-check` chaos model drives this exact
/// function — the engine and the model checker share one admission
/// core, not two copies.
pub fn max_replica_rate(dom_caps: &[f64], r: u32) -> f64 {
    let r = r as f64;
    let mut caps: Vec<f64> = dom_caps.iter().copied().filter(|c| *c > 0.0).collect();
    caps.sort_by(f64::total_cmp);
    if caps.is_empty() || (caps.len() as f64) < r {
        return 0.0;
    }
    let mut sum_small = 0.0;
    let mut cnt_big = caps.len() as f64;
    for &c in &caps {
        // On [prev, c): f(S) = sum_small + (cnt_big - r)·S.
        if cnt_big - r < 0.0 {
            return sum_small / (r - cnt_big);
        }
        sum_small += c;
        cnt_big -= 1.0;
    }
    // Every cap binds; beyond the last breakpoint f = sum_small - r·S.
    sum_small / r
}

/// Admission control for one re-plan: given per-domain effective
/// capacities and the effective (surge-scaled) demand, pick the
/// response `(r_eff, served_rate, shed_rate)` with the documented
/// graceful-degradation order — drop replicas before shedding. The
/// largest replica count (up to `replicas`, bounded by live domains)
/// that still serves the full demand wins; if even `r = 1` cannot,
/// serve what `r = 1` allows and shed the rest.
///
/// `served_rate + shed_rate == demand_eff` exactly (up to float
/// association), which is where the run-level conservation law
/// `served + shed + failed == offered` comes from.
pub fn admission(dom_caps: &[f64], demand_eff: f64, replicas: u32) -> (u32, f64, f64) {
    let live_domains = dom_caps.iter().filter(|c| **c > 0.0).count() as u32;
    let r_max = replicas.min(live_domains).max(1);
    let mut r_eff = 1u32;
    let mut served_rate = max_replica_rate(dom_caps, 1).min(demand_eff);
    for r in (2..=r_max).rev() {
        let s = max_replica_rate(dom_caps, r).min(demand_eff);
        if s + 1e-9 >= demand_eff {
            r_eff = r;
            served_rate = s;
            break;
        }
    }
    let shed_rate = (demand_eff - served_rate).max(0.0);
    (r_eff, served_rate, shed_rate)
}

/// Greedy domain-capped fill: place `served_rate · r_eff` total load
/// with at most `served_rate` (one replica's worth) per domain, so no
/// single domain loss can take every copy. Feasible by construction:
/// [`max_replica_rate`] guaranteed `Σ_d min(cap_d, S) ≥ r·S`. Machines
/// with zero effective capacity are never powered (except under
/// [`PlacementPolicy::Spread`], which keeps every healthy machine on
/// for availability).
pub fn place_replicated(
    fleet: &[Machine],
    policy: PlacementPolicy,
    n_domains: usize,
    eff_cap: &[f64],
    served_rate: f64,
    r_eff: u32,
) -> Placement {
    let n = fleet.len();
    let mut order: Vec<usize> = (0..n).filter(|&i| eff_cap[i] > 0.0).collect();
    if policy == PlacementPolicy::Consolidate {
        order.sort_by(|&a, &b| {
            fleet[b]
                .peak_efficiency()
                .total_cmp(&fleet[a].peak_efficiency())
                .then(a.cmp(&b))
        });
    }
    let mut loads = vec![0.0; n];
    let mut powered = vec![false; n];
    if policy == PlacementPolicy::Spread {
        // Availability-first: every healthy machine stays powered.
        for &i in &order {
            powered[i] = true;
        }
    }
    let mut dom_used = vec![0.0; n_domains];
    let mut rest = served_rate * r_eff as f64;
    for &i in &order {
        if rest <= 1e-12 {
            break;
        }
        let d = fleet[i].domain as usize;
        let room = eff_cap[i].min(served_rate - dom_used[d]);
        if room <= 0.0 {
            continue;
        }
        let take = rest.min(room);
        loads[i] = take;
        powered[i] = true;
        dom_used[d] += take;
        rest -= take;
    }
    Placement { loads, powered }
}

/// The engine's mutable state, split out so event handlers stay small.
struct Engine<'a> {
    fleet: &'a [Machine],
    policy: &'a ChaosPolicy,
    demand: f64,
    start: SimInstant,
    n_domains: usize,
    // Fleet health.
    machine_up: Vec<bool>,
    domain_up: Vec<bool>,
    quarantined: Vec<bool>,
    trips: Vec<u32>,
    last_crash: Vec<Option<SimInstant>>,
    // Environment.
    cap_frac: f64,
    surge: f64,
    // Current interval.
    placement: Placement,
    served_rate: f64,
    shed_rate: f64,
    r_eff: u32,
    // Accumulators.
    ledger: EnergyLedger,
    offered: f64,
    served_integral: f64,
    shed: f64,
    failed: f64,
    stranded: f64,
    recovered: f64,
    crashes: u64,
    restarts: u64,
    domain_outages: u64,
    brownouts: u64,
    surges: u64,
    breaker_trips: u64,
    cold_boots: u64,
    redispatches: u64,
    redundancy_degraded_secs: f64,
    placements: Vec<PlacementChange>,
}

const RECOVERY: ComponentId = ComponentId::new(ComponentKind::Recovery, 0);

impl Engine<'_> {
    fn machine_component(i: usize) -> ComponentId {
        ComponentId::new(ComponentKind::Base, i as u32)
    }

    /// Whether machine `i` may take load right now.
    fn available(&self, i: usize) -> bool {
        self.machine_up[i] && self.domain_up[self.fleet[i].domain as usize] && !self.quarantined[i]
    }

    /// Fraction of machine `i`'s capacity usable under the current
    /// brownout cap: the load at which its linear power curve hits
    /// `cap_frac · peak`.
    fn usable_frac(&self, i: usize) -> f64 {
        if self.cap_frac >= 1.0 {
            return 1.0;
        }
        let m = &self.fleet[i];
        let peak = m.peak.get();
        let idle = m.idle.get();
        let span = peak - idle;
        if span <= 0.0 {
            // Flat power curve: the machine either fits under the cap or
            // cannot run at all.
            return if idle <= self.cap_frac * peak {
                1.0
            } else {
                0.0
            };
        }
        ((self.cap_frac * peak - idle) / span).clamp(0.0, 1.0)
    }

    /// Accrue energy and demand accounting over `[from, to)` under the
    /// current placement and rates.
    fn settle(&mut self, from: SimInstant, to: SimInstant, tracer: &mut Tracer) {
        // Drive the scrape clock first so boundary snapshots inside
        // `(from, to]` capture the integrals as they stood before this
        // settlement lands.
        tracer.advance_time(to.as_nanos());
        let dt = to.duration_since(from);
        if dt.is_zero() {
            return;
        }
        let secs = dt.as_secs_f64();
        for i in 0..self.fleet.len() {
            if !self.placement.powered[i] {
                continue;
            }
            let m = &self.fleet[i];
            let mut p = m.power_at(self.placement.loads[i]);
            if self.cap_frac < 1.0 {
                // The brownout physically caps the feeder; loads were
                // already planned under it, this is belt-and-braces.
                p = Watts::new(p.get().min(m.peak.get() * self.cap_frac));
            }
            self.ledger
                .charge_interval(Self::machine_component(i), p, dt);
        }
        self.offered += self.demand * self.surge * secs;
        self.served_integral += self.served_rate * secs;
        self.shed += self.shed_rate * secs;
        if self.r_eff < self.policy.replicas {
            self.redundancy_degraded_secs += secs;
        }
        tracer.gauge("chaos.offered_work", self.offered);
        tracer.gauge("chaos.served_work", self.served_integral);
        tracer.gauge("chaos.shed_work", self.shed);
    }

    /// Re-plan placement and admission for the current fleet health,
    /// billing cold boots for machines that power on (skipped for the
    /// initial placement — the fleet starts in steady state).
    fn recompute(&mut self, at: SimInstant, bill_boots: bool, tracer: &mut Tracer) {
        let n = self.fleet.len();
        let eff_cap: Vec<f64> = (0..n)
            .map(|i| {
                if self.available(i) {
                    self.fleet[i].capacity * self.usable_frac(i)
                } else {
                    0.0
                }
            })
            .collect();
        let mut dom_caps = vec![0.0; self.n_domains];
        for i in 0..n {
            dom_caps[self.fleet[i].domain as usize] += eff_cap[i];
        }
        let demand_eff = self.demand * self.surge;
        let (r_eff, served_rate, shed_rate) =
            admission(&dom_caps, demand_eff, self.policy.replicas);
        let placement = place_replicated(
            self.fleet,
            self.policy.placement,
            self.n_domains,
            &eff_cap,
            served_rate,
            r_eff,
        );
        if bill_boots {
            for i in 0..n {
                if placement.powered[i] && !self.placement.powered[i] {
                    self.cold_boots += 1;
                    let boot = self.fleet[i].boot_energy;
                    self.ledger.charge(Self::machine_component(i), boot);
                    self.ledger
                        .transfer(Self::machine_component(i), RECOVERY, boot);
                    observe::record_chaos_boot(tracer, at, i, boot);
                }
            }
        }
        self.placement = placement;
        self.served_rate = served_rate;
        self.shed_rate = shed_rate;
        self.r_eff = r_eff;
        self.placements.push(PlacementChange {
            at,
            loads: self.placement.loads.clone(),
            powered: self.placement.powered_count() as u32,
            served_rate,
            shed_rate,
            replicas: r_eff,
        });
        observe::record_chaos_placement(
            tracer,
            at,
            self.placement.powered_count() as u32,
            served_rate,
            shed_rate,
            r_eff,
        );
    }

    /// Work stranded in flight on `machines` when they die at `at`.
    fn stranded_work(&self, at: SimInstant, machines: &[usize]) -> f64 {
        let elapsed = at.duration_since(self.start).as_secs_f64();
        let window = self.policy.inflight_window.as_secs_f64().min(elapsed);
        machines
            .iter()
            .map(|&i| self.placement.loads[i])
            .sum::<f64>()
            * window
    }

    /// The most (peak-)efficient currently-available machine, if any —
    /// where hedged re-dispatch replays stranded work.
    fn best_available(&self) -> Option<usize> {
        (0..self.fleet.len())
            .filter(|&i| self.available(i))
            .min_by(|&a, &b| {
                self.fleet[b]
                    .peak_efficiency()
                    .total_cmp(&self.fleet[a].peak_efficiency())
                    .then(a.cmp(&b))
            })
    }

    /// Apply one runtime event at `at`: the single protocol transition
    /// of the failover/admission pipeline. Every state change of the
    /// run — fleet health, breaker trips, placement, the Recovery
    /// ledger line — flows through here, which is what lets the
    /// `grail-check` chaos model explore the same transition relation
    /// the production event loop executes.
    fn step(
        &mut self,
        at: SimInstant,
        rt: Runtime,
        schedule: &ChaosSchedule,
        queue: &mut EventQueue<Runtime>,
        tracer: &mut Tracer,
    ) {
        match rt {
            Runtime::Chaos(idx) => {
                let ev = &schedule.events()[idx];
                observe::record_chaos_event(tracer, ev);
                match ev.kind {
                    ChaosEventKind::MachineCrash { machine } => {
                        let m = machine as usize;
                        self.crashes += 1;
                        self.trips[m] = match self.last_crash[m] {
                            Some(prev)
                                if at.duration_since(prev) <= self.policy.breaker.reset_window =>
                            {
                                self.trips[m].saturating_add(1)
                            }
                            _ => 1,
                        };
                        self.last_crash[m] = Some(at);
                        let work = self.stranded_work(at, &[m]);
                        self.machine_up[m] = false;
                        self.recompute(at, true, tracer);
                        if work > 0.0 {
                            self.stranded += work;
                            queue.push(
                                at + self.policy.retry.backoff(1),
                                Runtime::Redispatch { work, attempt: 1 },
                            );
                        }
                    }
                    ChaosEventKind::MachineUp { machine } => {
                        let m = machine as usize;
                        self.restarts += 1;
                        let hold = self.policy.breaker.quarantine(self.trips[m]);
                        self.machine_up[m] = true;
                        if hold.is_zero() {
                            self.recompute(at, true, tracer);
                        } else {
                            self.breaker_trips += 1;
                            self.quarantined[m] = true;
                            observe::record_chaos_breaker(tracer, at, m, self.trips[m], hold);
                            queue.push(at + hold, Runtime::Rejoin(m));
                        }
                    }
                    ChaosEventKind::DomainDown { domain } => {
                        self.domain_outages += 1;
                        let members: Vec<usize> = (0..self.fleet.len())
                            .filter(|&i| self.fleet[i].domain == domain)
                            .collect();
                        let work = self.stranded_work(at, &members);
                        self.domain_up[domain as usize] = false;
                        self.recompute(at, true, tracer);
                        if work > 0.0 {
                            self.stranded += work;
                            queue.push(
                                at + self.policy.retry.backoff(1),
                                Runtime::Redispatch { work, attempt: 1 },
                            );
                        }
                    }
                    ChaosEventKind::DomainUp { domain } => {
                        self.domain_up[domain as usize] = true;
                        self.recompute(at, true, tracer);
                    }
                    ChaosEventKind::BrownoutStart { cap_frac } => {
                        self.brownouts += 1;
                        self.cap_frac = cap_frac;
                        self.recompute(at, true, tracer);
                    }
                    ChaosEventKind::BrownoutEnd => {
                        self.cap_frac = 1.0;
                        self.recompute(at, true, tracer);
                    }
                    ChaosEventKind::SurgeStart { factor } => {
                        self.surges += 1;
                        self.surge = factor;
                        self.recompute(at, true, tracer);
                    }
                    ChaosEventKind::SurgeEnd => {
                        self.surge = 1.0;
                        self.recompute(at, true, tracer);
                    }
                }
            }
            Runtime::Rejoin(m) => {
                self.quarantined[m] = false;
                self.recompute(at, true, tracer);
            }
            Runtime::Redispatch { work, attempt } => {
                self.redispatch(at, work, attempt, queue, tracer);
            }
        }
    }

    /// Resolve one re-dispatch attempt: replay on a live machine (hedged,
    /// billed to Recovery), or reschedule, or — past the retry budget —
    /// account the work as failed.
    fn redispatch(
        &mut self,
        at: SimInstant,
        work: f64,
        attempt: u32,
        queue: &mut EventQueue<Runtime>,
        tracer: &mut Tracer,
    ) {
        if let Some(host) = self.best_available() {
            self.recovered += work;
            self.redispatches += 1;
            let eff = self.fleet[host].peak_efficiency();
            let replay = if eff > 0.0 {
                Joules::new(work / eff * (1.0 + self.policy.hedge_frac))
            } else {
                Joules::ZERO
            };
            self.ledger.charge(Self::machine_component(host), replay);
            self.ledger
                .transfer(Self::machine_component(host), RECOVERY, replay);
            observe::record_chaos_redispatch(tracer, at, work, attempt, true, replay);
        } else if attempt > self.policy.retry.max_retries {
            // Out of budget with nowhere to run: the work is lost. It
            // was counted into the served integral while in flight, so
            // move it from served to failed.
            self.failed += work;
            observe::record_chaos_redispatch(tracer, at, work, attempt, false, Joules::ZERO);
        } else {
            let next = attempt + 1;
            queue.push(
                at + self.policy.retry.backoff(next),
                Runtime::Redispatch {
                    work,
                    attempt: next,
                },
            );
        }
    }
}

/// Drive `fleet` through `schedule` while serving `demand` work/s under
/// `policy`, returning the full [`ChaosReport`].
///
/// Deterministic: the report (ledger, placements, counters) and every
/// trace event are a pure function of the inputs.
///
/// # Errors
/// [`ClusterError::EmptyFleet`] for an empty fleet,
/// [`ClusterError::BadMachine`] if any machine fails
/// [`Machine::validate`], and [`ClusterError::BadSchedule`] when the
/// schedule's machine/domain shape does not cover the fleet or the
/// demand/policy parameters are not finite.
pub fn run_chaos(
    fleet: &[Machine],
    schedule: &ChaosSchedule,
    demand: f64,
    policy: &ChaosPolicy,
    tracer: &mut Tracer,
) -> Result<ChaosReport, ClusterError> {
    if fleet.is_empty() {
        return Err(ClusterError::EmptyFleet);
    }
    for m in fleet {
        m.validate()?;
    }
    if schedule.machines() as usize != fleet.len() {
        return Err(ClusterError::BadSchedule(format!(
            "schedule addresses {} machines, fleet has {}",
            schedule.machines(),
            fleet.len()
        )));
    }
    if schedule.domains() < domain_count(fleet) {
        return Err(ClusterError::BadSchedule(format!(
            "schedule addresses {} domains, fleet spans {}",
            schedule.domains(),
            domain_count(fleet)
        )));
    }
    if !demand.is_finite() || demand < 0.0 {
        return Err(ClusterError::BadSchedule(format!(
            "offered demand must be finite and non-negative, got {demand}"
        )));
    }
    if policy.replicas == 0 {
        return Err(ClusterError::BadSchedule(
            "replica target must be at least 1".to_string(),
        ));
    }
    if !policy.hedge_frac.is_finite() || policy.hedge_frac < 0.0 {
        return Err(ClusterError::BadSchedule(format!(
            "hedge fraction must be finite and non-negative, got {}",
            policy.hedge_frac
        )));
    }
    let n = fleet.len();
    let n_domains = schedule.domains() as usize;
    let start = SimInstant::EPOCH;
    let end = start + schedule.horizon();
    let mut eng = Engine {
        fleet,
        policy,
        demand,
        start,
        n_domains,
        machine_up: vec![true; n],
        domain_up: vec![true; n_domains],
        quarantined: vec![false; n],
        trips: vec![0; n],
        last_crash: vec![None; n],
        cap_frac: 1.0,
        surge: 1.0,
        placement: Placement {
            loads: vec![0.0; n],
            powered: vec![false; n],
        },
        served_rate: 0.0,
        shed_rate: 0.0,
        r_eff: policy.replicas,
        ledger: EnergyLedger::new(),
        offered: 0.0,
        served_integral: 0.0,
        shed: 0.0,
        failed: 0.0,
        stranded: 0.0,
        recovered: 0.0,
        crashes: 0,
        restarts: 0,
        domain_outages: 0,
        brownouts: 0,
        surges: 0,
        breaker_trips: 0,
        cold_boots: 0,
        redispatches: 0,
        redundancy_degraded_secs: 0.0,
        placements: Vec::new(),
    };
    eng.recompute(start, false, tracer);
    let mut queue: EventQueue<Runtime> = EventQueue::new();
    for (idx, ev) in schedule.events().iter().enumerate() {
        queue.push(ev.at, Runtime::Chaos(idx));
    }
    let mut cur = start;
    // Runtime events the engine scheduled past the horizon (late
    // rejoins, backed-off re-dispatches) — resolved at the end.
    let mut overflow: Vec<Runtime> = Vec::new();
    while let Some((at, rt)) = queue.pop() {
        if at >= end {
            overflow.push(rt);
            continue;
        }
        eng.settle(cur, at, tracer);
        cur = at;
        eng.step(at, rt, schedule, &mut queue, tracer);
    }
    eng.settle(cur, end, tracer);
    // Work still bouncing in re-dispatch when the horizon closes gets
    // one final resolution at the end instant: recovered if anything is
    // live, failed otherwise. Late rejoins are moot.
    for rt in overflow {
        if let Runtime::Redispatch { work, attempt } = rt {
            if eng.best_available().is_some() {
                // Resolved exactly like an in-horizon re-dispatch.
                let mut dummy = EventQueue::new();
                eng.redispatch(end, work, attempt, &mut dummy, tracer);
            } else {
                eng.failed += work;
                observe::record_chaos_redispatch(tracer, end, work, attempt, false, Joules::ZERO);
            }
        }
    }
    eng.ledger.cover(start, end);
    tracer.finish_time(end.as_nanos());
    Ok(ChaosReport {
        ledger: eng.ledger,
        horizon: schedule.horizon(),
        offered: eng.offered,
        served: (eng.served_integral - eng.failed).max(0.0),
        shed: eng.shed,
        failed: eng.failed,
        stranded: eng.stranded,
        recovered: eng.recovered,
        crashes: eng.crashes,
        restarts: eng.restarts,
        domain_outages: eng.domain_outages,
        brownouts: eng.brownouts,
        surges: eng.surges,
        breaker_trips: eng.breaker_trips,
        cold_boots: eng.cold_boots,
        redispatches: eng.redispatches,
        redundancy_degraded_secs: eng.redundancy_degraded_secs,
        placements: eng.placements,
    })
}

/// The documented availability floor the reference storm must clear —
/// asserted by `tests/subsystems.rs` and quoted in DESIGN.md §11.
pub const DOCUMENTED_AVAILABILITY_FLOOR: f64 = 0.90;

/// The reference chaos scenario quoted throughout the docs: a 4-domain,
/// 24-machine fleet under a two-day storm of crashes, a rack outage,
/// brownouts and surges, serving 25% of fleet capacity with 2 replicas.
pub fn reference_storm() -> (Vec<Machine>, ChaosSchedule, f64, ChaosPolicy) {
    use grail_sim::fault::ChaosConfig;
    let fleet = crate::cluster::chaos_fleet(4, 6);
    let horizon = SimDuration::from_secs(2 * 86_400);
    let cfg = ChaosConfig {
        machine_mtbf: Some(SimDuration::from_secs(86_400)),
        machine_restart: SimDuration::from_secs(600),
        domain_mtbf: Some(SimDuration::from_secs(4 * 86_400)),
        domain_outage: SimDuration::from_secs(1_800),
        brownout_mtbf: Some(SimDuration::from_secs(86_400)),
        brownout: SimDuration::from_secs(3_600),
        brownout_cap_frac: 0.7,
        surge_mtbf: Some(SimDuration::from_secs(43_200)),
        surge: SimDuration::from_secs(2_400),
        surge_factor: 1.5,
    };
    let schedule = ChaosSchedule::generate(cfg, 1009, fleet.len() as u32, 4, horizon);
    let total_cap: f64 = fleet.iter().map(|m| m.capacity).sum();
    (fleet, schedule, total_cap * 0.25, ChaosPolicy::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use grail_power::units::SimInstant;
    use grail_sim::fault::ChaosEvent;
    use grail_trace::{Recorder, Tracer};

    fn at(s: f64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs_f64(s)
    }

    /// 2 domains × 2 machines, 100 work/s each, 50 W idle / 150 W peak.
    fn small_fleet() -> Vec<Machine> {
        (0..4)
            .map(|i| {
                Machine::new(&format!("m{i}"), 100.0, Watts::new(50.0), Watts::new(150.0))
                    .with_boot(SimDuration::from_secs(60), Joules::new(9_000.0))
                    .with_domain(i / 2)
            })
            .collect()
    }

    fn calm(horizon_s: u64) -> ChaosSchedule {
        ChaosSchedule::scripted(4, 2, SimDuration::from_secs(horizon_s), vec![])
    }

    fn check_conservation(r: &ChaosReport) {
        assert!(
            r.conservation_error() <= 1e-6 * r.offered.max(1.0),
            "served {} + shed {} + failed {} != offered {}",
            r.served,
            r.shed,
            r.failed,
            r.offered
        );
    }

    #[test]
    fn calm_run_serves_everything() {
        let fleet = small_fleet();
        let r = run_chaos(
            &fleet,
            &calm(1_000),
            100.0,
            &ChaosPolicy::default(),
            &mut Tracer::off(),
        )
        .expect("valid");
        check_conservation(&r);
        assert!((r.availability() - 1.0).abs() < 1e-12);
        assert!((r.offered - 100.0 * 1_000.0).abs() < 1e-6);
        assert!(r.shed < 1e-9);
        assert_eq!(r.failed, 0.0);
        assert_eq!(r.cold_boots, 0);
        assert_eq!(r.recovery_energy(), Joules::ZERO);
        assert!(r.total_energy().joules() > 0.0);
        // 2 replicas in 2 domains: both copies placed, one per domain.
        assert_eq!(r.placements.len(), 1);
        assert_eq!(r.placements[0].replicas, 2);
        let placed: f64 = r.placements[0].loads.iter().sum();
        assert!((placed - 200.0).abs() < 1e-6, "r·S = 2 × 100: {placed}");
    }

    #[test]
    fn replicas_never_share_a_domain() {
        let fleet = small_fleet();
        let r = run_chaos(
            &fleet,
            &calm(100),
            150.0,
            &ChaosPolicy::default(),
            &mut Tracer::off(),
        )
        .expect("valid");
        // 150 served twice = 300 total, capped at 150 per domain.
        for p in &r.placements {
            let mut per_dom = [0.0f64; 2];
            for (i, l) in p.loads.iter().enumerate() {
                per_dom[fleet[i].domain as usize] += l;
            }
            for (d, used) in per_dom.iter().enumerate() {
                assert!(
                    *used <= p.served_rate + 1e-9,
                    "domain {d} holds {used} > one replica's {}",
                    p.served_rate
                );
            }
        }
    }

    #[test]
    fn crash_strands_and_recovers_work_with_recovery_billing() {
        let fleet = small_fleet();
        let schedule = ChaosSchedule::scripted(
            4,
            2,
            SimDuration::from_secs(10_000),
            vec![
                ChaosEvent {
                    at: at(5_000.0),
                    kind: ChaosEventKind::MachineCrash { machine: 0 },
                },
                ChaosEvent {
                    at: at(5_600.0),
                    kind: ChaosEventKind::MachineUp { machine: 0 },
                },
            ],
        );
        let policy = ChaosPolicy {
            placement: PlacementPolicy::Spread,
            ..ChaosPolicy::default()
        };
        let r = run_chaos(&fleet, &schedule, 150.0, &policy, &mut Tracer::off()).expect("valid");
        check_conservation(&r);
        assert_eq!(r.crashes, 1);
        assert_eq!(r.restarts, 1);
        assert!(r.stranded > 0.0, "machine 0 carried load when it died");
        assert!(
            (r.stranded - r.recovered).abs() < 1e-9,
            "survivors recover it"
        );
        assert_eq!(r.failed, 0.0);
        assert!(r.redispatches >= 1);
        assert!(
            r.recovery_energy().joules() > 0.0,
            "replay energy is billed to Recovery"
        );
        // Recovery is re-attribution: it still sums into the total.
        let by_kind: f64 = [ComponentKind::Base, ComponentKind::Recovery]
            .iter()
            .map(|k| r.ledger.kind_total(*k).joules())
            .sum();
        assert!((by_kind - r.total_energy().joules()).abs() < 1e-6);
        // Availability dips only by the brief capacity loss, if at all.
        assert!(r.availability() > 0.99, "{}", r.availability());
    }

    #[test]
    fn fleet_blackout_sheds_then_fails_inflight_work() {
        let fleet = small_fleet();
        let schedule = ChaosSchedule::scripted(
            4,
            2,
            SimDuration::from_secs(2_000),
            vec![
                ChaosEvent {
                    at: at(1_000.0),
                    kind: ChaosEventKind::DomainDown { domain: 0 },
                },
                ChaosEvent {
                    at: at(1_000.0),
                    kind: ChaosEventKind::DomainDown { domain: 1 },
                },
            ],
        );
        let r = run_chaos(
            &fleet,
            &schedule,
            100.0,
            &ChaosPolicy::default(),
            &mut Tracer::off(),
        )
        .expect("valid");
        check_conservation(&r);
        assert_eq!(r.domain_outages, 2);
        // Second half of the run is fully shed.
        assert!((r.shed - 100.0 * 1_000.0).abs() < 1.0, "shed {}", r.shed);
        // In-flight work at the blackout has nowhere to go: failed.
        assert!(r.failed > 0.0);
        assert!(r.stranded > 0.0);
        assert_eq!(r.recovered, 0.0);
        assert!(r.availability() < 0.51);
    }

    #[test]
    fn degradation_drops_replicas_before_shedding() {
        let fleet = small_fleet();
        // Lose domain 1 entirely: only one domain left, so r_eff must
        // fall to 1 — but demand 100 still fits domain 0's 200 capacity,
        // so nothing is shed.
        let schedule = ChaosSchedule::scripted(
            4,
            2,
            SimDuration::from_secs(2_000),
            vec![ChaosEvent {
                at: at(1_000.0),
                kind: ChaosEventKind::DomainDown { domain: 1 },
            }],
        );
        let r = run_chaos(
            &fleet,
            &schedule,
            100.0,
            &ChaosPolicy::default(),
            &mut Tracer::off(),
        )
        .expect("valid");
        check_conservation(&r);
        assert!(r.shed < 1e-6, "replica sacrifice avoids shedding");
        let last = r.placements.last().expect("placements recorded");
        assert_eq!(last.replicas, 1);
        assert!((r.redundancy_degraded_secs - 1_000.0).abs() < 1e-6);
        assert!(r.availability() > 0.999);
    }

    #[test]
    fn brownout_caps_power_and_capacity() {
        let fleet = small_fleet();
        // cap_frac 0.5 on a 50/150 W curve: usable load fraction is
        // (75 - 50) / 100 = 0.25 → 25 work/s per machine, 100 fleetwide.
        let schedule = ChaosSchedule::scripted(
            4,
            2,
            SimDuration::from_secs(2_000),
            vec![ChaosEvent {
                at: at(1_000.0),
                kind: ChaosEventKind::BrownoutStart { cap_frac: 0.5 },
            }],
        );
        let r = run_chaos(
            &fleet,
            &schedule,
            150.0,
            &ChaosPolicy {
                replicas: 1,
                ..ChaosPolicy::default()
            },
            &mut Tracer::off(),
        )
        .expect("valid");
        check_conservation(&r);
        assert_eq!(r.brownouts, 1);
        // First 1000 s serve 150; the brownout halves fleet capability
        // to 100, shedding 50 work/s for the remaining 1000 s.
        assert!((r.shed - 50.0 * 1_000.0).abs() < 1.0, "shed {}", r.shed);
        let last = r.placements.last().expect("placements recorded");
        assert!((last.served_rate - 100.0).abs() < 1e-6);
    }

    #[test]
    fn surge_raises_offered_demand() {
        let fleet = small_fleet();
        let schedule = ChaosSchedule::scripted(
            4,
            2,
            SimDuration::from_secs(2_000),
            vec![ChaosEvent {
                at: at(1_000.0),
                kind: ChaosEventKind::SurgeStart { factor: 2.0 },
            }],
        );
        let r = run_chaos(
            &fleet,
            &schedule,
            100.0,
            &ChaosPolicy::default(),
            &mut Tracer::off(),
        )
        .expect("valid");
        check_conservation(&r);
        assert_eq!(r.surges, 1);
        assert!((r.offered - (100.0 * 1_000.0 + 200.0 * 1_000.0)).abs() < 1e-6);
        // 200 work/s × 2 replicas = 400 = exactly fleet capacity: served.
        assert!(r.shed < 1e-6, "shed {}", r.shed);
    }

    #[test]
    fn breaker_quarantines_flapping_machine() {
        let fleet = small_fleet();
        let mk = |t: f64, kind| ChaosEvent { at: at(t), kind };
        let schedule = ChaosSchedule::scripted(
            4,
            2,
            SimDuration::from_secs(10_000),
            vec![
                mk(1_000.0, ChaosEventKind::MachineCrash { machine: 0 }),
                mk(1_100.0, ChaosEventKind::MachineUp { machine: 0 }),
                mk(1_200.0, ChaosEventKind::MachineCrash { machine: 0 }),
                mk(1_300.0, ChaosEventKind::MachineUp { machine: 0 }),
            ],
        );
        let policy = ChaosPolicy {
            placement: PlacementPolicy::Spread,
            breaker: BreakerPolicy {
                base_quarantine: SimDuration::from_secs(500),
                multiplier: 2,
                reset_window: SimDuration::from_secs(3_600),
            },
            ..ChaosPolicy::default()
        };
        let r = run_chaos(&fleet, &schedule, 100.0, &policy, &mut Tracer::off()).expect("valid");
        check_conservation(&r);
        assert_eq!(r.crashes, 2);
        assert_eq!(r.restarts, 2);
        assert_eq!(r.breaker_trips, 1, "second restart is quarantined");
        // The quarantined machine rejoins 500 s after its restart: the
        // placement sequence must include a decision at t = 1800.
        assert!(
            r.placements.iter().any(|p| p.at == at(1_800.0)),
            "rejoin decision recorded"
        );
    }

    #[test]
    fn breaker_policy_quarantine_saturates() {
        let b = BreakerPolicy::default();
        assert_eq!(b.quarantine(0), SimDuration::ZERO);
        assert_eq!(b.quarantine(1), SimDuration::ZERO);
        assert_eq!(b.quarantine(2), SimDuration::from_secs(300));
        assert_eq!(b.quarantine(3), SimDuration::from_secs(600));
        assert_eq!(b.quarantine(u32::MAX), b.quarantine(18));
        let worst = BreakerPolicy {
            base_quarantine: SimDuration::from_secs(3600),
            multiplier: u32::MAX,
            reset_window: SimDuration::MAX,
        };
        assert_eq!(worst.quarantine(u32::MAX), SimDuration::MAX);
    }

    #[test]
    fn same_inputs_identical_reports_and_traces() {
        let (fleet, schedule, demand, policy) = reference_storm();
        let run = || {
            let mut tracer = Tracer::on(Recorder::new(1 << 16));
            let r = run_chaos(&fleet, &schedule, demand, &policy, &mut tracer).expect("valid");
            let rec = tracer.take().expect("tracer on");
            (r, grail_trace::to_jsonl(&rec))
        };
        let (ra, ta) = run();
        let (rb, tb) = run();
        assert_eq!(ra, rb);
        assert_eq!(ta, tb);
        assert!(!ta.is_empty());
    }

    #[test]
    fn reference_storm_is_stormy_but_survivable() {
        let (fleet, schedule, demand, policy) = reference_storm();
        let r = run_chaos(&fleet, &schedule, demand, &policy, &mut Tracer::off()).expect("valid");
        check_conservation(&r);
        assert!(r.crashes > 0, "a two-day storm must crash something");
        assert!(r.availability() >= DOCUMENTED_AVAILABILITY_FLOOR);
        assert!(r.recovery_energy().joules() > 0.0);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let fleet = small_fleet();
        let p = ChaosPolicy::default();
        let mut t = Tracer::off();
        assert!(matches!(
            run_chaos(&[], &calm(10), 1.0, &p, &mut t),
            Err(ClusterError::EmptyFleet)
        ));
        let wrong_machines = ChaosSchedule::scripted(3, 2, SimDuration::from_secs(10), vec![]);
        assert!(matches!(
            run_chaos(&fleet, &wrong_machines, 1.0, &p, &mut t),
            Err(ClusterError::BadSchedule(_))
        ));
        let wrong_domains = ChaosSchedule::scripted(4, 1, SimDuration::from_secs(10), vec![]);
        assert!(matches!(
            run_chaos(&fleet, &wrong_domains, 1.0, &p, &mut t),
            Err(ClusterError::BadSchedule(_))
        ));
        assert!(matches!(
            run_chaos(&fleet, &calm(10), f64::NAN, &p, &mut t),
            Err(ClusterError::BadSchedule(_))
        ));
        let zero_replicas = ChaosPolicy {
            replicas: 0,
            ..ChaosPolicy::default()
        };
        assert!(matches!(
            run_chaos(&fleet, &calm(10), 1.0, &zero_replicas, &mut t),
            Err(ClusterError::BadSchedule(_))
        ));
    }

    #[test]
    fn max_replica_rate_walks_breakpoints() {
        // Two domains 100 and 1, r = 2: S* solves min(100,S)+min(1,S) = 2S.
        assert!((max_replica_rate(&[100.0, 1.0], 2) - 1.0).abs() < 1e-12);
        // r = 1: everything fits up to total capacity.
        assert!((max_replica_rate(&[100.0, 1.0], 1) - 101.0).abs() < 1e-12);
        // r equal to live domains: bounded by the smallest domain.
        assert!((max_replica_rate(&[40.0, 60.0, 80.0], 3) - 40.0).abs() < 1e-12);
        // More replicas than live domains: nothing placeable.
        assert_eq!(max_replica_rate(&[40.0, 60.0], 3), 0.0);
        assert_eq!(max_replica_rate(&[], 1), 0.0);
        // Dead domains are ignored.
        assert!((max_replica_rate(&[0.0, 50.0, 50.0], 2) - 50.0).abs() < 1e-12);
    }
}
