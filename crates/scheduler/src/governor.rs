//! Device idle governors: when to spin a component down.
//!
//! Sec. 4.2: "hardware components will require a certain minimum-length
//! idle period to enter in a suspended mode, and the longer that period
//! is the easier it is to hide the costs of switching between power
//! states". A governor turns idle gaps into park/unpark commands:
//!
//! * [`NeverPark`] — the baseline (classic servers).
//! * [`TimeoutGovernor`] — parks after a fixed idle timeout; online, so
//!   it wastes the timeout and pays spin-up latency on the next request.
//! * [`OracleGovernor`] — clairvoyant: parks exactly when a gap exceeds
//!   break-even and wakes just in time. The upper bound any online
//!   policy chases.

use grail_power::units::{Joules, SimDuration, SimInstant, Watts};
use serde::Serialize;

/// The device costs a governor reasons about.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ParkCosts {
    /// Idle gap length beyond which a round trip saves energy.
    pub break_even: SimDuration,
    /// Spin-up latency.
    pub spin_up: SimDuration,
    /// Spin-down latency.
    pub spin_down: SimDuration,
    /// Power while spinning idle.
    pub idle_power: Watts,
    /// Power while parked.
    pub standby_power: Watts,
    /// Energy of one spin-down + spin-up round trip.
    pub round_trip_energy: Joules,
}

impl ParkCosts {
    /// The SCSI 15K drive of Fig. 1 (matches
    /// `grail_power::components::DiskPowerProfile::scsi_15k`).
    pub fn scsi_15k() -> Self {
        ParkCosts {
            break_even: SimDuration::from_secs_f64(14.05),
            spin_up: SimDuration::from_secs(6),
            spin_down: SimDuration::from_secs(1),
            idle_power: Watts::new(12.5),
            standby_power: Watts::new(2.5),
            round_trip_energy: Joules::new(148.0),
        }
    }
}

/// A park decision for one idle gap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GapPlan {
    /// When to issue the spin-down.
    pub park_at: SimInstant,
    /// When to issue the spin-up (`None` = wake on demand).
    pub unpark_at: Option<SimInstant>,
}

/// A governor plans each idle gap.
pub trait IdleGovernor: std::fmt::Debug {
    /// Decide for a gap `[start, end)`; online policies must not read
    /// `end` (it is the *actual* next arrival, unknown to them — the
    /// planner uses it only to discard plans the request would preempt).
    fn plan_gap(&self, start: SimInstant, end: SimInstant, costs: &ParkCosts) -> Option<GapPlan>;

    /// Display name.
    fn name(&self) -> &'static str;
}

/// Never park (baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverPark;

impl IdleGovernor for NeverPark {
    fn plan_gap(&self, _: SimInstant, _: SimInstant, _: &ParkCosts) -> Option<GapPlan> {
        None
    }

    fn name(&self) -> &'static str {
        "never"
    }
}

/// Park after `timeout` of idleness; wake on demand (the next request
/// pays the spin-up).
#[derive(Debug, Clone, Copy)]
pub struct TimeoutGovernor {
    /// Idle time before parking.
    pub timeout: SimDuration,
}

impl IdleGovernor for TimeoutGovernor {
    fn plan_gap(&self, start: SimInstant, end: SimInstant, costs: &ParkCosts) -> Option<GapPlan> {
        let park_at = start + self.timeout;
        // The spin-down must complete before the gap ends to be issued
        // at all (otherwise the request preempts it).
        if park_at + costs.spin_down >= end {
            return None;
        }
        Some(GapPlan {
            park_at,
            unpark_at: None,
        })
    }

    fn name(&self) -> &'static str {
        "timeout"
    }
}

/// Clairvoyant: parks at the gap start iff the gap clears break-even,
/// and wakes exactly `spin_up` before the next request.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleGovernor;

impl IdleGovernor for OracleGovernor {
    fn plan_gap(&self, start: SimInstant, end: SimInstant, costs: &ParkCosts) -> Option<GapPlan> {
        let gap = end.saturating_duration_since(start);
        if gap <= costs.break_even {
            return None;
        }
        let unpark_at = end - costs.spin_up;
        if unpark_at <= start + costs.spin_down {
            return None;
        }
        Some(GapPlan {
            park_at: start,
            unpark_at: Some(unpark_at),
        })
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// Analytic energy of one gap under a plan (used by unit tests and
/// quick what-ifs; the experiments measure against the real simulator).
pub fn gap_energy(
    plan: Option<&GapPlan>,
    start: SimInstant,
    end: SimInstant,
    costs: &ParkCosts,
) -> Joules {
    let gap = end.saturating_duration_since(start);
    match plan {
        None => costs.idle_power * gap,
        Some(p) => {
            let idle_before = p.park_at.saturating_duration_since(start);
            let wake_at = p.unpark_at.unwrap_or(end);
            let parked = wake_at.saturating_duration_since(p.park_at + costs.spin_down);
            let idle_after = end.saturating_duration_since(wake_at + costs.spin_up);
            costs.idle_power * (idle_before + idle_after)
                + costs.standby_power * parked
                + costs.round_trip_energy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: f64) -> SimInstant {
        SimInstant::from_secs_f64(s)
    }

    #[test]
    fn never_park_never_parks() {
        let g = NeverPark;
        assert!(g
            .plan_gap(at(0.0), at(1e6), &ParkCosts::scsi_15k())
            .is_none());
    }

    #[test]
    fn timeout_parks_only_when_it_fits() {
        let g = TimeoutGovernor {
            timeout: SimDuration::from_secs(10),
        };
        let c = ParkCosts::scsi_15k();
        assert!(
            g.plan_gap(at(0.0), at(5.0), &c).is_none(),
            "gap shorter than timeout"
        );
        let p = g.plan_gap(at(0.0), at(100.0), &c).unwrap();
        assert_eq!(p.park_at, at(10.0));
        assert_eq!(p.unpark_at, None);
    }

    #[test]
    fn oracle_respects_break_even() {
        let g = OracleGovernor;
        let c = ParkCosts::scsi_15k();
        assert!(
            g.plan_gap(at(0.0), at(10.0), &c).is_none(),
            "below break-even"
        );
        let p = g.plan_gap(at(0.0), at(100.0), &c).unwrap();
        assert_eq!(p.park_at, at(0.0));
        assert_eq!(p.unpark_at, Some(at(94.0)), "wake spin_up early");
    }

    #[test]
    fn oracle_saves_energy_above_break_even() {
        let c = ParkCosts::scsi_15k();
        let g = OracleGovernor;
        for gap_secs in [20.0, 50.0, 500.0] {
            let end = at(gap_secs);
            let plan = g.plan_gap(at(0.0), end, &c);
            let parked = gap_energy(plan.as_ref(), at(0.0), end, &c);
            let idle = gap_energy(None, at(0.0), end, &c);
            assert!(
                parked.joules() < idle.joules(),
                "gap {gap_secs}: {parked} vs {idle}"
            );
        }
    }

    #[test]
    fn short_gap_parking_would_waste_energy() {
        let c = ParkCosts::scsi_15k();
        // Force a plan on a 10 s gap (below 14 s break-even): costs more
        // than idling — which is why the oracle refuses.
        let plan = GapPlan {
            park_at: at(0.0),
            unpark_at: Some(at(4.0)),
        };
        let forced = gap_energy(Some(&plan), at(0.0), at(10.0), &c);
        let idle = gap_energy(None, at(0.0), at(10.0), &c);
        assert!(forced.joules() > idle.joules());
    }

    #[test]
    fn timeout_beats_never_on_long_gaps_but_wastes_the_timeout() {
        let c = ParkCosts::scsi_15k();
        let t = TimeoutGovernor {
            timeout: SimDuration::from_secs(10),
        };
        let end = at(500.0);
        let t_plan = t.plan_gap(at(0.0), end, &c);
        let o_plan = OracleGovernor.plan_gap(at(0.0), end, &c);
        let e_never = gap_energy(None, at(0.0), end, &c);
        let e_timeout = gap_energy(t_plan.as_ref(), at(0.0), end, &c);
        let e_oracle = gap_energy(o_plan.as_ref(), at(0.0), end, &c);
        assert!(e_timeout.joules() < e_never.joules());
        assert!(
            e_oracle.joules() < e_timeout.joules(),
            "oracle is the bound"
        );
    }
}
