//! # grail-scheduler — resource-use consolidation
//!
//! Sec. 4.2: "shift computations and relocate data to consolidate
//! resource use both in time and space, to facilitate powering down
//! individual hardware components", accepting latency for idle-period
//! length. This crate supplies the policies:
//!
//! * [`admission`] — immediate vs windowed-batch admission of arriving
//!   queries (the "batching requests at the cost of increased latency"
//!   trade).
//! * [`governor`] — device idle governors: never-park, fixed-timeout,
//!   and the clairvoyant oracle (knows the next arrival), each deciding
//!   spin-downs against the device's break-even gap.
//! * [`sharing`] — scan sharing: queries arriving within a window attach
//!   to an in-flight scan instead of re-reading.
//! * [`cluster`] — fleet-level consolidation (\[TWM+08\]): pack load onto
//!   the most efficient machines and power off the rest, making the
//!   cluster energy-proportional even when no machine is; includes
//!   machine-failure re-placement ([`cluster::fail_over`]) that charges
//!   cold-boot energy when displaced load lands on dark machines.
//! * [`chaos`] — the cluster chaos engine: drives a fleet through a
//!   seeded [`grail_sim::fault::ChaosSchedule`] (correlated fault-domain
//!   outages, crash/restart cycles, brownouts, surges) with
//!   fault-domain-aware replica placement, SLA-visible load shedding,
//!   per-machine circuit breakers, and hedged re-dispatch — billing all
//!   recovery work to the ledger's Recovery category so the energy cost
//!   of resilience is a first-class output.
//! * [`observe`] — bridges scheduler decisions into `grail-trace`
//!   events for callers that carry a tracer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod admission;
pub mod chaos;
pub mod cluster;
pub mod governor;
pub mod observe;
pub mod sharing;

pub use admission::{AdmissionPolicy, BatchWindow};
pub use chaos::{
    run_chaos, BreakerPolicy, ChaosPolicy, ChaosReport, PlacementChange,
    DOCUMENTED_AVAILABILITY_FLOOR,
};
pub use cluster::{
    chaos_fleet, domain_count, fail_over, fail_over_multi, ClusterError, Failover, Machine,
    MultiFailover, Placement, PlacementPolicy,
};
pub use governor::{IdleGovernor, OracleGovernor, TimeoutGovernor};
