//! # grail-scheduler — resource-use consolidation
//!
//! Sec. 4.2: "shift computations and relocate data to consolidate
//! resource use both in time and space, to facilitate powering down
//! individual hardware components", accepting latency for idle-period
//! length. This crate supplies the policies:
//!
//! * [`admission`] — immediate vs windowed-batch admission of arriving
//!   queries (the "batching requests at the cost of increased latency"
//!   trade).
//! * [`governor`] — device idle governors: never-park, fixed-timeout,
//!   and the clairvoyant oracle (knows the next arrival), each deciding
//!   spin-downs against the device's break-even gap.
//! * [`sharing`] — scan sharing: queries arriving within a window attach
//!   to an in-flight scan instead of re-reading.
//! * [`cluster`] — fleet-level consolidation (\[TWM+08\]): pack load onto
//!   the most efficient machines and power off the rest, making the
//!   cluster energy-proportional even when no machine is; includes
//!   machine-failure re-placement ([`cluster::fail_over`]) that charges
//!   cold-boot energy when displaced load lands on dark machines.
//! * [`observe`] — bridges scheduler decisions into `grail-trace`
//!   events for callers that carry a tracer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod admission;
pub mod cluster;
pub mod governor;
pub mod observe;
pub mod sharing;

pub use admission::{AdmissionPolicy, BatchWindow};
pub use cluster::{fail_over, ClusterError, Failover, Machine, Placement, PlacementPolicy};
pub use governor::{IdleGovernor, OracleGovernor, TimeoutGovernor};
