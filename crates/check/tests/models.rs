//! End-to-end obligations for the shipped models and the seeded
//! negative control.
//!
//! These are the acceptance criteria of the model-checking subsystem:
//! every registered model reaches fixpoint clean inside the committed
//! CI budget, the deliberately broken model fails with a minimized
//! trace of known length, and the full report vector — counterexample
//! bytes included — is identical whether the registry fans across 1, 2,
//! or 8 runner threads.

use grail_check::models::BROKEN_TRACE_LEN;
use grail_check::registry::{find, run_all, ModelEntry, BROKEN, REGISTRY};
use grail_check::{Budget, Report, CI_BUDGET};
use grail_par::Runner;

#[test]
fn every_registered_model_reaches_fixpoint_clean_within_ci_budget() {
    let reports = run_all(CI_BUDGET, &Runner::sequential());
    assert_eq!(reports.len(), REGISTRY.len());
    for r in &reports {
        assert!(r.passed, "{}: {}", r.model, r.line);
        assert!(r.line.starts_with("pass:"), "{}: {}", r.model, r.line);
        assert!(r.jsonl.is_none() && r.diagnostic.is_none());
    }
}

#[test]
fn registry_covers_the_workspace_protocol_state_machines() {
    let covered: Vec<&str> = REGISTRY
        .iter()
        .flat_map(|e| e.covers.iter().copied())
        .collect();
    for required in [
        "sim::parallel::CellRun",
        "sim::parallel::ShardState",
        "scheduler::chaos::Engine",
    ] {
        assert!(
            covered.contains(&required),
            "{required} lost its model — grail-lint's model-coverage rule will fail"
        );
    }
}

#[test]
fn broken_model_fails_with_a_minimized_trace_of_known_length() {
    let entry = find("broken-shard-horizon").expect("seeded control is registered");
    let report = (entry.run)(CI_BUDGET);
    assert!(
        !report.passed,
        "the negative control passed: {}",
        report.line
    );

    let jsonl = report.jsonl.as_deref().expect("violation carries JSONL");
    // Header line + one line per minimized step.
    assert_eq!(
        jsonl.lines().count(),
        1 + BROKEN_TRACE_LEN,
        "trace no longer minimal?\n{jsonl}"
    );
    let header = jsonl.lines().next().expect("header line");
    assert!(
        header.contains("\"model\":\"broken-shard-horizon\""),
        "{header}"
    );
    assert!(header.contains("\"kind\":\"invariant\""), "{header}");
    assert!(
        header.contains(&format!("\"steps\":{BROKEN_TRACE_LEN}")),
        "{header}"
    );

    let diag = report
        .diagnostic
        .as_deref()
        .expect("violation carries diagnostic");
    assert!(diag.starts_with("error[model-check]:"), "{diag}");
    assert!(
        diag.contains(&format!("minimized trace, {BROKEN_TRACE_LEN} step(s)")),
        "{diag}"
    );
}

#[test]
fn the_faithful_twin_of_the_broken_model_passes() {
    // Same scripts, same lookahead, slack zero: the defect is the +1,
    // nothing else.
    use grail_check::models::{ShardModel, ShardScript};
    use grail_par::HorizonProtocol;
    let faithful = ShardModel::with_slack(
        "broken-twin-faithful",
        vec![
            ShardScript {
                events: vec![10, 20],
                crashes: vec![],
            },
            ShardScript {
                events: vec![15, 22],
                crashes: vec![],
            },
        ],
        HorizonProtocol::new(1),
        0,
    );
    let report = grail_check::run_model(&faithful, CI_BUDGET);
    assert!(report.passed, "{}", report.line);
}

#[test]
fn reports_are_byte_identical_across_1_2_and_8_threads() {
    let entries: Vec<&ModelEntry> = REGISTRY.iter().chain(std::iter::once(&BROKEN)).collect();
    let baseline: Vec<Report> = Runner::sequential().run(&entries, |_, e| (e.run)(CI_BUDGET));
    assert!(baseline.iter().any(|r| !r.passed), "control must fail");
    for threads in [2, 8] {
        let reports = Runner::with_threads(threads).run(&entries, |_, e| (e.run)(CI_BUDGET));
        assert_eq!(
            reports, baseline,
            "reports drifted at {threads} threads — counterexample bytes must not \
             depend on scheduling"
        );
    }
}

#[test]
fn a_tight_budget_fails_loudly_instead_of_passing_vacuously() {
    let entry = find("shard-horizon").expect("registered");
    let report = (entry.run)(Budget {
        max_states: 8,
        max_depth: 4096,
    });
    assert!(!report.passed);
    assert!(report.line.contains("budget"), "{}", report.line);
}
