//! `grail-check`: exhaustive, deterministic model checking for the
//! repo's concurrency and accounting protocols.
//!
//! The paper's energy claims only hold if every joule is conserved
//! across concurrent machinery. Byte-identity tests sample schedules;
//! this crate *proves* small instances by exhausting them: a protocol
//! is an explicit transition system (the [`Model`] trait), and the
//! [`Checker`] walks every reachable interleaving with a depth-first
//! search over FNV-fingerprinted states, a sleep-set partial-order
//! reduction, and a configurable state/depth [`Budget`]. On violation
//! it re-searches breadth-first for the *shortest* counterexample and
//! emits the action trace as JSONL plus a rustc-style diagnostic.
//!
//! Three production protocols ship as models (see [`models`]), each
//! extracted so the model drives the *real* transition code — the
//! horizon arithmetic of `grail_par::shard`, the crash tie-break of
//! `grail_sim::parallel`, the admission/placement/breaker core of
//! `grail_scheduler::chaos`, and the audited [`EnergyLedger`] API —
//! never a copy. The [`registry`] binds each model to the workspace
//! types it covers; grail-lint's `model-coverage` rule walks those
//! declarations so a new protocol state machine cannot land unchecked.
//!
//! Everything here is deterministic: no wall clock, no hashing with
//! random seeds (FNV-1a with exact collision buckets), `BTreeMap` only,
//! and the engine never spawns threads — fan-out across models goes
//! through `grail_par::Runner` exactly like the rest of the workspace.
//!
//! [`EnergyLedger`]: grail_power::EnergyLedger

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

pub mod models;
pub mod registry;

// ---------------------------------------------------------------------------
// Model trait
// ---------------------------------------------------------------------------

/// A protocol as an explicit transition system.
///
/// States must be finite in practice (the checker interns every one);
/// keep instances small — the point is exhausting a representative
/// instance, not simulating a large one. Two contracts matter:
///
/// * [`encode`](Model::encode) must be injective: states that encode to
///   the same bytes are treated as identical.
/// * [`describe_action`](Model::describe_action) must be injective over
///   the actions enabled in any single state: the sleep-set bookkeeping
///   keys actions by their description.
pub trait Model {
    /// A reachable configuration of the protocol.
    type State: Clone;
    /// One atomic transition.
    type Action: Clone;

    /// Stable model name (used in artifacts and diagnostics).
    fn name(&self) -> &'static str;
    /// The unique initial state.
    fn initial(&self) -> Self::State;
    /// Actions enabled in `s`, in a deterministic order.
    fn actions(&self, s: &Self::State) -> Vec<Self::Action>;
    /// Apply `a` to `s`. Must be pure: same inputs, same successor.
    fn step(&self, s: &Self::State, a: &Self::Action) -> Self::State;
    /// Safety invariant, checked at every reachable state.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;
    /// Checked at states with no enabled actions; reject unexpected
    /// deadlocks here (expected final states return `Ok`).
    fn terminal(&self, _s: &Self::State) -> Result<(), String> {
        Ok(())
    }
    /// Serialize `s` injectively for fingerprinting and deduplication.
    fn encode(&self, s: &Self::State, out: &mut Vec<u8>);
    /// Human-readable action label (injective within one state).
    fn describe_action(&self, a: &Self::Action) -> String;
    /// Human-readable state summary for counterexample traces.
    fn describe_state(&self, s: &Self::State) -> String;
    /// May `a` and `b` commute (same final state either order, and
    /// neither enables/disables the other)? Used by the sleep-set
    /// reduction; `false` is always sound.
    fn independent(&self, _a: &Self::Action, _b: &Self::Action) -> bool {
        false
    }
    /// Goal predicate for the reachability obligation: return
    /// `Some(is_goal)` to require that a goal state stays reachable
    /// from *every* reachable state, `None` for no obligation.
    fn goal(&self, _s: &Self::State) -> Option<bool> {
        None
    }
}

// ---------------------------------------------------------------------------
// Budget, outcome, counterexample
// ---------------------------------------------------------------------------

/// Exploration budget. Exceeding it is a checker outcome, not a panic:
/// CI commits to a budget under which every shipped model reaches
/// fixpoint, so a model that outgrows it fails loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum distinct states interned before giving up.
    pub max_states: usize,
    /// Maximum DFS depth (trace length) before giving up.
    pub max_depth: usize,
}

/// The committed CI budget: every shipped model must exhaust its state
/// space well inside this (see `tests/models.rs` and the `check` CI
/// job).
pub const CI_BUDGET: Budget = Budget {
    max_states: 1 << 18,
    max_depth: 4096,
};

impl Default for Budget {
    fn default() -> Self {
        CI_BUDGET
    }
}

/// Exploration statistics, reported on every outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Distinct states interned.
    pub states: usize,
    /// Transitions executed.
    pub transitions: usize,
    /// Transitions skipped by the sleep-set reduction or the visited
    /// set.
    pub pruned: usize,
}

/// What kind of obligation a counterexample refutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CxKind {
    /// A state violating [`Model::invariant`].
    Invariant,
    /// A deadlock: no enabled actions and [`Model::terminal`] rejects.
    Deadlock,
    /// A state from which no [`Model::goal`] state is reachable.
    GoalUnreachable,
}

impl CxKind {
    fn label(self) -> &'static str {
        match self {
            CxKind::Invariant => "invariant",
            CxKind::Deadlock => "deadlock",
            CxKind::GoalUnreachable => "goal-unreachable",
        }
    }
}

/// One step of a counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The action taken.
    pub action: String,
    /// The state it produced.
    pub state: String,
}

/// A minimized counterexample: the shortest action sequence from the
/// initial state to a violating state (breadth-first over the full,
/// unreduced transition relation, so no shorter trace exists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Which obligation failed.
    pub kind: CxKind,
    /// The violation message from the model.
    pub message: String,
    /// The initial state, rendered.
    pub initial: String,
    /// The minimized trace.
    pub steps: Vec<TraceStep>,
}

/// The result of checking one model.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Every reachable state explored, every obligation holds.
    Pass(Stats),
    /// An obligation fails; the counterexample is minimal.
    Violation(Stats, Counterexample),
    /// The budget ran out before fixpoint — nothing was proved.
    Budget(Stats, String),
}

impl Outcome {
    /// Whether the model was exhaustively verified.
    pub fn passed(&self) -> bool {
        matches!(self, Outcome::Pass(_))
    }

    /// The exploration statistics, whatever the outcome.
    pub fn stats(&self) -> Stats {
        match self {
            Outcome::Pass(s) | Outcome::Violation(s, _) | Outcome::Budget(s, _) => *s,
        }
    }
}

// ---------------------------------------------------------------------------
// FNV fingerprinting with exact collision buckets
// ---------------------------------------------------------------------------

/// FNV-1a over the encoded state. 64-bit fingerprints index the store;
/// full encodings disambiguate colliding fingerprints, so deduplication
/// is exact, not probabilistic.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Interned state store: fingerprint buckets over exact encodings.
#[derive(Default)]
struct Store {
    buckets: BTreeMap<u64, Vec<usize>>,
    encodings: Vec<Vec<u8>>,
}

impl Store {
    /// Intern `enc`, returning `(id, freshly_inserted)`.
    fn intern(&mut self, enc: &[u8]) -> (usize, bool) {
        let h = fnv1a(enc);
        let bucket = self.buckets.entry(h).or_default();
        for &id in bucket.iter() {
            if self.encodings[id] == enc {
                return (id, false);
            }
        }
        let id = self.encodings.len();
        self.encodings.push(enc.to_vec());
        bucket.push(id);
        (id, true)
    }

    fn len(&self) -> usize {
        self.encodings.len()
    }
}

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

/// The exhaustive explorer.
#[derive(Debug, Clone, Copy)]
pub struct Checker {
    /// The exploration budget.
    pub budget: Budget,
}

/// One DFS frame: a state, its enabled actions, and the sleep set in
/// force when it was entered. `sleep` grows as earlier siblings finish.
struct Frame<S, A> {
    state: S,
    enabled: Vec<A>,
    /// Action keys (description hashes) currently asleep.
    sleep: Vec<u64>,
    /// Enabled actions paired with their keys, parallel to `enabled`.
    keys: Vec<u64>,
    next: usize,
}

impl Checker {
    /// A checker with the given budget.
    pub fn new(budget: Budget) -> Self {
        Checker { budget }
    }

    /// Exhaustively explore `model` and check every obligation.
    ///
    /// The main walk is a DFS with a sleep-set partial-order reduction:
    /// after exploring action `a` from state `s`, every later sibling's
    /// subtree puts `a` to sleep as long as it stays independent of the
    /// actions taken — orderings that provably commute are pruned. The
    /// reduction prunes *transitions*, never states (re-visiting a
    /// state with a weaker sleep set re-explores it), so every
    /// reachable state is still checked. On violation the engine
    /// switches to an unreduced breadth-first search for the shortest
    /// counterexample; models with a [`Model::goal`] get a final
    /// co-reachability pass over the full transition graph.
    pub fn check<M: Model>(&self, model: &M) -> Outcome {
        let mut stats = Stats::default();
        let mut store = Store::default();
        // Minimal sleep signature each interned state was explored
        // with: a revisit prunes only if its sleep set covers this one.
        let mut explored_sleep: BTreeMap<usize, Vec<u64>> = BTreeMap::new();

        let init = model.initial();
        if let Err(message) = model.invariant(&init) {
            return Outcome::Violation(
                stats,
                Counterexample {
                    kind: CxKind::Invariant,
                    message,
                    initial: model.describe_state(&init),
                    steps: Vec::new(),
                },
            );
        }
        let mut enc = Vec::new();
        model.encode(&init, &mut enc);
        let (init_id, _) = store.intern(&enc);
        stats.states = store.len();
        explored_sleep.insert(init_id, Vec::new());

        let mut stack = vec![self.frame(model, init, Vec::new())];
        if let Some(err) = Self::check_leaf(model, &stack[0]) {
            return match self.minimize(model, stats) {
                Some(cx) => Outcome::Violation(stats, cx),
                None => Outcome::Violation(stats, err),
            };
        }

        while let Some(top) = stack.last_mut() {
            if top.next >= top.enabled.len() {
                stack.pop();
                continue;
            }
            let i = top.next;
            top.next += 1;
            let key = top.keys[i];
            if top.sleep.contains(&key) {
                stats.pruned += 1;
                continue;
            }
            let action = top.enabled[i].clone();
            // Earlier siblings (and inherited sleepers) stay asleep in
            // this child only while independent of the action taken.
            let child_sleep: Vec<u64> = top
                .sleep
                .iter()
                .copied()
                .chain(top.keys[..i].iter().copied())
                .filter(|k| {
                    top.enabled
                        .iter()
                        .zip(top.keys.iter())
                        .find(|(_, kk)| *kk == k)
                        .is_some_and(|(b, _)| model.independent(&action, b))
                })
                .collect();
            let child = model.step(&top.state, &action);
            stats.transitions += 1;

            if let Err(message) = model.invariant(&child) {
                let fallback = Counterexample {
                    kind: CxKind::Invariant,
                    message,
                    initial: model.describe_state(&model.initial()),
                    steps: vec![TraceStep {
                        action: model.describe_action(&action),
                        state: model.describe_state(&child),
                    }],
                };
                return match self.minimize(model, stats) {
                    Some(cx) => Outcome::Violation(stats, cx),
                    None => Outcome::Violation(stats, fallback),
                };
            }

            enc.clear();
            model.encode(&child, &mut enc);
            let (id, fresh) = store.intern(&enc);
            stats.states = store.len();
            if stats.states > self.budget.max_states {
                return Outcome::Budget(
                    stats,
                    format!(
                        "state budget exhausted at {} states",
                        self.budget.max_states
                    ),
                );
            }
            let mut sig = child_sleep.clone();
            sig.sort_unstable();
            sig.dedup();
            let explore = if fresh {
                explored_sleep.insert(id, sig);
                true
            } else {
                match explored_sleep.get_mut(&id) {
                    Some(prev) if prev.iter().all(|k| sig.contains(k)) => {
                        // Already explored with a sleep set this visit
                        // only shrinks further: nothing new to see.
                        stats.pruned += 1;
                        false
                    }
                    Some(prev) => {
                        // Weaker sleep set: re-explore, remember the
                        // intersection as the new floor.
                        prev.retain(|k| sig.contains(k));
                        true
                    }
                    None => {
                        explored_sleep.insert(id, sig);
                        true
                    }
                }
            };
            if explore {
                if stack.len() >= self.budget.max_depth {
                    return Outcome::Budget(
                        stats,
                        format!("depth budget exhausted at depth {}", self.budget.max_depth),
                    );
                }
                let frame = self.frame_with(model, child, child_sleep);
                if let Some(err) = Self::check_leaf(model, &frame) {
                    return match self.minimize(model, stats) {
                        Some(cx) => Outcome::Violation(stats, cx),
                        None => Outcome::Violation(stats, err),
                    };
                }
                stack.push(frame);
            }
        }

        if let Some(cx) = self.goal_unreachable(model, stats) {
            return Outcome::Violation(stats, cx);
        }
        Outcome::Pass(stats)
    }

    fn frame<M: Model>(
        &self,
        model: &M,
        state: M::State,
        sleep: Vec<u64>,
    ) -> Frame<M::State, M::Action> {
        self.frame_with(model, state, sleep)
    }

    fn frame_with<M: Model>(
        &self,
        model: &M,
        state: M::State,
        sleep: Vec<u64>,
    ) -> Frame<M::State, M::Action> {
        let enabled = model.actions(&state);
        let keys = enabled
            .iter()
            .map(|a| fnv1a(model.describe_action(a).as_bytes()))
            .collect();
        Frame {
            state,
            enabled,
            sleep,
            keys,
            next: 0,
        }
    }

    /// Deadlock check for a freshly entered state.
    fn check_leaf<M: Model>(
        model: &M,
        frame: &Frame<M::State, M::Action>,
    ) -> Option<Counterexample> {
        if !frame.enabled.is_empty() {
            return None;
        }
        match model.terminal(&frame.state) {
            Ok(()) => None,
            Err(message) => Some(Counterexample {
                kind: CxKind::Deadlock,
                message,
                initial: model.describe_state(&model.initial()),
                steps: vec![TraceStep {
                    action: "(end of trace)".to_string(),
                    state: model.describe_state(&frame.state),
                }],
            }),
        }
    }

    /// Breadth-first search, without reduction, for the shortest trace
    /// to any violating state. Called only after the DFS found *a*
    /// violation, so a violating state is reachable; `None` only if the
    /// budget somehow cannot cover the re-search.
    fn minimize<M: Model>(&self, model: &M, _stats: Stats) -> Option<Counterexample> {
        let mut store = Store::default();
        let mut states: Vec<M::State> = Vec::new();
        let mut parent: Vec<Option<(usize, String)>> = Vec::new();
        let mut enc = Vec::new();

        let init = model.initial();
        model.encode(&init, &mut enc);
        store.intern(&enc);
        states.push(init);
        parent.push(None);

        let mut head = 0;
        while head < states.len() {
            let state = states[head].clone();
            if let Err(message) = model.invariant(&state) {
                return Some(self.rebuild(
                    model,
                    &states,
                    &parent,
                    head,
                    CxKind::Invariant,
                    message,
                ));
            }
            let enabled = model.actions(&state);
            if enabled.is_empty() {
                if let Err(message) = model.terminal(&state) {
                    return Some(self.rebuild(
                        model,
                        &states,
                        &parent,
                        head,
                        CxKind::Deadlock,
                        message,
                    ));
                }
            }
            for action in enabled {
                let child = model.step(&state, &action);
                enc.clear();
                model.encode(&child, &mut enc);
                let (id, fresh) = store.intern(&enc);
                if fresh {
                    if store.len() > self.budget.max_states.saturating_mul(2) {
                        return None;
                    }
                    debug_assert_eq!(id, states.len());
                    states.push(child);
                    parent.push(Some((head, model.describe_action(&action))));
                }
            }
            head += 1;
        }
        None
    }

    /// Reconstruct the action trace from the BFS parent links.
    fn rebuild<M: Model>(
        &self,
        model: &M,
        states: &[M::State],
        parent: &[Option<(usize, String)>],
        mut at: usize,
        kind: CxKind,
        message: String,
    ) -> Counterexample {
        let mut rev: Vec<TraceStep> = Vec::new();
        while let Some((prev, action)) = &parent[at] {
            rev.push(TraceStep {
                action: action.clone(),
                state: model.describe_state(&states[at]),
            });
            at = *prev;
        }
        rev.reverse();
        Counterexample {
            kind,
            message,
            initial: model.describe_state(&model.initial()),
            steps: rev,
        }
    }

    /// Co-reachability pass for models with a goal: every reachable
    /// state must still be able to reach a goal state. Runs over the
    /// full (unreduced) transition graph; the counterexample is the
    /// shortest path to the shallowest stuck state.
    fn goal_unreachable<M: Model>(&self, model: &M, _stats: Stats) -> Option<Counterexample> {
        let init = model.initial();
        model.goal(&init)?;

        let mut store = Store::default();
        let mut states: Vec<M::State> = Vec::new();
        let mut parent: Vec<Option<(usize, String)>> = Vec::new();
        let mut preds: Vec<Vec<usize>> = Vec::new();
        let mut goals: Vec<usize> = Vec::new();
        let mut enc = Vec::new();

        model.encode(&init, &mut enc);
        store.intern(&enc);
        states.push(init);
        parent.push(None);
        preds.push(Vec::new());

        let mut head = 0;
        while head < states.len() {
            let state = states[head].clone();
            if model.goal(&state) == Some(true) {
                goals.push(head);
            }
            for action in model.actions(&state) {
                let child = model.step(&state, &action);
                enc.clear();
                model.encode(&child, &mut enc);
                let (id, fresh) = store.intern(&enc);
                if fresh {
                    debug_assert_eq!(id, states.len());
                    states.push(child);
                    parent.push(Some((head, model.describe_action(&action))));
                    preds.push(Vec::new());
                }
                preds[id].push(head);
            }
            head += 1;
        }

        // Reverse reachability from the goal set.
        let mut co = vec![false; states.len()];
        let mut queue: Vec<usize> = goals;
        for &g in &queue {
            co[g] = true;
        }
        while let Some(s) = queue.pop() {
            for &p in &preds[s] {
                if !co[p] {
                    co[p] = true;
                    queue.push(p);
                }
            }
        }
        // BFS order == `states` order, so the first stuck state is the
        // shallowest one: its parent chain is a shortest path.
        let stuck = co.iter().position(|ok| !ok)?;
        Some(self.rebuild(
            model,
            &states,
            &parent,
            stuck,
            CxKind::GoalUnreachable,
            "no goal (settlement) state is reachable from here".to_string(),
        ))
    }
}

// ---------------------------------------------------------------------------
// Rendering: JSONL artifact + rustc-style diagnostic
// ---------------------------------------------------------------------------

/// Escape `s` for a JSON string literal (hand-rolled: this crate keeps
/// the workspace's zero-external-dependency discipline).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a counterexample as JSONL: one header object, then one object
/// per step. Byte-stable for fixed inputs.
pub fn to_jsonl(model: &str, cx: &Counterexample) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"model\":\"{}\",\"kind\":\"{}\",\"message\":\"{}\",\"steps\":{},\"initial\":\"{}\"}}\n",
        json_escape(model),
        cx.kind.label(),
        json_escape(&cx.message),
        cx.steps.len(),
        json_escape(&cx.initial),
    ));
    for (i, step) in cx.steps.iter().enumerate() {
        out.push_str(&format!(
            "{{\"step\":{},\"action\":\"{}\",\"state\":\"{}\"}}\n",
            i,
            json_escape(&step.action),
            json_escape(&step.state),
        ));
    }
    out
}

/// Render a counterexample as a rustc-style diagnostic.
pub fn to_diagnostic(model: &str, cx: &Counterexample, stats: Stats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "error[model-check]: model `{model}` fails its {} obligation: {}\n",
        cx.kind.label(),
        cx.message
    ));
    out.push_str(&format!(
        "  --> grail-check({model}): minimized trace, {} step(s)\n",
        cx.steps.len()
    ));
    out.push_str("   |\n");
    out.push_str(&format!("   |   init: {}\n", cx.initial));
    for (i, step) in cx.steps.iter().enumerate() {
        out.push_str(&format!("   | {i:>5}: {}\n", step.action));
        out.push_str(&format!("   |        => {}\n", step.state));
    }
    out.push_str(&format!(
        "   = note: {} states, {} transitions explored before minimization\n",
        stats.states, stats.transitions
    ));
    out
}

/// The result of running one registry entry: everything the CLI, CI
/// job, and byte-stability tests consume. Deterministic for fixed
/// model + budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Model name.
    pub model: &'static str,
    /// Whether the model was exhaustively verified.
    pub passed: bool,
    /// One-line outcome summary.
    pub line: String,
    /// Counterexample JSONL artifact, when there is one.
    pub jsonl: Option<String>,
    /// Rustc-style diagnostic, when there is one.
    pub diagnostic: Option<String>,
}

/// Check `model` under `budget` and package the outcome as a [`Report`].
pub fn run_model<M: Model>(model: &M, budget: Budget) -> Report {
    let outcome = Checker::new(budget).check(model);
    let name = model.name();
    let stats = outcome.stats();
    match outcome {
        Outcome::Pass(s) => Report {
            model: name,
            passed: true,
            line: format!(
                "pass: {} states, {} transitions, {} pruned (fixpoint within budget)",
                s.states, s.transitions, s.pruned
            ),
            jsonl: None,
            diagnostic: None,
        },
        Outcome::Violation(s, cx) => Report {
            model: name,
            passed: false,
            line: format!(
                "FAIL[{}]: {} ({} states explored, trace length {})",
                cx.kind.label(),
                cx.message,
                s.states,
                cx.steps.len()
            ),
            jsonl: Some(to_jsonl(name, &cx)),
            diagnostic: Some(to_diagnostic(name, &cx, stats)),
        },
        Outcome::Budget(s, what) => Report {
            model: name,
            passed: false,
            line: format!(
                "FAIL[budget]: {what} ({} states, {} transitions)",
                s.states, s.transitions
            ),
            jsonl: None,
            diagnostic: Some(format!(
                "error[model-check]: model `{name}` exceeded its budget: {what}\n\
                 \x20 = note: raise --max-states/--max-depth or shrink the model instance\n"
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that may +1 or +2 up to a ceiling; invariant caps it.
    struct Counter {
        ceiling: u32,
        broken: bool,
    }

    impl Model for Counter {
        type State = u32;
        type Action = u32;
        fn name(&self) -> &'static str {
            "counter"
        }
        fn initial(&self) -> u32 {
            0
        }
        fn actions(&self, s: &u32) -> Vec<u32> {
            if *s >= self.ceiling {
                Vec::new()
            } else {
                vec![1, 2]
            }
        }
        fn step(&self, s: &u32, a: &u32) -> u32 {
            s + a
        }
        fn invariant(&self, s: &u32) -> Result<(), String> {
            let limit = if self.broken {
                self.ceiling
            } else {
                self.ceiling + 1
            };
            if *s > limit {
                Err(format!("counter {s} above {limit}"))
            } else {
                Ok(())
            }
        }
        fn encode(&self, s: &u32, out: &mut Vec<u8>) {
            out.extend_from_slice(&s.to_le_bytes());
        }
        fn describe_action(&self, a: &u32) -> String {
            format!("+{a}")
        }
        fn describe_state(&self, s: &u32) -> String {
            format!("n={s}")
        }
    }

    #[test]
    fn clean_counter_passes_and_counts_states() {
        let m = Counter {
            ceiling: 10,
            broken: false,
        };
        let out = Checker::new(Budget::default()).check(&m);
        assert!(out.passed(), "{out:?}");
        // States 0..=11 are reachable (10+2 overshoot allowed by +2).
        assert_eq!(out.stats().states, 12);
    }

    #[test]
    fn broken_counter_yields_shortest_trace() {
        // ceiling 4: state 5 is reachable (3+2) and violates. Shortest
        // path to 5 is +2,+2,+1 or +1,+2,+2 — three steps either way;
        // BFS explores +1 before +2 at each layer, pinning the bytes.
        let m = Counter {
            ceiling: 4,
            broken: true,
        };
        match Checker::new(Budget::default()).check(&m) {
            Outcome::Violation(_, cx) => {
                assert_eq!(cx.kind, CxKind::Invariant);
                assert_eq!(cx.steps.len(), 3, "{cx:?}");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_an_outcome_not_a_panic() {
        let m = Counter {
            ceiling: 1000,
            broken: false,
        };
        let out = Checker::new(Budget {
            max_states: 16,
            max_depth: 4096,
        })
        .check(&m);
        assert!(matches!(out, Outcome::Budget(_, _)), "{out:?}");
    }

    #[test]
    fn jsonl_and_diagnostic_are_stable() {
        let cx = Counterexample {
            kind: CxKind::Invariant,
            message: "x \"quoted\" and\nnewline".to_string(),
            initial: "n=0".to_string(),
            steps: vec![TraceStep {
                action: "+1".to_string(),
                state: "n=1".to_string(),
            }],
        };
        let j = to_jsonl("counter", &cx);
        assert!(j.starts_with("{\"model\":\"counter\",\"kind\":\"invariant\""));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("and\\nnewline"));
        assert_eq!(j.lines().count(), 2);
        let d = to_diagnostic("counter", &cx, Stats::default());
        assert!(d.starts_with("error[model-check]:"));
        assert!(d.contains("minimized trace, 1 step(s)"));
    }

    /// Two independent writers to disjoint slots: sleep sets must prune
    /// one of the two interleavings' transitions.
    struct TwoSlots;

    impl Model for TwoSlots {
        type State = [bool; 2];
        type Action = usize;
        fn name(&self) -> &'static str {
            "two-slots"
        }
        fn initial(&self) -> [bool; 2] {
            [false; 2]
        }
        fn actions(&self, s: &[bool; 2]) -> Vec<usize> {
            (0..2).filter(|&i| !s[i]).collect()
        }
        fn step(&self, s: &[bool; 2], a: &usize) -> [bool; 2] {
            let mut t = *s;
            t[*a] = true;
            t
        }
        fn invariant(&self, _s: &[bool; 2]) -> Result<(), String> {
            Ok(())
        }
        fn encode(&self, s: &[bool; 2], out: &mut Vec<u8>) {
            out.push(s[0] as u8);
            out.push(s[1] as u8);
        }
        fn describe_action(&self, a: &usize) -> String {
            format!("set{a}")
        }
        fn describe_state(&self, s: &[bool; 2]) -> String {
            format!("{s:?}")
        }
        fn independent(&self, _a: &usize, _b: &usize) -> bool {
            true
        }
    }

    #[test]
    fn sleep_sets_prune_commuting_interleavings() {
        let out = Checker::new(Budget::default()).check(&TwoSlots);
        assert!(out.passed());
        let s = out.stats();
        assert_eq!(s.states, 4, "all states still visited");
        assert!(
            s.pruned >= 1,
            "one of the two orderings must be slept: {s:?}"
        );
    }
}
