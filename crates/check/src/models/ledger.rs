//! Model of the ledger transfer/settlement discipline.
//!
//! The [`EnergyLedger`] is the audit spine of the whole repo: every
//! subsystem charges components, `transfer` re-attributes joules into
//! `Recovery` without changing the wall-socket total, and a run settles
//! by covering its window. This model runs the *real*
//! [`EnergyLedger`] — the state literally contains one — through every
//! order of a bounded op budget drawn from a dyadic charge palette
//! (0.5/1.0/2.0 J, exact in binary floating point), so conservation can
//! be demanded bit-for-bit, not within a tolerance.
//!
//! Checked obligations:
//!
//! * **conservation** — at every reachable state, `total()` equals the
//!   category sum (`Σ iter()`) *and* the model's own accumulator of
//!   charges, all compared on raw bits;
//! * **transfer neutrality** — `transfer` moves joules between
//!   categories but never mints or burns them (it folds into the same
//!   bit-exact total check), and never drives a component negative;
//! * **settlement liveness** — the `finish` settlement (cover the run
//!   window) is reachable from every reachable state, checked as a
//!   [`Model::goal`] co-reachability obligation over the full graph.

use crate::Model;
use grail_power::units::{Joules, SimDuration, SimInstant};
use grail_power::{ComponentId, ComponentKind, EnergyLedger};

const CPU: ComponentId = ComponentId::new(ComponentKind::Cpu, 0);
const DISK: ComponentId = ComponentId::new(ComponentKind::Disk, 0);
const RECOVERY: ComponentId = ComponentId::new(ComponentKind::Recovery, 0);

/// A reachable configuration: the real ledger plus the model's shadow
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerState {
    /// The production ledger under test.
    ledger: EnergyLedger,
    /// Bit-exact shadow of every charge (transfers excluded — they must
    /// not move this).
    charged: f64,
    ops: u32,
    settled: bool,
}

/// One accounting step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LedgerAction {
    /// Charge `component` with a palette amount.
    Charge(ComponentId, f64),
    /// Re-attribute disk work into Recovery (clamped by the ledger).
    Transfer(f64),
    /// Settle: cover the run window and stop accounting.
    Finish,
}

/// The settlement model over a bounded op budget.
pub struct LedgerModel {
    /// Charge/transfer steps allowed before only `Finish` remains.
    max_ops: u32,
}

impl LedgerModel {
    /// The reference instance: three ops from the dyadic palette.
    pub fn reference() -> Self {
        LedgerModel { max_ops: 3 }
    }

    fn palette(&self) -> [LedgerAction; 5] {
        [
            LedgerAction::Charge(CPU, 0.5),
            LedgerAction::Charge(CPU, 2.0),
            LedgerAction::Charge(DISK, 1.0),
            LedgerAction::Charge(DISK, 2.0),
            LedgerAction::Transfer(0.5),
        ]
    }
}

impl Model for LedgerModel {
    type State = LedgerState;
    type Action = LedgerAction;

    fn name(&self) -> &'static str {
        "ledger-settlement"
    }

    fn initial(&self) -> LedgerState {
        LedgerState {
            ledger: EnergyLedger::new(),
            charged: 0.0,
            ops: 0,
            settled: false,
        }
    }

    fn actions(&self, s: &LedgerState) -> Vec<LedgerAction> {
        if s.settled {
            return Vec::new();
        }
        let mut out = Vec::new();
        if s.ops < self.max_ops {
            out.extend(self.palette());
        }
        out.push(LedgerAction::Finish);
        out
    }

    fn step(&self, s: &LedgerState, a: &LedgerAction) -> LedgerState {
        let mut t = s.clone();
        match *a {
            LedgerAction::Charge(c, j) => {
                t.ledger.charge(c, Joules::new(j));
                t.charged += j;
                t.ops += 1;
            }
            LedgerAction::Transfer(j) => {
                // The real clamp-to-balance re-attribution.
                t.ledger.transfer(DISK, RECOVERY, Joules::new(j));
                t.ops += 1;
            }
            LedgerAction::Finish => {
                t.ledger.cover(
                    SimInstant::EPOCH,
                    SimInstant::EPOCH + SimDuration::from_secs(1),
                );
                t.settled = true;
            }
        }
        t
    }

    fn invariant(&self, s: &LedgerState) -> Result<(), String> {
        let total = s.ledger.total().joules();
        // Fold from +0.0: `Iterator::sum` for f64 starts at -0.0, whose
        // bits differ from the +0.0 an empty ledger totals to.
        let by_category: f64 = s.ledger.iter().fold(0.0, |acc, (_, j)| acc + j.joules());
        if total.to_bits() != by_category.to_bits() {
            return Err(format!(
                "ledger total {total} J drifted from its category sum {by_category} J"
            ));
        }
        if total.to_bits() != s.charged.to_bits() {
            return Err(format!(
                "ledger total {total} J != {p} J actually charged — a transfer \
                 minted or burned energy",
                p = s.charged
            ));
        }
        for (id, j) in s.ledger.iter() {
            if j.joules() < 0.0 {
                return Err(format!(
                    "component {id:?} driven negative: {} J",
                    j.joules()
                ));
            }
        }
        Ok(())
    }

    fn terminal(&self, s: &LedgerState) -> Result<(), String> {
        if s.settled {
            Ok(())
        } else {
            Err("accounting stopped without settlement".to_string())
        }
    }

    fn encode(&self, s: &LedgerState, out: &mut Vec<u8>) {
        out.extend_from_slice(&(s.ledger.component_count() as u32).to_le_bytes());
        for (id, j) in s.ledger.iter() {
            out.push(match id.kind {
                ComponentKind::Cpu => 0,
                ComponentKind::Disk => 1,
                ComponentKind::Ssd => 2,
                ComponentKind::Dram => 3,
                ComponentKind::Nic => 4,
                ComponentKind::Base => 5,
                ComponentKind::Recovery => 6,
                ComponentKind::Other => 7,
            });
            out.extend_from_slice(&id.index.to_le_bytes());
            out.extend_from_slice(&j.joules().to_bits().to_le_bytes());
        }
        out.extend_from_slice(&s.charged.to_bits().to_le_bytes());
        out.push(s.ops as u8);
        out.push(u8::from(s.settled));
    }

    fn describe_action(&self, a: &LedgerAction) -> String {
        match *a {
            LedgerAction::Charge(c, j) => format!("charge {} J to {:?}", j, c.kind),
            LedgerAction::Transfer(j) => format!("transfer {j} J disk -> recovery"),
            LedgerAction::Finish => "finish: cover the window and settle".to_string(),
        }
    }

    fn describe_state(&self, s: &LedgerState) -> String {
        format!(
            "total={} J over {} component(s), ops={}, settled={}",
            s.ledger.total().joules(),
            s.ledger.component_count(),
            s.ops,
            s.settled
        )
    }

    fn goal(&self, s: &LedgerState) -> Option<bool> {
        Some(s.settled)
    }
}
