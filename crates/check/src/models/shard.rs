//! Model of the epoch-horizon commit protocol.
//!
//! `grail_par::shard` paces shards with barrier-free atomic horizons;
//! `grail_sim::parallel` layers the crash tie-break on top. This model
//! explores every interleaving of that protocol for a small instance,
//! driving the *real* decision functions — [`HorizonProtocol::
//! advance_bound`], [`HorizonProtocol::may_advance`], and
//! [`next_cell_action`] — never copies of them.
//!
//! Each shard is a two-phase loop mirroring the thread body in
//! `HorizonProtocol::run`:
//!
//! * **Publish**: store `next_at()` into this shard's horizon slot
//!   (exit to *done* once drained);
//! * **Advance**: read every other shard's published horizon, compute
//!   the conservative bound, and either drain events/crashes up to it
//!   (via [`next_cell_action`]) or yield.
//!
//! One abstraction is deliberate: Advance reads *all* published
//! horizons in a single action, where real threads read the atomics one
//! by one. This is sound for the safety properties checked here because
//! horizons are monotone — an interleaved write can only make a read
//! *staler*, and a staler horizon is smaller, which shrinks the bound
//! and can never admit an event the one-shot read would have refused.
//!
//! Checked obligations:
//!
//! * **safety** — no shard ever processes an event past the *true*
//!   minimum of the other shards' frontiers plus lookahead (the model
//!   checks against live cursors, not the published snapshots the
//!   protocol itself acts on — that gap is exactly what the
//!   conservative discipline must bridge);
//! * **crash accounting** — a crash landing on a horizon is billed to
//!   Recovery exactly once, and crashes win same-instant ties;
//! * **determinism** — every terminal state carries the same fully
//!   drained, fixed-cell-order commit as the sequential reference run.
//!
//! The seeded broken variant (see [`models::broken`](super::broken))
//! reuses this model with a one-nanosecond bound inflation.

use crate::Model;
use grail_par::HorizonProtocol;
use grail_sim::parallel::{next_cell_action, CellAction};

/// Per-shard program counter, mirroring the thread loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// About to store `next_at()` into the shared horizon slot.
    Publish,
    /// About to read neighbors and attempt a bounded advance.
    Advance,
    /// Drained: horizon parked at `u64::MAX`, thread exited.
    Done,
}

/// One shard's immutable script: sorted event instants plus sorted
/// crash instants (the sim-layer tie-break input).
#[derive(Debug, Clone)]
pub struct ShardScript {
    /// Stream-event instants, ascending, simulated nanoseconds.
    pub events: Vec<u64>,
    /// Crash instants, ascending.
    pub crashes: Vec<u64>,
}

/// A reachable configuration of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardProtocolState {
    pcs: Vec<Pc>,
    /// Published horizon slots (the model's stand-in for the atomics).
    published: Vec<u64>,
    event_idx: Vec<usize>,
    crash_idx: Vec<usize>,
    /// Recovery bills per shard (crash accounting obligation).
    billed: Vec<u32>,
    /// Committed (time, shard, kind) triples in processing order.
    committed: Vec<(u64, usize, u8)>,
    /// Set when a shard processed an instant past the true safe bound.
    breach: Option<(usize, u64, u64)>,
}

/// An interleaving step: one shard fires one phase of its loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAction {
    /// Shard `i` stores its horizon.
    Publish(usize),
    /// Shard `i` reads neighbors and attempts to advance.
    Advance(usize),
}

/// The shard-horizon protocol model over a fixed instance.
pub struct ShardModel {
    shards: Vec<ShardScript>,
    protocol: HorizonProtocol,
    /// Extra nanoseconds added to the computed bound. `0` is the
    /// faithful protocol; the seeded broken model sets `1` to plant the
    /// classic off-by-one a conservative discipline must not have.
    slack: u64,
    name: &'static str,
    /// The sequential reference commit every terminal state must match.
    expected: Vec<(u64, usize, u8)>,
}

impl ShardModel {
    /// The faithful model over the reference instance: three shards
    /// with interleaving frontiers, one same-instant crash/event tie,
    /// lookahead 2 ns.
    pub fn reference() -> Self {
        Self::with_slack(
            "shard-horizon",
            vec![
                ShardScript {
                    events: vec![0, 2, 4],
                    crashes: vec![],
                },
                ShardScript {
                    events: vec![1, 3],
                    crashes: vec![3],
                },
                ShardScript {
                    events: vec![2, 5],
                    crashes: vec![],
                },
            ],
            HorizonProtocol::new(2),
            0,
        )
    }

    /// A model over explicit scripts with an explicit bound slack.
    pub fn with_slack(
        name: &'static str,
        shards: Vec<ShardScript>,
        protocol: HorizonProtocol,
        slack: u64,
    ) -> Self {
        let expected = Self::sequential_commit(&shards);
        ShardModel {
            shards,
            protocol,
            slack,
            name,
            expected,
        }
    }

    /// The reference commit: each shard drained alone under an
    /// unbounded window, merged in fixed `(time, shard)` order — the
    /// order `grail_sim::parallel` commits cells in.
    fn sequential_commit(shards: &[ShardScript]) -> Vec<(u64, usize, u8)> {
        let mut all: Vec<(u64, usize, u8)> = Vec::new();
        for (i, s) in shards.iter().enumerate() {
            let (mut e, mut c) = (0usize, 0usize);
            loop {
                let crash = s.crashes.get(c).copied().unwrap_or(u64::MAX);
                let event = s.events.get(e).copied().unwrap_or(u64::MAX);
                match next_cell_action(crash, event, u64::MAX) {
                    CellAction::Park => break,
                    CellAction::Crash => {
                        all.push((crash, i, 1));
                        c += 1;
                    }
                    CellAction::Event => {
                        all.push((event, i, 0));
                        e += 1;
                    }
                }
            }
        }
        all.sort_by_key(|&(t, i, _)| (t, i));
        all
    }

    fn next_at(&self, s: &ShardProtocolState, i: usize) -> u64 {
        let crash = self.shards[i]
            .crashes
            .get(s.crash_idx[i])
            .copied()
            .unwrap_or(u64::MAX);
        let event = self.shards[i]
            .events
            .get(s.event_idx[i])
            .copied()
            .unwrap_or(u64::MAX);
        crash.min(event)
    }

    /// The *true* safe frontier for shard `i`: minimum of the other
    /// shards' live `next_at` (not their possibly stale published
    /// horizons) plus lookahead. Anything processed past this is a
    /// conservative-discipline breach.
    fn true_bound(&self, s: &ShardProtocolState, i: usize) -> u64 {
        let true_min = (0..self.shards.len())
            .filter(|&j| j != i)
            .map(|j| self.next_at(s, j))
            .min()
            .unwrap_or(u64::MAX);
        self.protocol.advance_bound(true_min)
    }
}

impl Model for ShardModel {
    type State = ShardProtocolState;
    type Action = ShardAction;

    fn name(&self) -> &'static str {
        self.name
    }

    fn initial(&self) -> ShardProtocolState {
        let n = self.shards.len();
        let mut s = ShardProtocolState {
            pcs: vec![Pc::Publish; n],
            published: vec![0; n],
            event_idx: vec![0; n],
            crash_idx: vec![0; n],
            billed: vec![0; n],
            committed: Vec::new(),
            breach: None,
        };
        // `HorizonProtocol::run` seeds every slot with `next_at()`
        // before any thread starts; the loop then begins at Publish.
        for i in 0..n {
            s.published[i] = self.next_at(&s, i);
        }
        s
    }

    fn actions(&self, s: &ShardProtocolState) -> Vec<ShardAction> {
        let mut out = Vec::new();
        for (i, pc) in s.pcs.iter().enumerate() {
            match pc {
                Pc::Publish => out.push(ShardAction::Publish(i)),
                Pc::Advance => out.push(ShardAction::Advance(i)),
                Pc::Done => {}
            }
        }
        out
    }

    fn step(&self, s: &ShardProtocolState, a: &ShardAction) -> ShardProtocolState {
        let mut t = s.clone();
        match *a {
            ShardAction::Publish(i) => {
                let next = self.next_at(&t, i);
                t.published[i] = next;
                t.pcs[i] = if next == u64::MAX {
                    Pc::Done
                } else {
                    Pc::Advance
                };
            }
            ShardAction::Advance(i) => {
                // One-shot snapshot of the other horizons (sound: see
                // the module docs on monotonicity).
                let neighbor_min = (0..self.shards.len())
                    .filter(|&j| j != i)
                    .map(|j| t.published[j])
                    .min()
                    .unwrap_or(u64::MAX);
                let bound = self
                    .protocol
                    .advance_bound(neighbor_min)
                    .saturating_add(self.slack);
                let next = self.next_at(&t, i);
                if HorizonProtocol::may_advance(next, bound) {
                    // Drain through the bound with the real tie-break.
                    loop {
                        let crash = self.shards[i]
                            .crashes
                            .get(t.crash_idx[i])
                            .copied()
                            .unwrap_or(u64::MAX);
                        let event = self.shards[i]
                            .events
                            .get(t.event_idx[i])
                            .copied()
                            .unwrap_or(u64::MAX);
                        match next_cell_action(crash, event, bound) {
                            CellAction::Park => break,
                            CellAction::Crash => {
                                if t.breach.is_none() {
                                    let safe = self.true_bound(s, i);
                                    if crash > safe {
                                        t.breach = Some((i, crash, safe));
                                    }
                                }
                                t.committed.push((crash, i, 1));
                                t.billed[i] += 1;
                                t.crash_idx[i] += 1;
                            }
                            CellAction::Event => {
                                if t.breach.is_none() {
                                    let safe = self.true_bound(s, i);
                                    if event > safe {
                                        t.breach = Some((i, event, safe));
                                    }
                                }
                                t.committed.push((event, i, 0));
                                t.event_idx[i] += 1;
                            }
                        }
                    }
                }
                // Advanced or yielded, the loop re-publishes next.
                t.pcs[i] = Pc::Publish;
            }
        }
        t
    }

    fn invariant(&self, s: &ShardProtocolState) -> Result<(), String> {
        if let Some((i, at, safe)) = s.breach {
            return Err(format!(
                "shard {i} processed t={at} past the conservative bound {safe} \
                 (true neighbor frontier + lookahead)"
            ));
        }
        for (i, &b) in s.billed.iter().enumerate() {
            let consumed = s.crash_idx[i] as u32;
            if b != consumed {
                return Err(format!(
                    "shard {i} billed Recovery {b} time(s) for {consumed} consumed crash(es)"
                ));
            }
            if b as usize > self.shards[i].crashes.len() {
                return Err(format!("shard {i} billed more crashes than scripted"));
            }
        }
        Ok(())
    }

    fn terminal(&self, s: &ShardProtocolState) -> Result<(), String> {
        for (i, script) in self.shards.iter().enumerate() {
            if s.event_idx[i] != script.events.len() || s.crash_idx[i] != script.crashes.len() {
                return Err(format!(
                    "deadlock: shard {i} stopped at event {}/{} crash {}/{}",
                    s.event_idx[i],
                    script.events.len(),
                    s.crash_idx[i],
                    script.crashes.len()
                ));
            }
            if s.billed[i] as usize != script.crashes.len() {
                return Err(format!(
                    "shard {i} finished with {} Recovery bill(s) for {} crash(es)",
                    s.billed[i],
                    script.crashes.len()
                ));
            }
        }
        let mut merged = s.committed.clone();
        merged.sort_by_key(|&(t, i, _)| (t, i));
        if merged != self.expected {
            return Err("terminal commit differs from the sequential reference order".to_string());
        }
        Ok(())
    }

    fn encode(&self, s: &ShardProtocolState, out: &mut Vec<u8>) {
        for pc in &s.pcs {
            out.push(match pc {
                Pc::Publish => 0,
                Pc::Advance => 1,
                Pc::Done => 2,
            });
        }
        for &h in &s.published {
            out.extend_from_slice(&h.to_le_bytes());
        }
        for &e in &s.event_idx {
            out.extend_from_slice(&(e as u32).to_le_bytes());
        }
        for &c in &s.crash_idx {
            out.extend_from_slice(&(c as u32).to_le_bytes());
        }
        for &b in &s.billed {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out.push(u8::from(s.breach.is_some()));
        // `committed` is a function of the indices and scripts except
        // for interleaving order, which the terminal check compares —
        // encode its length and running order tag so distinct commit
        // orders are distinct states.
        out.extend_from_slice(&(s.committed.len() as u32).to_le_bytes());
        for &(t, i, k) in &s.committed {
            out.extend_from_slice(&t.to_le_bytes());
            out.push(i as u8);
            out.push(k);
        }
    }

    fn describe_action(&self, a: &ShardAction) -> String {
        match *a {
            ShardAction::Publish(i) => format!("shard {i}: publish horizon"),
            ShardAction::Advance(i) => format!("shard {i}: read neighbors, advance to bound"),
        }
    }

    fn describe_state(&self, s: &ShardProtocolState) -> String {
        let pcs: Vec<&str> = s
            .pcs
            .iter()
            .map(|pc| match pc {
                Pc::Publish => "publish",
                Pc::Advance => "advance",
                Pc::Done => "done",
            })
            .collect();
        format!(
            "pcs={pcs:?} horizons={:?} events={:?} crashes={:?} billed={:?} committed={}",
            s.published,
            s.event_idx,
            s.crash_idx,
            s.billed,
            s.committed.len()
        )
    }

    fn independent(&self, a: &ShardAction, b: &ShardAction) -> bool {
        // Publishes by different shards write disjoint slots and read
        // only their own cursors: they commute and cannot enable or
        // disable each other. Everything involving an Advance is
        // dependent — it reads every other shard's slot and live
        // frontier.
        match (a, b) {
            (ShardAction::Publish(i), ShardAction::Publish(j)) => i != j,
            _ => false,
        }
    }
}
