//! The seeded broken model: the shard protocol with a one-nanosecond
//! bound inflation.
//!
//! This is the negative control for the whole pipeline. CI runs it in a
//! must-fail leg: grail-check has to find the breach, minimize it, and
//! exit non-zero — proving the checker can actually catch the class of
//! bug the faithful models are certifying the absence of. The tests pin
//! the minimized trace to its known length and assert the rendered
//! counterexample is byte-stable across 1/2/8 runner threads.
//!
//! The defect is the classic conservative-discipline off-by-one:
//! `bound = neighbor_min + lookahead + 1`. With shard 0 at `[10, 20]`
//! and shard 1 at `[15, 22]` under lookahead 1, the shortest failing
//! run is five steps: shard 0 publishes, advances through 10, and
//! publishes 20; shard 1 then publishes and advances to the inflated
//! bound 22 — one nanosecond past the true safe frontier 21.

use super::shard::{ShardModel, ShardScript};
use grail_par::HorizonProtocol;

/// Number of steps in the minimized counterexample for
/// [`broken_shard_model`] — pinned so the byte-stability tests and the
/// CI must-fail leg can assert the exact trace, not just "some trace".
pub const BROKEN_TRACE_LEN: usize = 5;

/// The off-by-one shard model (see the module docs).
pub fn broken_shard_model() -> ShardModel {
    ShardModel::with_slack(
        "broken-shard-horizon",
        vec![
            ShardScript {
                events: vec![10, 20],
                crashes: vec![],
            },
            ShardScript {
                events: vec![15, 22],
                crashes: vec![],
            },
        ],
        HorizonProtocol::new(1),
        1,
    )
}
