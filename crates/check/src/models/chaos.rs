//! Model of the chaos failover and admission pipeline.
//!
//! `grail_scheduler::chaos` reacts to crashes, restarts, and breaker
//! rejoins by re-planning: admission control picks how many replicas
//! and how much demand to serve, placement packs the served load under
//! the one-replica-per-domain cap, and the circuit breaker quarantines
//! flapping machines. This model exhausts every order of a bounded
//! storm — crashes, restarts, rejoins, and demand ticks — driving the
//! *real* pipeline: [`admission`], [`place_replicated`],
//! [`max_replica_rate`], and [`BreakerPolicy::quarantine`].
//!
//! The instance keeps every quantity integral (capacities 100, demand
//! 150) so all float arithmetic is exact and the conservation law can
//! be checked bit-for-bit.
//!
//! Checked obligations:
//!
//! * **conservation** — `served + shed ≡ offered` exactly, at every
//!   reachable state (the run-level `served + shed + failed ≡ offered`
//!   law with the stranded-work term, which this abstraction omits,
//!   at zero);
//! * **breaker saturation** — the quarantine never shrinks as trips
//!   accumulate and stays finite at every reachable trip count;
//! * **placement discipline** — no fault domain ever carries more than
//!   one replica's worth of load, machine loads respect capacity, and
//!   when capacity allows, the full `served · r_eff` is placed.

use crate::Model;
use grail_power::units::Watts;
use grail_scheduler::chaos::{admission, max_replica_rate, place_replicated, BreakerPolicy};
use grail_scheduler::{Machine, Placement, PlacementPolicy};

/// Health of one machine in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Up,
    Down,
    /// Restarted but still serving its breaker quarantine.
    Quarantined,
}

/// A reachable configuration of the storm.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosState {
    health: Vec<Health>,
    /// Breaker trip counts (crashes inside the reset window).
    trips: Vec<u32>,
    crashes: Vec<u32>,
    crashes_total: u32,
    ticks: u32,
    // Current plan, recomputed by the real pipeline on every change.
    r_eff: u32,
    served_rate: f64,
    shed_rate: f64,
    placement: Placement,
    // Accumulators for the conservation law.
    offered: f64,
    served: f64,
    shed: f64,
}

/// One storm step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Machine `i` crashes (budgeted).
    Crash(usize),
    /// Machine `i` restarts; the breaker decides up vs quarantined.
    Restart(usize),
    /// Machine `i` leaves quarantine and takes load again.
    Rejoin(usize),
    /// One demand interval elapses under the current plan.
    Tick,
}

/// The chaos pipeline model over a fixed fleet and storm budget.
pub struct ChaosModel {
    fleet: Vec<Machine>,
    n_domains: usize,
    demand: f64,
    replicas: u32,
    breaker: BreakerPolicy,
    max_crashes_per_machine: u32,
    max_crashes_total: u32,
    max_ticks: u32,
}

impl ChaosModel {
    /// The reference storm: four 100-work/s machines across two fault
    /// domains, demand 150 at two replicas, up to three crashes (two
    /// per machine) and three demand ticks.
    pub fn reference() -> Self {
        let fleet = vec![
            Machine::new("m0", 100.0, Watts::new(100.0), Watts::new(200.0)).with_domain(0),
            Machine::new("m1", 100.0, Watts::new(100.0), Watts::new(200.0)).with_domain(0),
            Machine::new("m2", 100.0, Watts::new(100.0), Watts::new(200.0)).with_domain(1),
            Machine::new("m3", 100.0, Watts::new(100.0), Watts::new(200.0)).with_domain(1),
        ];
        ChaosModel {
            fleet,
            n_domains: 2,
            demand: 150.0,
            replicas: 2,
            breaker: BreakerPolicy::default(),
            max_crashes_per_machine: 2,
            max_crashes_total: 3,
            max_ticks: 3,
        }
    }

    /// Effective per-machine capacity under the current health map.
    fn eff_cap(&self, health: &[Health]) -> Vec<f64> {
        self.fleet
            .iter()
            .zip(health.iter())
            .map(|(m, h)| if *h == Health::Up { m.capacity } else { 0.0 })
            .collect()
    }

    /// Re-plan through the real admission + placement pipeline.
    fn recompute(&self, s: &mut ChaosState) {
        let eff_cap = self.eff_cap(&s.health);
        let mut dom_caps = vec![0.0; self.n_domains];
        for (m, &c) in self.fleet.iter().zip(eff_cap.iter()) {
            dom_caps[m.domain as usize] += c;
        }
        let (r_eff, served_rate, shed_rate) = admission(&dom_caps, self.demand, self.replicas);
        s.placement = place_replicated(
            &self.fleet,
            PlacementPolicy::Consolidate,
            self.n_domains,
            &eff_cap,
            served_rate,
            r_eff,
        );
        s.r_eff = r_eff;
        s.served_rate = served_rate;
        s.shed_rate = shed_rate;
    }
}

impl Model for ChaosModel {
    type State = ChaosState;
    type Action = ChaosAction;

    fn name(&self) -> &'static str {
        "chaos-failover"
    }

    fn initial(&self) -> ChaosState {
        let n = self.fleet.len();
        let mut s = ChaosState {
            health: vec![Health::Up; n],
            trips: vec![0; n],
            crashes: vec![0; n],
            crashes_total: 0,
            ticks: 0,
            r_eff: 0,
            served_rate: 0.0,
            shed_rate: 0.0,
            placement: Placement {
                loads: vec![0.0; n],
                powered: vec![false; n],
            },
            offered: 0.0,
            served: 0.0,
            shed: 0.0,
        };
        self.recompute(&mut s);
        s
    }

    fn actions(&self, s: &ChaosState) -> Vec<ChaosAction> {
        let mut out = Vec::new();
        for (i, h) in s.health.iter().enumerate() {
            match h {
                Health::Up => {
                    if s.crashes[i] < self.max_crashes_per_machine
                        && s.crashes_total < self.max_crashes_total
                    {
                        out.push(ChaosAction::Crash(i));
                    }
                }
                Health::Down => out.push(ChaosAction::Restart(i)),
                Health::Quarantined => out.push(ChaosAction::Rejoin(i)),
            }
        }
        if s.ticks < self.max_ticks {
            out.push(ChaosAction::Tick);
        }
        out
    }

    fn step(&self, s: &ChaosState, a: &ChaosAction) -> ChaosState {
        let mut t = s.clone();
        match *a {
            ChaosAction::Crash(i) => {
                t.health[i] = Health::Down;
                t.trips[i] += 1;
                t.crashes[i] += 1;
                t.crashes_total += 1;
                self.recompute(&mut t);
            }
            ChaosAction::Restart(i) => {
                // The real breaker decision: an isolated crash rejoins
                // immediately, a flapper sits out its quarantine.
                t.health[i] = if self.breaker.quarantine(t.trips[i]).is_zero() {
                    Health::Up
                } else {
                    Health::Quarantined
                };
                self.recompute(&mut t);
            }
            ChaosAction::Rejoin(i) => {
                t.health[i] = Health::Up;
                self.recompute(&mut t);
            }
            ChaosAction::Tick => {
                t.ticks += 1;
                t.offered += self.demand;
                t.served += t.served_rate;
                t.shed += t.shed_rate;
            }
        }
        t
    }

    fn invariant(&self, s: &ChaosState) -> Result<(), String> {
        // Conservation, bit-exact: the instance is integral by
        // construction, so float error is not a tolerance question.
        let balance = s.served + s.shed;
        if balance.to_bits() != s.offered.to_bits() {
            return Err(format!(
                "conservation broken: served {} + shed {} != offered {}",
                s.served, s.shed, s.offered
            ));
        }
        // Breaker saturation: quarantine is monotone in trips and
        // finite at (and one past) every reachable trip count.
        for (i, &trips) in s.trips.iter().enumerate() {
            let q0 = self.breaker.quarantine(trips);
            let q1 = self.breaker.quarantine(trips + 1);
            if q1 < q0 {
                return Err(format!(
                    "breaker quarantine shrank for machine {i}: {q0:?} at {trips} trips, \
                     {q1:?} at {}",
                    trips + 1
                ));
            }
        }
        // Placement discipline over the real Placement.
        let cap_total: f64 = self.eff_cap(&s.health).iter().sum();
        let mut dom_used = vec![0.0; self.n_domains];
        let mut placed = 0.0;
        for (i, (&load, m)) in s.placement.loads.iter().zip(self.fleet.iter()).enumerate() {
            if load < 0.0 || load > m.capacity + 1e-9 {
                return Err(format!(
                    "machine {i} load {load} outside [0, {}]",
                    m.capacity
                ));
            }
            if load > 0.0 && s.health[i] != Health::Up {
                return Err(format!("machine {i} is not up but carries load {load}"));
            }
            if load > 0.0 && !s.placement.powered[i] {
                return Err(format!("machine {i} carries load {load} while powered off"));
            }
            dom_used[m.domain as usize] += load;
            placed += load;
        }
        for (d, &used) in dom_used.iter().enumerate() {
            if used > s.served_rate + 1e-9 {
                return Err(format!(
                    "domain {d} carries {used} > one replica's worth {} — a single \
                     domain loss could take every copy",
                    s.served_rate
                ));
            }
        }
        let want = s.served_rate * s.r_eff as f64;
        if want <= cap_total + 1e-9 && (placed - want).abs() > 1e-9 {
            return Err(format!(
                "placement left load behind with capacity to spare: placed {placed}, \
                 wanted {want}, capacity {cap_total}"
            ));
        }
        // Admission sanity: served never exceeds what one replica of
        // the live fleet supports.
        let eff_cap = self.eff_cap(&s.health);
        let mut dom_caps = vec![0.0; self.n_domains];
        for (m, &c) in self.fleet.iter().zip(eff_cap.iter()) {
            dom_caps[m.domain as usize] += c;
        }
        if s.served_rate > max_replica_rate(&dom_caps, 1) + 1e-9 {
            return Err(format!(
                "admission served {} beyond single-replica capacity",
                s.served_rate
            ));
        }
        Ok(())
    }

    fn terminal(&self, s: &ChaosState) -> Result<(), String> {
        // The only deadlock-free exits: storm budget exhausted with the
        // whole fleet healthy and every offered unit accounted for.
        if s.ticks != self.max_ticks {
            return Err(format!(
                "stalled with {} of {} ticks",
                s.ticks, self.max_ticks
            ));
        }
        if s.health.iter().any(|h| *h != Health::Up) {
            return Err("stalled with a machine not back up".to_string());
        }
        let expected = self.demand * self.max_ticks as f64;
        if s.offered.to_bits() != expected.to_bits() {
            return Err(format!(
                "offered {} != {} at end of storm",
                s.offered, expected
            ));
        }
        Ok(())
    }

    fn encode(&self, s: &ChaosState, out: &mut Vec<u8>) {
        for h in &s.health {
            out.push(match h {
                Health::Up => 0,
                Health::Down => 1,
                Health::Quarantined => 2,
            });
        }
        for &t in &s.trips {
            out.push(t as u8);
        }
        for &c in &s.crashes {
            out.push(c as u8);
        }
        out.push(s.crashes_total as u8);
        out.push(s.ticks as u8);
        out.extend_from_slice(&s.offered.to_bits().to_le_bytes());
        out.extend_from_slice(&s.served.to_bits().to_le_bytes());
        out.extend_from_slice(&s.shed.to_bits().to_le_bytes());
        // The plan is a pure function of health, but encoding it keeps
        // the fingerprint honest if that ever stops being true.
        out.extend_from_slice(&s.served_rate.to_bits().to_le_bytes());
        out.extend_from_slice(&s.shed_rate.to_bits().to_le_bytes());
        out.push(s.r_eff as u8);
    }

    fn describe_action(&self, a: &ChaosAction) -> String {
        match *a {
            ChaosAction::Crash(i) => format!("crash {}", self.fleet[i].name),
            ChaosAction::Restart(i) => format!("restart {}", self.fleet[i].name),
            ChaosAction::Rejoin(i) => format!("rejoin {} from quarantine", self.fleet[i].name),
            ChaosAction::Tick => "tick: one demand interval".to_string(),
        }
    }

    fn describe_state(&self, s: &ChaosState) -> String {
        let health: Vec<&str> = s
            .health
            .iter()
            .map(|h| match h {
                Health::Up => "up",
                Health::Down => "down",
                Health::Quarantined => "quar",
            })
            .collect();
        format!(
            "health={health:?} trips={:?} ticks={} r_eff={} served_rate={} shed_rate={} \
             offered={} served={} shed={}",
            s.trips, s.ticks, s.r_eff, s.served_rate, s.shed_rate, s.offered, s.served, s.shed
        )
    }
}
