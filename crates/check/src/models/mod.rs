//! The shipped protocol models.
//!
//! Each submodule turns one production protocol into a [`Model`]
//! implementation that drives the *real* transition code — the
//! extraction refactors in `grail_par::shard`, `grail_sim::parallel`,
//! and `grail_scheduler::chaos` exist precisely so these models and the
//! production loops share one copy of the logic. [`broken`] is the
//! seeded negative control for CI's must-fail leg.
//!
//! [`Model`]: crate::Model

pub mod broken;
pub mod chaos;
pub mod ledger;
pub mod shard;

pub use broken::{broken_shard_model, BROKEN_TRACE_LEN};
pub use chaos::ChaosModel;
pub use ledger::LedgerModel;
pub use shard::{ShardModel, ShardScript};
