//! The model registry: every shipped protocol model, what workspace
//! types it covers, and a deterministic way to run them all.
//!
//! The `covers` lists are load-bearing beyond documentation:
//! grail-lint's `model-coverage` rule scans the workspace for types
//! that implement the protocol-state-machine idiom (a `step`/`advance`
//! method mutating an `EnergyLedger` across a thread or shard
//! boundary) and demands each one appear in some entry's `covers`
//! list. Deleting a line here, or adding a new protocol state machine
//! without a model, fails the lint — code and proof stay bound.

use crate::models::{broken_shard_model, ChaosModel, LedgerModel, ShardModel};
use crate::{run_model, Budget, Report};

/// One registered model.
pub struct ModelEntry {
    /// Stable name, usable with `grail-check --model NAME`.
    pub name: &'static str,
    /// One-line description for `--list` output.
    pub about: &'static str,
    /// Workspace types this model covers, as `crate::module::Type`
    /// paths. Read by grail-lint's `model-coverage` rule.
    pub covers: &'static [&'static str],
    /// Check the model under a budget.
    pub run: fn(Budget) -> Report,
}

fn run_shard(budget: Budget) -> Report {
    run_model(&ShardModel::reference(), budget)
}

fn run_chaos(budget: Budget) -> Report {
    run_model(&ChaosModel::reference(), budget)
}

fn run_ledger(budget: Budget) -> Report {
    run_model(&LedgerModel::reference(), budget)
}

fn run_broken(budget: Budget) -> Report {
    run_model(&broken_shard_model(), budget)
}

/// Every shipped model, in the order the default run checks them.
pub const REGISTRY: &[ModelEntry] = &[
    ModelEntry {
        name: "shard-horizon",
        about: "epoch-horizon commit: conservative bounds, crash tie-break, fixed commit order",
        covers: &[
            "par::shard::HorizonProtocol",
            "sim::parallel::CellRun",
            "sim::parallel::ShardState",
        ],
        run: run_shard,
    },
    ModelEntry {
        name: "chaos-failover",
        about:
            "chaos failover: admission conservation, breaker saturation, domain-capped placement",
        covers: &["scheduler::chaos::Engine"],
        run: run_chaos,
    },
    ModelEntry {
        name: "ledger-settlement",
        about:
            "ledger discipline: bit-exact conservation, transfer neutrality, settlement liveness",
        covers: &["power::ledger::EnergyLedger"],
        run: run_ledger,
    },
];

/// The seeded negative control. Not part of [`REGISTRY`]: the default
/// run must pass, and this model must fail — CI runs it in a dedicated
/// must-fail leg via `--model broken-shard-horizon`.
pub const BROKEN: ModelEntry = ModelEntry {
    name: "broken-shard-horizon",
    about: "seeded off-by-one bound (negative control; must fail)",
    covers: &[],
    run: run_broken,
};

/// Look a model up by name, including the seeded broken one.
pub fn find(name: &str) -> Option<&'static ModelEntry> {
    REGISTRY
        .iter()
        .chain(std::iter::once(&BROKEN))
        .find(|e| e.name == name)
}

/// Check every registered model (the broken control excluded), fanning
/// across `runner` threads, reports in registry order. Deterministic:
/// the runner returns results in input order whatever the thread count,
/// and each model's exploration is itself deterministic, so the full
/// report vector is byte-stable across 1/2/8 threads.
pub fn run_all(budget: Budget, runner: &grail_par::Runner) -> Vec<Report> {
    runner.run(REGISTRY, |_, entry| (entry.run)(budget))
}
