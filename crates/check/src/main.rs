//! `grail-check` — exhaustively model-check the workspace protocols.
//!
//! ```text
//! grail-check                      # check every registered model
//! grail-check --list               # list models and what they cover
//! grail-check --model NAME        # check one model (incl. the broken control)
//! grail-check --max-states N --max-depth N
//! grail-check --out-dir DIR       # write counterexample artifacts
//! grail-check --threads N | --sequential
//! ```
//!
//! Exit status: 0 when every checked model reaches fixpoint clean,
//! 1 on any violation or budget exhaustion, 2 on usage errors.

use grail_check::registry::{find, REGISTRY};
use grail_check::{Budget, Report};
use grail_par::Runner;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    list: bool,
    model: Option<String>,
    budget: Budget,
    out_dir: Option<PathBuf>,
    runner: Runner,
}

fn usage() -> &'static str {
    "usage: grail-check [--list] [--model NAME] [--max-states N] [--max-depth N]\n\
     \x20                  [--out-dir DIR] [--threads N | --sequential]"
}

fn parse(mut args: Vec<String>) -> Result<Options, String> {
    let runner = Runner::from_cli_args(&mut args);
    let mut opts = Options {
        list: false,
        model: None,
        budget: Budget::default(),
        out_dir: None,
        runner,
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => opts.list = true,
            "--model" => {
                opts.model = Some(it.next().ok_or("--model needs a name")?);
            }
            "--max-states" => {
                let v = it.next().ok_or("--max-states needs a number")?;
                opts.budget.max_states = v.parse().map_err(|_| format!("bad --max-states {v}"))?;
            }
            "--max-depth" => {
                let v = it.next().ok_or("--max-depth needs a number")?;
                opts.budget.max_depth = v.parse().map_err(|_| format!("bad --max-depth {v}"))?;
            }
            "--out-dir" => {
                opts.out_dir = Some(PathBuf::from(it.next().ok_or("--out-dir needs a path")?));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

/// Write counterexample artifacts for a failed report; best-effort but
/// loud about IO problems.
fn write_artifacts(dir: &Path, report: &Report) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    if let Some(jsonl) = &report.jsonl {
        let path = dir.join(format!("{}.cx.jsonl", report.model));
        std::fs::write(&path, jsonl).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    if let Some(diag) = &report.diagnostic {
        let path = dir.join(format!("{}.diagnostic.txt", report.model));
        std::fs::write(&path, diag).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse(std::env::args().skip(1).collect()) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("grail-check: {msg}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if opts.list {
        for entry in REGISTRY {
            println!("{:<20} {}", entry.name, entry.about);
            for c in entry.covers {
                println!("{:<20}   covers {c}", "");
            }
        }
        println!(
            "{:<20} {}",
            grail_check::registry::BROKEN.name,
            grail_check::registry::BROKEN.about
        );
        return ExitCode::SUCCESS;
    }

    let reports: Vec<Report> = match &opts.model {
        Some(name) => match find(name) {
            Some(entry) => vec![(entry.run)(opts.budget)],
            None => {
                eprintln!("grail-check: no model named `{name}` (try --list)");
                return ExitCode::from(2);
            }
        },
        None => grail_check::registry::run_all(opts.budget, &opts.runner),
    };

    let mut failed = false;
    for report in &reports {
        println!("{:<20} {}", report.model, report.line);
        if !report.passed {
            failed = true;
            if let Some(diag) = &report.diagnostic {
                print!("{diag}");
            }
            if let Some(dir) = &opts.out_dir {
                if let Err(e) = write_artifacts(dir, report) {
                    eprintln!("grail-check: {e}");
                }
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
