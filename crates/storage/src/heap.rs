//! Slotted row pages and heap files: the classic N-ary storage model.
//!
//! Rows are fixed-width tuples of `i64` attributes (GRAIL normalizes all
//! scalar types to 64-bit codes at the storage boundary). Row layout
//! reads *every* attribute off the device even when a query projects a
//! few — the bandwidth tax Fig. 2's column scanner avoids.

use crate::error::StorageError;
use crate::page::PAGE_SIZE;

/// A heap file: fixed-arity rows packed into fixed-size pages.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapFile {
    arity: usize,
    rows_per_page: usize,
    rows: Vec<i64>, // row-major, arity-strided
}

impl HeapFile {
    /// An empty heap of `arity` columns.
    ///
    /// # Panics
    /// Panics if `arity` is zero or a single row exceeds one page.
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0, "heap needs at least one column");
        let row_bytes = arity * 8;
        assert!(row_bytes <= PAGE_SIZE, "row wider than a page");
        HeapFile {
            arity,
            rows_per_page: PAGE_SIZE / row_bytes,
            rows: Vec::new(),
        }
    }

    /// The number of columns per row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Append one tuple.
    pub fn append(&mut self, tuple: &[i64]) -> Result<(), StorageError> {
        if tuple.len() != self.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                got: tuple.len(),
            });
        }
        self.rows.extend_from_slice(tuple);
        Ok(())
    }

    /// Number of rows stored.
    pub fn row_count(&self) -> usize {
        self.rows.len() / self.arity
    }

    /// Number of pages the heap occupies.
    pub fn page_count(&self) -> usize {
        self.row_count().div_ceil(self.rows_per_page)
    }

    /// Total bytes a full scan reads (page-granular).
    pub fn scan_bytes(&self) -> u64 {
        (self.page_count() * PAGE_SIZE) as u64
    }

    /// The `i`th row.
    pub fn row(&self, i: usize) -> Option<&[i64]> {
        let start = i.checked_mul(self.arity)?;
        self.rows.get(start..start + self.arity)
    }

    /// Iterate all rows.
    pub fn iter(&self) -> impl Iterator<Item = &[i64]> {
        self.rows.chunks_exact(self.arity)
    }

    /// Extract one column as a vector (the conversion a row→column
    /// reorganization performs).
    pub fn column(&self, col: usize) -> Result<Vec<i64>, StorageError> {
        if col >= self.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                got: col + 1,
            });
        }
        Ok(self
            .rows
            .iter()
            .skip(col)
            .step_by(self.arity)
            .copied()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut h = HeapFile::new(3);
        h.append(&[1, 2, 3]).unwrap();
        h.append(&[4, 5, 6]).unwrap();
        assert_eq!(h.row_count(), 2);
        assert_eq!(h.row(0), Some(&[1i64, 2, 3][..]));
        assert_eq!(h.row(1), Some(&[4i64, 5, 6][..]));
        assert_eq!(h.row(2), None);
        let rows: Vec<_> = h.iter().collect();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn arity_enforced() {
        let mut h = HeapFile::new(2);
        assert!(matches!(
            h.append(&[1, 2, 3]),
            Err(StorageError::ArityMismatch {
                expected: 2,
                got: 3
            })
        ));
        assert!(h.column(5).is_err());
    }

    #[test]
    fn paging_math() {
        let mut h = HeapFile::new(8); // 64-byte rows, 1024 rows/page
        assert_eq!(h.page_count(), 0);
        for i in 0..1024 {
            h.append(&[i; 8]).unwrap();
        }
        assert_eq!(h.page_count(), 1);
        h.append(&[0; 8]).unwrap();
        assert_eq!(h.page_count(), 2);
        assert_eq!(h.scan_bytes(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn column_extraction() {
        let mut h = HeapFile::new(2);
        for i in 0..10 {
            h.append(&[i, i * 10]).unwrap();
        }
        assert_eq!(
            h.column(1).unwrap(),
            (0..10).map(|i| i * 10).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_arity_rejected() {
        let _ = HeapFile::new(0);
    }
}
