//! Storage errors.

use std::fmt;

/// Errors raised by storage formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A segment's bytes do not decode under its declared encoding.
    CorruptSegment(&'static str),
    /// A value does not fit the declared width.
    WidthOverflow {
        /// The offending value.
        value: i64,
        /// Declared bit width.
        width: u8,
    },
    /// A tuple's arity does not match the schema.
    ArityMismatch {
        /// Expected column count.
        expected: usize,
        /// Provided column count.
        got: usize,
    },
    /// A page has no room for another tuple.
    PageFull,
    /// Partitioning was asked for zero partitions or zero disks.
    EmptyPartitioning,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::CorruptSegment(what) => write!(f, "corrupt segment: {what}"),
            StorageError::WidthOverflow { value, width } => {
                write!(f, "value {value} does not fit in {width} bits")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected}, got {got}")
            }
            StorageError::PageFull => f.write_str("page full"),
            StorageError::EmptyPartitioning => f.write_str("empty partitioning"),
        }
    }
}

impl std::error::Error for StorageError {}
