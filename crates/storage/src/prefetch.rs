//! Energy-efficient burst prefetching, after Papathanasiou & Scott
//! (\[PS04\], cited in Sec. 4.2).
//!
//! A steadily consumed scan keeps a device trickling — never idle long
//! enough to enter a low-power state. Fetching the same pages in bursts
//! of `B` concentrates device activity and opens idle gaps of
//! `(B-1) × consume_interval` between bursts; if a gap exceeds the
//! device's break-even time, the governor can park it. The price is
//! `B` pages of buffer space and a deeper prefetch horizon.

use grail_power::units::{SimDuration, SimInstant};
use serde::{Deserialize, Serialize};

/// One planned burst: fetch `pages` pages at `fetch_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Burst {
    /// When the burst is issued.
    pub fetch_at: SimInstant,
    /// Index of the first page in the burst.
    pub first_page: u64,
    /// Number of pages fetched.
    pub pages: u32,
}

/// A burst prefetch plan for a sequential scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstPlan {
    /// The bursts, in time order.
    pub bursts: Vec<Burst>,
    /// Interval at which the consumer drains one page.
    pub consume_interval: SimDuration,
    /// Burst size (pages of buffer required).
    pub burst_size: u32,
}

impl BurstPlan {
    /// Plan a scan of `total_pages` consumed one page per
    /// `consume_interval`, fetched in bursts of `burst_size`.
    ///
    /// Burst `k` must complete before page `k·B` is consumed, so it is
    /// issued at the consumption time of that page minus `fetch_lead`
    /// (the device time to deliver a burst), clamped to the epoch.
    pub fn plan(
        total_pages: u64,
        consume_interval: SimDuration,
        burst_size: u32,
        fetch_lead: SimDuration,
    ) -> Self {
        assert!(burst_size > 0, "burst size must be positive");
        let mut bursts = Vec::new();
        let mut page = 0u64;
        while page < total_pages {
            let pages = burst_size.min((total_pages - page) as u32);
            let consume_at = SimInstant::EPOCH + consume_interval * page;
            let fetch_at = SimInstant::EPOCH
                + consume_at
                    .duration_since(SimInstant::EPOCH)
                    .saturating_sub(fetch_lead);
            bursts.push(Burst {
                fetch_at,
                first_page: page,
                pages,
            });
            page += pages as u64;
        }
        BurstPlan {
            bursts,
            consume_interval,
            burst_size,
        }
    }

    /// The idle gaps between bursts (fetch-to-fetch minus the lead the
    /// device spends delivering), i.e. the windows a governor can use.
    pub fn idle_gaps(&self, burst_service: SimDuration) -> Vec<SimDuration> {
        self.bursts
            .windows(2)
            .map(|w| {
                w[1].fetch_at
                    .saturating_duration_since(w[0].fetch_at + burst_service)
            })
            .collect()
    }

    /// The smallest burst size whose inter-burst idle gap exceeds
    /// `break_even`, given per-page consume interval and burst service
    /// time. Returns `None` if even the maximum buffer cannot open a
    /// long-enough gap.
    pub fn min_burst_for_gap(
        consume_interval: SimDuration,
        burst_service_per_page: SimDuration,
        break_even: SimDuration,
        max_burst: u32,
    ) -> Option<u32> {
        for b in 1..=max_burst {
            // Gap between bursts of size b: b pages of consumption minus
            // the service time of the next burst.
            let cycle = consume_interval * b as u64;
            let service = burst_service_per_page * b as u64;
            let gap = cycle.saturating_sub(service);
            if gap > break_even {
                return Some(b);
            }
        }
        None
    }

    /// Buffer pages this plan requires.
    pub fn buffer_requirement(&self) -> u32 {
        self.burst_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn plan_covers_all_pages_exactly_once() {
        let plan = BurstPlan::plan(103, secs(0.1), 10, secs(0.05));
        let total: u64 = plan.bursts.iter().map(|b| b.pages as u64).sum();
        assert_eq!(total, 103);
        assert_eq!(plan.bursts.last().unwrap().pages, 3);
        // Pages are contiguous.
        let mut next = 0u64;
        for b in &plan.bursts {
            assert_eq!(b.first_page, next);
            next += b.pages as u64;
        }
    }

    #[test]
    fn bigger_bursts_open_bigger_gaps() {
        let service = secs(0.2);
        let small = BurstPlan::plan(1000, secs(0.1), 5, secs(0.05));
        let large = BurstPlan::plan(1000, secs(0.1), 50, secs(0.05));
        // Skip the first gap: burst 0's fetch time is clamped at the
        // epoch, which shortens it by the fetch lead.
        let small_gap = small.idle_gaps(service)[1];
        let large_gap = large.idle_gaps(service)[1];
        assert!(large_gap > small_gap, "{large_gap} vs {small_gap}");
        // 50 pages × 0.1 s = 5 s cycle minus 0.2 s service = 4.8 s gap.
        assert!((large_gap.as_secs_f64() - 4.8).abs() < 0.01, "{large_gap}");
    }

    #[test]
    fn min_burst_matches_break_even() {
        // Consume 0.1 s/page, serve 0.01 s/page, break-even 5 s:
        // gap(b) = b×0.09 > 5 ⇒ b ≥ 56.
        let b = BurstPlan::min_burst_for_gap(secs(0.1), secs(0.01), secs(5.0), 1000).unwrap();
        assert_eq!(b, 56);
    }

    #[test]
    fn min_burst_none_when_infeasible() {
        // Service as slow as consumption: no gap ever opens.
        assert_eq!(
            BurstPlan::min_burst_for_gap(secs(0.1), secs(0.1), secs(1.0), 1000),
            None
        );
    }

    #[test]
    fn fetch_lead_clamped_at_epoch() {
        let plan = BurstPlan::plan(10, secs(0.1), 5, secs(99.0));
        assert_eq!(plan.bursts[0].fetch_at, SimInstant::EPOCH);
    }

    #[test]
    #[should_panic(expected = "burst size")]
    fn zero_burst_rejected() {
        let _ = BurstPlan::plan(10, secs(0.1), 0, secs(0.0));
    }
}
