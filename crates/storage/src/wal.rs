//! Write-ahead logging with a tunable group-commit batching factor.
//!
//! Sec. 5.2: logging consumes a large share of an OLTP system's work
//! (\[HAM+08\]: ~15% of executed code), and "it may make sense to
//! increase the batching factor (and increase response time) to avoid
//! frequent commits on stable storage". the [`schedule`] function implements the
//! mechanism: transactions append records; a [`FlushPolicy`] decides
//! when the buffer forces to the log device. Per-commit flushing pays
//! one device force per transaction; group commit amortizes the force
//! across the batch at the price of held latency.

use grail_power::units::{Bytes, SimDuration, SimInstant};
use serde::Serialize;

/// When the log buffer forces to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FlushPolicy {
    /// Force on every commit (classic durability-first).
    PerCommit,
    /// Force when `max_batch` commits are pending or the oldest has
    /// waited `max_wait`, whichever first.
    GroupCommit {
        /// Commits per force.
        max_batch: u32,
        /// Latency bound on the oldest pending commit.
        max_wait: SimDuration,
    },
}

/// One forced write to the log device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LogForce {
    /// When the force is issued.
    pub at: SimInstant,
    /// Bytes written (records + one page header per force).
    pub bytes: Bytes,
    /// Commits made durable by this force.
    pub commits: u32,
}

/// Outcome of running a commit stream through the buffer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WalSchedule {
    /// Every force, in time order.
    pub forces: Vec<LogForce>,
    /// Per-transaction commit-acknowledged times (input order).
    pub ack_times: Vec<SimInstant>,
}

impl WalSchedule {
    /// Total bytes forced.
    pub fn total_bytes(&self) -> Bytes {
        self.forces.iter().map(|f| f.bytes).sum()
    }

    /// Number of device forces.
    pub fn force_count(&self) -> usize {
        self.forces.len()
    }

    /// Mean added commit latency versus instant acknowledgement.
    pub fn mean_added_latency(&self, commits: &[(SimInstant, Bytes)]) -> SimDuration {
        if commits.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self
            .ack_times
            .iter()
            .zip(commits)
            .map(|(ack, (at, _))| ack.saturating_duration_since(*at).as_nanos())
            .sum();
        SimDuration::from_nanos(total / commits.len() as u64)
    }
}

/// Per-force overhead (sector/page header and padding to the device's
/// write granularity).
pub const FORCE_OVERHEAD: Bytes = Bytes::new(4096);

/// The log buffer: schedules forces for a stream of commit requests.
///
/// `commits` are `(time, record_bytes)` pairs in nondecreasing time
/// order. The returned schedule is what a caller charges to the
/// simulator's log device (one sequential write per force).
///
/// # Panics
/// Panics if commits are unsorted.
pub fn schedule(commits: &[(SimInstant, Bytes)], policy: FlushPolicy) -> WalSchedule {
    assert!(
        commits.windows(2).all(|w| w[0].0 <= w[1].0),
        "commits must be time-ordered"
    );
    match policy {
        FlushPolicy::PerCommit => {
            let forces = commits
                .iter()
                .map(|(at, bytes)| LogForce {
                    at: *at,
                    bytes: *bytes + FORCE_OVERHEAD,
                    commits: 1,
                })
                .collect::<Vec<_>>();
            let ack_times = commits.iter().map(|(at, _)| *at).collect();
            WalSchedule { forces, ack_times }
        }
        FlushPolicy::GroupCommit {
            max_batch,
            max_wait,
        } => {
            let max_batch = max_batch.max(1);
            let mut forces = Vec::new();
            let mut ack_times = vec![SimInstant::EPOCH; commits.len()];
            let mut batch_start = 0usize;
            let mut i = 0usize;
            while batch_start < commits.len() {
                let deadline = commits[batch_start].0 + max_wait;
                // Extend the batch while within size and deadline.
                let mut end = batch_start;
                while end < commits.len()
                    && (end - batch_start) < max_batch as usize
                    && commits[end].0 <= deadline
                {
                    end += 1;
                }
                // Force at the earlier of the deadline and the arrival
                // that filled the batch.
                let force_at = if end - batch_start >= max_batch as usize {
                    commits[end - 1].0
                } else {
                    deadline
                };
                let bytes: Bytes = commits[batch_start..end]
                    .iter()
                    .map(|(_, b)| *b)
                    .sum::<Bytes>()
                    + FORCE_OVERHEAD;
                forces.push(LogForce {
                    at: force_at,
                    bytes,
                    commits: (end - batch_start) as u32,
                });
                for slot in ack_times.iter_mut().take(end).skip(batch_start) {
                    *slot = force_at;
                }
                batch_start = end;
                i += 1;
                debug_assert!(i <= commits.len(), "progress");
            }
            WalSchedule { forces, ack_times }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_millis(ms)
    }

    fn commits(n: u64, gap_ms: u64, bytes: u64) -> Vec<(SimInstant, Bytes)> {
        (0..n)
            .map(|i| (at(i * gap_ms), Bytes::new(bytes)))
            .collect()
    }

    #[test]
    fn per_commit_forces_every_transaction() {
        let c = commits(10, 5, 200);
        let s = schedule(&c, FlushPolicy::PerCommit);
        assert_eq!(s.force_count(), 10);
        assert_eq!(s.total_bytes(), Bytes::new(10 * (200 + 4096)));
        assert_eq!(s.mean_added_latency(&c), SimDuration::ZERO);
    }

    #[test]
    fn group_commit_amortizes_forces() {
        let c = commits(10, 5, 200);
        let s = schedule(
            &c,
            FlushPolicy::GroupCommit {
                max_batch: 5,
                max_wait: SimDuration::from_millis(100),
            },
        );
        assert_eq!(s.force_count(), 2);
        assert_eq!(s.forces[0].commits, 5);
        // Bytes: 10 records + 2 headers vs 10 headers.
        assert_eq!(s.total_bytes(), Bytes::new(10 * 200 + 2 * 4096));
        assert!(s.mean_added_latency(&c) > SimDuration::ZERO);
    }

    #[test]
    fn deadline_bounds_latency() {
        // Sparse commits: the wait bound forces singleton batches.
        let c = commits(5, 1000, 100);
        let s = schedule(
            &c,
            FlushPolicy::GroupCommit {
                max_batch: 100,
                max_wait: SimDuration::from_millis(10),
            },
        );
        assert_eq!(s.force_count(), 5);
        for (ack, (arrive, _)) in s.ack_times.iter().zip(&c) {
            assert_eq!(
                ack.saturating_duration_since(*arrive),
                SimDuration::from_millis(10)
            );
        }
    }

    #[test]
    fn batch_fills_before_deadline() {
        // Burst of 8 commits at t=0; batch of 4 forces immediately on
        // the 4th commit, twice.
        let c: Vec<_> = (0..8).map(|_| (at(0), Bytes::new(100))).collect();
        let s = schedule(
            &c,
            FlushPolicy::GroupCommit {
                max_batch: 4,
                max_wait: SimDuration::from_secs(1),
            },
        );
        assert_eq!(s.force_count(), 2);
        assert!(s.forces.iter().all(|f| f.commits == 4 && f.at == at(0)));
    }

    #[test]
    fn acks_cover_every_commit_exactly_once() {
        let c = commits(137, 3, 50);
        let s = schedule(
            &c,
            FlushPolicy::GroupCommit {
                max_batch: 10,
                max_wait: SimDuration::from_millis(20),
            },
        );
        assert_eq!(s.ack_times.len(), c.len());
        let covered: u32 = s.forces.iter().map(|f| f.commits).sum();
        assert_eq!(covered as usize, c.len());
        // Acks never precede arrivals.
        for (ack, (arrive, _)) in s.ack_times.iter().zip(&c) {
            assert!(ack >= arrive);
        }
        // Forces are time-ordered.
        assert!(s.forces.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn empty_stream() {
        let s = schedule(&[], FlushPolicy::PerCommit);
        assert_eq!(s.force_count(), 0);
        assert_eq!(s.total_bytes(), Bytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unsorted_rejected() {
        let c = vec![(at(5), Bytes::new(1)), (at(1), Bytes::new(1))];
        let _ = schedule(&c, FlushPolicy::PerCommit);
    }
}
