//! Pages: the unit of IO, buffering, and energy accounting.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default page size (64 KiB — large pages suit scan-heavy DSS work).
pub const PAGE_SIZE: usize = 64 * 1024;

/// Identity of a page: a file (table/partition) and an index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId {
    /// Owning file id.
    pub file: u32,
    /// Page index within the file.
    pub index: u32,
}

impl PageId {
    /// A page id.
    pub const fn new(file: u32, index: u32) -> Self {
        PageId { file, index }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.index)
    }
}

/// An immutable page image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// The page's identity.
    pub id: PageId,
    /// The page's bytes (cheaply cloneable).
    pub data: Bytes,
}

impl Page {
    /// Wrap raw bytes as a page.
    pub fn new(id: PageId, data: impl Into<Bytes>) -> Self {
        Page {
            id,
            data: data.into(),
        }
    }

    /// The page's size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the page holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_ordering_is_file_major() {
        let a = PageId::new(0, 999);
        let b = PageId::new(1, 0);
        assert!(a < b);
        assert_eq!(format!("{}", PageId::new(3, 14)), "3:14");
    }

    #[test]
    fn page_wraps_bytes_cheaply() {
        let p = Page::new(PageId::new(0, 0), vec![7u8; 128]);
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(p.len(), 128);
        assert!(!p.is_empty());
        assert!(Page::new(PageId::new(0, 1), Vec::new()).is_empty());
    }
}
