//! Dictionary encoding: distinct values in first-appearance order, codes
//! bit-packed at the minimal width.
//!
//! Layout: `[count: u32][dict_len: u32][dict entries: i64…][codes:
//! bitpacked u32 block]`. Codes reuse the [`super::bitpack`] format by
//! packing them as an i64 column, which keeps one packer implementation.

use super::varint::{read_i64, read_u32, write_i64, write_u32};
use super::{bitpack, Encoding};
use crate::error::StorageError;
use std::collections::HashMap; // grail-lint: allow(hash-order, per-value lookups only; dict order is first-appearance)

/// Encode `values` with a dictionary.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut dict: Vec<i64> = Vec::new();
    let mut codes: Vec<i64> = Vec::with_capacity(values.len());
    // grail-lint: allow(hash-order, lookup-only code assignment; emitted dict follows input order)
    let mut index: HashMap<i64, u32> = HashMap::new();
    for v in values {
        let code = *index.entry(*v).or_insert_with(|| {
            dict.push(*v);
            (dict.len() - 1) as u32
        });
        codes.push(code as i64);
    }
    let mut out = Vec::new();
    write_u32(&mut out, values.len() as u32);
    write_u32(&mut out, dict.len() as u32);
    for d in &dict {
        write_i64(&mut out, *d);
    }
    let packed = bitpack::encode(&codes);
    out.extend_from_slice(&packed);
    out
}

/// Decode dictionary-encoded `bytes`.
pub fn decode(bytes: &[u8]) -> Result<Vec<i64>, StorageError> {
    let mut pos = 0;
    let count = read_u32(bytes, &mut pos)? as usize;
    let dict_len = read_u32(bytes, &mut pos)? as usize;
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict.push(read_i64(bytes, &mut pos)?);
    }
    let codes = bitpack::decode(&bytes[pos..])?;
    if codes.len() != count {
        return Err(StorageError::CorruptSegment("dict code count mismatch"));
    }
    let mut out = Vec::with_capacity(count);
    for c in codes {
        let idx =
            usize::try_from(c).map_err(|_| StorageError::CorruptSegment("dict negative code"))?;
        out.push(
            *dict
                .get(idx)
                .ok_or(StorageError::CorruptSegment("dict code out of range"))?,
        );
    }
    Ok(out)
}

/// The encoding this module implements (handy for tables of codecs).
pub const ENCODING: Encoding = Encoding::Dict;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_low_cardinality() {
        let statuses = [0i64, 1, 2, 3, 4]; // 'F','O','P'… as codes
        let vals: Vec<i64> = (0..100_000).map(|i| statuses[i % 5]).collect();
        let enc = encode(&vals);
        // 3-bit codes: ~37.5 KB vs 800 KB plain.
        assert!(enc.len() < 50_000, "{}", enc.len());
        assert_eq!(decode(&enc).unwrap(), vals);
    }

    #[test]
    fn dictionary_preserves_first_appearance_order() {
        let vals = vec![9i64, 9, -2, 9, 7, -2];
        let enc = encode(&vals);
        assert_eq!(decode(&enc).unwrap(), vals);
    }

    #[test]
    fn all_distinct_still_correct() {
        let vals: Vec<i64> = (0..1000).map(|i| i * 1_000_000_007).collect();
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn extremes_and_empty() {
        let vals = vec![i64::MIN, i64::MAX, 0];
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn corrupt_code_rejected() {
        // Hand-build: 1 value, dict of 1 entry, but code points past it.
        let mut bad = Vec::new();
        write_u32(&mut bad, 1);
        write_u32(&mut bad, 1);
        write_i64(&mut bad, 42);
        bad.extend_from_slice(&bitpack::encode(&[5i64]));
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn count_mismatch_rejected() {
        let mut bad = Vec::new();
        write_u32(&mut bad, 3);
        write_u32(&mut bad, 1);
        write_i64(&mut bad, 42);
        bad.extend_from_slice(&bitpack::encode(&[0i64])); // only one code
        assert!(decode(&bad).is_err());
    }
}
