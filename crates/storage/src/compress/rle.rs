//! Run-length encoding: `(value, run)` pairs, both varint-coded.
//!
//! The natural codec for sorted or low-churn columns (order status,
//! dates loaded in batches) and the cheapest to decode — which matters
//! once decode CPU is a power cost (Sec. 4.1).

use super::varint::{read_u32, read_varint, unzigzag, write_u32, write_varint, zigzag};
use crate::error::StorageError;

/// Encode `values` as RLE.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + values.len() / 4);
    write_u32(&mut out, values.len() as u32);
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut run = 1u64;
        while i + (run as usize) < values.len() && values[i + run as usize] == v {
            run += 1;
        }
        write_varint(&mut out, zigzag(v));
        write_varint(&mut out, run);
        i += run as usize;
    }
    out
}

/// Decode RLE `bytes`.
pub fn decode(bytes: &[u8]) -> Result<Vec<i64>, StorageError> {
    let mut pos = 0;
    let count = read_u32(bytes, &mut pos)? as usize;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let v = unzigzag(read_varint(bytes, &mut pos)?);
        let run = read_varint(bytes, &mut pos)? as usize;
        if run == 0 || out.len() + run > count {
            return Err(StorageError::CorruptSegment("rle run overflows count"));
        }
        out.extend(std::iter::repeat_n(v, run));
    }
    if pos != bytes.len() {
        return Err(StorageError::CorruptSegment("rle trailing bytes"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_runs() {
        let vals: Vec<i64> = (0..1000).map(|i| i / 100).collect();
        let enc = encode(&vals);
        assert!(enc.len() < 100, "10 runs should encode tiny: {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), vals);
    }

    #[test]
    fn round_trip_no_runs() {
        let vals: Vec<i64> = (0..100).map(|i| i * 7 - 350).collect();
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn round_trip_negative_and_extremes() {
        let vals = vec![i64::MIN, i64::MIN, -1, -1, -1, i64::MAX];
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn empty() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let mut enc = encode(&[1, 1, 1, 2, 2]);
        enc.push(0); // trailing garbage
        assert!(decode(&enc).is_err());
        assert!(decode(&[1, 0, 0]).is_err()); // truncated header
                                              // Run overflowing declared count.
        let mut bad = Vec::new();
        write_u32(&mut bad, 2);
        write_varint(&mut bad, zigzag(5));
        write_varint(&mut bad, 100);
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn compression_ratio_on_runs() {
        let vals: Vec<i64> = (0..100_000).map(|i| i / 10_000).collect();
        let enc = encode(&vals);
        let ratio = (vals.len() * 8) as f64 / enc.len() as f64;
        assert!(ratio > 1000.0, "ratio {ratio}");
    }
}
