//! LEB128 varints and zigzag mapping, shared by the integer codecs.

use crate::error::StorageError;

/// Map a signed value to an unsigned one with small magnitudes staying
/// small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Append `v` as a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint starting at `*pos`, advancing it.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, StorageError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or(StorageError::CorruptSegment("varint truncated"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(StorageError::CorruptSegment("varint too long"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Append a `u32` little-endian.
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a `u32` little-endian at `*pos`, advancing it.
pub fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, StorageError> {
    let end = *pos + 4;
    let slice = bytes
        .get(*pos..end)
        .ok_or(StorageError::CorruptSegment("u32 truncated"))?;
    *pos = end;
    Ok(u32::from_le_bytes(slice.try_into().expect("len 4")))
}

/// Append an `i64` little-endian.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read an `i64` little-endian at `*pos`, advancing it.
pub fn read_i64(bytes: &[u8], pos: &mut usize) -> Result<i64, StorageError> {
    let end = *pos + 8;
    let slice = bytes
        .get(*pos..end)
        .ok_or(StorageError::CorruptSegment("i64 truncated"))?;
    *pos = end;
    Ok(i64::from_le_bytes(slice.try_into().expect("len 8")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trip_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 42, -1000] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX, 300];
        for v in values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for v in values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncation_detected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn varint_overlong_detected() {
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn fixed_width_round_trips() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 77);
        write_i64(&mut buf, -12345);
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos).unwrap(), 77);
        assert_eq!(read_i64(&buf, &mut pos).unwrap(), -12345);
        assert!(read_u32(&buf, &mut pos).is_err());
    }
}
