//! A byte-level LZ77 codec for row pages and string payloads.
//!
//! Greedy matching against a 64 KiB window via a 4-byte-prefix hash
//! table. Token stream:
//!
//! * `0x00..=0x7F` — literal run of `flag + 1` bytes follows.
//! * `0x80..=0xFF` — match of length `(flag - 0x80) + MIN_MATCH`,
//!   followed by a little-endian `u16` back-distance (1-based).
//!
//! Deliberately simple — the point is a *real* CPU-for-bytes trade with
//! measurable cost, not a state-of-the-art ratio.

use crate::error::StorageError;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 0x7F + MIN_MATCH;
const MAX_LITERAL_RUN: usize = 0x80;
const WINDOW: usize = u16::MAX as usize;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut literal_start = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut s = from;
        while s < to {
            let n = (to - s).min(MAX_LITERAL_RUN);
            out.push((n - 1) as u8);
            out.extend_from_slice(&input[s..s + n]);
            s += n;
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = table[h];
        table[h] = i;
        let mut matched = 0usize;
        if candidate != usize::MAX && i - candidate <= WINDOW {
            let max_len = (input.len() - i).min(MAX_MATCH);
            while matched < max_len && input[candidate + matched] == input[i + matched] {
                matched += 1;
            }
        }
        if matched >= MIN_MATCH {
            flush_literals(&mut out, literal_start, i, input);
            out.push(0x80 + (matched - MIN_MATCH) as u8);
            let dist = (i - candidate) as u16;
            out.extend_from_slice(&dist.to_le_bytes());
            i += matched;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, input.len(), input);
    out
}

/// Decompress `input`.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, StorageError> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut pos = 0usize;
    while pos < input.len() {
        let flag = input[pos];
        pos += 1;
        if flag < 0x80 {
            let n = flag as usize + 1;
            let lits = input
                .get(pos..pos + n)
                .ok_or(StorageError::CorruptSegment("lzb literal truncated"))?;
            out.extend_from_slice(lits);
            pos += n;
        } else {
            let len = (flag - 0x80) as usize + MIN_MATCH;
            let d = input
                .get(pos..pos + 2)
                .ok_or(StorageError::CorruptSegment("lzb distance truncated"))?;
            pos += 2;
            let dist = u16::from_le_bytes([d[0], d[1]]) as usize;
            if dist == 0 || dist > out.len() {
                return Err(StorageError::CorruptSegment("lzb bad distance"));
            }
            let start = out.len() - dist;
            // Overlapping copies are legal (repeats); copy byte-wise.
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_repetitive() {
        let input: Vec<u8> = b"energyenergyenergyenergyenergy!".to_vec();
        let c = compress(&input);
        assert!(c.len() < input.len(), "{} vs {}", c.len(), input.len());
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn round_trip_incompressible() {
        // Pseudo-random bytes: must round-trip, may expand slightly.
        let input: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
        assert!(c.len() <= input.len() + input.len() / 64 + 16);
    }

    #[test]
    fn round_trip_overlapping_repeat() {
        // "aaaa…" forces matches whose source overlaps the copy target.
        let input = vec![b'a'; 5000];
        let c = compress(&input);
        // MAX_MATCH caps runs at 131 bytes: ~40 tokens of 3 bytes.
        assert!(c.len() < 200, "{}", c.len());
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn round_trip_page_like_payload() {
        // Fixed-width records with shared prefixes, like a slotted page.
        let mut input = Vec::new();
        for i in 0..500u32 {
            input.extend_from_slice(b"ORDERKEY=");
            input.extend_from_slice(&i.to_le_bytes());
            input.extend_from_slice(b";STATUS=OPEN;PRIO=1-URGENT;");
        }
        let c = compress(&input);
        assert!(c.len() * 3 < input.len(), "{} vs {}", c.len(), input.len());
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(decompress(&compress(&[])).unwrap(), Vec::<u8>::new());
        assert_eq!(decompress(&compress(b"abc")).unwrap(), b"abc".to_vec());
    }

    #[test]
    fn corrupt_streams_rejected() {
        // Literal run claims more bytes than remain.
        assert!(decompress(&[0x10, b'a']).is_err());
        // Match with zero distance.
        assert!(decompress(&[0x00, b'a', 0x80, 0x00, 0x00]).is_err());
        // Match distance beyond output.
        assert!(decompress(&[0x00, b'a', 0x80, 0xFF, 0x00]).is_err());
        // Truncated distance.
        assert!(decompress(&[0x00, b'a', 0x80, 0x01]).is_err());
    }
}
