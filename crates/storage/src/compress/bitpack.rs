//! Frame-of-reference bit-packing: subtract the column minimum, pack the
//! residuals at the minimal fixed width.
//!
//! Layout: `[count: u32][min: i64][width: u8][packed bits…]`, bits filled
//! little-endian within a `u64` carry.

use super::varint::{read_i64, read_u32, write_i64, write_u32};
use crate::error::StorageError;

/// Bits needed for the residual range of `values` (0 for constant
/// columns).
fn width_for(values: &[i64]) -> (i64, u8) {
    let min = values.iter().copied().min().unwrap_or(0);
    let max = values.iter().copied().max().unwrap_or(0);
    let range = (max as i128 - min as i128) as u128;
    let width = (128 - range.leading_zeros()) as u8;
    (min, width.min(64))
}

/// Encode `values` with frame-of-reference bit-packing.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let (min, width) = width_for(values);
    let mut out = Vec::with_capacity(16 + (values.len() * width as usize).div_ceil(8));
    write_u32(&mut out, values.len() as u32);
    write_i64(&mut out, min);
    out.push(width);
    if width == 0 {
        return out;
    }
    let mut carry: u64 = 0;
    let mut bits: u32 = 0;
    for v in values {
        let residual = (*v as i128 - min as i128) as u128;
        let mut rem_bits = width as u32;
        let mut rem = residual as u64; // width ≤ 64 ⇒ residual fits u64
        while rem_bits > 0 {
            let take = (64 - bits).min(rem_bits);
            carry |= (rem & mask(take)) << bits;
            bits += take;
            rem = if take == 64 { 0 } else { rem >> take };
            rem_bits -= take;
            if bits == 64 {
                out.extend_from_slice(&carry.to_le_bytes());
                carry = 0;
                bits = 0;
            }
        }
    }
    if bits > 0 {
        out.extend_from_slice(&carry.to_le_bytes());
    }
    out
}

/// Decode bit-packed `bytes`.
pub fn decode(bytes: &[u8]) -> Result<Vec<i64>, StorageError> {
    let mut pos = 0;
    let count = read_u32(bytes, &mut pos)? as usize;
    let min = read_i64(bytes, &mut pos)?;
    let width = *bytes
        .get(pos)
        .ok_or(StorageError::CorruptSegment("bitpack width truncated"))? as u32;
    pos += 1;
    if width == 0 {
        return Ok(vec![min; count]);
    }
    if width > 64 {
        return Err(StorageError::CorruptSegment("bitpack width > 64"));
    }
    let words: Vec<u64> = bytes[pos..]
        .chunks(8)
        .map(|c| {
            let mut b = [0u8; 8];
            b[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(b)
        })
        .collect();
    let needed_bits = count as u64 * width as u64;
    if (words.len() as u64) * 64 < needed_bits {
        return Err(StorageError::CorruptSegment("bitpack data truncated"));
    }
    let mut out = Vec::with_capacity(count);
    let mut word_idx = 0usize;
    let mut bit = 0u32;
    for _ in 0..count {
        let mut v: u64 = 0;
        let mut got = 0u32;
        while got < width {
            let take = (64 - bit).min(width - got);
            let chunk = (words[word_idx] >> bit) & mask(take);
            v |= chunk << got;
            got += take;
            bit += take;
            if bit == 64 {
                bit = 0;
                word_idx += 1;
            }
        }
        out.push((min as i128 + v as i128) as i64);
    }
    Ok(out)
}

#[inline]
fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small_range() {
        let vals: Vec<i64> = (0..10_000).map(|i| 100 + (i * 37) % 250).collect();
        let enc = encode(&vals);
        // 8-bit residuals: ~10 KB vs 80 KB plain.
        assert!(enc.len() < 11_000, "{}", enc.len());
        assert_eq!(decode(&enc).unwrap(), vals);
    }

    #[test]
    fn constant_column_is_header_only() {
        let vals = vec![42i64; 100_000];
        let enc = encode(&vals);
        assert_eq!(enc.len(), 13);
        assert_eq!(decode(&enc).unwrap(), vals);
    }

    #[test]
    fn round_trip_negative_frame() {
        let vals: Vec<i64> = (-500..500).collect();
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn round_trip_full_width() {
        let vals = vec![i64::MIN, i64::MAX, 0, -1, 1];
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn round_trip_awkward_widths() {
        // Exercise widths that straddle word boundaries (e.g. 33 bits).
        let vals: Vec<i64> = (0..1000).map(|i| (i as i64) * 8_589_934_592).collect();
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn empty() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn truncated_rejected() {
        let vals: Vec<i64> = (0..100).collect();
        let mut enc = encode(&vals);
        enc.truncate(enc.len() - 8);
        assert!(decode(&enc).is_err());
        assert!(decode(&[0, 0]).is_err());
    }
}
