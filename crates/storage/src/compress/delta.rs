//! Delta encoding: first value verbatim, then zigzag-varint deltas.
//!
//! The codec for keys and timestamps — near-sorted columns whose deltas
//! are tiny even when the absolute values are wide.

use super::varint::{
    read_i64, read_u32, read_varint, unzigzag, write_i64, write_u32, write_varint, zigzag,
};
use crate::error::StorageError;

/// Encode `values` as deltas.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + values.len() * 2);
    write_u32(&mut out, values.len() as u32);
    if values.is_empty() {
        return out;
    }
    write_i64(&mut out, values[0]);
    let mut prev = values[0];
    for v in &values[1..] {
        write_varint(&mut out, zigzag(v.wrapping_sub(prev)));
        prev = *v;
    }
    out
}

/// Decode delta-encoded `bytes`.
pub fn decode(bytes: &[u8]) -> Result<Vec<i64>, StorageError> {
    let mut pos = 0;
    let count = read_u32(bytes, &mut pos)? as usize;
    if count == 0 {
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity(count);
    let mut prev = read_i64(bytes, &mut pos)?;
    out.push(prev);
    for _ in 1..count {
        let d = unzigzag(read_varint(bytes, &mut pos)?);
        prev = prev.wrapping_add(d);
        out.push(prev);
    }
    if pos != bytes.len() {
        return Err(StorageError::CorruptSegment("delta trailing bytes"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_sorted_keys() {
        let vals: Vec<i64> = (0..100_000).map(|i| 1_000_000_000_000 + i * 4).collect();
        let enc = encode(&vals);
        // Deltas of 4 cost one byte each.
        assert!(enc.len() < 110_000, "{}", enc.len());
        assert_eq!(decode(&enc).unwrap(), vals);
    }

    #[test]
    fn round_trip_unsorted() {
        let vals: Vec<i64> = (0..1000)
            .map(|i| ((i * 2_654_435_761u64) as i64).wrapping_mul(31))
            .collect();
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn wrapping_extremes() {
        let vals = vec![i64::MAX, i64::MIN, 0, i64::MIN, i64::MAX];
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<i64>::new());
        assert_eq!(decode(&encode(&[7])).unwrap(), vec![7]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = encode(&[1, 2, 3]);
        enc.push(0);
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let enc = encode(&[1, 2, 3, 4, 5]);
        assert!(decode(&enc[..enc.len() - 1]).is_err());
    }
}
