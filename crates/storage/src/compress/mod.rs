//! Compression codecs.
//!
//! Fig. 2's entire argument is one compression decision: a compressed
//! table trades ~1.9 s of extra CPU for ~4.5 s of saved disk time and
//! *loses* on energy because the CPU is 18× the power of the flash
//! drives. These codecs are real implementations — every encode is
//! exercised by a decode in tests and property tests — so the CPU work
//! the executor charges for them corresponds to work that actually
//! happens.
//!
//! Integer codecs ([`rle`], [`dict`], [`bitpack`], [`delta`]) operate on
//! `&[i64]` columns; [`lzb`] is a byte-level LZ for row pages and
//! incompressible-ish payloads.

pub mod bitpack;
pub mod delta;
pub mod dict;
pub mod lzb;
pub mod rle;
pub mod varint;

use crate::error::StorageError;
use serde::{Deserialize, Serialize};

/// Available integer-column encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Encoding {
    /// Raw little-endian i64s.
    Plain,
    /// Run-length encoding.
    Rle,
    /// Dictionary encoding with bit-packed codes.
    Dict,
    /// Frame-of-reference bit-packing.
    BitPack,
    /// Delta + zigzag + varint.
    Delta,
}

impl Encoding {
    /// All encodings, for exhaustive tests and sweeps.
    pub const ALL: [Encoding; 5] = [
        Encoding::Plain,
        Encoding::Rle,
        Encoding::Dict,
        Encoding::BitPack,
        Encoding::Delta,
    ];

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Plain => "plain",
            Encoding::Rle => "rle",
            Encoding::Dict => "dict",
            Encoding::BitPack => "bitpack",
            Encoding::Delta => "delta",
        }
    }
}

/// Encode `values` under `enc`.
pub fn encode(values: &[i64], enc: Encoding) -> Vec<u8> {
    match enc {
        Encoding::Plain => plain_encode(values),
        Encoding::Rle => rle::encode(values),
        Encoding::Dict => dict::encode(values),
        Encoding::BitPack => bitpack::encode(values),
        Encoding::Delta => delta::encode(values),
    }
}

/// Decode `bytes` under `enc`.
pub fn decode(bytes: &[u8], enc: Encoding) -> Result<Vec<i64>, StorageError> {
    match enc {
        Encoding::Plain => plain_decode(bytes),
        Encoding::Rle => rle::decode(bytes),
        Encoding::Dict => dict::decode(bytes),
        Encoding::BitPack => bitpack::decode(bytes),
        Encoding::Delta => delta::decode(bytes),
    }
}

fn plain_encode(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn plain_decode(bytes: &[u8]) -> Result<Vec<i64>, StorageError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(StorageError::CorruptSegment(
            "plain length not multiple of 8",
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect())
}

/// Pick a good encoding for `values` by inspecting run structure,
/// cardinality, and range — the codec-selection step of a column store's
/// physical designer.
pub fn choose_encoding(values: &[i64]) -> Encoding {
    if values.is_empty() {
        return Encoding::Plain;
    }
    // Sample-based statistics (cap work on huge columns).
    let n = values.len();
    let mut runs = 1usize;
    for w in values.windows(2) {
        if w[0] != w[1] {
            runs += 1;
        }
    }
    let avg_run = n as f64 / runs as f64;
    if avg_run >= 4.0 {
        return Encoding::Rle;
    }
    // grail-lint: allow(hash-order, cardinality probe; only .len() is read)
    let mut distinct = std::collections::HashSet::new();
    for v in values.iter().take(65_536) {
        distinct.insert(*v);
        if distinct.len() > 4096 {
            break;
        }
    }
    if distinct.len() <= 4096 && (distinct.len() as f64) < n as f64 / 8.0 {
        return Encoding::Dict;
    }
    let min = *values.iter().min().expect("non-empty");
    let max = *values.iter().max().expect("non-empty");
    if let Some(range) = max.checked_sub(min) {
        let width = 64 - (range as u64).leading_zeros();
        if width <= 32 {
            return Encoding::BitPack;
        }
    }
    // Sorted-ish data deltas well.
    let mut sorted_pairs = 0usize;
    for w in values.windows(2).take(4096) {
        if w[1] >= w[0] {
            sorted_pairs += 1;
        }
    }
    if sorted_pairs as f64 > 0.9 * values.windows(2).take(4096).count().max(1) as f64 {
        return Encoding::Delta;
    }
    Encoding::Plain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_round_trip() {
        let vals = vec![0i64, 1, -1, i64::MAX, i64::MIN, 42];
        let enc = encode(&vals, Encoding::Plain);
        assert_eq!(enc.len(), vals.len() * 8);
        assert_eq!(decode(&enc, Encoding::Plain).unwrap(), vals);
    }

    #[test]
    fn plain_rejects_ragged_input() {
        assert!(plain_decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn all_encodings_round_trip_smoke() {
        let vals: Vec<i64> = (0..1000).map(|i| (i % 7) * 3).collect();
        for enc in Encoding::ALL {
            let bytes = encode(&vals, enc);
            let back = decode(&bytes, enc).unwrap_or_else(|e| panic!("{}: {e}", enc.name()));
            assert_eq!(back, vals, "{}", enc.name());
        }
    }

    #[test]
    fn all_encodings_handle_empty() {
        let vals: Vec<i64> = Vec::new();
        for enc in Encoding::ALL {
            let bytes = encode(&vals, enc);
            assert_eq!(decode(&bytes, enc).unwrap(), vals, "{}", enc.name());
        }
    }

    #[test]
    fn chooser_picks_rle_for_runs() {
        let vals: Vec<i64> = (0..1000).map(|i| i / 100).collect();
        assert_eq!(choose_encoding(&vals), Encoding::Rle);
    }

    #[test]
    fn chooser_picks_dict_for_low_cardinality() {
        let vals: Vec<i64> = (0..10_000).map(|i| [10, 99, -5][i % 3]).collect();
        assert_eq!(choose_encoding(&vals), Encoding::Dict);
    }

    #[test]
    fn chooser_picks_bitpack_for_small_range() {
        // High cardinality, alternating (no runs), range < 2^32.
        let vals: Vec<i64> = (0..100_000)
            .map(|i| ((i * 2_654_435_761u64) % 1_000_000) as i64)
            .collect();
        assert_eq!(choose_encoding(&vals), Encoding::BitPack);
    }

    #[test]
    fn chooser_picks_delta_for_sorted_wide_values() {
        let vals: Vec<i64> = (0..10_000)
            .map(|i| i as i64 * 10_000_000_000 + (i as i64 % 3))
            .collect();
        assert_eq!(choose_encoding(&vals), Encoding::Delta);
    }

    #[test]
    fn chooser_handles_empty() {
        assert_eq!(choose_encoding(&[]), Encoding::Plain);
    }

    #[test]
    fn chosen_encoding_actually_compresses() {
        // For each chooser-steered shape, the chosen codec beats Plain.
        let shapes: Vec<Vec<i64>> = vec![
            (0..10_000).map(|i| i / 500).collect(),
            (0..10_000).map(|i| [7, 8][i % 2]).collect(),
            (0..10_000).map(|i| (i as i64 * 37) % 50_000).collect(),
        ];
        for vals in shapes {
            let enc = choose_encoding(&vals);
            let chosen = encode(&vals, enc).len();
            let plain = encode(&vals, Encoding::Plain).len();
            assert!(
                chosen < plain,
                "{} produced {chosen} >= plain {plain}",
                enc.name()
            );
        }
    }
}
