//! A static B+tree index: the access path transactional workloads live
//! on.
//!
//! Sec. 5.3 claims "SSDs are better suited for transactional
//! applications rather than warehousing": OLTP is index descents and
//! point pages — random IO that costs a rotating disk a seek per level
//! and a flash device almost nothing. This index is array-based
//! (levels of separator keys over a sorted leaf level), which is how a
//! bulk-loaded read-optimized B+tree lays out anyway, and it reports
//! exactly how many page touches an operation costs so the simulator
//! can charge them.

use crate::page::PAGE_SIZE;
use serde::Serialize;

/// Entries per node: 64 KiB pages of (key, child/row) pairs.
pub const FANOUT: usize = PAGE_SIZE / 16;

/// A static B+tree over a sorted key column; values are the key's row
/// position.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BTreeIndex {
    /// Sorted leaf keys.
    leaves: Vec<i64>,
    /// Inner levels, root-last. `levels[0]` separates leaf pages,
    /// `levels[k]` separates `levels[k-1]` pages.
    levels: Vec<Vec<i64>>,
}

impl BTreeIndex {
    /// Bulk-load from a **sorted** key column (duplicates allowed).
    ///
    /// # Panics
    /// Panics if `keys` is not sorted ascending.
    pub fn build(keys: Vec<i64>) -> Self {
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "bulk load requires sorted keys"
        );
        let mut levels = Vec::new();
        let mut width = keys.len().div_ceil(FANOUT);
        let mut below: Vec<i64> = keys
            .chunks(FANOUT)
            .map(|c| *c.first().expect("non-empty chunk"))
            .collect();
        while width > 1 {
            levels.push(below.clone());
            width = below.len().div_ceil(FANOUT);
            below = below
                .chunks(FANOUT)
                .map(|c| *c.first().expect("non-empty chunk"))
                .collect();
        }
        if !keys.is_empty() && levels.is_empty() {
            // Single-leaf-page trees still have a (trivial) root level.
            levels.push(below);
        }
        BTreeIndex {
            leaves: keys,
            levels,
        }
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Tree height in *page touches per point lookup* (inner levels +
    /// one leaf page). Zero for an empty index.
    pub fn height(&self) -> u32 {
        if self.leaves.is_empty() {
            0
        } else {
            self.levels.len() as u32 + 1
        }
    }

    /// Find the first row whose key equals `key`.
    pub fn lookup(&self, key: i64) -> Option<usize> {
        let pos = self.leaves.partition_point(|k| *k < key);
        (pos < self.leaves.len() && self.leaves[pos] == key).then_some(pos)
    }

    /// Row range `[start, end)` whose keys fall in `[lo, hi]`.
    pub fn range(&self, lo: i64, hi: i64) -> (usize, usize) {
        let start = self.leaves.partition_point(|k| *k < lo);
        let end = self.leaves.partition_point(|k| *k <= hi);
        (start, end.max(start))
    }

    /// Page touches for one point lookup (an index descent).
    pub fn point_pages(&self) -> u32 {
        self.height()
    }

    /// Page touches for a range scan returning `rows` rows: one descent
    /// plus the extra leaf pages walked.
    pub fn range_pages(&self, rows: usize) -> u32 {
        if self.is_empty() {
            return 0;
        }
        self.height() + (rows.saturating_sub(1) / FANOUT) as u32
    }

    /// Total index footprint in pages (leaves + inner levels).
    pub fn total_pages(&self) -> u64 {
        let leaf_pages = self.leaves.len().div_ceil(FANOUT) as u64;
        let inner: u64 = self
            .levels
            .iter()
            .map(|l| l.len().div_ceil(FANOUT) as u64)
            .sum();
        leaf_pages + inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_agrees_with_linear_search() {
        let keys: Vec<i64> = (0..100_000).map(|i| i * 3).collect();
        let idx = BTreeIndex::build(keys.clone());
        for probe in [0i64, 3, 299_997, 150_000, 1, 299_998, -5] {
            let expect = keys.iter().position(|k| *k == probe);
            assert_eq!(idx.lookup(probe), expect, "probe {probe}");
        }
    }

    #[test]
    fn duplicates_find_first() {
        let keys = vec![1, 5, 5, 5, 9];
        let idx = BTreeIndex::build(keys);
        assert_eq!(idx.lookup(5), Some(1));
        assert_eq!(idx.range(5, 5), (1, 4));
    }

    #[test]
    fn range_semantics() {
        let keys: Vec<i64> = (0..1000).map(|i| i * 2).collect(); // evens
        let idx = BTreeIndex::build(keys);
        let (s, e) = idx.range(10, 20);
        assert_eq!((s, e), (5, 11)); // 10,12,…,20
        let (s, e) = idx.range(11, 11); // between keys
        assert_eq!(s, e);
        let (s, e) = idx.range(-100, 100_000);
        assert_eq!((s, e), (0, 1000));
        let (s, e) = idx.range(50, 10); // inverted
        assert_eq!(s, e);
    }

    #[test]
    fn height_is_logarithmic() {
        // FANOUT = 4096: one page up to 4096 keys, two levels to ~16M.
        assert_eq!(BTreeIndex::build((0..100).collect()).height(), 2);
        assert_eq!(BTreeIndex::build((0..FANOUT as i64).collect()).height(), 2);
        let big = BTreeIndex::build((0..(FANOUT as i64 * 10)).collect());
        assert_eq!(big.height(), 2);
        // 150 M keys (Fig. 2's ORDERS): 3 page touches per lookup.
        // Build a synthetic height check without allocating 150 M:
        // leaves 150e6 → leaf pages 36622 → level-1 entries 36622 →
        // level-1 pages 9 → level-2 (root) 1 ⇒ height 3.
        let leaf_pages = 150_000_000usize.div_ceil(FANOUT);
        let l1_pages = leaf_pages.div_ceil(FANOUT);
        assert_eq!(l1_pages, 9usize.div_ceil(1)); // sanity of arithmetic
        assert!(leaf_pages > 1 && l1_pages > 1);
    }

    #[test]
    fn page_accounting() {
        let idx = BTreeIndex::build((0..(FANOUT as i64 * 3)).collect());
        assert_eq!(idx.point_pages(), 2);
        // A range of 2 pages' worth of rows touches one extra leaf.
        assert_eq!(idx.range_pages(FANOUT + 1), 3);
        assert_eq!(idx.range_pages(1), 2);
        assert_eq!(idx.total_pages(), 3 + 1);
    }

    #[test]
    fn empty_and_single() {
        let empty = BTreeIndex::build(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.height(), 0);
        assert_eq!(empty.lookup(5), None);
        assert_eq!(empty.range_pages(10), 0);
        let one = BTreeIndex::build(vec![7]);
        assert_eq!(one.height(), 2);
        assert_eq!(one.lookup(7), Some(0));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_rejected() {
        let _ = BTreeIndex::build(vec![3, 1, 2]);
    }
}
