//! Columnar segments: one column's values under one encoding.
//!
//! The storage unit of the Fig. 2 scanner (a "high-performance
//! column-oriented relational scanner", \[HLA+06\]): each projected column
//! is an independently encoded segment, so a 5-of-7-column projection
//! moves only those five columns' bytes.

use crate::compress::{self, Encoding};
use crate::error::StorageError;
use serde::{Deserialize, Serialize};

/// One encoded column segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnSegment {
    encoding: Encoding,
    rows: u32,
    data: Vec<u8>,
}

impl ColumnSegment {
    /// Encode `values` under `encoding`.
    pub fn encode(values: &[i64], encoding: Encoding) -> Self {
        ColumnSegment {
            encoding,
            rows: values.len() as u32,
            data: compress::encode(values, encoding),
        }
    }

    /// Encode `values` under the heuristically best encoding.
    pub fn encode_auto(values: &[i64]) -> Self {
        ColumnSegment::encode(values, compress::choose_encoding(values))
    }

    /// Decode the segment back to values.
    pub fn decode(&self) -> Result<Vec<i64>, StorageError> {
        let vals = compress::decode(&self.data, self.encoding)?;
        if vals.len() != self.rows as usize {
            return Err(StorageError::CorruptSegment("segment row count mismatch"));
        }
        Ok(vals)
    }

    /// The encoding in use.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Rows stored.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Encoded (on-device) size in bytes.
    pub fn compressed_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Uncompressed size in bytes (8 bytes per value).
    pub fn raw_bytes(&self) -> u64 {
        self.rows as u64 * 8
    }

    /// Compression ratio `raw / compressed` (1.0 for empty segments).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes() == 0 {
            1.0
        } else {
            self.raw_bytes() as f64 / self.compressed_bytes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_round_trip_all_encodings() {
        let vals: Vec<i64> = (0..5000).map(|i| (i % 100) * 3).collect();
        for enc in Encoding::ALL {
            let seg = ColumnSegment::encode(&vals, enc);
            assert_eq!(seg.rows(), 5000);
            assert_eq!(seg.decode().unwrap(), vals, "{}", enc.name());
        }
    }

    #[test]
    fn auto_encoding_compresses_structured_data() {
        let vals: Vec<i64> = (0..100_000).map(|i| i / 1000).collect();
        let seg = ColumnSegment::encode_auto(&vals);
        assert!(seg.ratio() > 10.0, "ratio {}", seg.ratio());
        assert_eq!(seg.decode().unwrap(), vals);
    }

    #[test]
    fn sizes_and_ratio() {
        let vals: Vec<i64> = (0..1000).collect();
        let plain = ColumnSegment::encode(&vals, Encoding::Plain);
        assert_eq!(plain.raw_bytes(), 8000);
        assert_eq!(plain.compressed_bytes(), 8000);
        assert!((plain.ratio() - 1.0).abs() < 1e-12);
        let packed = ColumnSegment::encode(&vals, Encoding::BitPack);
        assert!(packed.ratio() > 5.0);
    }

    #[test]
    fn empty_segment() {
        let seg = ColumnSegment::encode(&[], Encoding::Rle);
        assert_eq!(seg.rows(), 0);
        assert_eq!(seg.decode().unwrap(), Vec::<i64>::new());
        assert!((seg.ratio() - 0.0).abs() < 1.01); // defined, finite
    }

    #[test]
    fn tampered_segment_detected() {
        let vals: Vec<i64> = (0..100).collect();
        let mut seg = ColumnSegment::encode(&vals, Encoding::Delta);
        seg.rows = 99; // header/payload disagreement
        assert!(seg.decode().is_err());
    }
}
