//! Scan-volume math for physical layouts.
//!
//! The question Fig. 2 asks the storage layer: *how many bytes cross the
//! device for this projection, under this layout, with this compression?*
//! [`ScanVolume`] answers it for row and column layouts, which is the
//! input both the optimizer's IO cost model and the figure harness use.

use serde::{Deserialize, Serialize};

/// Physical layout of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TableLayout {
    /// N-ary row storage: scans read every column.
    Row,
    /// Column storage: scans read only projected columns.
    Columnar,
}

/// Per-column physical description: raw width and achieved compression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnPhys {
    /// Uncompressed width per value, bytes.
    pub raw_width: u32,
    /// Compression ratio (raw/compressed); 1.0 means uncompressed.
    pub ratio: f64,
}

impl ColumnPhys {
    /// An uncompressed column of `raw_width` bytes per value.
    pub fn plain(raw_width: u32) -> Self {
        ColumnPhys {
            raw_width,
            ratio: 1.0,
        }
    }

    /// Stored bytes per value.
    pub fn stored_width(&self) -> f64 {
        self.raw_width as f64 / self.ratio.max(1e-9)
    }
}

/// The scan volume calculator for one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanVolume {
    /// Row count.
    pub rows: u64,
    /// Every column's physical description, in schema order.
    pub columns: Vec<ColumnPhys>,
    /// The table's layout.
    pub layout: TableLayout,
}

impl ScanVolume {
    /// Bytes read off the device to scan the projection `projected`
    /// (column indices). Row layout always reads the full row width;
    /// columnar reads only the projected columns' stored bytes.
    pub fn scan_bytes(&self, projected: &[usize]) -> u64 {
        match self.layout {
            TableLayout::Row => {
                let row_width: f64 = self.columns.iter().map(|c| c.stored_width()).sum();
                (row_width * self.rows as f64).ceil() as u64
            }
            TableLayout::Columnar => {
                let width: f64 = projected
                    .iter()
                    .filter_map(|i| self.columns.get(*i))
                    .map(|c| c.stored_width())
                    .sum();
                (width * self.rows as f64).ceil() as u64
            }
        }
    }

    /// Bytes of *decoded* data the projection produces (what the CPU
    /// touches after decompression).
    pub fn decoded_bytes(&self, projected: &[usize]) -> u64 {
        let width: u64 = match self.layout {
            TableLayout::Row => self.columns.iter().map(|c| c.raw_width as u64).sum(),
            TableLayout::Columnar => projected
                .iter()
                .filter_map(|i| self.columns.get(*i))
                .map(|c| c.raw_width as u64)
                .sum(),
        };
        width * self.rows
    }

    /// The table's total stored footprint.
    pub fn footprint(&self) -> u64 {
        let width: f64 = self.columns.iter().map(|c| c.stored_width()).sum();
        (width * self.rows as f64).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ORDERS-like: 7 columns, 8 bytes each raw.
    fn orders(layout: TableLayout, ratio: f64) -> ScanVolume {
        ScanVolume {
            rows: 1000,
            columns: (0..7)
                .map(|_| ColumnPhys {
                    raw_width: 8,
                    ratio,
                })
                .collect(),
            layout,
        }
    }

    #[test]
    fn columnar_projection_reads_less() {
        let row = orders(TableLayout::Row, 1.0);
        let col = orders(TableLayout::Columnar, 1.0);
        let projected = [0, 1, 2, 3, 4]; // 5 of 7, as in Fig. 2
        assert_eq!(row.scan_bytes(&projected), 7 * 8 * 1000);
        assert_eq!(col.scan_bytes(&projected), 5 * 8 * 1000);
    }

    #[test]
    fn compression_shrinks_scan_not_decoded() {
        let col = orders(TableLayout::Columnar, 2.0);
        let projected = [0, 1, 2, 3, 4];
        assert_eq!(col.scan_bytes(&projected), 5 * 4 * 1000);
        assert_eq!(col.decoded_bytes(&projected), 5 * 8 * 1000);
    }

    #[test]
    fn row_layout_ignores_projection() {
        let row = orders(TableLayout::Row, 1.0);
        assert_eq!(row.scan_bytes(&[0]), row.scan_bytes(&[0, 1, 2, 3, 4, 5, 6]));
        // But decoded bytes still count the full row.
        assert_eq!(row.decoded_bytes(&[0]), 7 * 8 * 1000);
    }

    #[test]
    fn footprint_sums_all_columns() {
        let col = orders(TableLayout::Columnar, 2.0);
        assert_eq!(col.footprint(), 7 * 4 * 1000);
    }

    #[test]
    fn out_of_range_projection_ignored() {
        let col = orders(TableLayout::Columnar, 1.0);
        assert_eq!(col.scan_bytes(&[99]), 0);
    }
}
