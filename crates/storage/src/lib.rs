//! # grail-storage — storage formats for an energy-aware database
//!
//! Physical design is the paper's first lever (Sec. 5.1): "decisions on
//! how and where data is stored are expected to have a significant impact
//! on database energy use". This crate supplies the formats those
//! decisions choose between:
//!
//! * [`page`] / [`heap`] — slotted row pages (the classic layout).
//! * [`mod@column`] — columnar segments, the layout Fig. 2's scanner reads.
//! * [`compress`] — real, round-trip-tested codecs (RLE, dictionary,
//!   bit-packing, delta, and a byte-level LZ) whose CPU-for-bandwidth
//!   trade *is* Fig. 2's experiment.
//! * [`layout`] — projected-scan volume math for row vs column layouts.
//! * [`partition`] — repartitioning across disk subsets (Fig. 1's knob)
//!   and redundant read-optimized replicas (Sec. 5.1's energy use of
//!   extra capacity).
//! * [`prefetch`] — the burst prefetcher of \[PS04\]: trade buffer space
//!   for longer device idle periods.
//! * [`wal`] — write-ahead logging with a tunable group-commit batching
//!   factor (Sec. 5.2's "increase the batching factor … to avoid
//!   frequent commits on stable storage").
//! * [`btree`] — a static B+tree index with exact page-touch accounting,
//!   the access path behind Sec. 5.3's SSD-for-OLTP claim.
//!
//! The crate is deliberately independent of the simulator: it deals in
//! bytes and disk *slots* (plain indices); binding slots to simulated
//! devices happens in `grail-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod btree;
pub mod column;
pub mod compress;
pub mod error;
pub mod heap;
pub mod layout;
pub mod page;
pub mod partition;
pub mod prefetch;
pub mod wal;

pub use column::ColumnSegment;
pub use compress::Encoding;
pub use error::StorageError;
pub use page::{Page, PageId, PAGE_SIZE};
