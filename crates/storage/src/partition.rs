//! Partitioning across disk subsets, and redundant replicas.
//!
//! "The most effective means of varying power use in our system was by
//! repartitioning our database across fewer disks" — Fig. 1's knob.
//! Sec. 5.1 adds that "for read-mostly workloads, increasing redundancy
//! may improve energy efficiency": keep a narrow replica on few disks
//! for light load and a wide one for heavy load, and spin down the rest.
//!
//! Disks here are plain *slots* (`u32`); binding to simulated devices
//! happens upstream.

use crate::error::StorageError;
use serde::{Deserialize, Serialize};

/// How rows map to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionKind {
    /// Contiguous key ranges.
    Range,
    /// Hash of the key.
    Hash,
}

/// A partitioning of one table across disk slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partitioning {
    /// Mapping style.
    pub kind: PartitionKind,
    /// The disk slot of each partition (one partition per entry).
    pub slots: Vec<u32>,
    /// Total table bytes.
    pub table_bytes: u64,
}

impl Partitioning {
    /// Partition `table_bytes` across `disks` slots.
    pub fn even(kind: PartitionKind, disks: u32, table_bytes: u64) -> Result<Self, StorageError> {
        if disks == 0 {
            return Err(StorageError::EmptyPartitioning);
        }
        Ok(Partitioning {
            kind,
            slots: (0..disks).collect(),
            table_bytes,
        })
    }

    /// Number of partitions (= disks used).
    pub fn width(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Bytes stored on each disk slot: `(slot, bytes)`, remainder to the
    /// first.
    pub fn bytes_per_slot(&self) -> Vec<(u32, u64)> {
        let n = self.slots.len() as u64;
        let per = self.table_bytes / n;
        let rem = self.table_bytes - per * n;
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, if i == 0 { per + rem } else { per }))
            .collect()
    }

    /// The partition slot a key belongs to.
    pub fn slot_for_key(&self, key: i64) -> u32 {
        let n = self.slots.len() as u64;
        let idx = match self.kind {
            PartitionKind::Hash => (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n,
            PartitionKind::Range => {
                // Interpret key as position in a dense domain of
                // unknown bounds: fold into n by the low bits of the
                // key's magnitude scaled by partition count. Callers
                // with real bounds should use `slot_for_range_key`.
                (key.unsigned_abs()) % n
            }
        };
        self.slots[idx as usize]
    }

    /// The partition slot for a key within known bounds `[lo, hi]`.
    pub fn slot_for_range_key(&self, key: i64, lo: i64, hi: i64) -> u32 {
        let n = self.slots.len() as u128;
        if hi <= lo {
            return self.slots[0];
        }
        let offset = (key.clamp(lo, hi) as i128 - lo as i128) as u128;
        let span = (hi as i128 - lo as i128) as u128 + 1;
        let idx = (offset * n / span).min(n - 1);
        self.slots[idx as usize]
    }

    /// Cost (bytes moved) to repartition to `target`: bytes whose slot
    /// assignment changes, approximated at even spread. Repartitioning is
    /// exactly the "creating or maintaining different partitionings"
    /// overhead Fig. 1's discussion flags.
    pub fn repartition_bytes(&self, target: &Partitioning) -> u64 {
        if self.width() == target.width() && self.slots == target.slots {
            return 0;
        }
        // Hash repartitioning moves ~(1 - overlap/max) of data; even
        // approximation: fraction = 1 - min(w1,w2)/max(w1,w2) for growth/
        // shrink plus reshuffle of retained disks' excess. Use the
        // standard consistent-shuffle bound: moved = bytes × (1 - w_min/
        // w_max).
        let w1 = self.width() as u64;
        let w2 = target.width() as u64;
        let (min, max) = (w1.min(w2), w1.max(w2));
        let moved = self.table_bytes as f64 * (1.0 - min as f64 / max as f64);
        moved.ceil() as u64
    }
}

/// A set of redundant replicas of one table, each on its own disk slots
/// (Sec. 5.1's energy use of extra capacity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaSet {
    /// The replicas, narrowest first.
    pub replicas: Vec<Partitioning>,
}

impl ReplicaSet {
    /// Build from partitionings (sorted narrowest-first internally).
    pub fn new(mut replicas: Vec<Partitioning>) -> Result<Self, StorageError> {
        if replicas.is_empty() {
            return Err(StorageError::EmptyPartitioning);
        }
        replicas.sort_by_key(|p| p.width());
        Ok(ReplicaSet { replicas })
    }

    /// The narrowest replica whose width meets `min_width` (load-driven
    /// replica choice); falls back to the widest.
    pub fn choose(&self, min_width: u32) -> &Partitioning {
        self.replicas
            .iter()
            .find(|p| p.width() >= min_width)
            .unwrap_or(self.replicas.last().expect("non-empty"))
    }

    /// Disk slots that can be spun down when serving from `active`:
    /// every slot used by some replica but not by the active one.
    pub fn idle_slots(&self, active: &Partitioning) -> Vec<u32> {
        let mut idle: Vec<u32> = self
            .replicas
            .iter()
            .flat_map(|p| p.slots.iter().copied())
            .filter(|s| !active.slots.contains(s))
            .collect();
        idle.sort_unstable();
        idle.dedup();
        idle
    }

    /// Total storage footprint across replicas (the capacity price of
    /// the energy saving).
    pub fn total_bytes(&self) -> u64 {
        self.replicas.iter().map(|p| p.table_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partitioning_spreads_bytes() {
        let p = Partitioning::even(PartitionKind::Hash, 4, 1003).unwrap();
        let shares = p.bytes_per_slot();
        assert_eq!(shares.len(), 4);
        let total: u64 = shares.iter().map(|(_, b)| b).sum();
        assert_eq!(total, 1003);
        assert_eq!(shares[0].1, 250 + 3);
    }

    #[test]
    fn zero_disks_rejected() {
        assert!(Partitioning::even(PartitionKind::Hash, 0, 100).is_err());
    }

    #[test]
    fn hash_keys_spread() {
        let p = Partitioning::even(PartitionKind::Hash, 8, 0).unwrap();
        let mut counts = [0u32; 8];
        for k in 0..8000 {
            counts[p.slot_for_key(k) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn range_keys_ordered() {
        let p = Partitioning::even(PartitionKind::Range, 4, 0).unwrap();
        let lo = 0;
        let hi = 399;
        assert_eq!(p.slot_for_range_key(0, lo, hi), 0);
        assert_eq!(p.slot_for_range_key(150, lo, hi), 1);
        assert_eq!(p.slot_for_range_key(399, lo, hi), 3);
        // Out-of-bounds clamps.
        assert_eq!(p.slot_for_range_key(-5, lo, hi), 0);
        assert_eq!(p.slot_for_range_key(1000, lo, hi), 3);
        // Degenerate range.
        assert_eq!(p.slot_for_range_key(7, 5, 5), 0);
    }

    #[test]
    fn repartition_cost_shape() {
        let from = Partitioning::even(PartitionKind::Hash, 204, 1_000_000).unwrap();
        let to66 = Partitioning::even(PartitionKind::Hash, 66, 1_000_000).unwrap();
        let cost = from.repartition_bytes(&to66);
        assert!(cost > 0);
        assert!(cost < 1_000_000, "never moves more than the table");
        assert_eq!(from.repartition_bytes(&from.clone()), 0);
        // Shrinking further moves more.
        let to36 = Partitioning::even(PartitionKind::Hash, 36, 1_000_000).unwrap();
        assert!(from.repartition_bytes(&to36) > cost);
    }

    #[test]
    fn replica_choice_and_idle_slots() {
        let narrow = Partitioning {
            kind: PartitionKind::Hash,
            slots: (0..8).collect(),
            table_bytes: 1000,
        };
        let wide = Partitioning {
            kind: PartitionKind::Hash,
            slots: (0..64).collect(),
            table_bytes: 1000,
        };
        let rs = ReplicaSet::new(vec![wide.clone(), narrow.clone()]).unwrap();
        assert_eq!(rs.choose(1).width(), 8, "light load picks narrow");
        assert_eq!(rs.choose(32).width(), 64, "heavy load picks wide");
        assert_eq!(rs.choose(100).width(), 64, "fallback to widest");
        let idle = rs.idle_slots(&narrow);
        assert_eq!(idle.len(), 56);
        assert!(!idle.contains(&3));
        assert_eq!(rs.total_bytes(), 2000);
    }

    #[test]
    fn empty_replica_set_rejected() {
        assert!(ReplicaSet::new(vec![]).is_err());
    }
}
