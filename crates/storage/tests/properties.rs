//! Property-based tests: every codec round-trips on arbitrary inputs,
//! and layout/partition math conserves bytes.

use grail_storage::column::ColumnSegment;
use grail_storage::compress::{self, choose_encoding, lzb, Encoding};
use grail_storage::layout::{ColumnPhys, ScanVolume, TableLayout};
use grail_storage::partition::{PartitionKind, Partitioning};
use proptest::prelude::*;

fn any_i64s() -> impl Strategy<Value = Vec<i64>> {
    prop_oneof![
        // Fully arbitrary.
        proptest::collection::vec(any::<i64>(), 0..500),
        // Runs (RLE-friendly).
        proptest::collection::vec((any::<i64>(), 1usize..30), 0..40).prop_map(|runs| {
            runs.into_iter()
                .flat_map(|(v, n)| std::iter::repeat_n(v, n))
                .collect()
        }),
        // Low cardinality (dict-friendly).
        proptest::collection::vec(0i64..8, 0..500),
        // Near-sorted (delta-friendly).
        proptest::collection::vec(0i64..1000, 0..500).prop_map(|mut v| {
            v.sort_unstable();
            v
        }),
    ]
}

proptest! {
    /// Every encoding round-trips every input.
    #[test]
    fn integer_codecs_round_trip(vals in any_i64s()) {
        for enc in Encoding::ALL {
            let bytes = compress::encode(&vals, enc);
            let back = compress::decode(&bytes, enc).expect("decode own encoding");
            prop_assert_eq!(&back, &vals, "{}", enc.name());
        }
    }

    /// The chooser's pick round-trips and never errors.
    #[test]
    fn chooser_is_safe(vals in any_i64s()) {
        let enc = choose_encoding(&vals);
        let seg = ColumnSegment::encode(&vals, enc);
        prop_assert_eq!(seg.decode().expect("chosen codec decodes"), vals);
    }

    /// LZ round-trips arbitrary byte strings.
    #[test]
    fn lzb_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = lzb::compress(&data);
        prop_assert_eq!(lzb::decompress(&c).expect("decompress own output"), data);
    }

    /// LZ round-trips highly repetitive strings (worst case for overlap
    /// handling) and actually shrinks them.
    #[test]
    fn lzb_repetitive(pattern in proptest::collection::vec(any::<u8>(), 1..16), reps in 10usize..200) {
        let data: Vec<u8> = pattern.iter().copied().cycle().take(pattern.len() * reps).collect();
        let c = lzb::compress(&data);
        prop_assert_eq!(lzb::decompress(&c).expect("decompress"), data.clone());
        if data.len() > 256 {
            prop_assert!(c.len() < data.len());
        }
    }

    /// Columnar projected scans never read more than row scans of the
    /// same table, and footprint is projection-independent.
    #[test]
    fn columnar_dominates_row_for_projections(
        rows in 1u64..100_000,
        widths in proptest::collection::vec(1u32..64, 1..12),
        proj_mask in any::<u16>(),
    ) {
        let columns: Vec<ColumnPhys> = widths.iter().map(|w| ColumnPhys::plain(*w)).collect();
        let projected: Vec<usize> = (0..columns.len())
            .filter(|i| proj_mask & (1 << (i % 16)) != 0)
            .collect();
        let row = ScanVolume { rows, columns: columns.clone(), layout: TableLayout::Row };
        let col = ScanVolume { rows, columns, layout: TableLayout::Columnar };
        prop_assert!(col.scan_bytes(&projected) <= row.scan_bytes(&projected));
        prop_assert_eq!(row.footprint(), col.footprint());
    }

    /// Partition byte shares always conserve the table total, and every
    /// key maps to a declared slot.
    #[test]
    fn partitioning_conserves_bytes(disks in 1u32..256, bytes in 0u64..1_000_000_000, keys in proptest::collection::vec(any::<i64>(), 0..100)) {
        let p = Partitioning::even(PartitionKind::Hash, disks, bytes).unwrap();
        let total: u64 = p.bytes_per_slot().iter().map(|(_, b)| b).sum();
        prop_assert_eq!(total, bytes);
        for k in keys {
            prop_assert!(p.slots.contains(&p.slot_for_key(k)));
        }
    }

    /// Repartitioning cost is symmetric in width and bounded by table
    /// size.
    #[test]
    fn repartition_cost_bounded(w1 in 1u32..300, w2 in 1u32..300, bytes in 0u64..10_000_000) {
        let a = Partitioning::even(PartitionKind::Hash, w1, bytes).unwrap();
        let b = Partitioning::even(PartitionKind::Hash, w2, bytes).unwrap();
        let ab = a.repartition_bytes(&b);
        let ba = b.repartition_bytes(&a);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab <= bytes);
    }
}

mod wal_and_btree {
    use grail_power::units::{Bytes, SimDuration, SimInstant};
    use grail_storage::btree::BTreeIndex;
    use grail_storage::wal::{schedule, FlushPolicy, FORCE_OVERHEAD};
    use proptest::prelude::*;

    proptest! {
        /// WAL invariants under arbitrary commit streams and policies:
        /// every commit acked exactly once, never before arrival, never
        /// later than arrival + max_wait; forces time-ordered; record
        /// bytes conserved.
        #[test]
        fn wal_schedule_invariants(
            gaps_us in proptest::collection::vec(0u64..200_000, 0..200),
            batch in 1u32..64,
            wait_ms in 1u64..200,
        ) {
            let mut t = 0u64;
            let commits: Vec<(SimInstant, Bytes)> = gaps_us
                .iter()
                .map(|g| {
                    t += g;
                    (SimInstant::EPOCH + SimDuration::from_micros(t), Bytes::new(100))
                })
                .collect();
            let max_wait = SimDuration::from_millis(wait_ms);
            for policy in [
                FlushPolicy::PerCommit,
                FlushPolicy::GroupCommit { max_batch: batch, max_wait },
            ] {
                let plan = schedule(&commits, policy);
                prop_assert_eq!(plan.ack_times.len(), commits.len());
                let covered: u32 = plan.forces.iter().map(|f| f.commits).sum();
                prop_assert_eq!(covered as usize, commits.len());
                for (ack, (arrive, _)) in plan.ack_times.iter().zip(&commits) {
                    prop_assert!(ack >= arrive);
                    prop_assert!(
                        ack.saturating_duration_since(*arrive) <= max_wait
                            || matches!(policy, FlushPolicy::PerCommit)
                    );
                }
                prop_assert!(plan.forces.windows(2).all(|w| w[0].at <= w[1].at));
                // Record bytes conserved: total = records + overhead/force.
                let records: u64 = commits.iter().map(|(_, b)| b.get()).sum();
                let expect = records + plan.forces.len() as u64 * FORCE_OVERHEAD.get();
                prop_assert_eq!(plan.total_bytes().get(), expect);
            }
        }

        /// B+tree lookups and ranges agree with binary search on the raw
        /// sorted array, for arbitrary multisets.
        #[test]
        fn btree_matches_reference(mut keys in proptest::collection::vec(-1000i64..1000, 0..3000), probe in -1100i64..1100, lo in -1100i64..1100, width in 0i64..500) {
            keys.sort_unstable();
            let idx = BTreeIndex::build(keys.clone());
            prop_assert_eq!(idx.len(), keys.len());
            // Point lookup = first position of the key.
            let expect = keys.iter().position(|k| *k == probe);
            prop_assert_eq!(idx.lookup(probe), expect);
            // Range = partition points.
            let hi = lo + width;
            let (s, e) = idx.range(lo, hi);
            let rs = keys.partition_point(|k| *k < lo);
            let re = keys.partition_point(|k| *k <= hi);
            prop_assert_eq!((s, e), (rs, re.max(rs)));
            // Page accounting sanity.
            if !keys.is_empty() {
                prop_assert!(idx.height() >= 2);
                prop_assert!(idx.range_pages(e - s) >= idx.height());
            }
        }
    }
}
