//! Tier-1 regression gate: the whole workspace must pass grail-lint.
//!
//! Runs the engine over the repository so `cargo test -q` fails the
//! moment a nondeterminism, conservation, or hygiene violation lands —
//! the same check CI's `lint` job runs via the binary.

use std::path::Path;

#[test]
fn workspace_has_zero_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root");
    let diags = grail_lint::check_workspace(root).expect("workspace sources are readable");
    assert!(
        diags.is_empty(),
        "grail-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_is_exercised_by_the_engine() {
    // The registry and the diagnostics agree on rule ids: a trigger
    // fixture per family produces a diagnostic carrying a known id.
    let cases = [
        (
            "crates/sim/src/fixture.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
            "wall-clock",
        ),
        (
            "crates/buffer/src/fixture.rs",
            "use std::collections::HashMap;\n",
            "hash-order",
        ),
        (
            "crates/sim/src/fixture.rs",
            "impl EnergyLedger { fn sneak(&mut self) {} }\n",
            "ledger-mut",
        ),
        (
            "crates/core/src/fixture.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            "error-hygiene",
        ),
        (
            "crates/power/src/fixture.rs",
            "fn f(a: Joules, b: Joules) -> bool { a.joules() == b.joules() }\n",
            "float-eq",
        ),
        ("crates/sim/src/lib.rs", "pub mod x;\n", "unsafe-forbid"),
        (
            "crates/sim/src/fixture.rs",
            "// grail-lint: allow(hash-order)\nfn f() {}\n",
            "pragma",
        ),
    ];
    for (rel, src, want) in cases {
        let diags = grail_lint::check_source(rel, src);
        assert!(
            diags.iter().any(|d| d.rule == want),
            "fixture for `{want}` produced {diags:?}"
        );
        assert!(
            grail_lint::rules::RULES.iter().any(|r| r.id == want),
            "`{want}` missing from the registry"
        );
    }
}
