//! Tier-1 regression gate: the whole workspace must pass grail-lint.
//!
//! Runs the engine over the repository so `cargo test -q` fails the
//! moment a nondeterminism, conservation, or hygiene violation lands —
//! the same check CI's `lint` job runs via the binary.

use std::path::PathBuf;

/// The real workspace root, robust to being built through a symlinked
/// crate directory (canonicalize first, then walk up from crates/lint).
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .canonicalize()
        .expect("manifest dir exists")
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_violations() {
    let root = workspace_root();
    let diags = grail_lint::check_workspace(&root).expect("workspace sources are readable");
    assert!(
        diags.is_empty(),
        "grail-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_output_is_thread_count_invariant() {
    let root = workspace_root();
    let seq = grail_lint::check_workspace_threads(&root, 1).expect("readable");
    let par = grail_lint::check_workspace_threads(&root, 8).expect("readable");
    assert_eq!(
        seq, par,
        "diagnostics must be byte-identical at any thread count"
    );
}

#[test]
fn semantic_rules_are_live_on_this_workspace() {
    // Guard against the semantic rules passing vacuously: the call
    // graph must actually contain the entries, sinks and conduits the
    // charge-reachability rule reasons about, and the layer table must
    // cover every member crate.
    let root = workspace_root();
    let (files, manifests) = grail_lint::workspace_sources(&root).expect("readable");
    let graphs: Vec<grail_lint::graph::FileGraph> = files
        .iter()
        .filter_map(|f| {
            let (crate_name, kind) = grail_lint::classify(&f.rel)?;
            let info = grail_lint::FileInfo {
                rel: &f.rel,
                crate_name: &crate_name,
                kind,
            };
            Some(grail_lint::graph::extract(
                &info,
                &grail_lint::scan::scan(&f.source),
            ))
        })
        .collect();
    let g = grail_lint::graph::WorkspaceGraph::build(graphs);

    let operators = g.find(|d| {
        d.crate_name == "query" && d.name == "next" && d.impl_trait.as_deref() == Some("Operator")
    });
    assert!(
        operators.len() >= 3,
        "expected several Operator::next entries in crates/query, found {}",
        operators.len()
    );
    let services = g.find(|d| {
        d.crate_name == "sim"
            && d.impl_type.is_some()
            && matches!(d.name.as_str(), "serve" | "compute" | "compute_parallel")
    });
    assert!(
        !services.is_empty(),
        "expected device service events in crates/sim"
    );
    for sink in ["charge", "transfer"] {
        assert!(
            !g.find(|d| {
                d.file == "crates/power/src/ledger.rs"
                    && d.impl_type.as_deref() == Some("EnergyLedger")
                    && d.name == sink
            })
            .is_empty(),
            "expected EnergyLedger::{sink} sink in the ledger file"
        );
    }
    assert!(
        !g.find(|d| d.impl_type.as_deref() == Some("ExecContext") && d.name == "charge_read")
            .is_empty(),
        "expected the ExecContext demand conduit"
    );
    assert!(
        !g.find(|d| d.impl_type.as_deref() == Some("Simulation") && d.name == "finish")
            .is_empty(),
        "expected the Simulation::finish settlement function"
    );
    // The model-coverage rule has real machines to hold against the
    // grail-check registry: the shard cells and the chaos engine.
    let machines = g.find(|d| {
        matches!(d.crate_name.as_str(), "sim" | "par" | "scheduler")
            && !d.in_test
            && d.mut_self
            && matches!(d.name.as_str(), "step" | "advance")
            && d.impl_type.is_some()
    });
    assert!(
        machines.len() >= 3,
        "expected the protocol state machines (CellRun, ShardState, Engine), found {}",
        machines.len()
    );

    // Every member crate's manifest is collected and has a layer.
    assert!(
        manifests.iter().any(|m| m.rel == "Cargo.toml"),
        "root manifest missing"
    );
    for m in &manifests {
        let Some(name) = m
            .rel
            .strip_prefix("crates/")
            .and_then(|r| r.strip_suffix("/Cargo.toml"))
        else {
            continue;
        };
        assert!(
            grail_lint::rules::LAYERS.iter().any(|(n, _)| *n == name),
            "crate `{name}` missing from the layering table"
        );
    }
}

#[test]
fn every_rule_is_exercised_by_the_engine() {
    // The registry and the diagnostics agree on rule ids: a trigger
    // fixture per family produces a diagnostic carrying a known id.
    let cases = [
        (
            "crates/sim/src/fixture.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
            "wall-clock",
        ),
        (
            "crates/buffer/src/fixture.rs",
            "use std::collections::HashMap;\n",
            "hash-order",
        ),
        (
            "crates/sim/src/fixture.rs",
            "impl EnergyLedger { fn sneak(&mut self) {} }\n",
            "ledger-mut",
        ),
        (
            "crates/core/src/fixture.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            "error-hygiene",
        ),
        (
            "crates/power/src/fixture.rs",
            "fn f(a: Joules, b: Joules) -> bool { a.joules() == b.joules() }\n",
            "float-eq",
        ),
        (
            "crates/query/src/fixture.rs",
            "fn f() { println!(\"x\"); }\n",
            "print-hygiene",
        ),
        (
            "crates/sim/src/fixture.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
            "thread-confine",
        ),
        ("crates/sim/src/lib.rs", "pub mod x;\n", "unsafe-forbid"),
        (
            "crates/sim/src/fixture.rs",
            "// grail-lint: allow(hash-order)\nfn f() {}\n",
            "pragma",
        ),
        (
            "crates/sim/src/fixture.rs",
            "// grail-lint: allow(hash-order, long gone)\nfn f() {}\n",
            "stale-pragma",
        ),
        (
            "crates/power/src/fixture.rs",
            "use grail_core::GrailDb;\nfn f() {}\n",
            "layering",
        ),
        (
            "crates/power/src/fixture.rs",
            "fn f(a: Joules, b: Watts) -> f64 { let c = a + b; 0.0 }\n",
            "unit-mix",
        ),
        (
            "crates/sim/src/fixture.rs",
            "impl Machine {\n    pub fn f(&mut self, l: &mut EnergyLedger, id: ComponentId) {\n        l.charge(id, 3.5);\n    }\n}\n",
            "raw-energy",
        ),
        (
            "crates/sim/src/fixture.rs",
            "use std::cell::RefCell;\nfn f() {}\n",
            "par-readiness",
        ),
        (
            "crates/sim/src/fixture.rs",
            "fn f(t: &mut Tracer) { t.count(\"not.in.catalog\", 1); }\n",
            "metric-hygiene",
        ),
    ];
    for (rel, src, want) in cases {
        let diags = grail_lint::check_source(rel, src);
        assert!(
            diags.iter().any(|d| d.rule == want),
            "fixture for `{want}` produced {diags:?}"
        );
        assert!(
            grail_lint::rules::RULES.iter().any(|r| r.id == want),
            "`{want}` missing from the registry"
        );
    }
    // charge-reachability needs a multi-file workspace: a ledger in
    // scope and a service path that never reaches it.
    let sf = |rel: &str, src: &str| grail_lint::SourceFile {
        rel: rel.to_string(),
        source: src.to_string(),
    };
    let diags = grail_lint::check_files(&[
        sf(
            "crates/power/src/ledger.rs",
            "impl EnergyLedger {\n    pub fn charge(&mut self, id: ComponentId, e: Joules) {}\n    pub fn transfer(&mut self, a: ComponentId, b: ComponentId, e: Joules) {}\n}\n",
        ),
        sf(
            "crates/sim/src/dev.rs",
            "impl DiskDevice {\n    pub fn serve(&mut self, at: SimInstant) {}\n}\n",
        ),
    ]);
    assert!(
        diags.iter().any(|d| d.rule == "charge-reachability"),
        "charge-reachability fixture produced {diags:?}"
    );
    // ledger-flow likewise needs the ledger file plus a charging
    // function that no settlement anchor (`finish` / `*Report` return)
    // can reach.
    let diags = grail_lint::check_files(&[
        sf(
            "crates/power/src/ledger.rs",
            "impl EnergyLedger {\n    pub fn charge(&mut self, id: ComponentId, e: Joules) {}\n}\n",
        ),
        sf(
            "crates/sim/src/heater.rs",
            "impl Heater {\n    pub fn burn(&mut self, l: &mut EnergyLedger, id: ComponentId, e: Joules) {\n        l.charge(id, e);\n    }\n}\n",
        ),
    ]);
    assert!(
        diags.iter().any(|d| d.rule == "ledger-flow"),
        "ledger-flow fixture produced {diags:?}"
    );
    // model-coverage needs the grail-check registry in scope (a
    // `covers` list) plus a protocol state machine it fails to name.
    let diags = grail_lint::check_files(&[
        sf(
            "crates/check/src/registry.rs",
            "pub const REGISTRY: &[ModelEntry] = &[ModelEntry {\n    name: \"shard\",\n    covers: &[\"sim::parallel::SomethingElse\"],\n}];\n",
        ),
        sf(
            "crates/sim/src/cell.rs",
            "use grail_par::shard::ShardStep;\nimpl ShardStep for CellRun {\n    fn advance(&mut self, bound: u64) {\n        self.sim.bill_recovery(bound);\n    }\n}\n",
        ),
    ]);
    assert!(
        diags.iter().any(|d| d.rule == "model-coverage"),
        "model-coverage fixture produced {diags:?}"
    );
    // Every registered rule appears in at least one fixture above.
    let exercised: std::collections::BTreeSet<&str> = cases
        .iter()
        .map(|(_, _, want)| *want)
        .chain(["charge-reachability", "ledger-flow", "model-coverage"])
        .collect();
    for rule in grail_lint::rules::RULES {
        assert!(
            exercised.contains(rule.id),
            "rule `{}` has no trigger fixture in this test",
            rule.id
        );
    }
}
