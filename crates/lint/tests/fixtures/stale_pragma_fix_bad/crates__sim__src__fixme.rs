//! Fixture for the stale-pragma fixer: every pragma here is dead.

// grail-lint: allow(hash-order, the map is long gone)
pub fn lookup(key: u32) -> u32 {
    key.wrapping_mul(2_654_435_761)
}

pub fn count(xs: &[u32]) -> usize {
    xs.len() // grail-lint: allow(float-eq, the epsilon compare was removed)
}
