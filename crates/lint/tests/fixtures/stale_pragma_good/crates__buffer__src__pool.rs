// grail-lint: allow(hash-order, lookup-only map, never iterated)
use std::collections::HashMap;
pub fn evict() -> u32 {
    0
}
