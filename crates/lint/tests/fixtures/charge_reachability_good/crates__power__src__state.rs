impl PowerStateMachine {
    pub fn set_state(&mut self, at: SimInstant, next: PowerState) {
        self.state = next;
    }
}
