impl Operator for ColScan {
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Batch>, QueryError> {
        ctx.charge_read(t, b, a);
        Ok(None)
    }
}
impl ExecContext {
    pub fn charge_read(&mut self, t: SimInstant, b: u64, a: u64) {
        self.reads += b;
    }
}
