impl Simulation {
    pub fn finish(self, end: SimInstant) -> SimReport {
        self.ledger.charge(id, e);
        self.ledger.transfer(a, b, e);
        SimReport {}
    }
}
impl DiskDevice {
    pub fn serve(&mut self, at: SimInstant) {
        self.machine.set_state(at, ACTIVE);
    }
}
