pub struct SharedCache {
    // grail-lint: allow(thread-confine, convenient)
    inner: std::sync::Mutex<Vec<u8>>,
}

pub fn spawn_refill() {
    std::thread::spawn(|| {});
}
