impl Heater {
    pub fn burn(&mut self, l: &mut EnergyLedger, id: ComponentId, e: Joules) {
        l.charge(id, e);
    }
}
