//! Fixture: the registry's covers list names every protocol machine.

pub struct ModelEntry {
    pub name: &'static str,
    pub covers: &'static [&'static str],
}

pub const REGISTRY: &[ModelEntry] = &[ModelEntry {
    name: "shard-horizon",
    covers: &["sim::cell::CellRun", "sim::parallel::ShardState"],
}];
