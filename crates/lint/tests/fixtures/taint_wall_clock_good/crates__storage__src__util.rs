pub fn jitter() -> u64 {
    entropy_word()
}
pub fn entropy_word() -> u64 {
    let t = SystemTime::now(); // grail-lint: allow(wall-clock, host-side cache salt, never reaches sim state)
    0
}
