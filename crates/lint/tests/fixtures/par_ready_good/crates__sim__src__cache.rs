pub struct BlockCache {
    inner: Vec<u8>,
}

impl BlockCache {
    pub fn push(&mut self, b: u8) {
        self.inner.push(b);
    }
}
