// grail-lint: allow-file(thread-confine, sanctioned intra-sim parallelism home; spawning is delegated to grail-par's shard runner)
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
