use grail_power::units::Joules;
fn f() {}
