pub fn lookup() -> u32 {
    let m = HashMap::from([(1, 2)]);
    0
}
