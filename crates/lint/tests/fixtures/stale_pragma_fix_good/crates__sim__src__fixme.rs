//! Fixture for the stale-pragma fixer: every pragma here is dead.

pub fn lookup(key: u32) -> u32 {
    key.wrapping_mul(2_654_435_761)
}

pub fn count(xs: &[u32]) -> usize {
    xs.len()
}
