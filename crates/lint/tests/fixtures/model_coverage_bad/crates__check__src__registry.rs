//! Fixture: a grail-check registry whose covers lists miss a machine.

pub struct ModelEntry {
    pub name: &'static str,
    pub covers: &'static [&'static str],
}

pub const REGISTRY: &[ModelEntry] = &[ModelEntry {
    name: "shard-horizon",
    covers: &["sim::parallel::ShardState"],
}];
