//! Fixture: a protocol state machine no grail-check model covers.

use grail_par::shard::ShardStep;

impl ShardStep for CellRun {
    fn next_at(&self) -> u64 {
        self.queue_head
    }

    fn advance(&mut self, bound: u64) {
        while self.queue_head <= bound {
            self.sim.bill_recovery(self.queue_head);
            self.queue_head += 1;
        }
    }
}
