impl Heater {
    pub fn burn(&mut self, l: &mut EnergyLedger, id: ComponentId, e: Joules) {
        l.charge(id, e);
    }
    pub fn finish(self, l: &mut EnergyLedger, id: ComponentId, e: Joules) -> HeatReport {
        self.burn(l, id, e);
        HeatReport {}
    }
}
