impl EnergyLedger {
    pub fn charge(&mut self, id: ComponentId, e: Joules) {}
    pub fn transfer(&mut self, from: ComponentId, to: ComponentId, e: Joules) {}
}
