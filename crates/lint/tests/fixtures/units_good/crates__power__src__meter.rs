impl Meter {
    pub fn bill(&mut self, l: &mut EnergyLedger, id: ComponentId, e: Joules, p: Watts, d: SimDuration) {
        let total = e + p * d;
        let edp = e.delay_product(d);
        l.charge(id, total);
        let _ = edp;
    }
}
