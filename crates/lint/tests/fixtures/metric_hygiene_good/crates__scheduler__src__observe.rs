pub fn record(tracer: &mut Tracer) {
    tracer.count("chaos.events", 1);
    tracer.gauge("chaos.shed_rate", 0.25);
    tracer.rate("chaos.event_rate", 3_600_000_000_000, 0, 1);
}

pub fn tally(xs: &[u8]) -> usize {
    // `Iterator::count` takes no name; out of the rule's scope.
    xs.iter().count()
}

#[cfg(test)]
mod tests {
    // Tests may improvise names: they never reach an exporter.
    fn t(tracer: &mut Tracer) {
        tracer.count("ad.hoc.test.metric", 1);
    }
}
