pub fn storm_jitter() -> u64 {
    storm_entropy()
}
pub fn storm_entropy() -> u64 {
    let t = SystemTime::now(); // grail-lint: allow(wall-clock, workbench-only jitter salt, chaos schedules are ChaCha-seeded and never read it)
    0
}
