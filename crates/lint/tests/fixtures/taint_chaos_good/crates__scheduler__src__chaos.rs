pub fn schedule_storm() {
    let j = storm_jitter();
}
