// grail-lint: allow(hash-order, page table was hashed once upon a time)
pub fn evict() -> u32 {
    0
}
