pub fn jitter() -> u64 {
    entropy_word()
}
pub fn entropy_word() -> u64 {
    let t = SystemTime::now();
    0
}
