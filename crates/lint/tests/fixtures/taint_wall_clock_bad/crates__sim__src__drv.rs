pub fn advance() {
    let j = jitter();
}
