use grail_core::GrailDb;
fn f() {}
