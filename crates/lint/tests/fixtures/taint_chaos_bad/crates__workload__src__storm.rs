pub fn storm_jitter() -> u64 {
    storm_entropy()
}
pub fn storm_entropy() -> u64 {
    let t = SystemTime::now();
    0
}
