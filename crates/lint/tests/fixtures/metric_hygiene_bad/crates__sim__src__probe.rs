pub fn record(tracer: &mut Tracer, shard: usize) {
    tracer.count("sim.bogus_counter", 1);
    let name = format!("shard.{shard}.events");
    tracer.count(&name, 1);
}
