pub const CATALOG: &[MetricSpec] = &[
    MetricSpec {
        name: "io.requests",
        kind: MetricKind::Counter,
    },
    MetricSpec {
        name: "io.requests",
        kind: MetricKind::Counter,
    },
];
