use std::cell::RefCell;
use std::rc::Rc;

pub struct BlockCache {
    inner: Rc<RefCell<Vec<u8>>>,
}
