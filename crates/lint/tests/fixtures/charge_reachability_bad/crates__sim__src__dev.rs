impl DiskDevice {
    pub fn serve(&mut self, at: SimInstant) {
        let x = idle_work();
    }
}
fn idle_work() -> u32 {
    0
}
