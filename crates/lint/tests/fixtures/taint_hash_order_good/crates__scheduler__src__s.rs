pub fn pick() -> u32 {
    lookup()
}
