pub fn lookup() -> u32 {
    let m = BTreeMap::from([(1, 2)]);
    0
}
