impl Meter {
    pub fn misbill(&mut self, l: &mut EnergyLedger, id: ComponentId, e: Joules, p: Watts, d: SimDuration) {
        let bad = e + p;
        let edp = e.joules() * d.as_secs_f64();
        l.charge(id, 2.5);
        l.charge(id, e.joules());
        let _ = (bad, edp);
    }
}
