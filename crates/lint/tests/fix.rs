//! Round-trip test for the stale-pragma fixer behind `--fix`.
//!
//! The contract: applying [`grail_lint::fix::remove_stale_pragmas`] at
//! exactly the lines the engine flags turns the bad fixture into its
//! good twin *byte for byte*, the repaired file lints clean of
//! stale-pragma, and a second application is a no-op.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

const FIXTURE_REL: &str = "crates/sim/src/fixme.rs";

fn fixture(case: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(case)
        .join("crates__sim__src__fixme.rs");
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn stale_lines(source: &str) -> BTreeSet<usize> {
    grail_lint::check_source(FIXTURE_REL, source)
        .iter()
        .filter(|d| d.rule == grail_lint::rules::STALE_PRAGMA)
        .map(|d| d.line)
        .collect()
}

#[test]
fn fixing_the_bad_fixture_yields_the_good_twin_byte_for_byte() {
    let bad = fixture("stale_pragma_fix_bad");
    let good = fixture("stale_pragma_fix_good");
    assert_ne!(bad, good, "the twins must start out different");

    let lines = stale_lines(&bad);
    assert_eq!(
        lines.len(),
        2,
        "bad fixture must carry one whole-line and one trailing dead pragma"
    );
    let fixed =
        grail_lint::fix::remove_stale_pragmas(&bad, &lines).expect("the fix changes the file");
    assert_eq!(
        fixed, good,
        "fix output must be byte-identical to the good twin"
    );
}

#[test]
fn the_repaired_file_is_clean_and_the_fixer_is_idempotent() {
    let bad = fixture("stale_pragma_fix_bad");
    let fixed = grail_lint::fix::remove_stale_pragmas(&bad, &stale_lines(&bad))
        .expect("the fix changes the file");
    assert!(
        stale_lines(&fixed).is_empty(),
        "repaired source still reports stale pragmas"
    );
    assert_eq!(
        grail_lint::fix::remove_stale_pragmas(&fixed, &stale_lines(&fixed)),
        None,
        "a second pass must be a no-op"
    );
}

#[test]
fn live_pragmas_survive_a_fix_pass() {
    // A pragma that suppresses a real diagnostic is not stale, so the
    // engine never hands its line to the fixer — and even if a caller
    // passes every pragma line, the fixer only deletes what the
    // diagnostics name. Here: a live hash-order suppression.
    let src = "// grail-lint: allow(hash-order, interned keys, order never observed)\n\
               use std::collections::HashMap;\n";
    let lines = stale_lines(src);
    assert!(
        lines.is_empty(),
        "a working suppression must not be reported stale: {lines:?}"
    );
    assert_eq!(
        grail_lint::fix::remove_stale_pragmas(src, &lines),
        None,
        "nothing to fix, nothing rewritten"
    );
}
