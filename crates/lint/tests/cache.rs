//! Incremental-cache integration tests.
//!
//! The cache is a pure memoization layer: a warm run must produce
//! output byte-identical to a cold run and to an uncached run, and a
//! poisoned cache directory must fall back to re-analysis rather than
//! change the output or crash.

use std::fs;
use std::path::PathBuf;

/// The real workspace root (see `workspace_clean.rs`).
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .canonicalize()
        .expect("manifest dir exists")
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn warm_cache_is_byte_identical_to_cold_and_uncached() {
    let root = workspace_root();
    let cache = std::env::temp_dir().join(format!("grail-lint-cache-{}", std::process::id()));
    let _ = fs::remove_dir_all(&cache);

    let cold = grail_lint::check_workspace_cached(&root, 2, &cache).expect("cold run");
    let entries = fs::read_dir(&cache).map(|it| it.count()).unwrap_or(0);
    assert!(entries > 0, "cold run must populate the cache directory");

    let warm = grail_lint::check_workspace_cached(&root, 2, &cache).expect("warm run");
    assert_eq!(cold, warm, "warm run diverged from cold run");

    let uncached = grail_lint::check_workspace_threads(&root, 2).expect("uncached run");
    assert_eq!(cold, uncached, "cached run diverged from uncached run");

    // The full rendered artifacts must match too, not just the Vec.
    assert_eq!(
        grail_lint::sarif::to_sarif(&cold),
        grail_lint::sarif::to_sarif(&warm),
        "SARIF output diverged between cold and warm runs"
    );

    // Poison every entry: deserialization must fail closed (re-analyze)
    // and the output must not change.
    for e in fs::read_dir(&cache).expect("cache dir readable") {
        let p = e.expect("entry").path();
        fs::write(&p, "not a cache entry\n").expect("entry writable");
    }
    let scrambled =
        grail_lint::check_workspace_cached(&root, 2, &cache).expect("run over poisoned cache");
    assert_eq!(cold, scrambled, "poisoned cache changed the output");

    let _ = fs::remove_dir_all(&cache);
}

#[test]
fn cache_results_are_thread_count_invariant() {
    let root = workspace_root();
    let cache = std::env::temp_dir().join(format!("grail-lint-cache-t-{}", std::process::id()));
    let _ = fs::remove_dir_all(&cache);
    let seq = grail_lint::check_workspace_cached(&root, 1, &cache).expect("sequential");
    let par = grail_lint::check_workspace_cached(&root, 8, &cache).expect("parallel");
    assert_eq!(seq, par, "cached diagnostics differ across thread counts");
    let _ = fs::remove_dir_all(&cache);
}
