//! Golden-file tests over the fixture corpus.
//!
//! Each directory under `tests/fixtures/` is one synthetic workspace:
//! filenames encode workspace-relative paths with `__` standing for `/`
//! (`crates__sim__src__drv.rs` → `crates/sim/src/drv.rs`), `Cargo.toml`
//! fixtures feed the layering rule, and `expected.txt` holds the
//! rendered diagnostics the engine must produce — byte for byte, at
//! any thread count.
//!
//! To re-bless after an intentional rule change:
//! `UPDATE_GOLDEN=1 cargo test -p grail-lint --test golden`, then
//! review the diff.

use std::fs;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .canonicalize()
        .expect("manifest dir exists")
        .join("tests/fixtures")
}

#[test]
fn fixtures_match_goldens_at_any_thread_count() {
    let dir = fixtures_dir();
    let mut cases: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/fixtures exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    cases.sort();
    assert!(!cases.is_empty(), "fixture corpus is empty");

    for case in cases {
        let mut entries: Vec<PathBuf> = fs::read_dir(&case)
            .expect("case dir readable")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        let mut files: Vec<grail_lint::SourceFile> = Vec::new();
        let mut manifests: Vec<grail_lint::ManifestFile> = Vec::new();
        for path in &entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .expect("utf-8 fixture name");
            if name == "expected.txt" {
                continue;
            }
            let rel = name.replace("__", "/");
            let source = fs::read_to_string(path).expect("fixture readable");
            if rel.ends_with("Cargo.toml") {
                manifests.push(grail_lint::ManifestFile { rel, source });
            } else {
                files.push(grail_lint::SourceFile { rel, source });
            }
        }

        let seq = grail_lint::analyze(&files, &manifests, 1);
        for threads in [2, 8] {
            let par = grail_lint::analyze(&files, &manifests, threads);
            assert_eq!(
                seq,
                par,
                "case {} differs between 1 and {threads} threads",
                case.display()
            );
        }
        let rendered: String = seq.iter().map(|d| format!("{d}\n")).collect();
        let golden_path = case.join("expected.txt");
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            fs::write(&golden_path, &rendered).expect("golden writable");
            continue;
        }
        let want = fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "{} missing; run with UPDATE_GOLDEN=1 to create it",
                golden_path.display()
            )
        });
        assert_eq!(
            rendered,
            want,
            "case {} diverged from its golden file (UPDATE_GOLDEN=1 re-blesses)",
            case.display()
        );
    }
}

#[test]
fn good_and_bad_variants_disagree() {
    // Structural guarantee on the corpus itself: every `*_bad` case has
    // a non-empty golden, every `*_good` case an empty one. A rule that
    // silently stops firing turns its bad golden empty and fails here
    // even if someone blindly re-blessed.
    let dir = fixtures_dir();
    for entry in fs::read_dir(&dir).expect("fixtures readable") {
        let path = entry.expect("entry").path();
        if !path.is_dir() {
            continue;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8")
            .to_string();
        let golden = fs::read_to_string(path.join("expected.txt")).unwrap_or_default();
        if name.ends_with("_bad") {
            assert!(
                !golden.trim().is_empty(),
                "bad fixture `{name}` produces no diagnostics"
            );
        } else if name.ends_with("_good") {
            assert!(
                golden.trim().is_empty(),
                "good fixture `{name}` produces diagnostics:\n{golden}"
            );
        }
    }
}
