//! SARIF 2.1.0 output — hand-rolled, schema-conformant, no serde.
//!
//! The linter's diagnostics map directly onto the SARIF result model:
//! one `run` from one `tool.driver` (grail-lint), the full rule
//! registry as `reportingDescriptor`s, and one `result` per
//! [`Diagnostic`] carrying `ruleId`, `ruleIndex`, a `message` and a
//! physical location (workspace-relative URI + 1-based start line).
//! Everything the serializer emits is either a literal from this file
//! or passes through [`escape`], so the output is valid JSON for any
//! diagnostic content.

use crate::rules::RULES;
use crate::Diagnostic;
use std::fmt::Write as _;

/// Escape a string for inclusion inside a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Index of `rule` in the shipped registry (usize::MAX if unknown —
/// cannot happen for diagnostics the engine produced).
fn rule_index(rule: &str) -> usize {
    RULES
        .iter()
        .position(|r| r.id == rule)
        .unwrap_or(usize::MAX)
}

/// Render diagnostics as a complete SARIF 2.1.0 log, pretty-printed
/// with two-space indentation and a trailing newline.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"grail-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/grail/grail\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        escape(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("          \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        out.push_str("            {\n");
        out.push_str(&format!("              \"id\": \"{}\",\n", escape(r.id)));
        out.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": \"{}\" }},\n",
            escape(r.summary)
        ));
        out.push_str("              \"defaultConfiguration\": { \"level\": \"error\" }\n");
        out.push_str(if i + 1 == RULES.len() {
            "            }\n"
        } else {
            "            },\n"
        });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", escape(d.rule)));
        out.push_str(&format!(
            "          \"ruleIndex\": {},\n",
            rule_index(d.rule)
        ));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{ \"text\": \"{}\" }},\n",
            escape(&d.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": \"{}\" }},\n",
            escape(&d.file)
        ));
        // Region: all diagnostics are single-line, so endLine mirrors
        // startLine; column spans are emitted when the rule recorded
        // one (col 0 means "whole line" and stays implicit — SARIF
        // columns are 1-based).
        if d.col > 0 && d.end_col > d.col {
            out.push_str(&format!(
                "                \"region\": {{ \"startLine\": {}, \"startColumn\": {}, \
                 \"endLine\": {}, \"endColumn\": {} }}\n",
                d.line, d.col, d.line, d.end_col
            ));
        } else {
            out.push_str(&format!(
                "                \"region\": {{ \"startLine\": {}, \"endLine\": {} }}\n",
                d.line, d.line
            ));
        }
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(if i + 1 == diags.len() {
            "        }\n"
        } else {
            "        },\n"
        });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\tz"), "x\\ny\\tz");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn sarif_log_contains_schema_rules_and_results() {
        let diags = vec![Diagnostic::new(
            "crates/sim/src/x.rs",
            7,
            "wall-clock",
            "`Instant::now` is a \"bad\" idea",
        )
        .with_span(18, 30)];
        let s = to_sarif(&diags);
        assert!(s.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"grail-lint\""));
        assert!(s.contains("\"id\": \"charge-reachability\""));
        assert!(s.contains("\"ruleId\": \"wall-clock\""));
        assert!(s.contains("\"ruleIndex\": "));
        assert!(s.contains(
            "\"region\": { \"startLine\": 7, \"startColumn\": 18, \"endLine\": 7, \
             \"endColumn\": 30 }"
        ));
        // A span-less diagnostic still carries endLine.
        let plain = to_sarif(&[Diagnostic::new("a.rs", 3, "wall-clock", "m")]);
        assert!(plain.contains("\"region\": { \"startLine\": 3, \"endLine\": 3 }"));
        // The quote inside the message must arrive escaped.
        assert!(s.contains("a \\\"bad\\\" idea"));
        // Balanced braces/brackets — a cheap structural sanity check on
        // top of the CI-side real JSON parse.
        let depth = s.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn empty_diagnostics_is_still_a_valid_log() {
        let s = to_sarif(&[]);
        assert!(s.contains("\"results\": [\n      ]"));
    }
}
