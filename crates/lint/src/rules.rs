//! The rule engine: every GRAIL workspace invariant, as a textual check
//! over stripped source.
//!
//! Each rule protects one of the guarantees the energy-accounting
//! argument rests on (see `DESIGN.md` § Invariants):
//!
//! * [`WALL_CLOCK`] — deterministic replay: simulated crates must never
//!   read the host clock or an entropy-seeded RNG.
//! * [`HASH_ORDER`] — deterministic reports: no `HashMap`/`HashSet` in
//!   library code, since their iteration order can leak into ledgers,
//!   `EnergyReport`s and `experiments.jsonl`.
//! * [`LEDGER_MUT`] — conservation: component totals move only through
//!   `EnergyLedger`'s audited API (`charge`/`transfer`), never by
//!   foreign impls or struct literals.
//! * [`ERROR_HYGIENE`] — no panicking escape hatches in simulator-facing
//!   library code; failures route through `SimError`.
//! * [`FLOAT_EQ`] — no `==`/`!=` on raw energy/time floats; replay
//!   equality is asserted on whole values or bit patterns, tolerance
//!   comparisons elsewhere.
//! * [`PRINT_HYGIENE`] — no `println!`/`eprintln!` in library crates;
//!   diagnostics flow through `grail-trace` events or returned errors,
//!   and only binary targets own stdout.
//! * [`THREAD_CONFINE`] — threads and locks live only in `grail-par`;
//!   everywhere else, parallelism goes through `grail_par::Runner`,
//!   whose index-ordered merge is what keeps fan-out byte-identical
//!   to sequential runs.
//! * [`UNSAFE_FORBID`] — every library crate root carries
//!   `#![forbid(unsafe_code)]`.
//! * [`PRAGMA`] — suppression pragmas themselves must be well-formed and
//!   carry a reason (not suppressible).
//! * [`METRIC_HYGIENE`] — metric names handed to the recording API
//!   (`count`/`observe`/`gauge`/`rate`) are string literals registered
//!   in `grail_metrics::spec::CATALOG`, and each catalog entry is
//!   declared exactly once. Runtime-built names (`format!`, locals)
//!   would defeat the static registry that keeps exports byte-stable.
//!
//! On top of the per-file token rules sit the *semantic* rules, which
//! read the whole-workspace call graph built by [`crate::graph`]:
//!
//! * [`CHARGE_REACHABILITY`] — every `Operator` execute path in
//!   `crates/query` and every device service event in `crates/sim`
//!   must transitively reach `EnergyLedger::charge`/`transfer`
//!   (directly, or through a declared demand conduit settled by
//!   `Simulation::finish`). No simulated work is free.
//! * [`LAYERING`] — crate dependencies must follow the [`LAYERS`]
//!   order from DESIGN.md §7; a back-edge (or a sideways edge inside a
//!   layer) is an architecture regression, whether it appears in a
//!   `Cargo.toml` or as a `grail_*::` path in library code.
//! * [`STALE_PRAGMA`] — an `allow` pragma that suppresses zero
//!   diagnostics under the semantic engine is dead weight that will
//!   silently mask the next real violation on its line; deleting it is
//!   always safe, so keeping it is an error (not suppressible).
//!   Because deletion is always safe, this is the one rule the binary
//!   repairs mechanically under `--fix` (see [`crate::fix`]).
//! * [`MODEL_COVERAGE`] — every protocol state machine (a mutating
//!   `step`/`advance` beside ledger billing and a thread/shard
//!   boundary in sim/par/scheduler library code) must be named in a
//!   `covers` list of the `grail-check` model registry, so the
//!   exhaustive checker exercises the same transition relation the
//!   production event loops execute.
//! * The taint layer (see [`crate::taint`]) re-reports [`WALL_CLOCK`]
//!   and [`HASH_ORDER`] at every sim-reachable call site whose callee
//!   chain ends in a nondeterminism source, with the full call chain
//!   in the message.

use crate::graph::WorkspaceGraph;
use crate::scan::{is_ident_char, PragmaScope, ScannedFile};
use crate::{Diagnostic, FileInfo, FileKind};
use std::collections::{BTreeMap, BTreeSet};

/// Determinism: no wall-clock or entropy sources in simulated crates.
pub const WALL_CLOCK: &str = "wall-clock";
/// Determinism: no hash-ordered collections in library code.
pub const HASH_ORDER: &str = "hash-order";
/// Conservation: the ledger mutates only through its audited API.
pub const LEDGER_MUT: &str = "ledger-mut";
/// No `unwrap`/`expect`/`panic!` in simulator-facing library code.
pub const ERROR_HYGIENE: &str = "error-hygiene";
/// No float equality on energy/time quantities.
pub const FLOAT_EQ: &str = "float-eq";
/// No console printing from library code; use grail-trace or errors.
pub const PRINT_HYGIENE: &str = "print-hygiene";
/// Threads and locks are confined to grail-par; use its Runner.
pub const THREAD_CONFINE: &str = "thread-confine";
/// Library crate roots must forbid `unsafe`.
pub const UNSAFE_FORBID: &str = "unsafe-forbid";
/// Pragma hygiene (malformed or unknown suppressions).
pub const PRAGMA: &str = "pragma";
/// Conservation: billable execute paths must reach the ledger.
pub const CHARGE_REACHABILITY: &str = "charge-reachability";
/// Architecture: crate dependencies follow the layer order, no back-edges.
pub const LAYERING: &str = "layering";
/// An allow pragma that suppresses nothing is itself an error.
pub const STALE_PRAGMA: &str = "stale-pragma";
/// Dimensional analysis: no mixing of incompatible unit kinds.
pub const UNIT_MIX: &str = "unit-mix";
/// Raw f64 values must not flow into the ledger's booking sinks.
pub const RAW_ENERGY: &str = "raw-energy";
/// Every charge site must sit under a settlement anchor.
pub const LEDGER_FLOW: &str = "ledger-flow";
/// Parallel-readiness: no interior mutability / non-Send state in sim.
pub const PAR_READINESS: &str = "par-readiness";
/// Metric names are static literals from the grail-metrics catalog,
/// registered exactly once.
pub const METRIC_HYGIENE: &str = "metric-hygiene";
/// Every protocol state machine must be covered by a grail-check model.
pub const MODEL_COVERAGE: &str = "model-coverage";

/// A rule's identity and one-line summary.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id used in diagnostics and pragmas.
    pub id: &'static str,
    /// What the rule protects.
    pub summary: &'static str,
}

/// Every shipped rule.
pub const RULES: &[Rule] = &[
    Rule {
        id: WALL_CLOCK,
        summary: "no host clock / entropy RNG in sim, power, scheduler, core (replay determinism)",
    },
    Rule {
        id: HASH_ORDER,
        summary: "no HashMap/HashSet in library code; use BTreeMap/BTreeSet or sorted iteration",
    },
    Rule {
        id: LEDGER_MUT,
        summary: "EnergyLedger totals move only through its audited API in power/src/ledger.rs",
    },
    Rule {
        id: ERROR_HYGIENE,
        summary: "no unwrap/expect/panic in sim, power, core, scheduler library code; use SimError",
    },
    Rule {
        id: FLOAT_EQ,
        summary: "no ==/!= on raw energy/time floats (.joules(), .as_secs_f64(), ...)",
    },
    Rule {
        id: PRINT_HYGIENE,
        summary: "no println!/eprintln! in library code outside tests; trace or return errors",
    },
    Rule {
        id: THREAD_CONFINE,
        summary: "no std::thread / Mutex / locks outside crates/par; fan out via grail_par::Runner",
    },
    Rule {
        id: UNSAFE_FORBID,
        summary: "library crate roots must carry #![forbid(unsafe_code)]",
    },
    Rule {
        id: PRAGMA,
        summary: "grail-lint pragmas must be well-formed and carry a reason (not suppressible)",
    },
    Rule {
        id: CHARGE_REACHABILITY,
        summary: "Operator execute paths and device service events must reach EnergyLedger::charge/transfer",
    },
    Rule {
        id: LAYERING,
        summary: "crate dependencies must follow the DESIGN layer order; back-edges are regressions",
    },
    Rule {
        id: STALE_PRAGMA,
        summary: "an allow pragma that suppresses zero diagnostics is dead and must be deleted (not suppressible)",
    },
    Rule {
        id: UNIT_MIX,
        summary: "energy/power/time values must not mix dimensions (Joules+Watts, energy*energy, raw J*s)",
    },
    Rule {
        id: RAW_ENERGY,
        summary: "EnergyLedger::charge/charge_interval/transfer take typed units, never raw f64 literals",
    },
    Rule {
        id: LEDGER_FLOW,
        summary: "every charge site must be reachable from a settlement anchor (finish / *Report-returning fn)",
    },
    Rule {
        id: PAR_READINESS,
        summary: "no RefCell/Cell/Rc/static mut/raw pointers in crates/sim (pre-flight for the parallel event loop)",
    },
    Rule {
        id: METRIC_HYGIENE,
        summary: "metric names are string literals from grail_metrics::spec::CATALOG, each registered exactly once",
    },
    Rule {
        id: MODEL_COVERAGE,
        summary: "protocol state machines (mut-self step/advance beside ledger billing and a shard/thread boundary) appear in a grail-check covers list",
    },
];

/// Rules whose diagnostics a pragma can never silence. Suppressing the
/// suppression machinery (or a report that a suppression is dead) would
/// let rot accumulate invisibly.
pub const UNSUPPRESSABLE: &[&str] = &[PRAGMA, STALE_PRAGMA];

/// Crates whose code (tests included) must stay wall-clock-free. Also
/// the reporting scope of the taint layer ([`crate::taint`]): these are
/// the sim-reachable roots.
pub const DETERMINISTIC_CRATES: &[&str] = &["sim", "power", "scheduler", "core"];
/// Crates whose library code must route failures through `SimError`.
const ERROR_HYGIENE_CRATES: &[&str] = &["sim", "power", "core", "scheduler"];
/// The one file allowed to touch `EnergyLedger` internals.
pub(crate) const LEDGER_FILE: &str = "crates/power/src/ledger.rs";

/// Run every per-file token rule over one scanned file and return the
/// *raw* (unsuppressed) diagnostics. Suppression is applied later, at
/// workspace scope, so [`stale_pragmas`] can see which pragmas earned
/// their keep against the full raw set (token + semantic).
pub fn check_tokens(info: &FileInfo, f: &ScannedFile) -> Vec<Diagnostic> {
    let mut raw: Vec<Diagnostic> = Vec::new();
    wall_clock(info, f, &mut raw);
    hash_order(info, f, &mut raw);
    ledger_mut(info, f, &mut raw);
    error_hygiene(info, f, &mut raw);
    float_eq(info, f, &mut raw);
    print_hygiene(info, f, &mut raw);
    thread_confine(info, f, &mut raw);
    unsafe_forbid(info, f, &mut raw);
    metric_hygiene(info, f, &mut raw);
    metric_registration(info, f, &mut raw);
    crate::parready::par_readiness(info, f, &mut raw);
    raw
}

/// Does a pragma in `f` cover diagnostic `d`? Unsuppressable rules
/// never match, whatever the pragma says.
pub fn suppressed(d: &Diagnostic, f: &ScannedFile) -> bool {
    if UNSUPPRESSABLE.contains(&d.rule) {
        return false;
    }
    // `thread-confine` has a second gate: its pragmas only bind inside
    // the sanctioned-file allowlist.
    if d.rule == THREAD_CONFINE && !THREAD_SANCTIONED.contains(&d.file.as_str()) {
        return false;
    }
    f.pragmas.iter().any(|p| {
        p.rule == d.rule
            && match p.scope {
                PragmaScope::File => true,
                PragmaScope::Line(l) => l == d.line,
            }
    })
}

/// Pragma hygiene: malformed pragmas (recorded by the scanner), pragmas
/// naming unknown rules, and pragmas trying to silence unsuppressable
/// rules. Not suppressible.
pub fn pragma_hygiene(rel: &str, f: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for e in &f.pragma_errors {
        out.push(Diagnostic::new(rel, e.at, PRAGMA, e.message.clone()));
    }
    for p in &f.pragmas {
        if !RULES.iter().any(|r| r.id == p.rule) {
            out.push(Diagnostic::new(
                rel,
                p.at,
                PRAGMA,
                format!("pragma suppresses unknown rule `{}`", p.rule),
            ));
        } else if UNSUPPRESSABLE.contains(&p.rule.as_str()) {
            out.push(Diagnostic::new(
                rel,
                p.at,
                PRAGMA,
                format!("the `{}` rule cannot be suppressed", p.rule),
            ));
        } else if p.rule == THREAD_CONFINE && !THREAD_SANCTIONED.contains(&rel) {
            out.push(Diagnostic::new(
                rel,
                p.at,
                PRAGMA,
                format!(
                    "`thread-confine` may only be suppressed in sanctioned files ({}); \
                     move the synchronization into crates/par (or the sanctioned module) \
                     instead of waving it through",
                    THREAD_SANCTIONED.join(", ")
                ),
            ));
        }
    }
    out
}

/// Flag every well-formed, known-rule pragma in `f` that suppresses
/// zero diagnostics from the raw set. A pragma that earns nothing is a
/// trap: it documents a violation that no longer exists and will
/// silently swallow the next unrelated one on its line. Not
/// suppressible.
pub fn stale_pragmas(rel: &str, f: &ScannedFile, raw: &[Diagnostic]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for p in &f.pragmas {
        // Unknown-rule and unsuppressable-rule pragmas are already
        // errors under `pragma`; don't double-report them as stale.
        if !RULES.iter().any(|r| r.id == p.rule) || UNSUPPRESSABLE.contains(&p.rule.as_str()) {
            continue;
        }
        // A thread-confine pragma outside the sanctioned files is
        // already an error under `pragma`; don't pile a staleness
        // report on top (it can never bind, so it is trivially stale).
        if p.rule == THREAD_CONFINE && !THREAD_SANCTIONED.contains(&rel) {
            continue;
        }
        let covers = |line: usize| match p.scope {
            PragmaScope::File => true,
            PragmaScope::Line(l) => l == line,
        };
        let earns = raw
            .iter()
            .any(|d| d.file == rel && d.rule == p.rule && covers(d.line));
        // A wall-clock/hash-order pragma outside the rules' reporting
        // scope can still be doing real work: killing a taint seed
        // (see `crate::taint`). Credit it when a source token sits on
        // a covered line.
        let seed_patterns: Option<&[&str]> = match p.rule.as_str() {
            WALL_CLOCK => Some(WALL_CLOCK_PATTERNS),
            HASH_ORDER => Some(HASH_ORDER_PATTERNS),
            _ => None,
        };
        let earns_seed = seed_patterns.is_some_and(|pats| {
            f.code
                .iter()
                .enumerate()
                .any(|(i, code)| covers(i + 1) && pats.iter().any(|pat| has_token(code, pat)))
        });
        if !earns && !earns_seed {
            out.push(Diagnostic::new(
                rel,
                p.at,
                STALE_PRAGMA,
                format!(
                    "allow({}) suppresses zero diagnostics; delete the pragma (a dead \
                     suppression will silently mask the next real violation here)",
                    p.rule
                ),
            ));
        }
    }
    out
}

/// True when `pat` occurs in `line` on identifier boundaries: when the
/// pattern starts (ends) with an identifier character, the preceding
/// (following) character must not be one, so `Instant::now` does not
/// match inside `SimInstant::nowhere`.
pub fn has_token(line: &str, pat: &str) -> bool {
    !token_positions(line, pat).is_empty()
}

/// Byte offsets of every boundary-respecting occurrence of `pat`.
pub(crate) fn token_positions(line: &str, pat: &str) -> Vec<usize> {
    let first_ident = pat.chars().next().is_some_and(is_ident_char);
    let last_ident = pat.chars().last().is_some_and(is_ident_char);
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(off) = line[from..].find(pat) {
        let start = from + off;
        let end = start + pat.len();
        let pre_ok = !first_ident || !line[..start].chars().next_back().is_some_and(is_ident_char);
        let post_ok = !last_ident || !line[end..].chars().next().is_some_and(is_ident_char);
        if pre_ok && post_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

fn push(out: &mut Vec<Diagnostic>, info: &FileInfo, line: usize, rule: &'static str, msg: String) {
    out.push(Diagnostic::new(info.rel, line, rule, msg));
}

/// Like [`push`], carrying the `[start, start + len)` byte span of the
/// offending token as a 1-based column range.
fn push_tok(
    out: &mut Vec<Diagnostic>,
    info: &FileInfo,
    line: usize,
    start: usize,
    len: usize,
    rule: &'static str,
    msg: String,
) {
    out.push(Diagnostic::new(info.rel, line, rule, msg).with_span(start + 1, start + 1 + len));
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

/// Tokens that read the host clock or an entropy source. Shared with
/// the taint layer, which seeds from the same set.
pub const WALL_CLOCK_PATTERNS: &[&str] = &[
    "Instant::now",
    "std::time::Instant",
    "SystemTime",
    "UNIX_EPOCH",
    "thread_rng",
    "from_entropy",
    "rand::rng",
    "rand::random",
    "OsRng",
    "getrandom",
];

fn wall_clock(info: &FileInfo, f: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !DETERMINISTIC_CRATES.contains(&info.crate_name) {
        return;
    }
    // Tests included: replay-equality tests are only trustworthy if they
    // are themselves clock-free.
    for (i, code) in f.code.iter().enumerate() {
        for pat in WALL_CLOCK_PATTERNS {
            if let Some(&start) = token_positions(code, pat).first() {
                push_tok(
                    out,
                    info,
                    i + 1,
                    start,
                    pat.len(),
                    WALL_CLOCK,
                    format!(
                        "`{pat}` is a nondeterministic time/randomness source; use the \
                         simulation clock (SimInstant) or a seeded RNG"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// hash-order
// ---------------------------------------------------------------------------

/// Hash-ordered collection tokens. Shared with the taint layer.
pub const HASH_ORDER_PATTERNS: &[&str] = &["HashMap", "HashSet"];

fn hash_order(info: &FileInfo, f: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if info.kind != FileKind::Library {
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        if f.is_test_line(i + 1) {
            continue;
        }
        for pat in HASH_ORDER_PATTERNS {
            if let Some(&start) = token_positions(code, pat).first() {
                push_tok(
                    out,
                    info,
                    i + 1,
                    start,
                    pat.len(),
                    HASH_ORDER,
                    format!(
                        "`{pat}` iteration order is nondeterministic and can leak into the \
                         ledger, EnergyReports or experiments.jsonl; use BTreeMap/BTreeSet \
                         or sort before iterating"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ledger-mut
// ---------------------------------------------------------------------------

fn ledger_mut(info: &FileInfo, f: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if info.rel == LEDGER_FILE {
        // Inside the sanctioned file: the accounting fields must stay
        // private, or the audited-API guarantee is void.
        for (i, code) in f.code.iter().enumerate() {
            let t = code.trim_start();
            let is_field = |name: &str| {
                (t.starts_with("pub ") || t.starts_with("pub("))
                    && !t.contains("fn ")
                    && has_token(t, name)
                    && t.contains(&format!("{name}:"))
            };
            if is_field("entries") || is_field("total") {
                push(
                    out,
                    info,
                    i + 1,
                    LEDGER_MUT,
                    "EnergyLedger accounting fields must stay private; expose behavior \
                     through audited methods instead"
                        .to_string(),
                );
            }
        }
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        if has_token(code, "impl EnergyLedger") {
            push(
                out,
                info,
                i + 1,
                LEDGER_MUT,
                "foreign `impl EnergyLedger` could bypass conservation; extend \
                 crates/power/src/ledger.rs instead"
                    .to_string(),
            );
        }
        // `EnergyLedger {` in expression position is a struct literal;
        // skip type positions (`-> EnergyLedger {`, `impl .. for ..`).
        let literal = token_positions(code, "EnergyLedger {")
            .into_iter()
            .any(|pos| {
                let pre = code[..pos].trim_end();
                !(pre.ends_with("->")
                    || pre.ends_with("impl")
                    || pre.ends_with("for")
                    || pre.ends_with("dyn")
                    || pre.ends_with(':'))
            });
        if literal {
            push(
                out,
                info,
                i + 1,
                LEDGER_MUT,
                "constructing EnergyLedger by struct literal bypasses accounting; use \
                 EnergyLedger::new() and charge()/transfer()"
                    .to_string(),
            );
        }
        for pat in [".charge(-", ".charge_interval(-", ".transfer(-"] {
            if code.contains(pat) {
                push(
                    out,
                    info,
                    i + 1,
                    LEDGER_MUT,
                    "negative amounts would destroy Joules; ledger movements must be \
                     non-negative (use transfer to re-attribute)"
                        .to_string(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// error-hygiene
// ---------------------------------------------------------------------------

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

fn error_hygiene(info: &FileInfo, f: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if info.kind != FileKind::Library || !ERROR_HYGIENE_CRATES.contains(&info.crate_name) {
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        if f.is_test_line(i + 1) {
            continue;
        }
        for pat in PANIC_PATTERNS {
            if code.contains(pat) {
                push(
                    out,
                    info,
                    i + 1,
                    ERROR_HYGIENE,
                    format!(
                        "`{pat}` panics in library code; route the failure through SimError \
                         (or justify the invariant with an allow pragma)"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// float-eq
// ---------------------------------------------------------------------------

/// Accessors that expose raw `f64` energy/time quantities.
const FLOAT_ACCESSORS: &[&str] = &[
    ".joules()",
    ".as_secs_f64()",
    ".work_per_joule()",
    ".avg_watts()",
];

fn float_eq(info: &FileInfo, f: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if info.kind != FileKind::Library {
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        if f.is_test_line(i + 1) {
            continue;
        }
        for (pos, op) in equality_ops(code) {
            let left = operand_before(code, pos);
            let right = operand_after(code, pos + op.len());
            let floaty = |s: &str| {
                let s = s.trim_start_matches(['(', '!']);
                FLOAT_ACCESSORS.iter().any(|a| s.ends_with(a))
            };
            if floaty(&left) || floaty(&right) {
                push(
                    out,
                    info,
                    i + 1,
                    FLOAT_EQ,
                    format!(
                        "float equality `{}` on an energy/time quantity; compare with a \
                         tolerance, or on bit patterns (`.to_bits()`) for replay identity",
                        op
                    ),
                );
            }
        }
    }
}

/// Byte positions of standalone `==` / `!=` operators.
fn equality_ops(code: &str) -> Vec<(usize, &'static str)> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < b.len() {
        if b[i] == b'=' && b[i + 1] == b'=' {
            let pre = if i == 0 { b' ' } else { b[i - 1] };
            let post = if i + 2 < b.len() { b[i + 2] } else { b' ' };
            if !matches!(
                pre,
                b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
            ) && post != b'='
            {
                out.push((i, "=="));
            }
            i += 2;
        } else if b[i] == b'!' && b[i + 1] == b'=' && (i + 2 >= b.len() || b[i + 2] != b'=') {
            out.push((i, "!="));
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn operand_before(code: &str, op_start: usize) -> String {
    let s = code[..op_start].trim_end();
    let start = s
        .rfind(|c: char| !(is_ident_char(c) || matches!(c, '.' | '(' | ')' | ':')))
        .map(|p| p + 1)
        .unwrap_or(0);
    s[start..].to_string()
}

fn operand_after(code: &str, op_end: usize) -> String {
    let s = code[op_end..].trim_start();
    let end = s
        .find(|c: char| !(is_ident_char(c) || matches!(c, '.' | '(' | ')' | ':')))
        .unwrap_or(s.len());
    s[..end].to_string()
}

// ---------------------------------------------------------------------------
// print-hygiene
// ---------------------------------------------------------------------------

/// True for files that compile into a binary target, which rightfully
/// owns stdout: `src/main.rs` and anything under `src/bin/`.
fn is_binary_target(rel: &str) -> bool {
    rel == "src/main.rs" || rel.ends_with("/src/main.rs") || rel.contains("/src/bin/")
}

fn print_hygiene(info: &FileInfo, f: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if info.kind != FileKind::Library || is_binary_target(info.rel) {
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        if f.is_test_line(i + 1) {
            continue;
        }
        for pat in ["println!", "eprintln!"] {
            if has_token(code, pat) {
                push(
                    out,
                    info,
                    i + 1,
                    PRINT_HYGIENE,
                    format!(
                        "`{pat}` in library code writes to the console behind the caller's \
                         back; emit a grail-trace event, return the data, or move the \
                         printing into a binary target"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// metric-hygiene
// ---------------------------------------------------------------------------

/// Recording calls whose first argument is the metric name. The leading
/// `.` keeps free functions and same-named locals out of scope.
const METRIC_RECORD_CALLS: &[&str] = &[
    ".count(",
    ".observe(",
    ".gauge(",
    ".gauge_add(",
    ".set_gauge(",
    ".add_gauge(",
    ".rate(",
    ".rate_add(",
];

/// Crates that *implement* the metrics plumbing: they forward names
/// through `&'static str` parameters by design, so the literal check
/// applies only at real instrumentation sites outside them.
const METRIC_PLUMBING_CRATES: &[&str] = &["metrics", "trace"];

/// A string literal starting at byte `pos` of stripped line `i`,
/// recovered from the raw text (the scanner blanks literal contents
/// column-preservingly, so the offsets line up).
fn literal_text(f: &ScannedFile, i: usize, pos: usize) -> String {
    let (Some(code), Some(raw)) = (f.code.get(i), f.raw.get(i)) else {
        return String::new();
    };
    let Some(close) = code.get(pos + 1..).and_then(|s| s.find('"')) else {
        return String::new();
    };
    raw.get(pos + 1..pos + 1 + close).unwrap_or("").to_string()
}

fn metric_hygiene(info: &FileInfo, f: &ScannedFile, out: &mut Vec<Diagnostic>) {
    // Binary targets (the watchdog, figure generators) read metrics back
    // out of registries through parameterized helpers; the literal rule
    // bites at the instrumentation sites in library code.
    if info.kind != FileKind::Library
        || is_binary_target(info.rel)
        || METRIC_PLUMBING_CRATES.contains(&info.crate_name)
    {
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        if f.is_test_line(i + 1) {
            continue;
        }
        for pat in METRIC_RECORD_CALLS {
            let mut from = 0usize;
            while let Some(at) = code[from..].find(pat) {
                let open = from + at + pat.len();
                from = open;
                // The first argument sits after the `(` — or at the
                // start of the next line when rustfmt broke the call.
                let rest = code[open..].trim_start();
                let (arg_line, arg_pos, arg) = if rest.is_empty() {
                    let next = f.code.get(i + 1).map(String::as_str).unwrap_or("");
                    let lead = next.len() - next.trim_start().len();
                    (i + 1, lead, next.trim_start())
                } else {
                    (i, open + (code[open..].len() - rest.len()), rest)
                };
                if arg.starts_with(')') {
                    continue; // argument-less `.count()` is Iterator::count
                }
                if arg.starts_with('"') {
                    let name = literal_text(f, arg_line, arg_pos);
                    if grail_metrics::spec::spec_for(&name).is_none() {
                        push(
                            out,
                            info,
                            i + 1,
                            METRIC_HYGIENE,
                            format!(
                                "metric `{name}` is not registered in \
                                 grail_metrics::spec::CATALOG; add a MetricSpec for it \
                                 (exporters and the watchdog only see cataloged names)"
                            ),
                        );
                    }
                } else {
                    push(
                        out,
                        info,
                        i + 1,
                        METRIC_HYGIENE,
                        format!(
                            "metric name passed to `{}...)` is not a string literal; \
                             runtime-built names (format!, variables) create unbounded \
                             cardinality and defeat the static catalog",
                            pat.trim_start_matches('.')
                        ),
                    );
                }
            }
        }
    }
}

/// Each catalog name is declared exactly once: within any file that
/// declares `MetricSpec` entries, a repeated `name: "..."` literal is a
/// duplicate registration.
fn metric_registration(info: &FileInfo, f: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if info.kind != FileKind::Library || !f.code.iter().any(|l| l.contains("MetricSpec")) {
        return;
    }
    const FIELD: &str = "name: \"";
    let mut first_seen: BTreeMap<String, usize> = BTreeMap::new();
    for (i, code) in f.code.iter().enumerate() {
        if f.is_test_line(i + 1) {
            continue;
        }
        let mut from = 0usize;
        while let Some(at) = code[from..].find(FIELD) {
            let abs = from + at;
            from = abs + FIELD.len();
            // `objective_name:` etc. share the suffix but not the token.
            if code[..abs].ends_with(is_ident_char) {
                continue;
            }
            let name = literal_text(f, i, abs + FIELD.len() - 1);
            match first_seen.get(&name) {
                Some(&line) => push(
                    out,
                    info,
                    i + 1,
                    METRIC_HYGIENE,
                    format!(
                        "metric `{name}` is registered more than once (first at line {line}); \
                         the catalog must hold exactly one MetricSpec per name"
                    ),
                ),
                None => {
                    first_seen.insert(name, i + 1);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// thread-confine
// ---------------------------------------------------------------------------

/// The one crate allowed to spawn threads and hold locks.
const THREAD_CRATE: &str = "par";

/// Files outside `crates/par` sanctioned to hold synchronization
/// primitives — currently only the intra-simulation parallel event
/// loop, which delegates its spawning to `grail_par::shard` but still
/// names `std::thread` (core autodetection). A `thread-confine` pragma
/// is honored ONLY in these files (the reason stays mandatory);
/// anywhere else the pragma is itself a `pragma` error, so a stray
/// Mutex elsewhere in crates/sim cannot be waved through.
pub const THREAD_SANCTIONED: &[&str] = &["crates/sim/src/parallel.rs"];

const THREAD_PATTERNS: &[&str] = &[
    "std::thread",
    "thread::spawn",
    "thread::scope",
    "thread::Builder",
    "Mutex",
    "RwLock",
    "Condvar",
    "mpsc::channel",
    "mpsc::sync_channel",
    "rayon",
    "crossbeam",
];

fn thread_confine(info: &FileInfo, f: &ScannedFile, out: &mut Vec<Diagnostic>) {
    // Tests included: a test that spawns its own threads can observe —
    // and start depending on — a nondeterministic completion order.
    if info.crate_name == THREAD_CRATE {
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        for pat in THREAD_PATTERNS {
            if has_token(code, pat) {
                push(
                    out,
                    info,
                    i + 1,
                    THREAD_CONFINE,
                    format!(
                        "`{pat}` outside crates/par: scheduling must never reach observable \
                         state; fan independent work through grail_par::Runner, which merges \
                         in input order"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// unsafe-forbid
// ---------------------------------------------------------------------------

fn unsafe_forbid(info: &FileInfo, f: &ScannedFile, out: &mut Vec<Diagnostic>) {
    let is_lib_root = info.rel == "src/lib.rs"
        || (info.rel.starts_with("crates/") && info.rel.ends_with("/src/lib.rs"));
    if !is_lib_root {
        return;
    }
    let has = f.code.iter().any(|l| l.contains("#![forbid(unsafe_code)]"));
    if !has {
        push(
            out,
            info,
            1,
            UNSAFE_FORBID,
            "library crate root must carry `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

// ---------------------------------------------------------------------------
// charge-reachability
// ---------------------------------------------------------------------------

/// Sink methods on `EnergyLedger` — the only places energy is booked.
pub(crate) const SINK_METHODS: &[&str] = &["charge", "charge_interval", "transfer"];

/// Demand conduits: methods that *record* demand which a later
/// settlement pass bills. A path ending at a conduit is considered
/// charged because `Simulation::finish` settles every recorded tally —
/// and a separate fixed check below keeps *that* promise honest.
fn is_conduit(d: &crate::graph::FnDef) -> bool {
    (d.crate_name == "query"
        && d.impl_type.as_deref() == Some("ExecContext")
        && matches!(
            d.name.as_str(),
            "charge_cpu" | "charge_read" | "charge_write" | "charge_io"
        ))
        || (d.crate_name == "power"
            && d.impl_type.as_deref() == Some("PowerStateMachine")
            && matches!(d.name.as_str(), "set_state" | "advance_to"))
}

/// Is this function a billable entry point? Every `Operator::next` in
/// the query crate (an execute path pulls batches and burns CPU/IO) and
/// every device service event in the sim crate (serving a request moves
/// a power state machine).
fn is_entry(d: &crate::graph::FnDef) -> bool {
    if d.in_test || d.kind != FileKind::Library {
        return false;
    }
    (d.crate_name == "query" && d.name == "next" && d.impl_trait.as_deref() == Some("Operator"))
        || (d.crate_name == "sim"
            && d.impl_type.is_some()
            && matches!(d.name.as_str(), "serve" | "compute" | "compute_parallel"))
}

/// Conservation, statically: every billable entry point must reach an
/// `EnergyLedger` sink through the call graph — directly, or via a
/// demand conduit that `Simulation::finish` settles. If the workspace
/// under analysis has no ledger sinks at all (single-file checks,
/// partial corpora), the rule stays silent: reachability over an absent
/// ledger proves nothing.
pub fn charge_reachability(graph: &WorkspaceGraph) -> Vec<Diagnostic> {
    let sinks: BTreeSet<usize> = graph
        .find(|d| {
            d.file == LEDGER_FILE
                && d.impl_type.as_deref() == Some("EnergyLedger")
                && SINK_METHODS.contains(&d.name.as_str())
        })
        .into_iter()
        .collect();
    if sinks.is_empty() {
        return Vec::new();
    }
    let settle = graph.find(|d| {
        d.crate_name == "sim" && d.impl_type.as_deref() == Some("Simulation") && d.name == "finish"
    });
    // Conduit -> settlement bridge edges. Without a settlement function
    // in scope, conduits bridge straight to the sinks (the conduit
    // declaration is then taken on faith — better than false alarms on
    // partial corpora).
    let bridge_to: Vec<usize> = if settle.is_empty() {
        sinks.iter().copied().collect()
    } else {
        settle.clone()
    };
    let mut bridges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for id in graph.find(is_conduit) {
        bridges.insert(id, bridge_to.clone());
    }
    let mut out = Vec::new();
    for id in graph.find(is_entry) {
        if !graph.reaches_any(id, &sinks, &bridges) {
            let d = &graph.fns[id];
            let what = if d.crate_name == "query" {
                "an Operator execute path"
            } else {
                "a device service event"
            };
            out.push(Diagnostic::new(
                d.file.clone(),
                d.line,
                CHARGE_REACHABILITY,
                format!(
                    "`{}` is {what} that never reaches `EnergyLedger::charge`/`transfer` \
                     (directly or via a demand conduit); simulated work must never be free",
                    d.qualified()
                ),
            ));
        }
    }
    // The settlement function underwrites every conduit bridge above,
    // so it must itself reach both booking primitives: `charge` for
    // recorded demand, `transfer` for re-attribution (recovery).
    for id in settle {
        let d = &graph.fns[id];
        for method in ["charge", "transfer"] {
            let wanted: BTreeSet<usize> = sinks
                .iter()
                .copied()
                .filter(|&s| graph.fns[s].name == method)
                .collect();
            if !wanted.is_empty() && !graph.reaches_any(id, &wanted, &BTreeMap::new()) {
                out.push(Diagnostic::new(
                    d.file.clone(),
                    d.line,
                    CHARGE_REACHABILITY,
                    format!(
                        "`{}` settles the demand conduits but never reaches \
                         `EnergyLedger::{method}`; the settlement promise is broken",
                        d.qualified()
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------------

/// The crate layer order from DESIGN.md §7. A crate may depend only on
/// crates in strictly lower layers; an edge to the same or a higher
/// layer is a back-edge.
pub const LAYERS: &[(&str, u32)] = &[
    ("metrics", 0),
    ("par", 0),
    ("power", 1),
    ("trace", 1),
    ("lint", 1),
    ("sim", 2),
    ("storage", 2),
    ("buffer", 3),
    ("scheduler", 3),
    ("query", 4),
    ("check", 4),
    ("workload", 5),
    ("optimizer", 5),
    ("core", 6),
    ("bench", 7),
    ("grail", 7),
];

fn layer_of(crate_name: &str) -> Option<u32> {
    LAYERS
        .iter()
        .find(|(n, _)| *n == crate_name)
        .map(|(_, l)| *l)
}

fn layering_diag(file: &str, line: usize, from: &str, to: &str, via: &str) -> Diagnostic {
    let (lf, lt) = (layer_of(from).unwrap_or(0), layer_of(to).unwrap_or(0));
    Diagnostic::new(
        file,
        line,
        LAYERING,
        format!(
            "`{from}` (layer {lf}) must not depend on `{to}` (layer {lt}) {via}; \
             dependencies point strictly downward in the DESIGN layer order"
        ),
    )
}

/// Source-level layering: any `grail_<crate>` path in non-test library
/// code is a dependency edge, whether or not Cargo.toml admits it.
pub fn layering_source(info: &FileInfo, f: &ScannedFile) -> Vec<Diagnostic> {
    let Some(from) = layer_of(info.crate_name) else {
        return Vec::new();
    };
    if info.kind != FileKind::Library {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, code) in f.code.iter().enumerate() {
        if f.is_test_line(i + 1) {
            continue;
        }
        let mut rest = code.as_str();
        let mut base = 0usize;
        while let Some(off) = rest.find("grail_") {
            let start = base + off;
            let pre_ok = !code[..start].chars().next_back().is_some_and(is_ident_char);
            let tail: String = code[start + "grail_".len()..]
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect();
            base = start + "grail_".len();
            rest = &code[base..];
            if !pre_ok || tail.is_empty() || tail == info.crate_name {
                continue;
            }
            let Some(to) = layer_of(&tail) else { continue };
            if to >= from {
                out.push(layering_diag(
                    info.rel,
                    i + 1,
                    info.crate_name,
                    &tail,
                    "here",
                ));
            }
        }
    }
    out
}

/// Manifest-level layering: `grail-*` entries in a `[dependencies]`
/// section of `crates/<name>/Cargo.toml` (or the root manifest). Dev
/// dependencies are exempt — tests may reach across layers.
pub fn layering_manifest(rel: &str, source: &str) -> Vec<Diagnostic> {
    let from = manifest_crate_name(rel);
    let Some(from_layer) = layer_of(from) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut in_deps = false;
    for (i, line) in source.lines().enumerate() {
        let t = line.trim();
        if t.starts_with('[') {
            in_deps = t == "[dependencies]";
            continue;
        }
        if !in_deps || !t.starts_with("grail-") {
            continue;
        }
        let dep: String = t["grail-".len()..]
            .chars()
            .take_while(|&c| is_ident_char(c) || c == '-')
            .collect();
        let Some(to_layer) = layer_of(&dep) else {
            continue;
        };
        if to_layer >= from_layer {
            out.push(layering_diag(rel, i + 1, from, &dep, "in its manifest"));
        }
    }
    out
}

/// The crate a manifest belongs to: `crates/<name>/Cargo.toml` names
/// the member crate, the root `Cargo.toml` names the facade (`grail`).
fn manifest_crate_name(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next(), parts.next()) {
        (Some("crates"), Some(name), Some("Cargo.toml")) => name,
        _ => "grail",
    }
}

// ---------------------------------------------------------------------------
// model-coverage
// ---------------------------------------------------------------------------

/// Crates whose library code can host a checkable protocol state machine.
const MODEL_CRATES: &[&str] = &["sim", "par", "scheduler"];
/// Evidence that a file bills the energy ledger.
const MODEL_LEDGER_TOKENS: &[&str] = &[
    ".charge(",
    ".charge_interval(",
    ".transfer(",
    "bill_recovery",
];
/// Evidence that a file sits on a thread/shard protocol boundary.
const MODEL_BOUNDARY_TOKENS: &[&str] =
    &["ShardStep", "HorizonProtocol", "grail_par", "ChaosSchedule"];
/// Where new covers entries belong (named in the diagnostic).
const MODEL_REGISTRY_FILE: &str = "crates/check/src/registry.rs";

/// Model-coverage: every type implementing the protocol-state-machine
/// idiom — a `step`/`advance` method taking `&mut self`, declared in a
/// [`MODEL_CRATES`] library file that both bills the `EnergyLedger`
/// ([`MODEL_LEDGER_TOKENS`]) and sits on a thread/shard boundary
/// ([`MODEL_BOUNDARY_TOKENS`]) — must be named in a `covers` list of
/// the `grail-check` model registry. A state machine nobody
/// model-checks is exactly the code whose next refactor reintroduces a
/// horizon or failover bug that only shows up under rare interleavings.
///
/// When no `covers` declaration is in scope (a synthetic workspace with
/// no `crates/check` sources, e.g. a fixture corpus), the rule is
/// silent: there is no registry to hold the machines against.
pub fn model_coverage(
    graph: &WorkspaceGraph,
    files: &BTreeMap<String, &ScannedFile>,
) -> Vec<Diagnostic> {
    let covered = check_covers(files);
    if covered.is_empty() {
        return Vec::new();
    }
    // First sighting of each machine, keyed by required covers name.
    let mut machines: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for d in &graph.fns {
        if d.kind != FileKind::Library
            || d.in_test
            || !d.mut_self
            || !MODEL_CRATES.contains(&d.crate_name.as_str())
            || !matches!(d.name.as_str(), "step" | "advance")
        {
            continue;
        }
        let Some(ty) = &d.impl_type else { continue };
        let Some(f) = files.get(&d.file) else {
            continue;
        };
        let has_any = |pats: &[&str]| {
            f.code
                .iter()
                .any(|code| pats.iter().any(|pat| has_token(code, pat)))
        };
        if !has_any(MODEL_LEDGER_TOKENS) || !has_any(MODEL_BOUNDARY_TOKENS) {
            continue;
        }
        let name = if d.module.is_empty() {
            format!("{}::{}", d.crate_name, ty)
        } else {
            format!("{}::{}::{}", d.crate_name, d.module, ty)
        };
        let at = (d.file.clone(), d.line);
        machines
            .entry(name)
            .and_modify(|e| {
                if at < *e {
                    *e = at.clone();
                }
            })
            .or_insert(at);
    }
    machines
        .into_iter()
        .filter(|(name, _)| !covered.contains(name))
        .map(|(name, (file, line))| {
            Diagnostic::new(
                file,
                line,
                MODEL_COVERAGE,
                format!(
                    "`{name}` is a protocol state machine (a mutating `step`/`advance` \
                     beside ledger billing and a shard/thread boundary) that no \
                     grail-check model covers; add it to a model's `covers` list in \
                     {MODEL_REGISTRY_FILE} and make that model exercise it"
                ),
            )
        })
        .collect()
}

/// Every string literal inside a `covers: [...]` block of the
/// grail-check library sources.
fn check_covers(files: &BTreeMap<String, &ScannedFile>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (rel, f) in files {
        if !rel.starts_with("crates/check/src/") {
            continue;
        }
        let mut in_covers = false;
        for (i, code) in f.code.iter().enumerate() {
            if !in_covers {
                // `covers` immediately followed by `:` opens a block
                // (`covers: &[...]`); `e.covers.iter()` does not.
                in_covers = token_positions(code, "covers")
                    .into_iter()
                    .any(|p| code[p + "covers".len()..].trim_start().starts_with(':'));
            }
            if in_covers {
                let raw = f.raw.get(i).map(String::as_str).unwrap_or("");
                for lit in string_literals(code, raw) {
                    out.insert(lit);
                }
                if code.contains(']') {
                    in_covers = false;
                }
            }
        }
    }
    out
}

/// The contents of every string literal on one line, recovered from the
/// raw text: the scanner's column-preserving blanking keeps the quote
/// characters in the stripped code while the contents survive only in
/// `raw`.
fn string_literals(code: &str, raw: &str) -> Vec<String> {
    let raw_chars: Vec<char> = raw.chars().collect();
    let mut out = Vec::new();
    let mut open: Option<usize> = None;
    for (i, c) in code.chars().enumerate() {
        if c != '"' {
            continue;
        }
        match open.take() {
            None => open = Some(i),
            Some(s) => {
                if i <= raw_chars.len() {
                    out.push(raw_chars[s + 1..i].iter().collect());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::check_source;

    fn rules_at(rel: &str, src: &str) -> Vec<(usize, String)> {
        check_source(rel, src)
            .into_iter()
            .map(|d| (d.line, d.rule.to_string()))
            .collect()
    }

    const LIB_OK: &str = "#![forbid(unsafe_code)]\n";

    // -- wall-clock ---------------------------------------------------------

    #[test]
    fn wall_clock_triggers_on_host_time_and_entropy() {
        let bad = "fn f() { let t = std::time::Instant::now(); }\n\
                   fn g() { let r = rand::rng(); }\n";
        let got = rules_at("crates/sim/src/x.rs", bad);
        assert!(got.contains(&(1, "wall-clock".into())), "{got:?}");
        assert!(got.contains(&(2, "wall-clock".into())), "{got:?}");
    }

    #[test]
    fn wall_clock_passes_sim_clock_and_out_of_scope_crates() {
        // SimInstant and seeded RNGs are the sanctioned sources.
        let ok = "fn f(now: SimInstant) { let rng = ChaCha8Rng::seed_from_u64(7); }\n";
        assert!(rules_at("crates/sim/src/x.rs", ok).is_empty());
        // The same host-clock call outside the deterministic crates is
        // not this rule's business.
        let elsewhere = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(rules_at("crates/storage/src/x.rs", elsewhere).is_empty());
    }

    #[test]
    fn wall_clock_is_not_fooled_by_comments_or_identifiers() {
        let ok = "// SystemTime would be wrong here\n\
                  fn f() { let s = \"SystemTime\"; let x = MySystemTimeLike; }\n";
        // `MySystemTimeLike` shares a substring but not a token.
        assert!(rules_at("crates/power/src/x.rs", ok).is_empty());
    }

    // -- hash-order ---------------------------------------------------------

    #[test]
    fn hash_order_triggers_in_library_code() {
        let bad = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }\n";
        let got = rules_at("crates/buffer/src/x.rs", bad);
        assert_eq!(
            got,
            vec![(1, "hash-order".into()), (2, "hash-order".into())]
        );
    }

    #[test]
    fn hash_order_passes_btree_tests_and_pragmas() {
        let ok = "use std::collections::BTreeMap;\n";
        assert!(rules_at("crates/buffer/src/x.rs", ok).is_empty());
        // Test modules may hash freely.
        let test_mod =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert!(rules_at("crates/buffer/src/x.rs", test_mod).is_empty());
        // A pragma with a reason suppresses; the reason is mandatory.
        let allowed = "// grail-lint: allow(hash-order, lookup-only, never iterated)\n\
                       use std::collections::HashMap;\n";
        assert!(rules_at("crates/query/src/x.rs", allowed).is_empty());
    }

    // -- ledger-mut ---------------------------------------------------------

    #[test]
    fn ledger_mut_triggers_on_foreign_impls_and_literals() {
        let bad = "impl EnergyLedger { fn sneak(&mut self) {} }\n\
                   fn f() { let l = EnergyLedger { entries: x, total: y }; }\n\
                   fn g(l: &mut EnergyLedger) { l.charge(-1.0); }\n";
        let got = rules_at("crates/sim/src/x.rs", bad);
        assert!(got.contains(&(1, "ledger-mut".into())), "{got:?}");
        assert!(got.contains(&(2, "ledger-mut".into())), "{got:?}");
        assert!(got.contains(&(3, "ledger-mut".into())), "{got:?}");
    }

    #[test]
    fn ledger_mut_passes_audited_use_and_flags_pub_fields_at_home() {
        let ok = "fn f(l: &mut EnergyLedger) { l.charge(id, e); l.transfer(a, b, e); }\n\
                  fn mk() -> EnergyLedger { EnergyLedger::new() }\n";
        assert!(rules_at("crates/sim/src/x.rs", ok).is_empty());
        // In ledger.rs itself the fields must stay private.
        let home_bad = "pub struct EnergyLedger {\n    pub entries: BTreeMap<ComponentId, Joules>,\n    total: Joules,\n}\n";
        let got = rules_at("crates/power/src/ledger.rs", home_bad);
        assert_eq!(got, vec![(2, "ledger-mut".into())]);
        let home_ok = "pub struct EnergyLedger {\n    entries: BTreeMap<ComponentId, Joules>,\n    total: Joules,\n}\npub fn total(&self) {}\n";
        assert!(rules_at("crates/power/src/ledger.rs", home_ok).is_empty());
    }

    // -- error-hygiene ------------------------------------------------------

    #[test]
    fn error_hygiene_triggers_on_panicky_library_code() {
        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"set\") }\n\
                   fn h() { panic!(\"no\"); }\n";
        let got = rules_at("crates/core/src/x.rs", bad);
        assert_eq!(got.len(), 3, "{got:?}");
        assert!(got.iter().all(|(_, r)| r == "error-hygiene"));
    }

    #[test]
    fn error_hygiene_passes_results_tests_and_other_crates() {
        let ok = "fn f(x: Option<u32>) -> Result<u32, SimError> {\n\
                      x.ok_or(SimError::Finished)\n\
                  }\n\
                  fn g(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(rules_at("crates/sim/src/x.rs", ok).is_empty());
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(rules_at("crates/sim/src/x.rs", in_tests).is_empty());
        // Integration tests and non-simulator crates are out of scope.
        assert!(rules_at("crates/sim/tests/x.rs", "fn t() { None::<u32>.unwrap(); }").is_empty());
        assert!(rules_at("crates/query/src/x.rs", "fn f() { None::<u32>.unwrap(); }").is_empty());
    }

    // -- float-eq -----------------------------------------------------------

    #[test]
    fn float_eq_triggers_on_energy_equality() {
        let bad = "fn f(a: Joules, b: Joules) -> bool { a.joules() == b.joules() }\n\
                   fn g(d: SimDuration) -> bool { d.as_secs_f64() != 0.0 }\n";
        let got = rules_at("crates/power/src/x.rs", bad);
        assert_eq!(got, vec![(1, "float-eq".into()), (2, "float-eq".into())]);
    }

    #[test]
    fn float_eq_passes_tolerances_bits_and_unrelated_equality() {
        let ok = "fn f(a: Joules, b: Joules) -> bool { (a.joules() - b.joules()).abs() < 1e-9 }\n\
                  fn g(a: Joules, b: Joules) -> bool { a.joules().to_bits() == b.joules().to_bits() }\n\
                  fn h(i: usize) -> bool { i == 0 }\n\
                  fn k(a: Joules) -> bool { a.joules() > 0.0 && 1 == 1 }\n";
        assert!(rules_at("crates/power/src/x.rs", ok).is_empty());
    }

    // -- print-hygiene ------------------------------------------------------

    #[test]
    fn print_hygiene_triggers_in_library_code() {
        let bad = "fn f() { println!(\"{}\", 1); }\nfn g() { eprintln!(\"oops\"); }\n";
        let got = rules_at("crates/query/src/x.rs", bad);
        assert_eq!(
            got,
            vec![(1, "print-hygiene".into()), (2, "print-hygiene".into())]
        );
    }

    #[test]
    fn print_hygiene_passes_binaries_tests_and_pragmas() {
        let printing = "fn main() { println!(\"hello\"); }\n";
        // Binary targets own stdout.
        assert!(rules_at("crates/bench/src/bin/fig1.rs", printing).is_empty());
        assert!(rules_at("crates/lint/src/main.rs", printing).is_empty());
        // Test modules and test-like files may print freely.
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"dbg\"); }\n}\n";
        assert!(rules_at("crates/query/src/x.rs", in_tests).is_empty());
        assert!(rules_at("crates/query/tests/x.rs", printing).is_empty());
        // A pragma with a reason suppresses.
        let allowed = "fn f() { println!(\"row\"); } // grail-lint: allow(print-hygiene, console reporting helper for the bench binaries)\n";
        assert!(rules_at("crates/bench/src/record.rs", allowed).is_empty());
        // write!/writeln! to a caller-supplied sink are fine.
        let ok = "fn f(w: &mut impl Write) { writeln!(w, \"x\").ok(); }\n";
        assert!(rules_at("crates/query/src/x.rs", ok).is_empty());
    }

    // -- metric-hygiene -----------------------------------------------------

    #[test]
    fn metric_hygiene_triggers_on_unregistered_and_dynamic_names() {
        let bad = "fn f(t: &mut Tracer) {\n\
                   \x20   t.count(\"no.such.metric\", 1);\n\
                   \x20   let name = format!(\"q.{}\", 7);\n\
                   \x20   t.gauge(&name, 1.0);\n\
                   }\n";
        let got = rules_at("crates/sim/src/x.rs", bad);
        assert!(got.contains(&(2, "metric-hygiene".into())), "{got:?}");
        assert!(got.contains(&(4, "metric-hygiene".into())), "{got:?}");
    }

    #[test]
    fn metric_hygiene_passes_cataloged_names_and_iterator_count() {
        let ok = "fn f(t: &mut Tracer, xs: &[u8]) {\n\
                  \x20   t.count(\"db.queries\", 1);\n\
                  \x20   t.gauge(\"chaos.shed_rate\", 0.1);\n\
                  \x20   let n = xs.iter().count();\n\
                  }\n";
        assert!(rules_at("crates/core/src/x.rs", ok).is_empty());
        // Test code and binary targets are out of scope.
        let in_tests =
            "#[cfg(test)]\nmod tests {\n    fn t(tr: &mut Tracer) { tr.count(\"ad.hoc\", 1); }\n}\n";
        assert!(rules_at("crates/sim/src/x.rs", in_tests).is_empty());
        let bin = "fn main() { reg.gauge(name); }\n";
        assert!(rules_at("crates/bench/src/bin/fig1.rs", bin).is_empty());
    }

    #[test]
    fn metric_hygiene_flags_duplicate_registration() {
        let dup = "pub const CATALOG: &[MetricSpec] = &[\n\
                   \x20   MetricSpec { name: \"a.b\", kind: MetricKind::Counter },\n\
                   \x20   MetricSpec {\n\
                   \x20       name: \"a.b\",\n\
                   \x20       kind: MetricKind::Gauge,\n\
                   \x20   },\n\
                   ];\n";
        let got = rules_at("crates/metrics/src/spec.rs", dup);
        assert!(got.contains(&(4, "metric-hygiene".into())), "{got:?}");
    }

    // -- thread-confine -----------------------------------------------------

    #[test]
    fn thread_confine_triggers_outside_par() {
        let bad = "fn f() { std::thread::spawn(|| {}); }\n\
                   fn g() { let m = std::sync::Mutex::new(0); }\n\
                   fn h() { let l: RwLock<u32>; }\n";
        let got = rules_at("crates/sim/src/x.rs", bad);
        assert!(got.contains(&(1, "thread-confine".into())), "{got:?}");
        assert!(got.contains(&(2, "thread-confine".into())), "{got:?}");
        assert!(got.contains(&(3, "thread-confine".into())), "{got:?}");
        // Tests are not exempt: thread use there can start encoding
        // scheduling-dependent expectations.
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
        assert!(rules_at("crates/query/src/x.rs", in_tests).contains(&(3, "thread-confine".into())));
    }

    #[test]
    fn thread_confine_passes_par_crate_and_lookalikes() {
        let threads = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n\
                       fn g() { let m = std::sync::Mutex::new(0); }\n";
        assert!(rules_at("crates/par/src/x.rs", threads).is_empty());
        assert!(rules_at("crates/par/tests/determinism.rs", threads).is_empty());
        // Identifier lookalikes don't match on token boundaries.
        let ok = "fn f() { let x = MutexGuardLike; single_threaded(); }\n";
        assert!(rules_at("crates/sim/src/x.rs", ok).is_empty());
    }

    #[test]
    fn thread_confine_pragma_binds_only_in_sanctioned_files() {
        // In the sanctioned module a reasoned pragma authorizes the
        // exception.
        let allowed =
            "// grail-lint: allow-file(thread-confine, sanctioned intra-sim parallelism home)\n\
                       fn f() { let n = std::thread::available_parallelism(); }\n";
        assert!(rules_at("crates/sim/src/parallel.rs", allowed).is_empty());
        // Anywhere else the identical pragma is itself an error AND the
        // violation still reports: no waving a stray Mutex through.
        let waved = "fn g() { let m = std::sync::Mutex::new(0); } // grail-lint: allow(thread-confine, trust me)\n";
        let got = rules_at("crates/sim/src/cache.rs", waved);
        assert!(got.contains(&(1, "thread-confine".into())), "{got:?}");
        assert!(got.contains(&(1, "pragma".into())), "{got:?}");
        // ...and it is not double-reported as stale.
        assert!(!got.contains(&(1, "stale-pragma".into())), "{got:?}");
    }

    // -- unsafe-forbid ------------------------------------------------------

    #[test]
    fn unsafe_forbid_triggers_on_missing_attribute() {
        let got = rules_at("crates/sim/src/lib.rs", "pub mod x;\n");
        assert_eq!(got, vec![(1, "unsafe-forbid".into())]);
        assert_eq!(
            rules_at("src/lib.rs", "pub use grail_core as core;\n"),
            vec![(1, "unsafe-forbid".into())]
        );
    }

    #[test]
    fn unsafe_forbid_passes_attributed_roots_and_non_roots() {
        assert!(rules_at("crates/sim/src/lib.rs", LIB_OK).is_empty());
        // Non-root files don't need the attribute.
        assert!(rules_at("crates/sim/src/cpu.rs", "pub fn f() {}\n").is_empty());
    }

    // -- pragmas ------------------------------------------------------------

    #[test]
    fn pragma_without_reason_is_an_error() {
        let src = "// grail-lint: allow(hash-order)\nuse std::collections::HashMap;\n";
        let got = rules_at("crates/buffer/src/x.rs", src);
        // The missing reason is an error AND the suppression is void.
        assert!(got.contains(&(1, "pragma".into())), "{got:?}");
        assert!(got.contains(&(2, "hash-order".into())), "{got:?}");
    }

    #[test]
    fn pragma_unknown_rule_is_an_error() {
        let src = "// grail-lint: allow(no-such-rule, because)\nfn f() {}\n";
        let got = rules_at("crates/buffer/src/x.rs", src);
        assert_eq!(got, vec![(1, "pragma".into())]);
    }

    #[test]
    fn pragma_scopes_line_trailing_and_file() {
        // Trailing pragma covers its own line only.
        let trailing = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // grail-lint: allow(error-hygiene, fixture)\n\
                        fn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let got = rules_at("crates/sim/src/x.rs", trailing);
        assert_eq!(got, vec![(2, "error-hygiene".into())]);
        // File-scope pragma covers everything.
        let file = "// grail-lint: allow-file(error-hygiene, fixture file)\n\
                    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                    fn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(rules_at("crates/sim/src/x.rs", file).is_empty());
    }

    #[test]
    fn stale_pragmas_are_flagged_and_unsuppressable() {
        // A pragma suppressing nothing is itself an error.
        let dead = "// grail-lint: allow(hash-order, was needed once)\nfn f() {}\n";
        let got = rules_at("crates/buffer/src/x.rs", dead);
        assert_eq!(got, vec![(1, "stale-pragma".into())]);
        // A pragma that earns its keep is not stale.
        let live = "// grail-lint: allow(hash-order, lookup only, never iterated)\n\
                    use std::collections::HashMap;\n";
        assert!(rules_at("crates/buffer/src/x.rs", live).is_empty());
        // And stale-pragma itself cannot be suppressed.
        let meta = "// grail-lint: allow(stale-pragma, trust me)\nfn f() {}\n";
        let got = rules_at("crates/buffer/src/x.rs", meta);
        assert_eq!(got, vec![(1, "pragma".into())]);
    }

    // -- semantic rules -----------------------------------------------------

    use crate::{check_files, SourceFile};

    fn sf(rel: &str, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            source: src.to_string(),
        }
    }

    #[test]
    fn taint_reports_boundary_call_with_full_chain() {
        let helper = "\
pub fn jitter() -> u64 {
    entropy_word()
}
pub fn entropy_word() -> u64 {
    let t = SystemTime::now();
    0
}
";
        let sim = "pub fn advance() {\n    let j = jitter();\n}\n";
        let got = check_files(&[
            sf("crates/storage/src/util.rs", helper),
            sf("crates/sim/src/drv.rs", sim),
        ]);
        assert_eq!(got.len(), 1, "{got:?}");
        let d = &got[0];
        assert_eq!(
            (d.file.as_str(), d.line, d.rule),
            ("crates/sim/src/drv.rs", 2, "wall-clock")
        );
        assert!(
            d.message.contains(
                "`jitter` → `entropy_word` → `SystemTime` (crates/storage/src/util.rs:5)"
            ),
            "{}",
            d.message
        );
    }

    #[test]
    fn taint_hash_order_crosses_crate_boundaries() {
        let helper = "pub fn lookup() -> u32 {\n    let m = HashMap::from([(1, 2)]);\n    0\n}\n";
        let sched = "pub fn pick() -> u32 {\n    lookup()\n}\n";
        let got = check_files(&[
            sf("crates/workload/src/h.rs", helper),
            sf("crates/scheduler/src/s.rs", sched),
        ]);
        // The literal token reports in workload (a library crate)...
        assert!(
            got.iter()
                .any(|d| d.file == "crates/workload/src/h.rs" && d.rule == "hash-order"),
            "{got:?}"
        );
        // ...and the taint layer reports the boundary crossing with the chain.
        assert!(
            got.iter().any(|d| d.file == "crates/scheduler/src/s.rs"
                && d.line == 2
                && d.rule == "hash-order"
                && d.message.contains("`lookup` → `HashMap`")),
            "{got:?}"
        );
    }

    #[test]
    fn taint_respects_pragmas_at_the_source() {
        let helper = "pub fn lookup() -> u32 {\n    let m = HashMap::from([(1, 2)]); // grail-lint: allow(hash-order, lookup only, never iterated)\n    0\n}\n";
        let sched = "pub fn pick() -> u32 {\n    lookup()\n}\n";
        let got = check_files(&[
            sf("crates/query/src/h.rs", helper),
            sf("crates/scheduler/src/s.rs", sched),
        ]);
        // The reasoned pragma kills the seed, so nothing crosses.
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn charge_reachability_flags_unbilled_service_paths() {
        let ledger = "\
impl EnergyLedger {
    pub fn charge(&mut self, id: ComponentId, e: Joules) {}
    pub fn charge_interval(&mut self, id: ComponentId, e: Joules) {}
    pub fn transfer(&mut self, from: ComponentId, to: ComponentId, e: Joules) {}
}
";
        let good = "\
impl DiskDevice {
    pub fn serve(&mut self, at: SimInstant) {
        self.bill(at);
    }
    fn bill(&mut self, at: SimInstant) {
        self.ledger.charge(id, e);
    }
    pub fn drain(&mut self, at: SimInstant) -> DrainReport {
        self.bill(at);
        DrainReport {}
    }
}
";
        let bad = "\
impl SsdDevice {
    pub fn serve(&mut self, at: SimInstant) {
        let x = idle_work();
    }
}
fn idle_work() -> u32 {
    0
}
";
        let got = check_files(&[
            sf("crates/power/src/ledger.rs", ledger),
            sf("crates/sim/src/disk.rs", good),
            sf("crates/sim/src/ssd.rs", bad),
        ]);
        assert_eq!(got.len(), 1, "{got:?}");
        let d = &got[0];
        assert_eq!(
            (d.file.as_str(), d.line, d.rule),
            ("crates/sim/src/ssd.rs", 2, "charge-reachability")
        );
        assert!(d.message.contains("device service event"), "{}", d.message);
        assert!(d.message.contains("`SsdDevice::serve`"), "{}", d.message);
    }

    #[test]
    fn charge_reachability_accepts_conduit_bridges() {
        let ledger = "\
impl EnergyLedger {
    pub fn charge(&mut self, id: ComponentId, e: Joules) {}
    pub fn transfer(&mut self, from: ComponentId, to: ComponentId, e: Joules) {}
}
";
        // The operator only deposits demand in the ExecContext; the
        // settlement function bills it later. The conduit bridge must
        // connect the two.
        let ops = "\
impl Operator for ColScan {
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Batch>, QueryError> {
        ctx.charge_read(t, b, a);
        Ok(None)
    }
}
impl ExecContext {
    pub fn charge_read(&mut self, t: SimInstant, b: u64, a: u64) {
        self.reads += b;
    }
}
";
        let sim = "\
impl Simulation {
    pub fn finish(self, end: SimInstant) -> SimReport {
        self.ledger.charge(id, e);
        self.ledger.transfer(a, b, e);
        SimReport {}
    }
}
";
        let got = check_files(&[
            sf("crates/power/src/ledger.rs", ledger),
            sf("crates/query/src/exec.rs", ops),
            sf("crates/sim/src/sim.rs", sim),
        ]);
        assert!(got.is_empty(), "{got:?}");
        // Break the settlement promise: finish stops transferring.
        let sim_broken = "\
impl Simulation {
    pub fn finish(self, end: SimInstant) -> SimReport {
        self.ledger.charge(id, e);
        SimReport {}
    }
}
";
        let got = check_files(&[
            sf("crates/power/src/ledger.rs", ledger),
            sf("crates/query/src/exec.rs", ops),
            sf("crates/sim/src/sim.rs", sim_broken),
        ]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "charge-reachability");
        assert!(
            got[0].message.contains("EnergyLedger::transfer"),
            "{}",
            got[0].message
        );
    }

    #[test]
    fn charge_reachability_is_silent_without_a_ledger_in_scope() {
        // Single-file and partial corpora prove nothing about
        // reachability; the rule must not cry wolf there.
        let orphan = "impl DiskDevice {\n    pub fn serve(&mut self, at: SimInstant) {}\n}\n";
        assert!(rules_at("crates/sim/src/disk.rs", orphan).is_empty());
    }

    #[test]
    fn layering_flags_back_edges_in_source() {
        let src = "use grail_core::GrailDb;\nfn f() {}\n";
        let got = rules_at("crates/power/src/bad.rs", src);
        assert_eq!(got, vec![(1, "layering".into())]);
        // Downward edges are fine.
        let ok = "use grail_power::units::Joules;\nfn f() {}\n";
        assert!(rules_at("crates/sim/src/good.rs", ok).is_empty());
        // Tests may reach across layers.
        let test_src = "use grail_core::GrailDb;\nfn f() {}\n";
        assert!(rules_at("crates/power/tests/x.rs", test_src).is_empty());
    }

    #[test]
    fn layering_flags_back_edges_in_manifests() {
        let manifest = "\
[package]
name = \"grail-power\"

[dependencies]
grail-core = { path = \"../core\" }
grail-trace = { path = \"../trace\" }

[dev-dependencies]
grail-sim = { path = \"../sim\" }
";
        let got = super::layering_manifest("crates/power/Cargo.toml", manifest);
        // grail-core is a back-edge (layer 5 from layer 0); grail-trace
        // is sideways inside layer 0 (also banned); grail-sim is a dev
        // dependency and exempt.
        let lines: Vec<usize> = got.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![5, 6], "{got:?}");
        assert!(got.iter().all(|d| d.rule == "layering"));
        // A conforming manifest is clean.
        let ok = "[dependencies]\ngrail-power = { path = \"../power\" }\n";
        assert!(super::layering_manifest("crates/sim/Cargo.toml", ok).is_empty());
    }

    #[test]
    fn strings_and_comments_never_trigger_rules() {
        let src = "fn f() -> &'static str { \".unwrap() HashMap SystemTime panic!\" }\n\
                   // .unwrap() HashMap SystemTime panic! EnergyLedger {\n\
                   /* .unwrap()\n   HashMap */\n\
                   fn g() -> char { 'a' }\n";
        assert!(rules_at("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_strings_are_stripped() {
        let src = "fn f() -> &'static str { r#\"x.unwrap() == y.joules()\"# }\n";
        assert!(rules_at("crates/sim/src/x.rs", src).is_empty());
    }
}
