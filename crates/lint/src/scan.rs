//! Source scanning: comment/string stripping, suppression pragmas, and
//! `#[cfg(test)]` region detection.
//!
//! The scanner turns raw Rust source into per-line *code text* in which
//! comments and string-literal contents have been blanked out, so rules
//! match real code tokens and never fire on doc prose or fixture
//! strings. While stripping, it collects `// grail-lint:` suppression
//! pragmas and marks the line ranges covered by `#[cfg(test)]` items.

/// Scope of a suppression pragma.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PragmaScope {
    /// Suppresses diagnostics on one 1-based line.
    Line(usize),
    /// Suppresses the rule for the whole file.
    File,
}

/// A parsed `// grail-lint: allow(rule-id, reason)` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule being suppressed.
    pub rule: String,
    /// The mandatory human justification.
    pub reason: String,
    /// What the pragma covers.
    pub scope: PragmaScope,
    /// 1-based line of the pragma comment itself.
    pub at: usize,
}

/// A pragma the scanner could not accept (missing reason, bad syntax).
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// 1-based line of the offending comment.
    pub at: usize,
    /// Why it was rejected.
    pub message: String,
}

/// One scanned source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Per-line code text, comments and string contents blanked.
    pub code: Vec<String>,
    /// `in_test[i]` is true when line `i+1` sits inside a
    /// `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Well-formed suppression pragmas.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas (always reported as errors).
    pub pragma_errors: Vec<PragmaError>,
}

impl ScannedFile {
    /// True when the 1-based `line` is inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.in_test.get(line - 1).copied().unwrap_or(false)
    }
}

/// Marker every pragma comment must start with (after `//`).
pub const PRAGMA_TAG: &str = "grail-lint:";

struct RawPragma {
    rule: String,
    reason: String,
    file_scope: bool,
    at: usize,
    /// True when the pragma comment shares its line with code, in which
    /// case it covers that line; otherwise it covers the next code line.
    trailing: bool,
}

/// Strip `source` and collect pragmas and test regions.
pub fn scan(source: &str) -> ScannedFile {
    let (code, comments) = strip(source);
    let in_test = mark_test_regions(&code);
    let mut pragmas = Vec::new();
    let mut pragma_errors = Vec::new();
    for (line_idx, text) in comments {
        let at = line_idx + 1;
        let trailing = !code[line_idx].trim().is_empty();
        parse_pragma_comment(&text, at, trailing, &mut pragmas, &mut pragma_errors);
    }
    let pragmas = pragmas
        .into_iter()
        .filter_map(|p| {
            if p.file_scope {
                return Some(Pragma {
                    rule: p.rule,
                    reason: p.reason,
                    scope: PragmaScope::File,
                    at: p.at,
                });
            }
            let target = if p.trailing {
                Some(p.at)
            } else {
                // A pragma on its own line covers the next line that
                // carries code.
                (p.at..code.len()).find_map(|i| {
                    if code[i].trim().is_empty() {
                        None
                    } else {
                        Some(i + 1)
                    }
                })
            };
            match target {
                Some(line) => Some(Pragma {
                    rule: p.rule,
                    reason: p.reason,
                    scope: PragmaScope::Line(line),
                    at: p.at,
                }),
                None => {
                    pragma_errors.push(PragmaError {
                        at: p.at,
                        message: "pragma has no following code line to cover".to_string(),
                    });
                    None
                }
            }
        })
        .collect();
    ScannedFile {
        code,
        in_test,
        pragmas,
        pragma_errors,
    }
}

/// Blank comments and string contents, preserving line structure.
/// Returns the per-line code text plus every `//` comment's text keyed
/// by 0-based line index.
fn strip(source: &str) -> (Vec<String>, Vec<(usize, String)>) {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    let n = chars.len();
    let at = |i: usize| if i < n { chars[i] } else { '\0' };
    while i < n {
        let c = chars[i];
        if c == '\n' {
            out.push('\n');
            line += 1;
            i += 1;
        } else if c == '/' && at(i + 1) == '/' {
            // Line comment: capture text, blank it from the code.
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            comments.push((line, text));
        } else if c == '/' && at(i + 1) == '*' {
            // Block comment, possibly nested; newlines preserved.
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && at(i + 1) == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && at(i + 1) == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        out.push('\n');
                        line += 1;
                    }
                    i += 1;
                }
            }
        } else if is_raw_string_start(&chars, i) {
            i = skip_raw_string(&chars, i, &mut out, &mut line);
        } else if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        out.push('"');
                        i += 1;
                        break;
                    }
                    '\n' => {
                        out.push('\n');
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
        } else if c == '\'' {
            // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
            if at(i + 1) == '\\' {
                // Escaped char literal: skip to the closing quote.
                i += 2;
                while i < n && chars[i] != '\'' {
                    i += 1;
                }
                out.push('\'');
                out.push('\'');
                i += 1;
            } else if at(i + 2) == '\'' && at(i + 1) != '\'' {
                out.push('\'');
                out.push('\'');
                i += 3;
            } else {
                // Lifetime: keep the tick, let the identifier follow.
                out.push('\'');
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    let code = out.split('\n').map(|l| l.to_string()).collect();
    (code, comments)
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // r"..." , r#"..."# , br"..." , b"..." is plain; only the r-forms
    // are raw. Require a non-identifier char before `r` so identifiers
    // ending in `r` don't trigger.
    let n = chars.len();
    let mut j = i;
    if j < n && chars[j] == 'b' {
        j += 1;
    }
    if j >= n || chars[j] != 'r' {
        return false;
    }
    if i > 0 && is_ident_char(chars[i - 1]) {
        return false;
    }
    let mut k = j + 1;
    while k < n && chars[k] == '#' {
        k += 1;
    }
    k < n && chars[k] == '"'
}

fn skip_raw_string(chars: &[char], mut i: usize, out: &mut String, line: &mut usize) -> usize {
    let n = chars.len();
    if chars[i] == 'b' {
        i += 1;
    }
    i += 1; // past `r`
    let mut hashes = 0usize;
    while i < n && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    out.push('"');
    i += 1; // past opening quote
    while i < n {
        if chars[i] == '"' {
            let mut m = 0usize;
            while m < hashes && i + 1 + m < n && chars[i + 1 + m] == '#' {
                m += 1;
            }
            if m == hashes {
                out.push('"');
                return i + 1 + hashes;
            }
            i += 1;
        } else {
            if chars[i] == '\n' {
                out.push('\n');
                *line += 1;
            }
            i += 1;
        }
    }
    i
}

/// True for characters that can appear in a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn parse_pragma_comment(
    text: &str,
    at: usize,
    trailing: bool,
    pragmas: &mut Vec<RawPragma>,
    errors: &mut Vec<PragmaError>,
) {
    // The tag must open the comment (`// grail-lint: ...`); comments
    // merely *mentioning* the syntax mid-sentence are prose, not pragmas.
    let head = text.trim_start_matches(['/', '!']).trim_start();
    if !head.starts_with(PRAGMA_TAG) {
        return;
    }
    let body = &head[PRAGMA_TAG.len()..];
    let mut found = false;
    let mut rest = body;
    loop {
        let (kw, file_scope) = match (rest.find("allow-file("), rest.find("allow(")) {
            (Some(a), Some(b)) if a < b => (a, true),
            (Some(a), None) => (a, true),
            (_, Some(b)) => (b, false),
            (None, None) => break,
        };
        let open = kw
            + if file_scope {
                "allow-file(".len()
            } else {
                "allow(".len()
            };
        let Some(close) = matching_paren(rest, open) else {
            errors.push(PragmaError {
                at,
                message: "unclosed `allow(...)` pragma".to_string(),
            });
            return;
        };
        let inner = &rest[open..close];
        match inner.split_once(',') {
            Some((rule, reason)) if !reason.trim().is_empty() => {
                pragmas.push(RawPragma {
                    rule: rule.trim().to_string(),
                    reason: reason.trim().to_string(),
                    file_scope,
                    at,
                    trailing,
                });
            }
            _ => {
                errors.push(PragmaError {
                    at,
                    message: format!(
                        "pragma `allow({})` needs a reason: `allow(rule-id, why this is sound)`",
                        inner.trim()
                    ),
                });
            }
        }
        found = true;
        rest = &rest[close..];
    }
    if !found {
        errors.push(PragmaError {
            at,
            message: "unrecognized grail-lint pragma; expected `allow(rule-id, reason)` or \
                      `allow-file(rule-id, reason)`"
                .to_string(),
        });
    }
}

/// Index just past the `(`'s matching `)`, given `open` pointing at the
/// first char inside the parens.
fn matching_paren(s: &str, open: usize) -> Option<usize> {
    let mut depth = 1usize;
    for (off, c) in s[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

/// Mark the line spans of `#[cfg(test)]` items (typically the trailing
/// `mod tests { ... }`).
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let len = code.len();
    let mut out = vec![false; len];
    let mut i = 0usize;
    while i < len {
        if out[i] || !code[i].contains("cfg(test)") {
            i += 1;
            continue;
        }
        // Find the annotated item: skip further attribute-only lines.
        let after_attr = code[i]
            .find("cfg(test)")
            .and_then(|p| code[i][p..].find(']').map(|q| p + q + 1))
            .unwrap_or(0);
        let mut j = if code[i][after_attr..].trim().is_empty() {
            i + 1
        } else {
            i
        };
        while j < len && code[j].trim().is_empty() {
            j += 1;
        }
        while j < len && code[j].trim_start().starts_with("#[") {
            j += 1;
        }
        if j >= len {
            for slot in out.iter_mut().skip(i) {
                *slot = true;
            }
            break;
        }
        // Walk to the end of the item: matching brace block, or the
        // terminating `;` for brace-less items.
        let mut depth = 0usize;
        let mut opened = false;
        let mut k = j;
        while k < len {
            let mut done = false;
            for c in code[k].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            done = true;
                        }
                    }
                    ';' if !opened => done = true,
                    _ => {}
                }
            }
            if done {
                break;
            }
            k += 1;
        }
        let end = k.min(len - 1);
        for slot in out.iter_mut().take(end + 1).skip(i) {
            *slot = true;
        }
        i = end + 1;
    }
    out
}
