//! Source scanning: comment/string stripping, suppression pragmas, and
//! `#[cfg(test)]` region detection.
//!
//! The scanner turns raw Rust source into per-line *code text* in which
//! comments and string-literal contents have been blanked out, so rules
//! match real code tokens and never fire on doc prose or fixture
//! strings. While stripping, it collects `// grail-lint:` suppression
//! pragmas and marks the line ranges covered by `#[cfg(test)]` items.

/// Scope of a suppression pragma.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PragmaScope {
    /// Suppresses diagnostics on one 1-based line.
    Line(usize),
    /// Suppresses the rule for the whole file.
    File,
}

/// A parsed `// grail-lint: allow(rule-id, reason)` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule being suppressed.
    pub rule: String,
    /// The mandatory human justification.
    pub reason: String,
    /// What the pragma covers.
    pub scope: PragmaScope,
    /// 1-based line of the pragma comment itself.
    pub at: usize,
}

/// A pragma the scanner could not accept (missing reason, bad syntax).
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// 1-based line of the offending comment.
    pub at: usize,
    /// Why it was rejected.
    pub message: String,
}

/// One scanned source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Per-line code text, comments and string contents blanked.
    pub code: Vec<String>,
    /// Per-line original text. Blanking is column-preserving, so a byte
    /// offset into `code[i]` indexes the same character in `raw[i]` —
    /// which is how rules that must *read* a string literal (e.g.
    /// metric-hygiene) recover its contents.
    pub raw: Vec<String>,
    /// `in_test[i]` is true when line `i+1` sits inside a
    /// `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Well-formed suppression pragmas.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas (always reported as errors).
    pub pragma_errors: Vec<PragmaError>,
}

impl ScannedFile {
    /// True when the 1-based `line` is inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.in_test.get(line - 1).copied().unwrap_or(false)
    }
}

/// Marker every pragma comment must start with (after `//`).
pub const PRAGMA_TAG: &str = "grail-lint:";

/// Bumped whenever `strip`'s output can change for the same input, so
/// cached per-file analyses (`crate::cache`) never survive a tokenizer
/// change. v3: `ScannedFile` carries the raw line text alongside the
/// blanked text.
pub const TOKENIZER_VERSION: u32 = 3;

struct RawPragma {
    rule: String,
    reason: String,
    file_scope: bool,
    at: usize,
    /// True when the pragma comment shares its line with code, in which
    /// case it covers that line; otherwise it covers the next code line.
    trailing: bool,
}

/// Strip `source` and collect pragmas and test regions.
pub fn scan(source: &str) -> ScannedFile {
    let (code, comments) = strip(source);
    let in_test = mark_test_regions(&code);
    let mut pragmas = Vec::new();
    let mut pragma_errors = Vec::new();
    for (line_idx, text) in comments {
        let at = line_idx + 1;
        let trailing = !code[line_idx].trim().is_empty();
        parse_pragma_comment(&text, at, trailing, &mut pragmas, &mut pragma_errors);
    }
    let pragmas = pragmas
        .into_iter()
        .filter_map(|p| {
            if p.file_scope {
                return Some(Pragma {
                    rule: p.rule,
                    reason: p.reason,
                    scope: PragmaScope::File,
                    at: p.at,
                });
            }
            let target = if p.trailing {
                Some(p.at)
            } else {
                // A pragma on its own line covers the next line that
                // carries code.
                (p.at..code.len()).find_map(|i| {
                    if code[i].trim().is_empty() {
                        None
                    } else {
                        Some(i + 1)
                    }
                })
            };
            match target {
                Some(line) => Some(Pragma {
                    rule: p.rule,
                    reason: p.reason,
                    scope: PragmaScope::Line(line),
                    at: p.at,
                }),
                None => {
                    pragma_errors.push(PragmaError {
                        at: p.at,
                        message: "pragma has no following code line to cover".to_string(),
                    });
                    None
                }
            }
        })
        .collect();
    // `lines()` drops the empty segment after a trailing newline that
    // `strip` keeps; pad so `raw` and `code` index identically.
    let mut raw: Vec<String> = source.lines().map(str::to_string).collect();
    raw.resize(code.len(), String::new());
    ScannedFile {
        code,
        raw,
        in_test,
        pragmas,
        pragma_errors,
    }
}

/// Blank comments and string contents, preserving line structure *and*
/// column positions: every blanked character becomes one space (newlines
/// stay newlines), so byte offsets into the stripped text are byte
/// offsets into the original line — which is what lets diagnostics carry
/// exact column spans and keeps tokens on either side of a blanked
/// region (`x/*c*/y`) from merging.
/// Returns the per-line code text plus every `//` comment's text keyed
/// by 0-based line index.
fn strip(source: &str) -> (Vec<String>, Vec<(usize, String)>) {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    let n = chars.len();
    let at = |i: usize| if i < n { chars[i] } else { '\0' };
    // Blank one source char: a space in place of code, a real newline so
    // line structure survives.
    let blank = |out: &mut String, line: &mut usize, c: char| {
        if c == '\n' {
            out.push('\n');
            *line += 1;
        } else {
            out.push(' ');
        }
    };
    while i < n {
        let c = chars[i];
        if c == '\n' {
            out.push('\n');
            line += 1;
            i += 1;
        } else if c == '/' && at(i + 1) == '/' {
            // Line comment: capture text, blank it from the code.
            let start = i;
            while i < n && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            comments.push((line, text));
        } else if c == '/' && at(i + 1) == '*' {
            // Block comment, possibly nested; newlines preserved.
            let mut depth = 1usize;
            out.push_str("  ");
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && at(i + 1) == '*' {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && at(i + 1) == '/' {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    blank(&mut out, &mut line, chars[i]);
                    i += 1;
                }
            }
        } else if is_raw_string_start(&chars, i) {
            i = skip_raw_string(&chars, i, &mut out, &mut line);
        } else if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => {
                        out.push(' ');
                        if i + 1 < n {
                            blank(&mut out, &mut line, chars[i + 1]);
                        }
                        i += 2;
                    }
                    '"' => {
                        out.push('"');
                        i += 1;
                        break;
                    }
                    other => {
                        blank(&mut out, &mut line, other);
                        i += 1;
                    }
                }
            }
        } else if c == '\'' {
            // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
            if at(i + 1) == '\\' {
                // Escaped char literal: blank to the closing quote.
                out.push('\'');
                out.push(' ');
                i += 2;
                while i < n && chars[i] != '\'' {
                    blank(&mut out, &mut line, chars[i]);
                    i += 1;
                }
                out.push('\'');
                i += 1;
            } else if at(i + 2) == '\'' && at(i + 1) != '\'' {
                out.push('\'');
                out.push(' ');
                out.push('\'');
                i += 3;
            } else {
                // Lifetime: keep the tick, let the identifier follow.
                out.push('\'');
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    let code = out.split('\n').map(|l| l.to_string()).collect();
    (code, comments)
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // r"..." , r#"..."# , br"..." , b"..." is plain; only the r-forms
    // are raw. Require a non-identifier char before `r` so identifiers
    // ending in `r` don't trigger.
    let n = chars.len();
    let mut j = i;
    if j < n && chars[j] == 'b' {
        j += 1;
    }
    if j >= n || chars[j] != 'r' {
        return false;
    }
    if i > 0 && is_ident_char(chars[i - 1]) {
        return false;
    }
    let mut k = j + 1;
    while k < n && chars[k] == '#' {
        k += 1;
    }
    k < n && chars[k] == '"'
}

fn skip_raw_string(chars: &[char], mut i: usize, out: &mut String, line: &mut usize) -> usize {
    let n = chars.len();
    if chars[i] == 'b' {
        out.push(' ');
        i += 1;
    }
    out.push(' ');
    i += 1; // past `r`
    let mut hashes = 0usize;
    while i < n && chars[i] == '#' {
        out.push(' ');
        hashes += 1;
        i += 1;
    }
    out.push('"');
    i += 1; // past opening quote
    while i < n {
        if chars[i] == '"' {
            let mut m = 0usize;
            while m < hashes && i + 1 + m < n && chars[i + 1 + m] == '#' {
                m += 1;
            }
            if m == hashes {
                out.push('"');
                for _ in 0..hashes {
                    out.push(' ');
                }
                return i + 1 + hashes;
            }
            out.push(' ');
            i += 1;
        } else {
            if chars[i] == '\n' {
                out.push('\n');
                *line += 1;
            } else {
                out.push(' ');
            }
            i += 1;
        }
    }
    i
}

/// True for characters that can appear in a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn parse_pragma_comment(
    text: &str,
    at: usize,
    trailing: bool,
    pragmas: &mut Vec<RawPragma>,
    errors: &mut Vec<PragmaError>,
) {
    // The tag must open the comment (`// grail-lint: ...`); comments
    // merely *mentioning* the syntax mid-sentence are prose, not pragmas.
    let head = text.trim_start_matches(['/', '!']).trim_start();
    if !head.starts_with(PRAGMA_TAG) {
        return;
    }
    let body = &head[PRAGMA_TAG.len()..];
    let mut found = false;
    let mut rest = body;
    loop {
        let (kw, file_scope) = match (rest.find("allow-file("), rest.find("allow(")) {
            (Some(a), Some(b)) if a < b => (a, true),
            (Some(a), None) => (a, true),
            (_, Some(b)) => (b, false),
            (None, None) => break,
        };
        let open = kw
            + if file_scope {
                "allow-file(".len()
            } else {
                "allow(".len()
            };
        let Some(close) = matching_paren(rest, open) else {
            errors.push(PragmaError {
                at,
                message: "unclosed `allow(...)` pragma".to_string(),
            });
            return;
        };
        let inner = &rest[open..close];
        match inner.split_once(',') {
            Some((rule, reason)) if !reason.trim().is_empty() => {
                pragmas.push(RawPragma {
                    rule: rule.trim().to_string(),
                    reason: reason.trim().to_string(),
                    file_scope,
                    at,
                    trailing,
                });
            }
            _ => {
                errors.push(PragmaError {
                    at,
                    message: format!(
                        "pragma `allow({})` needs a reason: `allow(rule-id, why this is sound)`",
                        inner.trim()
                    ),
                });
            }
        }
        found = true;
        rest = &rest[close..];
    }
    if !found {
        errors.push(PragmaError {
            at,
            message: "unrecognized grail-lint pragma; expected `allow(rule-id, reason)` or \
                      `allow-file(rule-id, reason)`"
                .to_string(),
        });
    }
}

/// Index just past the `(`'s matching `)`, given `open` pointing at the
/// first char inside the parens.
fn matching_paren(s: &str, open: usize) -> Option<usize> {
    let mut depth = 1usize;
    for (off, c) in s[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

/// Mark the line spans of `#[cfg(test)]` items (typically the trailing
/// `mod tests { ... }`).
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let len = code.len();
    let mut out = vec![false; len];
    let mut i = 0usize;
    while i < len {
        if out[i] || !code[i].contains("cfg(test)") {
            i += 1;
            continue;
        }
        // Find the annotated item: skip further attribute-only lines.
        let after_attr = code[i]
            .find("cfg(test)")
            .and_then(|p| code[i][p..].find(']').map(|q| p + q + 1))
            .unwrap_or(0);
        let mut j = if code[i][after_attr..].trim().is_empty() {
            i + 1
        } else {
            i
        };
        while j < len && code[j].trim().is_empty() {
            j += 1;
        }
        while j < len && code[j].trim_start().starts_with("#[") {
            j += 1;
        }
        if j >= len {
            for slot in out.iter_mut().skip(i) {
                *slot = true;
            }
            break;
        }
        // Walk to the end of the item: matching brace block, or the
        // terminating `;` for brace-less items.
        let mut depth = 0usize;
        let mut opened = false;
        let mut k = j;
        while k < len {
            let mut done = false;
            for c in code[k].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            done = true;
                        }
                    }
                    ';' if !opened => done = true,
                    _ => {}
                }
            }
            if done {
                break;
            }
            k += 1;
        }
        let end = k.min(len - 1);
        for slot in out.iter_mut().take(end + 1).skip(i) {
            *slot = true;
        }
        i = end + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan(src).code
    }

    #[test]
    fn raw_strings_blank_but_keep_columns() {
        let src = "let s = r#\"HashMap::new()\"#; let x = 1;\n";
        let code = code_of(src);
        assert!(!code[0].contains("HashMap"), "raw string content leaked");
        // Every char of the literal became exactly one output char, so
        // the code after it sits at its original column.
        assert_eq!(code[0].len(), src.trim_end().len());
        assert_eq!(code[0].find("let x"), src.find("let x"));
    }

    #[test]
    fn raw_strings_with_many_hashes_and_byte_prefix() {
        for src in [
            "let s = r##\"a\"# still \"##; f();\n",
            "let s = br#\"bytes\"#; f();\n",
            "let s = r\"plain raw\"; f();\n",
        ] {
            let code = code_of(src);
            assert_eq!(code[0].len(), src.trim_end().len(), "{src:?}");
            assert_eq!(code[0].find("f();"), src.find("f();"), "{src:?}");
            assert!(!code[0].contains("raw") && !code[0].contains("bytes"));
        }
    }

    #[test]
    fn multiline_raw_string_preserves_line_count() {
        let src = "let s = r#\"line one\nInstant::now()\nlast\"#;\nf();\n";
        let scanned = scan(src);
        assert_eq!(scanned.code.len(), src.split('\n').count());
        assert!(scanned.code.iter().all(|l| !l.contains("Instant")));
        assert_eq!(scanned.code[3], "f();");
    }

    #[test]
    fn nested_block_comments_blank_fully() {
        let src = "a /* outer /* inner */ still outer */ b\n";
        let code = code_of(src);
        assert_eq!(code[0].len(), src.trim_end().len());
        assert!(!code[0].contains("inner") && !code[0].contains("outer"));
        assert_eq!(code[0].find('a'), Some(0));
        assert_eq!(code[0].find('b'), src.find('b'));
    }

    #[test]
    fn block_comment_no_longer_merges_tokens() {
        // Before column preservation `x/*c*/y` stripped to `xy` — a
        // token that exists nowhere in the source.
        let code = code_of("let v = x/*c*/y;\n");
        assert!(!code[0].contains("xy"));
        assert!(code[0].contains("x     y"));
    }

    #[test]
    fn strings_blank_to_spaces_keeping_quotes_and_columns() {
        let src = "let s = \"Instant::now() \\\" quoted\"; g();\n";
        let code = code_of(src);
        assert_eq!(code[0].len(), src.trim_end().len());
        assert!(!code[0].contains("Instant"));
        assert_eq!(code[0].find("g();"), src.find("g();"));
        assert_eq!(code[0].matches('"').count(), 2);
    }

    #[test]
    fn char_literals_and_lifetimes_keep_length() {
        let src = "let c = 'x'; let d = '\\n'; fn f<'a>(v: &'a str) {}\n";
        let code = code_of(src);
        assert_eq!(code[0].len(), src.trim_end().len());
        assert!(code[0].contains("'a"), "lifetime must survive");
        assert!(!code[0].contains('x'));
    }

    #[test]
    fn line_comments_blank_to_spaces_and_are_captured() {
        let src = "let a = 1; // trailing HashMap note\n";
        let scanned = scan(src);
        assert!(!scanned.code[0].contains("HashMap"));
        assert_eq!(scanned.code[0].len(), src.trim_end().len());
    }

    #[test]
    fn pragma_on_comment_only_line_still_covers_next_code_line() {
        let src = "// grail-lint: allow(hash-order, fixture)\nuse std::x;\n";
        let scanned = scan(src);
        assert_eq!(scanned.pragmas.len(), 1);
        assert_eq!(scanned.pragmas[0].scope, PragmaScope::Line(2));
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let src = "use std::x; // grail-lint: allow(hash-order, fixture)\n";
        let scanned = scan(src);
        assert_eq!(scanned.pragmas.len(), 1);
        assert_eq!(scanned.pragmas[0].scope, PragmaScope::Line(1));
    }

    #[test]
    fn unterminated_block_comment_is_all_blank() {
        let code = code_of("a /* never closed\nsecond line\n");
        assert!(code[0].starts_with('a'));
        assert!(code[1].trim().is_empty());
    }
}
