//! The `grail-lint` binary: lint the workspace, print rustc-style
//! diagnostics (or a SARIF 2.1.0 log), exit nonzero on any violation.
//!
//! Usage: `grail-lint [OPTIONS] [WORKSPACE_ROOT]` (root defaults to the
//! current directory, or the workspace root when run via
//! `cargo run -p grail-lint`).
//!
//! * `--format text|sarif` — output format (default `text`). SARIF
//!   goes to stdout so it can be redirected into an artifact.
//! * `--threads N` / `--sequential` — fan the per-file stage across N
//!   threads; output is byte-identical at any thread count.
//! * `--cache-dir DIR` — memoize per-file analyses under DIR so only
//!   changed files are re-analyzed; output is byte-identical to an
//!   uncached run.
//! * `--par-report PATH` — also write the parallel-readiness audit for
//!   `crates/sim` (JSON) to PATH.
//! * `--bench-json PATH` — also write a wall-clock ledger (JSON) for
//!   the lint run to PATH.
//! * `--fix` — apply machine-applicable fixes in place (today: delete
//!   dead `allow` pragmas flagged by `stale-pragma`), then re-lint and
//!   report what remains.
//! * `--list-rules` — print the rule table and exit.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Apply every machine-applicable fix implied by `diags` to the files
/// under `root`, returning how many pragmas were removed.
fn apply_fixes(root: &Path, diags: &[grail_lint::Diagnostic]) -> Result<usize, String> {
    let mut by_file: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
    for d in diags {
        if d.rule == grail_lint::rules::STALE_PRAGMA {
            by_file.entry(&d.file).or_default().insert(d.line);
        }
    }
    let mut removed = 0usize;
    for (rel, lines) in &by_file {
        let path = root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR));
        let source =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        if let Some(fixed) = grail_lint::fix::remove_stale_pragmas(&source, lines) {
            fs::write(&path, fixed).map_err(|e| format!("write {}: {e}", path.display()))?;
            removed += lines.len();
        }
    }
    Ok(removed)
}

fn main() -> ExitCode {
    // Wall-clock here is presentation, not simulation: the lint binary
    // reports its own cost in BENCH_lint.json, nothing replayable.
    let started = std::time::Instant::now();
    let mut args: Vec<String> = env::args().skip(1).collect();
    let runner = grail_par::Runner::from_cli_args(&mut args);
    if args.iter().any(|a| a == "--list-rules") {
        for rule in grail_lint::rules::RULES {
            println!("{:<20} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    let mut format = "text".to_string();
    let mut cache_dir: Option<PathBuf> = None;
    let mut par_report: Option<PathBuf> = None;
    let mut bench_json: Option<PathBuf> = None;
    let mut fix = false;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let take_value = |it: &mut std::vec::IntoIter<String>, flag: &str| match it.next() {
            Some(v) => Ok(v),
            None => {
                eprintln!("grail-lint: {flag} requires a value");
                Err(())
            }
        };
        if a == "--format" {
            match take_value(&mut it, "--format") {
                Ok(f) => format = f,
                Err(()) => return ExitCode::FAILURE,
            }
        } else if let Some(f) = a.strip_prefix("--format=") {
            format = f.to_string();
        } else if a == "--cache-dir" {
            match take_value(&mut it, "--cache-dir") {
                Ok(d) => cache_dir = Some(PathBuf::from(d)),
                Err(()) => return ExitCode::FAILURE,
            }
        } else if let Some(d) = a.strip_prefix("--cache-dir=") {
            cache_dir = Some(PathBuf::from(d));
        } else if a == "--par-report" {
            match take_value(&mut it, "--par-report") {
                Ok(p) => par_report = Some(PathBuf::from(p)),
                Err(()) => return ExitCode::FAILURE,
            }
        } else if let Some(p) = a.strip_prefix("--par-report=") {
            par_report = Some(PathBuf::from(p));
        } else if a == "--bench-json" {
            match take_value(&mut it, "--bench-json") {
                Ok(p) => bench_json = Some(PathBuf::from(p)),
                Err(()) => return ExitCode::FAILURE,
            }
        } else if let Some(p) = a.strip_prefix("--bench-json=") {
            bench_json = Some(PathBuf::from(p));
        } else if a == "--fix" {
            fix = true;
        } else {
            positional.push(a);
        }
    }
    if format != "text" && format != "sarif" {
        eprintln!("grail-lint: unknown format `{format}` (expected text|sarif)");
        return ExitCode::FAILURE;
    }
    let root = match positional.first() {
        Some(p) => PathBuf::from(p),
        // Under `cargo run` the manifest dir is crates/lint; walk up to
        // the workspace root. Outside cargo, lint the cwd.
        None => match env::var("CARGO_MANIFEST_DIR") {
            Ok(dir) => PathBuf::from(dir)
                .ancestors()
                .nth(2)
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from(".")),
            Err(_) => PathBuf::from("."),
        },
    };
    let lint = |root: &PathBuf| -> Result<Vec<grail_lint::Diagnostic>, ExitCode> {
        let result = match &cache_dir {
            Some(dir) => grail_lint::check_workspace_cached(root, runner.threads(), dir),
            None => grail_lint::check_workspace_threads(root, runner.threads()),
        };
        result.map_err(|e| {
            eprintln!("grail-lint: cannot walk {}: {e}", root.display());
            ExitCode::FAILURE
        })
    };
    let mut diags = match lint(&root) {
        Ok(diags) => diags,
        Err(code) => return code,
    };
    if fix {
        match apply_fixes(&root, &diags) {
            Ok(0) => {}
            Ok(n) => {
                eprintln!("grail-lint: --fix removed {n} stale pragma(s)");
                // Re-lint so the report (and the exit status) reflect
                // the repaired tree, not the one we just rewrote.
                diags = match lint(&root) {
                    Ok(diags) => diags,
                    Err(code) => return code,
                };
            }
            Err(e) => {
                eprintln!("grail-lint: --fix failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = par_report {
        let json = match grail_lint::workspace_sources(&root) {
            Ok((files, _)) => grail_lint::parready::report_json(&files),
            Err(e) => {
                eprintln!("grail-lint: cannot walk {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = fs::write(&path, json) {
            eprintln!("grail-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "grail-lint: parallel-readiness report -> {}",
            path.display()
        );
    }
    if let Some(path) = bench_json {
        let elapsed = started.elapsed();
        let ledger = format!(
            "{{\n  \"bench\": \"grail-lint\",\n  \"threads\": {},\n  \"cached\": {},\n  \
             \"diagnostics\": {},\n  \"wall_clock_ms\": {}\n}}\n",
            runner.threads(),
            cache_dir.is_some(),
            diags.len(),
            elapsed.as_millis()
        );
        if let Err(e) = fs::write(&path, ledger) {
            eprintln!("grail-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if format == "sarif" {
        print!("{}", grail_lint::sarif::to_sarif(&diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if diags.is_empty() {
        println!(
            "grail-lint: workspace clean ({} rules)",
            grail_lint::rules::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            eprintln!("{d}");
        }
        eprintln!("grail-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
