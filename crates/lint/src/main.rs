//! The `grail-lint` binary: lint the workspace, print rustc-style
//! diagnostics (or a SARIF 2.1.0 log), exit nonzero on any violation.
//!
//! Usage: `grail-lint [OPTIONS] [WORKSPACE_ROOT]` (root defaults to the
//! current directory, or the workspace root when run via
//! `cargo run -p grail-lint`).
//!
//! * `--format text|sarif` — output format (default `text`). SARIF
//!   goes to stdout so it can be redirected into an artifact.
//! * `--threads N` / `--sequential` — fan the per-file stage across N
//!   threads; output is byte-identical at any thread count.
//! * `--list-rules` — print the rule table and exit.

#![forbid(unsafe_code)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let runner = grail_par::Runner::from_cli_args(&mut args);
    if args.iter().any(|a| a == "--list-rules") {
        for rule in grail_lint::rules::RULES {
            println!("{:<20} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    let mut format = "text".to_string();
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--format" {
            match it.next() {
                Some(f) => format = f,
                None => {
                    eprintln!("grail-lint: --format requires a value (text|sarif)");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(f) = a.strip_prefix("--format=") {
            format = f.to_string();
        } else {
            positional.push(a);
        }
    }
    if format != "text" && format != "sarif" {
        eprintln!("grail-lint: unknown format `{format}` (expected text|sarif)");
        return ExitCode::FAILURE;
    }
    let root = match positional.first() {
        Some(p) => PathBuf::from(p),
        // Under `cargo run` the manifest dir is crates/lint; walk up to
        // the workspace root. Outside cargo, lint the cwd.
        None => match env::var("CARGO_MANIFEST_DIR") {
            Ok(dir) => PathBuf::from(dir)
                .ancestors()
                .nth(2)
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from(".")),
            Err(_) => PathBuf::from("."),
        },
    };
    let diags = match grail_lint::check_workspace_threads(&root, runner.threads()) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("grail-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if format == "sarif" {
        print!("{}", grail_lint::sarif::to_sarif(&diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if diags.is_empty() {
        println!(
            "grail-lint: workspace clean ({} rules)",
            grail_lint::rules::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            eprintln!("{d}");
        }
        eprintln!("grail-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
