//! The `grail-lint` binary: lint the workspace, print rustc-style
//! diagnostics, exit nonzero on any violation.
//!
//! Usage: `grail-lint [WORKSPACE_ROOT]` (defaults to the current
//! directory, or the workspace root when run via
//! `cargo run -p grail-lint`). `grail-lint --list-rules` prints the
//! rule table.

#![forbid(unsafe_code)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-rules") {
        for rule in grail_lint::rules::RULES {
            println!("{:<14} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.first() {
        Some(p) => PathBuf::from(p),
        // Under `cargo run` the manifest dir is crates/lint; walk up to
        // the workspace root. Outside cargo, lint the cwd.
        None => match env::var("CARGO_MANIFEST_DIR") {
            Ok(dir) => PathBuf::from(dir)
                .ancestors()
                .nth(2)
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from(".")),
            Err(_) => PathBuf::from("."),
        },
    };
    match grail_lint::check_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!(
                "grail-lint: workspace clean ({} rules)",
                grail_lint::rules::RULES.len()
            );
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                eprintln!("{d}");
            }
            eprintln!("grail-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("grail-lint: cannot walk {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
