//! `grail-lint` — the GRAIL workspace invariant checker.
//!
//! A zero-dependency static-analysis pass that audits the source tree
//! for the properties the energy-accounting results depend on:
//! deterministic replay (no wall clock, no hash-order iteration),
//! ledger conservation (all energy movement through the audited
//! `EnergyLedger` API), error hygiene (no panicking escape hatches in
//! simulator library code), and float hygiene (no `==` on raw
//! energy/time `f64`s).
//!
//! The crate deliberately depends on nothing but `std`: it must build
//! instantly, run first in CI, and never be hostage to the crates it
//! audits. Rules operate on *stripped* source (comments and string
//! contents blanked by [`scan`]), so prose and fixtures cannot trigger
//! them, and every rule can be silenced locally with a
//! `// grail-lint: allow(rule-id, reason)` pragma — the reason is
//! mandatory and its absence is itself an error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod rules;
pub mod scan;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding, rendered rustc-style:
/// `file:line: error[rule-id]: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule id (see [`rules::RULES`]).
    pub rule: &'static str,
    /// Human explanation and suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How a file participates in the workspace, which decides rule scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Ships in a library or binary target (`src/`).
    Library,
    /// Integration tests, benches, examples — looser rules.
    TestLike,
}

/// A file's identity as seen by the rules.
#[derive(Debug, Clone)]
pub struct FileInfo<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel: &'a str,
    /// Owning crate name (directory under `crates/`, or `grail` for the
    /// workspace-root package).
    pub crate_name: &'a str,
    /// Library or test-like.
    pub kind: FileKind,
}

/// Classify a workspace-relative path into crate name and kind.
/// Returns `None` for files the linter does not audit.
pub fn classify(rel: &str) -> Option<(String, FileKind)> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, sub) = match parts.as_slice() {
        ["crates", name, rest @ ..] if !rest.is_empty() => (*name, rest),
        [rest @ ..] if !rest.is_empty() => ("grail", rest),
        _ => return None,
    };
    let kind = match sub.first() {
        Some(&"src") => FileKind::Library,
        Some(&"tests") | Some(&"benches") | Some(&"examples") => FileKind::TestLike,
        _ => return None,
    };
    Some((crate_name.to_string(), kind))
}

/// Lint one file's source text under its workspace-relative path.
pub fn check_source(rel: &str, source: &str) -> Vec<Diagnostic> {
    let Some((crate_name, kind)) = classify(rel) else {
        return Vec::new();
    };
    let info = FileInfo {
        rel,
        crate_name: &crate_name,
        kind,
    };
    let scanned = scan::scan(source);
    rules::check(&info, &scanned)
}

/// Lint every audited `.rs` file under the workspace `root`.
///
/// The walk is sorted and skips `target/`, `.git/` and other hidden
/// directories, so output order is stable across runs and machines.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in &files {
        let source =
            fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
        out.extend(check_source(rel, &source));
    }
    Ok(out)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel: String = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                if classify(&rel).is_some() {
                    out.push(rel);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_paths_to_crates_and_kinds() {
        assert_eq!(
            classify("crates/sim/src/cpu.rs"),
            Some(("sim".to_string(), FileKind::Library))
        );
        assert_eq!(
            classify("crates/power/tests/properties.rs"),
            Some(("power".to_string(), FileKind::TestLike))
        );
        assert_eq!(
            classify("crates/bench/benches/scan.rs"),
            Some(("bench".to_string(), FileKind::TestLike))
        );
        assert_eq!(
            classify("src/lib.rs"),
            Some(("grail".to_string(), FileKind::Library))
        );
        assert_eq!(classify("crates/sim/Cargo.toml"), None);
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn diagnostic_renders_rustc_style() {
        let d = Diagnostic {
            file: "crates/sim/src/cpu.rs".to_string(),
            line: 42,
            rule: "error-hygiene",
            message: "no".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "crates/sim/src/cpu.rs:42: error[error-hygiene]: no"
        );
    }
}
