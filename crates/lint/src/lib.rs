//! `grail-lint` — the GRAIL workspace invariant checker.
//!
//! A static-analysis pass that audits the source tree for the
//! properties the energy-accounting results depend on: deterministic
//! replay (no wall clock, no hash-order iteration), ledger conservation
//! (all energy movement through the audited `EnergyLedger` API), error
//! hygiene (no panicking escape hatches in simulator library code), and
//! float hygiene (no `==` on raw energy/time `f64`s).
//!
//! The engine runs in two stages:
//!
//! 1. **Per-file** (parallelized through `grail_par::Runner`, whose
//!    index-ordered merge keeps `--threads N` output byte-identical to
//!    a sequential run): each file is scanned ([`scan`]), its item
//!    skeleton and outgoing calls extracted ([`graph`]), and the token
//!    rules produce *raw* diagnostics.
//! 2. **Workspace**: the per-file skeletons assemble into a
//!    [`graph::WorkspaceGraph`], over which the semantic rules run —
//!    nondeterminism taint ([`taint`]), charge-reachability and
//!    layering ([`rules`]). Only then are pragma suppressions applied,
//!    so [`rules::stale_pragmas`] can tell which pragmas actually earn
//!    their keep against the full raw set.
//!
//! The crate deliberately depends on nothing outside the workspace (and
//! only on the std-only `grail-par` inside it): it must build
//! instantly, run first in CI, and never be hostage to the crates it
//! audits. Rules operate on *stripped* source (comments and string
//! contents blanked by [`scan`]), so prose and fixtures cannot trigger
//! them, and every suppressible rule can be silenced locally with a
//! `// grail-lint: allow(rule-id, reason)` pragma — the reason is
//! mandatory and its absence is itself an error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod dataflow;
pub mod fix;
pub mod graph;
pub mod parready;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod taint;
pub mod units;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding, rendered rustc-style:
/// `file:line: error[rule-id]: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based start column of the offending token (0 = unknown — the
    /// rule reasons about a whole line or a cross-file property).
    pub col: usize,
    /// 1-based exclusive end column (0 = unknown).
    pub end_col: usize,
    /// Stable rule id (see [`rules::RULES`]).
    pub rule: &'static str,
    /// Human explanation and suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic with no column information.
    pub fn new(
        file: impl Into<String>,
        line: usize,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            col: 0,
            end_col: 0,
            rule,
            message: message.into(),
        }
    }

    /// Attach a 1-based `[col, end_col)` span (columns are offsets into
    /// the stripped line, which the column-preserving scanner keeps
    /// identical to the original).
    pub fn with_span(mut self, col: usize, end_col: usize) -> Self {
        self.col = col;
        self.end_col = end_col;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How a file participates in the workspace, which decides rule scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Ships in a library or binary target (`src/`).
    Library,
    /// Integration tests, benches, examples — looser rules.
    TestLike,
}

/// A file's identity as seen by the rules.
#[derive(Debug, Clone)]
pub struct FileInfo<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel: &'a str,
    /// Owning crate name (directory under `crates/`, or `grail` for the
    /// workspace-root package).
    pub crate_name: &'a str,
    /// Library or test-like.
    pub kind: FileKind,
}

/// Classify a workspace-relative path into crate name and kind.
/// Returns `None` for files the linter does not audit.
pub fn classify(rel: &str) -> Option<(String, FileKind)> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, sub) = match parts.as_slice() {
        ["crates", name, rest @ ..] if !rest.is_empty() => (*name, rest),
        rest if !rest.is_empty() => ("grail", rest),
        _ => return None,
    };
    let kind = match sub.first() {
        Some(&"src") => FileKind::Library,
        Some(&"tests") | Some(&"benches") | Some(&"examples") => FileKind::TestLike,
        _ => return None,
    };
    Some((crate_name.to_string(), kind))
}

/// An in-memory source file handed to the engine.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Full source text.
    pub source: String,
}

/// An in-memory `Cargo.toml` handed to the layering rule.
#[derive(Debug, Clone)]
pub struct ManifestFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Full manifest text.
    pub source: String,
}

/// Everything the workspace stage needs from one analyzed file.
pub(crate) struct FileAnalysis {
    pub(crate) rel: String,
    pub(crate) crate_name: String,
    pub(crate) kind: FileKind,
    pub(crate) scanned: scan::ScannedFile,
    pub(crate) graph: graph::FileGraph,
    pub(crate) raw: Vec<Diagnostic>,
}

pub(crate) fn analyze_file(file: &SourceFile) -> Option<FileAnalysis> {
    let (crate_name, kind) = classify(&file.rel)?;
    let info = FileInfo {
        rel: &file.rel,
        crate_name: &crate_name,
        kind,
    };
    let scanned = scan::scan(&file.source);
    let graph = graph::extract(&info, &scanned);
    let raw = rules::check_tokens(&info, &scanned);
    Some(FileAnalysis {
        rel: file.rel.clone(),
        crate_name,
        kind,
        scanned,
        graph,
        raw,
    })
}

/// The full engine over in-memory sources and manifests.
///
/// Stage 1 fans the per-file work across `threads` via
/// `grail_par::Runner` (1 = sequential); stage 2 builds the workspace
/// graph and runs the semantic rules; then suppression, pragma hygiene,
/// stale-pragma detection, and a final sort + dedup that makes the
/// output byte-stable regardless of input order or thread count.
pub fn analyze(
    files: &[SourceFile],
    manifests: &[ManifestFile],
    threads: usize,
) -> Vec<Diagnostic> {
    let analyses = stage1(files, threads, None);
    stage2(&analyses, manifests)
}

/// [`analyze`] with a per-file result cache under `cache_dir`.
///
/// Stage 1 results (scan, skeleton, token diagnostics) are stored per
/// file, keyed on content hash plus the engine fingerprint (tokenizer
/// and rule registry versions) — see [`cache`]. Stage 2 (the workspace
/// rules) always recomputes, so a warm run is byte-identical to a cold
/// one by construction *and* by the test in `tests/cache.rs`.
pub fn analyze_with_cache(
    files: &[SourceFile],
    manifests: &[ManifestFile],
    threads: usize,
    cache_dir: &Path,
) -> io::Result<Vec<Diagnostic>> {
    let store = cache::Store::open(cache_dir)?;
    let analyses = stage1(files, threads, Some(&store));
    Ok(stage2(&analyses, manifests))
}

/// Stage 1: fan the per-file analysis across `threads`, consulting the
/// cache when one is supplied. Results come back in stable `rel` order.
fn stage1(files: &[SourceFile], threads: usize, store: Option<&cache::Store>) -> Vec<FileAnalysis> {
    let runner = if threads <= 1 {
        grail_par::Runner::sequential()
    } else {
        grail_par::Runner::with_threads(threads)
    };
    let mut analyses: Vec<FileAnalysis> = runner
        .run(files, |_, f| match store {
            Some(store) => store.analyze(f),
            None => analyze_file(f),
        })
        .into_iter()
        .flatten()
        .collect();
    analyses.sort_by(|a, b| a.rel.cmp(&b.rel));
    analyses
}

/// Stage 2: workspace-level rules over the assembled graph, then
/// suppression and the canonical sort + dedup.
fn stage2(analyses: &[FileAnalysis], manifests: &[ManifestFile]) -> Vec<Diagnostic> {
    let wg = graph::WorkspaceGraph::build(analyses.iter().map(|a| a.graph.clone()).collect());
    let scanned_by_rel: BTreeMap<String, &scan::ScannedFile> = analyses
        .iter()
        .map(|a| (a.rel.clone(), &a.scanned))
        .collect();

    // The raw set: token + semantic diagnostics, before suppression.
    // Stale-pragma detection judges pragmas against this set — a pragma
    // earns its keep by matching a raw diagnostic, suppressed or not.
    let mut raw: Vec<Diagnostic> = analyses
        .iter()
        .flat_map(|a| a.raw.iter().cloned())
        .collect();
    raw.extend(taint::check(&wg, &scanned_by_rel));
    raw.extend(rules::charge_reachability(&wg));
    raw.extend(rules::model_coverage(&wg, &scanned_by_rel));
    raw.extend(dataflow::ledger_flow(&wg));
    for a in analyses {
        let info = FileInfo {
            rel: &a.rel,
            crate_name: &a.crate_name,
            kind: a.kind,
        };
        raw.extend(rules::layering_source(&info, &a.scanned));
        raw.extend(units::check_file(&info, &a.scanned, &a.graph, &wg));
    }
    for m in manifests {
        raw.extend(rules::layering_manifest(&m.rel, &m.source));
    }

    let mut out: Vec<Diagnostic> = raw
        .iter()
        .filter(|d| match scanned_by_rel.get(&d.file) {
            Some(f) => !rules::suppressed(d, f),
            None => true, // manifests carry no pragmas
        })
        .cloned()
        .collect();
    for a in analyses {
        out.extend(rules::pragma_hygiene(&a.rel, &a.scanned));
        out.extend(rules::stale_pragmas(&a.rel, &a.scanned, &raw));
    }
    out.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
            .then(a.message.cmp(&b.message))
    });
    out.dedup();
    out
}

/// Lint a set of in-memory sources sequentially (no manifests).
pub fn check_files(files: &[SourceFile]) -> Vec<Diagnostic> {
    analyze(files, &[], 1)
}

/// Lint a set of in-memory sources across `threads` (no manifests).
pub fn check_files_threads(files: &[SourceFile], threads: usize) -> Vec<Diagnostic> {
    analyze(files, &[], threads)
}

/// Lint one file's source text under its workspace-relative path.
pub fn check_source(rel: &str, source: &str) -> Vec<Diagnostic> {
    check_files(&[SourceFile {
        rel: rel.to_string(),
        source: source.to_string(),
    }])
}

/// Lint every audited `.rs` file (and `Cargo.toml` manifest) under the
/// workspace `root`, sequentially.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    check_workspace_threads(root, 1)
}

/// Lint the workspace under `root`, fanning stage 1 across `threads`.
///
/// The walk is sorted and skips `target/`, `.git/`, other hidden
/// directories, and `tests/fixtures/` corpora (which hold deliberate
/// violations), so output order is stable across runs and machines.
pub fn check_workspace_threads(root: &Path, threads: usize) -> io::Result<Vec<Diagnostic>> {
    let (files, manifests) = workspace_sources(root)?;
    Ok(analyze(&files, &manifests, threads))
}

/// Lint the workspace under `root` through the per-file cache at
/// `cache_dir` — see [`analyze_with_cache`].
pub fn check_workspace_cached(
    root: &Path,
    threads: usize,
    cache_dir: &Path,
) -> io::Result<Vec<Diagnostic>> {
    let (files, manifests) = workspace_sources(root)?;
    analyze_with_cache(&files, &manifests, threads, cache_dir)
}

/// Read every audited source file and manifest under `root` — the same
/// set [`check_workspace_threads`] lints — for callers that want to
/// inspect the workspace through the engine's eyes.
pub fn workspace_sources(root: &Path) -> io::Result<(Vec<SourceFile>, Vec<ManifestFile>)> {
    let mut rels = Vec::new();
    collect_rs_files(root, root, &mut rels)?;
    rels.sort();
    let mut files = Vec::new();
    for rel in &rels {
        let source =
            fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
        files.push(SourceFile {
            rel: rel.clone(),
            source,
        });
    }
    Ok((files, collect_manifests(root)?))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let dir_name = dir
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_default()
        .to_string();
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            // Fixture corpora under tests/ hold deliberate violations.
            if name == "fixtures" && dir_name == "tests" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel: String = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                if classify(&rel).is_some() {
                    out.push(rel);
                }
            }
        }
    }
    Ok(())
}

/// The root manifest plus every `crates/*/Cargo.toml`, sorted.
fn collect_manifests(root: &Path) -> io::Result<Vec<ManifestFile>> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        out.push(ManifestFile {
            rel: "Cargo.toml".to_string(),
            source: fs::read_to_string(&root_manifest)?,
        });
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let manifest = path.join("Cargo.toml");
            if manifest.is_file() {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default();
                out.push(ManifestFile {
                    rel: format!("crates/{name}/Cargo.toml"),
                    source: fs::read_to_string(&manifest)?,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_paths_to_crates_and_kinds() {
        assert_eq!(
            classify("crates/sim/src/cpu.rs"),
            Some(("sim".to_string(), FileKind::Library))
        );
        assert_eq!(
            classify("crates/power/tests/properties.rs"),
            Some(("power".to_string(), FileKind::TestLike))
        );
        assert_eq!(
            classify("crates/bench/benches/scan.rs"),
            Some(("bench".to_string(), FileKind::TestLike))
        );
        assert_eq!(
            classify("src/lib.rs"),
            Some(("grail".to_string(), FileKind::Library))
        );
        assert_eq!(classify("crates/sim/Cargo.toml"), None);
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn diagnostic_renders_rustc_style() {
        let d = Diagnostic::new("crates/sim/src/cpu.rs", 42, "error-hygiene", "no");
        assert_eq!(
            d.to_string(),
            "crates/sim/src/cpu.rs:42: error[error-hygiene]: no"
        );
        // Columns ride along without changing the rendered form.
        let spanned = d.clone().with_span(5, 12);
        assert_eq!(spanned.to_string(), d.to_string());
        assert_eq!((spanned.col, spanned.end_col), (5, 12));
    }

    #[test]
    fn output_is_identical_across_thread_counts_and_input_order() {
        let a = SourceFile {
            rel: "crates/sim/src/a.rs".to_string(),
            source: "fn f() { let t = SystemTime::now(); }\n".to_string(),
        };
        let b = SourceFile {
            rel: "crates/buffer/src/b.rs".to_string(),
            source: "use std::collections::HashMap;\n".to_string(),
        };
        let fwd = [a.clone(), b.clone()];
        let rev = [b, a];
        let seq = check_files(&fwd);
        assert!(!seq.is_empty());
        assert_eq!(seq, check_files_threads(&fwd, 8));
        assert_eq!(seq, check_files(&rev));
        assert_eq!(seq, check_files_threads(&rev, 3));
    }

    #[test]
    fn duplicate_diagnostics_are_deduped() {
        // The same file supplied twice must not double-report.
        let f = SourceFile {
            rel: "crates/sim/src/a.rs".to_string(),
            source: "fn f() { let t = SystemTime::now(); }\n".to_string(),
        };
        let once = check_files(std::slice::from_ref(&f));
        let twice = check_files(&[f.clone(), f]);
        assert_eq!(once, twice);
    }
}
