//! Incremental per-file analysis cache.
//!
//! Stage 1 of the engine (scan → graph extraction → token rules) is a
//! pure function of one file's `(rel, source)` pair, so its result can
//! be memoized on disk and reused across lint runs — CI re-analyzes
//! only the files a commit actually touched. Stage 2 (workspace graph,
//! taint, dataflow, suppression) always recomputes: it is cross-file by
//! nature and cheap relative to stage 1.
//!
//! Correctness is carried by the cache key, never by trust in the
//! entry:
//!
//! - the key hashes the file's *content* (FNV-1a over rel + source), so
//!   any edit misses;
//! - the key folds in a **fingerprint** of the analyzer itself —
//!   [`crate::scan::TOKENIZER_VERSION`], this module's
//!   [`CACHE_SCHEMA_VERSION`], and every registered rule id + summary —
//!   so upgrading the linter orphans all prior entries wholesale;
//! - a corrupt, truncated, or hand-edited entry fails deserialization
//!   closed and the file is re-analyzed from source.
//!
//! The warm/cold byte-identity guarantee (`tests/cache.rs`) follows:
//! a hit returns exactly the `FileAnalysis` a miss would compute.

use crate::graph::{Call, FileGraph, FnDef, ModDecl, UseRef};
use crate::scan::{Pragma, PragmaError, PragmaScope, ScannedFile, TOKENIZER_VERSION};
use crate::{Diagnostic, FileAnalysis, FileKind, SourceFile};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Bumped whenever the on-disk entry format changes.
pub const CACHE_SCHEMA_VERSION: u32 = 2;

/// A directory-backed cache of stage-1 analyses.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    fingerprint: u64,
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Field separator so `("ab","c")` and `("a","bc")` differ.
    *h ^= 0xff;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// Fingerprint of the analyzer configuration: tokenizer + schema
/// versions and the full rule registry. Any drift invalidates every
/// cached entry (the keys simply stop matching).
fn analyzer_fingerprint() -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut h, b"grail-lint-cache");
    fnv1a(&mut h, TOKENIZER_VERSION.to_string().as_bytes());
    fnv1a(&mut h, CACHE_SCHEMA_VERSION.to_string().as_bytes());
    for r in crate::rules::RULES {
        fnv1a(&mut h, r.id.as_bytes());
        fnv1a(&mut h, r.summary.as_bytes());
    }
    h
}

impl Store {
    /// Open (creating if needed) a cache directory.
    pub fn open(dir: &Path) -> io::Result<Store> {
        fs::create_dir_all(dir)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            fingerprint: analyzer_fingerprint(),
        })
    }

    fn entry_path(&self, file: &SourceFile) -> PathBuf {
        let mut h = self.fingerprint;
        fnv1a(&mut h, file.rel.as_bytes());
        fnv1a(&mut h, file.source.as_bytes());
        let mut name = String::new();
        for part in file.rel.chars() {
            name.push(if part == '/' { '_' } else { part });
        }
        self.dir
            .join(format!("{name}-{h:016x}.v{CACHE_SCHEMA_VERSION}"))
    }

    /// Stage-1 analysis through the cache: return the memoized
    /// [`FileAnalysis`] on a hit, else analyze and (best-effort) write
    /// the entry back. Semantically identical to
    /// [`crate::analyze_file`].
    pub(crate) fn analyze(&self, file: &SourceFile) -> Option<FileAnalysis> {
        let path = self.entry_path(file);
        if let Ok(text) = fs::read_to_string(&path) {
            if let Some(a) = deserialize(&text) {
                if a.rel == file.rel {
                    return Some(a);
                }
            }
        }
        let a = crate::analyze_file(file)?;
        let _ = fs::write(&path, serialize(&a));
        Some(a)
    }
}

// ---------------------------------------------------------------------------
// Entry format: one record per line, tab-separated fields, `%`-escaped
// strings. Human-inspectable on purpose.
// ---------------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let (a, b) = (chars.next()?, chars.next()?);
        match (a, b) {
            ('2', '5') => out.push('%'),
            ('0', '9') => out.push('\t'),
            ('0', 'A') => out.push('\n'),
            ('0', 'D') => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

fn opt(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("={}", esc(s)),
        None => "-".to_string(),
    }
}

fn unopt(s: &str) -> Option<Option<String>> {
    match s.strip_prefix('=') {
        Some(rest) => Some(Some(unesc(rest)?)),
        None if s == "-" => Some(None),
        None => None,
    }
}

fn kind_str(k: FileKind) -> &'static str {
    match k {
        FileKind::Library => "lib",
        FileKind::TestLike => "test",
    }
}

fn parse_kind(s: &str) -> Option<FileKind> {
    match s {
        "lib" => Some(FileKind::Library),
        "test" => Some(FileKind::TestLike),
        _ => None,
    }
}

/// Re-intern a cached rule id against the live registry; an id the
/// registry no longer knows fails the whole entry (the fingerprint
/// should prevent this, but never trust the disk).
fn intern_rule(id: &str) -> Option<&'static str> {
    crate::rules::RULES.iter().map(|r| r.id).find(|r| *r == id)
}

fn serialize(a: &FileAnalysis) -> String {
    let mut o = String::new();
    o.push_str(&format!("grail-lint-cache v{CACHE_SCHEMA_VERSION}\n"));
    o.push_str(&format!("rel\t{}\n", esc(&a.rel)));
    o.push_str(&format!("crate\t{}\n", esc(&a.crate_name)));
    o.push_str(&format!("kind\t{}\n", kind_str(a.kind)));
    for ((code, raw), in_test) in a
        .scanned
        .code
        .iter()
        .zip(&a.scanned.raw)
        .zip(&a.scanned.in_test)
    {
        o.push_str(&format!(
            "L\t{}\t{}\t{}\n",
            u8::from(*in_test),
            esc(code),
            esc(raw)
        ));
    }
    for p in &a.scanned.pragmas {
        let scope = match p.scope {
            PragmaScope::File => "file".to_string(),
            PragmaScope::Line(n) => n.to_string(),
        };
        o.push_str(&format!(
            "P\t{}\t{}\t{}\t{}\n",
            esc(&p.rule),
            scope,
            p.at,
            esc(&p.reason)
        ));
    }
    for e in &a.scanned.pragma_errors {
        o.push_str(&format!("E\t{}\t{}\n", e.at, esc(&e.message)));
    }
    for f in &a.graph.fns {
        o.push_str(&format!(
            "F\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            esc(&f.name),
            opt(&f.impl_type),
            opt(&f.impl_trait),
            esc(&f.module),
            esc(&f.file),
            esc(&f.crate_name),
            kind_str(f.kind),
            f.line,
            f.end_line,
            u8::from(f.in_test),
            u8::from(f.mut_self),
            opt(&f.ret),
        ));
        for (name, ty) in &f.params {
            o.push_str(&format!("p\t{}\t{}\n", esc(name), esc(ty)));
        }
        for c in &f.calls {
            o.push_str(&format!("C\t{}\t{}\n", esc(&c.name), c.line));
        }
    }
    for u in &a.graph.uses {
        o.push_str(&format!("U\t{}\t{}\n", esc(&u.path), u.line));
    }
    for m in &a.graph.mods {
        o.push_str(&format!("M\t{}\t{}\n", esc(&m.name), m.line));
    }
    for d in &a.raw {
        o.push_str(&format!(
            "D\t{}\t{}\t{}\t{}\t{}\t{}\n",
            esc(d.rule),
            d.line,
            d.col,
            d.end_col,
            esc(&d.file),
            esc(&d.message)
        ));
    }
    o.push_str("end\n");
    o
}

fn deserialize(text: &str) -> Option<FileAnalysis> {
    let mut lines = text.lines();
    if lines.next()? != format!("grail-lint-cache v{CACHE_SCHEMA_VERSION}") {
        return None;
    }
    let rel = unesc(lines.next()?.strip_prefix("rel\t")?)?;
    let crate_name = unesc(lines.next()?.strip_prefix("crate\t")?)?;
    let kind = parse_kind(lines.next()?.strip_prefix("kind\t")?)?;
    let mut scanned = ScannedFile {
        code: Vec::new(),
        raw: Vec::new(),
        in_test: Vec::new(),
        pragmas: Vec::new(),
        pragma_errors: Vec::new(),
    };
    let mut graph = FileGraph::default();
    let mut raw = Vec::new();
    let mut finished = false;
    for line in lines {
        let (tag, rest) = line.split_once('\t').unwrap_or((line, ""));
        match tag {
            "L" => {
                let (t, rest) = rest.split_once('\t')?;
                let (code, raw) = rest.split_once('\t')?;
                scanned.in_test.push(t == "1");
                scanned.code.push(unesc(code)?);
                scanned.raw.push(unesc(raw)?);
            }
            "P" => {
                let f: Vec<&str> = rest.split('\t').collect();
                let [rule, scope, at, reason] = f.as_slice() else {
                    return None;
                };
                scanned.pragmas.push(Pragma {
                    rule: unesc(rule)?,
                    reason: unesc(reason)?,
                    scope: match *scope {
                        "file" => PragmaScope::File,
                        n => PragmaScope::Line(n.parse().ok()?),
                    },
                    at: at.parse().ok()?,
                });
            }
            "E" => {
                let (at, msg) = rest.split_once('\t')?;
                scanned.pragma_errors.push(PragmaError {
                    at: at.parse().ok()?,
                    message: unesc(msg)?,
                });
            }
            "F" => {
                let f: Vec<&str> = rest.split('\t').collect();
                let [name, impl_type, impl_trait, module, file, crate_n, k, line_n, end, in_test, mut_self, ret] =
                    f.as_slice()
                else {
                    return None;
                };
                graph.fns.push(FnDef {
                    name: unesc(name)?,
                    impl_type: unopt(impl_type)?,
                    impl_trait: unopt(impl_trait)?,
                    module: unesc(module)?,
                    file: unesc(file)?,
                    crate_name: unesc(crate_n)?,
                    kind: parse_kind(k)?,
                    line: line_n.parse().ok()?,
                    end_line: end.parse().ok()?,
                    in_test: *in_test == "1",
                    mut_self: *mut_self == "1",
                    ret: unopt(ret)?,
                    params: Vec::new(),
                    calls: Vec::new(),
                });
            }
            "p" => {
                let (name, ty) = rest.split_once('\t')?;
                graph
                    .fns
                    .last_mut()?
                    .params
                    .push((unesc(name)?, unesc(ty)?));
            }
            "C" => {
                let (name, line_n) = rest.split_once('\t')?;
                graph.fns.last_mut()?.calls.push(Call {
                    name: unesc(name)?,
                    line: line_n.parse().ok()?,
                });
            }
            "U" => {
                let (path, line_n) = rest.split_once('\t')?;
                graph.uses.push(UseRef {
                    path: unesc(path)?,
                    line: line_n.parse().ok()?,
                });
            }
            "M" => {
                let (name, line_n) = rest.split_once('\t')?;
                graph.mods.push(ModDecl {
                    name: unesc(name)?,
                    line: line_n.parse().ok()?,
                });
            }
            "D" => {
                let f: Vec<&str> = rest.split('\t').collect();
                let [rule, line_n, col, end_col, file, msg] = f.as_slice() else {
                    return None;
                };
                raw.push(
                    Diagnostic::new(
                        unesc(file)?,
                        line_n.parse().ok()?,
                        intern_rule(&unesc(rule)?)?,
                        unesc(msg)?,
                    )
                    .with_span(col.parse().ok()?, end_col.parse().ok()?),
                );
            }
            "end" => {
                finished = true;
                break;
            }
            _ => return None,
        }
    }
    if !finished {
        return None;
    }
    Some(FileAnalysis {
        rel,
        crate_name,
        kind,
        scanned,
        graph,
        raw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SourceFile {
        SourceFile {
            rel: "crates/sim/src/dev.rs".into(),
            source: "\
// grail-lint: allow(float-eq, fixture tolerance)
pub struct Dev;
impl Dev {
    pub fn serve(&mut self, at: SimInstant) -> Joules {
        let e = self.rate * at.elapsed();
        helper(e);
        e
    }
}
fn helper(e: Joules) {
    let _t = std::time::Instant::now();
}
#[cfg(test)]
mod tests {
    fn t() {}
}
"
            .into(),
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let a = crate::analyze_file(&sample()).unwrap();
        let b = deserialize(&serialize(&a)).expect("roundtrip");
        assert_eq!(a.rel, b.rel);
        assert_eq!(a.crate_name, b.crate_name);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.scanned.code, b.scanned.code);
        assert_eq!(a.scanned.raw, b.scanned.raw);
        assert_eq!(a.scanned.in_test, b.scanned.in_test);
        assert_eq!(a.scanned.pragmas.len(), b.scanned.pragmas.len());
        assert_eq!(a.graph.fns.len(), b.graph.fns.len());
        for (x, y) in a.graph.fns.iter().zip(&b.graph.fns) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.impl_type, y.impl_type);
            assert_eq!(x.ret, y.ret);
            assert_eq!(x.params, y.params);
            assert_eq!(x.mut_self, y.mut_self);
            assert_eq!(x.in_test, y.in_test);
            assert_eq!(
                x.calls
                    .iter()
                    .map(|c| (&c.name, c.line))
                    .collect::<Vec<_>>(),
                y.calls
                    .iter()
                    .map(|c| (&c.name, c.line))
                    .collect::<Vec<_>>()
            );
        }
        assert_eq!(a.raw.len(), b.raw.len());
        for (x, y) in a.raw.iter().zip(&b.raw) {
            assert_eq!(
                (x.line, x.col, x.end_col, x.rule),
                (y.line, y.col, y.end_col, y.rule)
            );
            assert_eq!(x.message, y.message);
            // Rule ids must come back interned against the registry.
            assert!(crate::rules::RULES.iter().any(|r| r.id == y.rule));
        }
    }

    #[test]
    fn corrupt_entries_fail_closed() {
        let a = crate::analyze_file(&sample()).unwrap();
        let good = serialize(&a);
        assert!(deserialize(&good).is_some());
        // Truncation (no `end` marker).
        let cut = &good[..good.len() - 5];
        assert!(deserialize(cut).is_none());
        // Unknown record tag.
        assert!(deserialize(&good.replace("\nL\t", "\nZ\t")).is_none());
        // Unknown rule id.
        assert!(deserialize(&good.replace("\nD\twall-clock", "\nD\tno-such-rule")).is_none());
        // Bad escape.
        assert!(unesc("broken %zz escape").is_none());
        // Version drift.
        let vs = format!("cache v{CACHE_SCHEMA_VERSION}");
        assert!(deserialize(&good.replace(&vs, "cache v0")).is_none());
    }

    #[test]
    fn store_hits_after_write_and_misses_on_edit() {
        let dir =
            std::env::temp_dir().join(format!("grail-lint-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let f = sample();
        let cold = store.analyze(&f).unwrap();
        let entry = store.entry_path(&f);
        assert!(entry.exists(), "entry written on miss");
        let warm = store.analyze(&f).unwrap();
        assert_eq!(cold.raw.len(), warm.raw.len());
        assert_eq!(cold.scanned.code, warm.scanned.code);
        // An edited file maps to a different key: no stale hit.
        let edited = SourceFile {
            rel: f.rel.clone(),
            source: f.source.replace("rate", "idle_rate"),
        };
        assert_ne!(store.entry_path(&edited), entry);
        // A corrupt entry falls back to fresh analysis.
        fs::write(&entry, "garbage").unwrap();
        let recovered = store.analyze(&f).unwrap();
        assert_eq!(recovered.scanned.code, cold.scanned.code);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(analyzer_fingerprint(), analyzer_fingerprint());
        let mut h1 = 0xcbf2_9ce4_8422_2325u64;
        fnv1a(&mut h1, b"ab");
        fnv1a(&mut h1, b"c");
        let mut h2 = 0xcbf2_9ce4_8422_2325u64;
        fnv1a(&mut h2, b"a");
        fnv1a(&mut h2, b"bc");
        assert_ne!(h1, h2, "field separator keeps boundaries distinct");
    }
}
