//! Nondeterminism taint analysis over the workspace call graph.
//!
//! The token rules catch a literal `Instant::now()` written inside a
//! deterministic crate. They cannot catch the same call hidden one
//! hop away: a sim-reachable function calling a helper in another
//! crate whose body reads the host clock. This pass closes that gap.
//!
//! * **Seeds.** Every unsuppressed occurrence of a wall-clock/entropy
//!   token (the [`crate::rules::WALL_CLOCK`] pattern set) or a
//!   hash-ordered collection token (`HashMap`/`HashSet`) inside a
//!   non-test function body marks that function as a taint *source*.
//!   A reasoned `allow` pragma covering the token's line kills the
//!   seed — the pragma's justification is taken to cover transitive
//!   use as well.
//! * **Propagation.** Taint flows from callee to caller through the
//!   name-resolved call graph until fixpoint, remembering for every
//!   tainted function the next hop toward a source so diagnostics can
//!   print the full chain.
//! * **Reporting.** A diagnostic is emitted at every call site inside
//!   the deterministic crates (`sim`, `power`, `scheduler`, `core` —
//!   the sim-reachable roots) whose callee is tainted and defined
//!   *outside* those crates: the boundary where nondeterminism enters
//!   simulated state. Sources inside the deterministic crates stay the
//!   token rules' business, so the two layers never double-report.

use crate::graph::{FnDef, WorkspaceGraph};
use crate::rules;
use crate::scan::PragmaScope;
use crate::{Diagnostic, FileKind};
use std::collections::{BTreeMap, VecDeque};

/// A nondeterminism source token found inside a function body.
#[derive(Debug, Clone)]
pub struct Source {
    /// Which rule the token violates (`wall-clock` or `hash-order`).
    pub rule: &'static str,
    /// The offending token (`Instant::now`, `HashMap`, …).
    pub pattern: &'static str,
    /// File holding the token.
    pub file: String,
    /// 1-based line of the token.
    pub line: usize,
}

/// How a function becomes tainted: it holds a source token itself, or
/// it calls a tainted function (`via` is the callee on the shortest
/// path toward the source).
#[derive(Debug, Clone)]
enum Cause {
    Direct(Source),
    Via(usize),
}

/// Per-rule taint state over the whole graph.
struct TaintMap {
    rule: &'static str,
    cause: BTreeMap<usize, Cause>,
}

impl TaintMap {
    /// Render the call chain from tainted function `id` down to the
    /// source token, e.g.
    /// `` `helper` → `inner` → `Instant::now` (crates/storage/src/x.rs:7) ``.
    fn chain(&self, graph: &WorkspaceGraph, mut id: usize) -> String {
        let mut hops: Vec<String> = Vec::new();
        loop {
            hops.push(format!("`{}`", graph.fns[id].qualified()));
            match &self.cause[&id] {
                Cause::Direct(src) => {
                    hops.push(format!("`{}` ({}:{})", src.pattern, src.file, src.line));
                    break;
                }
                Cause::Via(next) => id = *next,
            }
        }
        hops.join(" → ")
    }
}

/// Is `line` of `file` suppressed for `rule` by a reasoned pragma?
fn line_suppressed(f: &crate::scan::ScannedFile, rule: &str, line: usize) -> bool {
    f.pragmas.iter().any(|p| {
        p.rule == rule
            && match p.scope {
                PragmaScope::File => true,
                PragmaScope::Line(l) => l == line,
            }
    })
}

/// Collect per-function source tokens for one rule. `patterns` are
/// matched on identifier boundaries against every non-test line of the
/// function body; suppressed lines do not seed.
fn collect_sources(
    graph: &WorkspaceGraph,
    files: &BTreeMap<String, &crate::scan::ScannedFile>,
    rule: &'static str,
    patterns: &[&'static str],
) -> BTreeMap<usize, Source> {
    // Innermost-fn line attribution: narrower spans override wider
    // ones, so a nested fn owns its own lines.
    let mut line_owner: BTreeMap<(String, usize), usize> = BTreeMap::new();
    let mut by_span: Vec<usize> = (0..graph.fns.len()).collect();
    by_span.sort_by_key(|&i| {
        let d = &graph.fns[i];
        std::cmp::Reverse(d.end_line.saturating_sub(d.line))
    });
    for i in by_span {
        let d = &graph.fns[i];
        for l in d.line..=d.end_line {
            line_owner.insert((d.file.clone(), l), i);
        }
    }
    let mut out: BTreeMap<usize, Source> = BTreeMap::new();
    for ((file, line), fn_id) in &line_owner {
        let d = &graph.fns[*fn_id];
        if d.in_test {
            continue;
        }
        let Some(scanned) = files.get(file.as_str()) else {
            continue;
        };
        if scanned.is_test_line(*line) || line_suppressed(scanned, rule, *line) {
            continue;
        }
        let Some(code) = scanned.code.get(line - 1) else {
            continue;
        };
        for pat in patterns {
            if rules::has_token(code, pat) {
                out.entry(*fn_id).or_insert(Source {
                    rule,
                    pattern: pat,
                    file: file.clone(),
                    line: *line,
                });
            }
        }
    }
    out
}

/// Propagate taint from `sources` backward through the call graph
/// (callers of tainted functions become tainted), breadth-first so the
/// recorded chains are shortest paths.
fn propagate(graph: &WorkspaceGraph, sources: BTreeMap<usize, Source>) -> BTreeMap<usize, Cause> {
    // Reverse adjacency: callee -> callers.
    let mut callers: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (caller, d) in graph.fns.iter().enumerate() {
        for call in &d.calls {
            for &callee in graph.resolve(&call.name) {
                callers.entry(callee).or_default().push(caller);
            }
        }
    }
    let mut cause: BTreeMap<usize, Cause> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (id, src) in sources {
        cause.insert(id, Cause::Direct(src));
        queue.push_back(id);
    }
    while let Some(cur) = queue.pop_front() {
        if let Some(cs) = callers.get(&cur) {
            for &caller in cs {
                if caller != cur {
                    cause.entry(caller).or_insert_with(|| {
                        queue.push_back(caller);
                        Cause::Via(cur)
                    });
                }
            }
        }
    }
    cause
}

/// Does this call site report under the given rule's scope?
fn reportable_caller(rule: &str, d: &FnDef) -> bool {
    if !rules::DETERMINISTIC_CRATES.contains(&d.crate_name.as_str()) {
        return false;
    }
    match rule {
        // wall-clock audits tests too: replay-equality tests are only
        // trustworthy if they are themselves clock-free.
        rules::WALL_CLOCK => true,
        // hash-order mirrors the token rule: library code outside tests.
        _ => d.kind == FileKind::Library && !d.in_test,
    }
}

/// Run the taint analysis and emit boundary-crossing diagnostics.
pub fn check(
    graph: &WorkspaceGraph,
    files: &BTreeMap<String, &crate::scan::ScannedFile>,
) -> Vec<Diagnostic> {
    let configs: [(&'static str, &[&'static str], &str); 2] = [
        (
            rules::WALL_CLOCK,
            rules::WALL_CLOCK_PATTERNS,
            "a nondeterministic time/randomness source",
        ),
        (
            rules::HASH_ORDER,
            rules::HASH_ORDER_PATTERNS,
            "hash-ordered iteration",
        ),
    ];
    let mut out = Vec::new();
    for (rule, patterns, what) in configs {
        let taint = TaintMap {
            rule,
            cause: propagate(graph, collect_sources(graph, files, rule, patterns)),
        };
        for d in graph.fns.iter() {
            if !reportable_caller(rule, d) {
                continue;
            }
            for call in &d.calls {
                // The boundary: callee tainted and defined outside the
                // deterministic crates. Inside them, the literal token
                // rules already report at the source.
                let Some(&callee) = graph.resolve(&call.name).iter().find(|&&c| {
                    !rules::DETERMINISTIC_CRATES.contains(&graph.fns[c].crate_name.as_str())
                        && taint.cause.contains_key(&c)
                }) else {
                    continue;
                };
                out.push(Diagnostic::new(
                    d.file.clone(),
                    call.line,
                    taint.rule,
                    format!(
                        "sim-reachable call to `{}` pulls {} into `{}`: {}",
                        graph.fns[callee].qualified(),
                        what,
                        d.qualified(),
                        taint.chain(graph, callee),
                    ),
                ));
            }
        }
    }
    out
}
