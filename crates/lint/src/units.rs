//! The dimensional lattice behind the `unit-mix` and `raw-energy`
//! rules.
//!
//! Every expression the dataflow engine ([`crate::dataflow`]) evaluates
//! carries a [`Kind`]: a typed unit from `grail-power::units` (Joules,
//! Watts, SimDuration, …), a *raw* projection of one (the `f64` that
//! `.joules()` / `.get()` / `.as_secs_f64()` extract), a dimensionless
//! scalar, or ⊤ (`Unknown`). The lattice is deliberately shallow and
//! sound-for-silence: `Unknown` absorbs everything and never produces a
//! diagnostic, so the rules only speak when *both* operands are traced
//! back to a unit-bearing origin — a literal, a units constructor, a
//! typed parameter, or a workspace function whose signature names a
//! unit type.
//!
//! [`combine`] is the transfer function for binary arithmetic: it
//! encodes the legal algebra (`Watts × SimDuration = Joules`,
//! `Joules / Joules = scalar`, instant − instant = duration, …) and
//! rejects the mixtures the paper's accounting argument cannot survive
//! (`Joules + Watts`, energy × energy, raw energy-delay products built
//! by hand instead of [`Joules::delay_product`]).

use crate::dataflow::{self, Ctx};
use crate::graph::{FileGraph, WorkspaceGraph};
use crate::rules::{RAW_ENERGY, UNIT_MIX};
use crate::scan::ScannedFile;
use crate::{Diagnostic, FileInfo, FileKind};
use std::collections::BTreeMap;

/// Abstract value kind tracked through let-bindings and arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// Typed `Joules`.
    Energy,
    /// `f64` extracted from an energy (`.joules()`, `.as_kwh()`).
    RawEnergy,
    /// Typed `Watts`.
    Power,
    /// `f64` extracted from a power (`Watts::get`).
    RawPower,
    /// Typed `SimDuration`.
    Duration,
    /// `f64`/integer seconds-or-nanos extracted from a duration.
    RawTime,
    /// Typed `SimInstant` (a timestamp, not a span).
    Instant,
    /// Typed `Hertz`.
    Freq,
    /// Typed `Bytes`.
    Bytes,
    /// Typed `Cycles`.
    Cycles,
    /// Typed `EnergyEfficiency` (work per Joule).
    Eff,
    /// Typed `JouleSeconds` (energy-delay product).
    Edp,
    /// Dimensionless number (literals, counts, ratios).
    Scalar,
    /// Boolean (comparison results).
    Bool,
    /// ⊤ — not traced to a unit-bearing origin; never flagged.
    Unknown,
}

/// The physical dimension a [`Kind`] lives in (raw and typed collapse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// Energy (J).
    E,
    /// Power (W).
    P,
    /// Time span (s).
    T,
    /// Timestamp.
    I,
    /// Frequency (1/s).
    F,
    /// Byte count.
    B,
    /// Cycle count.
    C,
    /// Work per Joule.
    Eff,
    /// Energy-delay product (J·s).
    Edp,
}

impl Kind {
    /// The dimension, `None` for scalar/bool/unknown.
    pub fn dim(self) -> Option<Dim> {
        match self {
            Kind::Energy | Kind::RawEnergy => Some(Dim::E),
            Kind::Power | Kind::RawPower => Some(Dim::P),
            Kind::Duration | Kind::RawTime => Some(Dim::T),
            Kind::Instant => Some(Dim::I),
            Kind::Freq => Some(Dim::F),
            Kind::Bytes => Some(Dim::B),
            Kind::Cycles => Some(Dim::C),
            Kind::Eff => Some(Dim::Eff),
            Kind::Edp => Some(Dim::Edp),
            Kind::Scalar | Kind::Bool | Kind::Unknown => None,
        }
    }

    /// True for the raw (`f64`-projected) kinds.
    pub fn raw(self) -> bool {
        matches!(self, Kind::RawEnergy | Kind::RawPower | Kind::RawTime)
    }

    /// True when the kind carries a dimension at all.
    pub fn dimensioned(self) -> bool {
        self.dim().is_some()
    }

    /// Human name used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Energy => "Joules",
            Kind::RawEnergy => "raw J (f64 from .joules())",
            Kind::Power => "Watts",
            Kind::RawPower => "raw W (f64 from .get())",
            Kind::Duration => "SimDuration",
            Kind::RawTime => "raw seconds (f64 from .as_secs_f64())",
            Kind::Instant => "SimInstant",
            Kind::Freq => "Hertz",
            Kind::Bytes => "Bytes",
            Kind::Cycles => "Cycles",
            Kind::Eff => "EnergyEfficiency",
            Kind::Edp => "JouleSeconds (J*s)",
            Kind::Scalar => "dimensionless f64",
            Kind::Bool => "bool",
            Kind::Unknown => "unknown",
        }
    }
}

fn raw_of(d: Dim) -> Kind {
    match d {
        Dim::E => Kind::RawEnergy,
        Dim::P => Kind::RawPower,
        Dim::T => Kind::RawTime,
        Dim::I => Kind::Instant,
        Dim::F => Kind::Freq,
        Dim::B => Kind::Bytes,
        Dim::C => Kind::Cycles,
        Dim::Eff => Kind::Eff,
        Dim::Edp => Kind::Edp,
    }
}

/// Kind of a bare type name (`Joules`, `f64`, `u64`, …).
pub fn type_kind(name: &str) -> Kind {
    match name {
        "Joules" => Kind::Energy,
        "Watts" => Kind::Power,
        "SimDuration" => Kind::Duration,
        "SimInstant" => Kind::Instant,
        "Hertz" => Kind::Freq,
        "Bytes" => Kind::Bytes,
        "Cycles" => Kind::Cycles,
        "EnergyEfficiency" => Kind::Eff,
        "JouleSeconds" => Kind::Edp,
        "f64" | "f32" | "u8" | "u16" | "u32" | "u64" | "u128" | "usize" | "i8" | "i16" | "i32"
        | "i64" | "i128" | "isize" => Kind::Scalar,
        "bool" => Kind::Bool,
        _ => Kind::Unknown,
    }
}

/// Kind of a parameter from its declared type text (`&ChaosSchedule`,
/// `SimInstant`, `f64`). Only bare (possibly referenced) type names
/// seed — anything structured stays `Unknown`.
pub fn param_kind(ty: &str) -> Kind {
    let t = ty
        .trim()
        .trim_start_matches('&')
        .trim()
        .trim_start_matches("mut ")
        .trim();
    if t.chars().all(crate::scan::is_ident_char) {
        type_kind(t)
    } else {
        Kind::Unknown
    }
}

/// Kind of a declared return type. `Option<X>` / `Result<X, E>` peel to
/// `X`; a bare unit type maps directly; everything else is `Unknown`
/// (an `f64` return could be any quantity, so it deliberately does not
/// seed).
pub fn ret_kind(ret: &str) -> Kind {
    let t = ret.trim();
    let inner = ["Option<", "Result<"]
        .iter()
        .find_map(|w| t.strip_prefix(w))
        .map(|rest| {
            let mut depth = 0usize;
            let mut end = rest.len();
            for (i, c) in rest.char_indices() {
                match c {
                    '<' => depth += 1,
                    '>' if depth > 0 => depth -= 1,
                    ',' | '>' if depth == 0 => {
                        end = i;
                        break;
                    }
                    _ => {}
                }
            }
            rest[..end].trim()
        })
        .unwrap_or(t);
    if inner.chars().all(crate::scan::is_ident_char) && !inner.is_empty() {
        match type_kind(inner) {
            // A bare numeric return tells us nothing about dimension.
            Kind::Scalar => Kind::Unknown,
            k => k,
        }
    } else {
        Kind::Unknown
    }
}

/// Result kind of a method call, by receiver kind and method name.
/// `Unknown` means "no table entry" — the engine then falls back to the
/// workspace call graph's return types.
pub fn method_kind(recv: Kind, name: &str) -> Kind {
    match name {
        "joules" | "as_kwh" => Kind::RawEnergy,
        "as_secs_f64" | "as_nanos" | "as_micros" | "as_millis" | "as_secs" => Kind::RawTime,
        "get" => match recv {
            Kind::Power => Kind::RawPower,
            Kind::Energy => Kind::RawEnergy,
            Kind::Duration => Kind::RawTime,
            Kind::Freq | Kind::Bytes | Kind::Cycles | Kind::Eff => Kind::Scalar,
            _ => Kind::Unknown,
        },
        "delay_product" => Kind::Edp,
        "avg_power_over" => match recv {
            Kind::Energy => Kind::Power,
            _ => Kind::Unknown,
        },
        "work_per_joule" | "gain_over" | "as_f64" | "to_bits" => Kind::Scalar,
        "duration_since" | "saturating_duration_since" | "elapsed" => Kind::Duration,
        "time_at_rate" | "time_at" => Kind::Duration,
        "mul_f64" | "div_u64" | "saturating_add" | "saturating_sub" | "saturating_mul" | "min"
        | "max" | "clamp" | "abs" | "clone" => recv,
        _ => Kind::Unknown,
    }
}

/// Result kind of an associated call `Type::assoc(...)` — any
/// constructor-shaped call on a unit type yields that type's kind.
pub fn assoc_kind(type_name: &str, _assoc: &str) -> Kind {
    match type_kind(type_name) {
        Kind::Unknown | Kind::Bool => Kind::Unknown,
        k => k,
    }
}

/// Transfer function for `a op b`. `Err` carries the diagnostic text of
/// a dimensional violation; the engine recovers with `Unknown`.
pub fn combine(op: char, a: Kind, b: Kind) -> Result<Kind, String> {
    use Kind::*;
    if matches!(a, Unknown | Bool) || matches!(b, Unknown | Bool) {
        return Ok(Unknown);
    }
    match op {
        '+' | '-' => add_sub(op, a, b),
        '*' => mul(a, b),
        '/' => Ok(div(a, b)),
        _ => Ok(Unknown),
    }
}

fn add_sub(op: char, a: Kind, b: Kind) -> Result<Kind, String> {
    use Kind::*;
    match (a, b) {
        (Scalar, Scalar) => Ok(Scalar),
        // A dimensionless addend adopts the other side's dimension
        // (raw arithmetic like `joules + 0.5` stays legal).
        (Scalar, k) | (k, Scalar) => Ok(k),
        (Instant, Duration | RawTime) => Ok(Instant),
        (Duration | RawTime, Instant) if op == '+' => Ok(Instant),
        (Instant, Instant) if op == '-' => Ok(Duration),
        (Instant, Instant) => Err(
            "`SimInstant + SimInstant` adds two timestamps, which is meaningless; subtract \
             them for a SimDuration or add a SimDuration offset"
                .to_string(),
        ),
        _ => match (a.dim(), b.dim()) {
            (Some(da), Some(db)) if da == db => Ok(if a.raw() || b.raw() { raw_of(da) } else { a }),
            _ => Err(format!(
                "`{} {op} {}` mixes incompatible dimensions; convert explicitly before \
                 combining (e.g. `Watts * SimDuration` -> Joules, `Joules / SimDuration` \
                 -> Watts)",
                a.label(),
                b.label()
            )),
        },
    }
}

fn mul(a: Kind, b: Kind) -> Result<Kind, String> {
    use Dim::{Eff, E, F, P, T};
    use Kind::{Cycles, Energy, RawEnergy, Scalar, Unknown};
    match (a, b) {
        (Scalar, k) | (k, Scalar) => Ok(k),
        _ => match (a.dim(), b.dim()) {
            (Some(P), Some(T)) | (Some(T), Some(P)) => Ok(if a.raw() || b.raw() {
                RawEnergy
            } else {
                Energy
            }),
            (Some(F), Some(T)) | (Some(T), Some(F)) => Ok(Cycles),
            (Some(E), Some(Eff)) | (Some(Eff), Some(E)) => Ok(Scalar),
            (Some(E), Some(E)) => Err(format!(
                "`{} * {}` squares an energy — no GRAIL quantity is J^2; one factor is \
                 probably meant to be a power, time, or scalar",
                a.label(),
                b.label()
            )),
            (Some(E), Some(P)) | (Some(P), Some(E)) => Err(format!(
                "`{} * {}` multiplies energy by power (J*W has no meaning in the ledger); \
                 divide for a duration or multiply power by time for energy",
                a.label(),
                b.label()
            )),
            (Some(P), Some(P)) => Err(format!(
                "`{} * {}` squares a power — no GRAIL quantity is W^2",
                a.label(),
                b.label()
            )),
            (Some(E), Some(T)) | (Some(T), Some(E)) => Err(format!(
                "`{} * {}` builds an energy-delay product as a raw f64; use \
                 `Joules::delay_product(SimDuration)` for a typed `JouleSeconds`",
                a.label(),
                b.label()
            )),
            _ => Ok(Unknown),
        },
    }
}

fn div(a: Kind, b: Kind) -> Kind {
    use Dim::{C, E, F, P, T};
    use Kind::{Duration, Power, RawEnergy, RawPower, RawTime, Scalar, Unknown};
    match (a, b) {
        (k, Scalar) => k,
        (Scalar, _) => Unknown,
        _ => match (a.dim(), b.dim()) {
            (Some(da), Some(db)) if da == db => Scalar,
            (Some(E), Some(T)) => {
                if a.raw() || b.raw() {
                    RawPower
                } else {
                    Power
                }
            }
            (Some(E), Some(P)) => {
                if a.raw() || b.raw() {
                    RawTime
                } else {
                    Duration
                }
            }
            (Some(C), Some(F)) => RawTime,
            (Some(Dim::Edp), Some(T)) => RawEnergy,
            (Some(Dim::Edp), Some(E)) => RawTime,
            _ => Unknown,
        },
    }
}

/// Per-sink expected dimensions for the `raw-energy` check (`None` for
/// arguments the rule does not judge, e.g. component ids).
pub(crate) fn sink_expectations(name: &str) -> Option<&'static [Option<Dim>]> {
    match name {
        "charge" => Some(&[None, Some(Dim::E)]),
        "charge_interval" => Some(&[None, Some(Dim::P), Some(Dim::T)]),
        "transfer" => Some(&[None, None, Some(Dim::E)]),
        _ => None,
    }
}

/// Judge one sink argument against its expected dimension; returns the
/// violation `(rule, message)` if any.
pub(crate) fn judge_sink_arg(
    sink: &str,
    expected: Dim,
    got: Kind,
) -> Option<(&'static str, String)> {
    let want = match expected {
        Dim::E => "Joules",
        Dim::P => "Watts",
        Dim::T => "SimDuration",
        _ => "unit",
    };
    match got {
        Kind::Unknown | Kind::Bool => None,
        Kind::Scalar => Some((
            RAW_ENERGY,
            format!(
                "a bare f64 value flows into `EnergyLedger::{sink}`; wrap it in a units \
                 constructor (`{want}::new(...)`) so the ledger only ever books typed \
                 quantities"
            ),
        )),
        k if k.raw() && k.dim() == Some(expected) => Some((
            RAW_ENERGY,
            format!(
                "a {} round-trips through f64 into `EnergyLedger::{sink}`; keep the typed \
                 `{want}` value instead of re-wrapping the raw number",
                k.label()
            ),
        )),
        k if k.raw() => Some((
            RAW_ENERGY,
            format!(
                "a {} flows into `EnergyLedger::{sink}` where a `{want}` is required — \
                 wrong dimension and untyped",
                k.label()
            ),
        )),
        k if k.dim() == Some(expected) => None,
        k => Some((
            UNIT_MIX,
            format!(
                "`EnergyLedger::{sink}` requires a `{want}` here but receives a `{}`",
                k.label()
            ),
        )),
    }
}

/// The `unit-mix` / `raw-energy` driver for one file: run the dataflow
/// engine over every non-test function body in scope (library code and
/// `examples/`) and return the raw diagnostics.
pub fn check_file(
    info: &FileInfo,
    scanned: &ScannedFile,
    fg: &FileGraph,
    wg: &WorkspaceGraph,
) -> Vec<Diagnostic> {
    let in_examples = info.rel.starts_with("examples/") || info.rel.contains("/examples/");
    if info.kind != FileKind::Library && !in_examples {
        return Vec::new();
    }
    let mut findings = std::collections::BTreeSet::new();
    for d in &fg.fns {
        if d.in_test {
            continue;
        }
        // Lines owned by a nested fn are analyzed under that fn (with
        // its own parameter environment), not under the enclosing one.
        let nested: Vec<(usize, usize)> = fg
            .fns
            .iter()
            .filter(|o| o.line > d.line && o.end_line <= d.end_line)
            .map(|o| (o.line, o.end_line))
            .collect();
        let lines: Vec<(usize, &str)> = (d.line..=d.end_line.min(scanned.code.len()))
            .filter(|ln| !nested.iter().any(|&(a, b)| (a..=b).contains(ln)))
            .map(|ln| (ln, scanned.code[ln - 1].as_str()))
            .collect();
        let mut env: BTreeMap<String, Kind> = BTreeMap::new();
        for (name, ty) in &d.params {
            env.insert(name.clone(), param_kind(ty));
        }
        let mut ctx = Ctx {
            wg,
            out: &mut findings,
        };
        dataflow::run(&lines, &mut env, &mut ctx);
    }
    findings
        .into_iter()
        .map(|(line, col, end_col, rule, msg)| {
            Diagnostic::new(info.rel, line, rule, msg).with_span(col, end_col)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_algebra_combines_cleanly() {
        use Kind::*;
        assert_eq!(combine('*', Power, Duration), Ok(Energy));
        assert_eq!(combine('*', RawPower, RawTime), Ok(RawEnergy));
        assert_eq!(combine('/', Energy, Energy), Ok(Scalar));
        assert_eq!(combine('/', Energy, Duration), Ok(Power));
        assert_eq!(combine('/', RawEnergy, RawTime), Ok(RawPower));
        assert_eq!(combine('+', Energy, Energy), Ok(Energy));
        assert_eq!(combine('+', RawEnergy, Scalar), Ok(RawEnergy));
        assert_eq!(combine('-', Instant, Instant), Ok(Duration));
        assert_eq!(combine('+', Instant, Duration), Ok(Instant));
        assert_eq!(combine('*', Scalar, Scalar), Ok(Scalar));
        // Unknown absorbs silently.
        assert_eq!(combine('+', Unknown, Energy), Ok(Unknown));
    }

    #[test]
    fn illegal_mixtures_are_rejected() {
        use Kind::*;
        assert!(combine('+', Energy, Power).is_err());
        assert!(combine('+', RawEnergy, RawTime).is_err());
        assert!(combine('*', Energy, Energy).is_err());
        assert!(combine('*', RawEnergy, RawPower).is_err());
        assert!(combine('*', Power, Power).is_err());
        let edp = combine('*', RawEnergy, RawTime);
        assert!(edp.as_ref().is_err_and(|m| m.contains("delay_product")));
        assert!(combine('+', Instant, Instant).is_err());
    }

    #[test]
    fn signature_seeding_maps_types() {
        assert_eq!(param_kind("&mut SimInstant"), Kind::Instant);
        assert_eq!(param_kind("f64"), Kind::Scalar);
        assert_eq!(param_kind("&ChaosSchedule"), Kind::Unknown);
        assert_eq!(ret_kind("Joules"), Kind::Energy);
        assert_eq!(ret_kind("Result<Joules, SimError>"), Kind::Energy);
        assert_eq!(ret_kind("Option<SimDuration>"), Kind::Duration);
        // Bare numerics never seed — an f64 could be any quantity.
        assert_eq!(ret_kind("f64"), Kind::Unknown);
        assert_eq!(ret_kind("Result<ChaosReport, ClusterError>"), Kind::Unknown);
    }

    #[test]
    fn method_table_covers_projections() {
        assert_eq!(method_kind(Kind::Unknown, "joules"), Kind::RawEnergy);
        assert_eq!(method_kind(Kind::Unknown, "as_secs_f64"), Kind::RawTime);
        assert_eq!(method_kind(Kind::Power, "get"), Kind::RawPower);
        assert_eq!(method_kind(Kind::Bytes, "get"), Kind::Scalar);
        assert_eq!(method_kind(Kind::Unknown, "get"), Kind::Unknown);
        assert_eq!(method_kind(Kind::Energy, "delay_product"), Kind::Edp);
        assert_eq!(method_kind(Kind::Duration, "mul_f64"), Kind::Duration);
    }
}
