//! Machine-applicable fixes.
//!
//! A fix is offered only when applying it is *provably* safe — the
//! repaired source must be behavior-identical and must not be able to
//! introduce a new violation. Today exactly one rule qualifies:
//! [`crate::rules::STALE_PRAGMA`]. A dead `allow` pragma suppresses
//! nothing, so deleting the comment can change neither the compiled
//! program nor the diagnostic set (beyond removing the staleness report
//! itself). The `grail-lint --fix` flag routes stale-pragma diagnostics
//! through [`remove_stale_pragmas`] and rewrites the files in place.

use crate::scan::PRAGMA_TAG;
use std::collections::BTreeSet;

/// Remove the pragma comments at the 1-based `lines` of `source`.
///
/// A pragma that owns its whole line is removed line and all; a pragma
/// trailing code is cut back to the code, with the gap's whitespace
/// trimmed. Lines that carry no recognizable pragma comment are left
/// untouched (the caller's line numbers come from diagnostics, so this
/// is defensive, not expected). Returns `None` when nothing changed, so
/// callers never rewrite a file byte-for-byte identically.
pub fn remove_stale_pragmas(source: &str, lines: &BTreeSet<usize>) -> Option<String> {
    let scanned = crate::scan::scan(source);
    let mut kept: Vec<Option<String>> = source.lines().map(|l| Some(l.to_string())).collect();
    let mut changed = false;
    for &lineno in lines {
        let (Some(Some(raw)), Some(code)) = (kept.get(lineno - 1), scanned.code.get(lineno - 1))
        else {
            continue;
        };
        let Some(start) = pragma_comment_start(code, raw) else {
            continue;
        };
        changed = true;
        let head: String = raw.chars().take(start).collect();
        kept[lineno - 1] = if head.trim().is_empty() {
            None
        } else {
            Some(head.trim_end().to_string())
        };
    }
    if !changed {
        return None;
    }
    let mut out = kept.into_iter().flatten().collect::<Vec<_>>().join("\n");
    if source.ends_with('\n') && !out.is_empty() {
        out.push('\n');
    }
    Some(out)
}

/// The char offset where a `// grail-lint:` comment starts on this
/// line, or `None`. The scanner blanks line comments to spaces through
/// end of line, so a real comment start is a `//` in the raw text whose
/// suffix is all-blank in the stripped code and whose text opens with
/// the pragma tag.
fn pragma_comment_start(code: &str, raw: &str) -> Option<usize> {
    let raw_chars: Vec<char> = raw.chars().collect();
    let code_chars: Vec<char> = code.chars().collect();
    for start in 0..raw_chars.len().saturating_sub(1) {
        if raw_chars[start] != '/' || raw_chars[start + 1] != '/' {
            continue;
        }
        let blanked = match code_chars.get(start..) {
            Some(tail) => tail.iter().all(|&c| c == ' '),
            None => true,
        };
        if !blanked {
            continue;
        }
        let text: String = raw_chars[start..].iter().collect();
        if text
            .trim_start_matches(['/', '!'])
            .trim_start()
            .starts_with(PRAGMA_TAG)
        {
            return Some(start);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(src: &str, lines: &[usize]) -> Option<String> {
        remove_stale_pragmas(src, &lines.iter().copied().collect())
    }

    #[test]
    fn whole_line_pragma_is_deleted_line_and_all() {
        let src = "fn a() {}\n// grail-lint: allow(hash-order, gone)\nfn b() {}\n";
        assert_eq!(fix(src, &[2]).as_deref(), Some("fn a() {}\nfn b() {}\n"));
    }

    #[test]
    fn trailing_pragma_is_cut_back_to_the_code() {
        let src = "fn a() {} // grail-lint: allow(float-eq, gone)\n";
        assert_eq!(fix(src, &[1]).as_deref(), Some("fn a() {}\n"));
    }

    #[test]
    fn indented_pragma_line_disappears_entirely() {
        let src = "fn a() {\n    // grail-lint: allow(hash-order, gone)\n    let x = 1;\n}\n";
        assert_eq!(
            fix(src, &[2]).as_deref(),
            Some("fn a() {\n    let x = 1;\n}\n")
        );
    }

    #[test]
    fn lines_without_a_pragma_are_left_alone() {
        let src = "fn a() {}\nfn b() {}\n";
        assert_eq!(fix(src, &[1, 2]), None);
    }

    #[test]
    fn a_final_line_without_newline_stays_newline_free() {
        let src = "// grail-lint: allow(hash-order, gone)\nfn a() {}";
        assert_eq!(fix(src, &[1]).as_deref(), Some("fn a() {}"));
    }

    #[test]
    fn prose_mentioning_the_tag_mid_comment_is_not_a_pragma() {
        // The comment does not *open* with the tag, so the scanner never
        // flagged it and the fixer must not touch it either.
        let src = "fn a() {} // see grail-lint: allow(x, y) syntax\n";
        assert_eq!(fix(src, &[1]), None);
    }
}
