//! Module, impl and function recognition plus the intra-workspace call
//! graph, recovered from the stripped token stream — no external
//! parser, no syn, just the same blanked source the token rules read.
//!
//! [`extract`] walks one scanned file and rebuilds its item skeleton:
//! `mod` declarations, `use` imports, `impl` blocks (inherent and
//! trait), and every `fn` with its body span and outgoing calls. The
//! per-file skeletons assemble into a [`WorkspaceGraph`], which
//! resolves calls *by name*: a call site `foo(...)` or `x.foo(...)`
//! gains an edge to every library function named `foo` anywhere in the
//! workspace. That over-approximation is the right bias for an
//! invariant checker — a missed edge could hide a violation, while a
//! spurious one at worst widens a reachability set the rules treat
//! conservatively (taint may flag a reviewable call site; the
//! charge-reachability rule becomes *easier* to satisfy, never
//! spuriously strict).
//!
//! Functions defined inside `#[cfg(test)]` regions or test-like files
//! (`tests/`, `benches/`, `examples/`) are never resolution targets:
//! library code cannot call them, so edges into them would only
//! manufacture false paths.

use crate::scan::{is_ident_char, ScannedFile};
use crate::{FileInfo, FileKind};
use std::collections::{BTreeMap, VecDeque};

/// One outgoing call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Callee name as written (`charge`, `serve`, `next`, …).
    pub name: String,
    /// 1-based line of the call site.
    pub line: usize,
}

/// One recognized `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Self type when the fn sits in an `impl` block (`DiskDevice`).
    pub impl_type: Option<String>,
    /// Trait name when the block is `impl Trait for Type` (`Operator`).
    pub impl_trait: Option<String>,
    /// Module path inside the crate (`ops::scan`, `""` for the root).
    pub module: String,
    /// Workspace-relative file, `/`-separated.
    pub file: String,
    /// Owning crate name.
    pub crate_name: String,
    /// Library or test-like file.
    pub kind: FileKind,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based last line of the body.
    pub end_line: usize,
    /// True when the fn sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Declared return type, whitespace-normalized (`Joules`,
    /// `Result<ChaosReport, ClusterError>`); `None` for `()`.
    pub ret: Option<String>,
    /// Named value parameters as `(name, type-text)`; `self` receivers
    /// and destructuring patterns are omitted.
    pub params: Vec<(String, String)>,
    /// True when the receiver is `&mut self` or `mut self` — the
    /// signature-level signal that the method mutates its state.
    pub mut_self: bool,
    /// Outgoing call sites, in source order.
    pub calls: Vec<Call>,
}

impl FnDef {
    /// Display name qualified by the impl self type (`DiskDevice::serve`).
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `use` import (first segment is what the layering rule cares about).
#[derive(Debug, Clone)]
pub struct UseRef {
    /// The imported path, whitespace-normalized (`grail_sim::driver`).
    pub path: String,
    /// 1-based line of the `use` keyword.
    pub line: usize,
}

/// A `mod child;` or `mod child { … }` declaration.
#[derive(Debug, Clone)]
pub struct ModDecl {
    /// Declared module name.
    pub name: String,
    /// 1-based line.
    pub line: usize,
}

/// The item skeleton of one file.
#[derive(Debug, Clone, Default)]
pub struct FileGraph {
    /// Every recognized `fn` with body span and calls.
    pub fns: Vec<FnDef>,
    /// `use` imports.
    pub uses: Vec<UseRef>,
    /// `mod` declarations (module-graph edges).
    pub mods: Vec<ModDecl>,
}

/// One node of the module graph: a module, the file that hosts it, and
/// its outgoing edges (child declarations and imports).
#[derive(Debug, Clone)]
pub struct ModuleNode {
    /// `crate::module::path` rendered as `crate_name::module` (the
    /// crate root is just `crate_name`).
    pub path: String,
    /// Hosting file (workspace-relative).
    pub file: String,
    /// Declared child modules.
    pub declares: Vec<String>,
    /// Imported paths.
    pub uses: Vec<String>,
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum CtxKind {
    Impl {
        type_: Option<String>,
        trait_: Option<String>,
    },
    Fn {
        idx: usize,
    },
    Mod {
        name: String,
    },
}

#[derive(Debug)]
struct Ctx {
    kind: CtxKind,
    /// Brace depth *before* the block's `{` was consumed; the block
    /// closes on the `}` that returns the depth to this value.
    open_depth: usize,
}

#[derive(Debug)]
enum Pending {
    /// Saw `fn name`, waiting for the body `{` or a decl-ending `;`,
    /// accumulating the signature text in between.
    Fn {
        name: String,
        line: usize,
        header: String,
    },
    /// Saw line-initial `impl`, accumulating the header until `{`.
    Impl { text: String },
    /// Saw `mod name`, waiting for `{` (inline) or `;` (child file).
    Mod { name: String, line: usize },
    /// Saw `use`, accumulating the path until `;`.
    Use { text: String, line: usize },
}

/// Keywords that can never be call names.
const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "impl", "struct", "enum", "trait", "mod", "use", "pub", "in", "as", "move", "ref", "mut",
    "where", "unsafe", "dyn", "box", "await", "async", "const", "static", "type", "crate", "super",
    "self",
];

/// Words allowed before `fn` on a definition line.
fn is_fn_qualifier(word: &str) -> bool {
    word == "pub"
        || word.starts_with("pub(")
        || matches!(
            word,
            "const" | "async" | "unsafe" | "default" | "extern" | "\"C\""
        )
}

/// Module path derived from the file's place in the crate
/// (`crates/sim/src/disk.rs` → `disk`; crate roots → `""`).
fn file_module(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    let sub = match parts.as_slice() {
        ["crates", _, rest @ ..] => rest,
        rest => rest,
    };
    let mut comps: Vec<&str> = sub
        .iter()
        .skip(1) // src/ tests/ benches/ examples/
        .copied()
        .collect();
    if let Some(last) = comps.last_mut() {
        *last = last.trim_end_matches(".rs");
        if matches!(*last, "lib" | "main" | "mod") {
            comps.pop();
        }
    }
    comps.join("::")
}

/// Recover the item skeleton of one scanned file.
pub fn extract(info: &FileInfo, f: &ScannedFile) -> FileGraph {
    let mut out = FileGraph::default();
    let base_module = file_module(info.rel);
    let mut depth = 0usize;
    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending: Option<Pending> = None;
    // Paren/bracket nesting inside a pending header, so `[u8; 4]` in a
    // signature does not read as the decl-terminating `;`.
    let mut pending_nest = 0usize;

    for (li, line) in f.code.iter().enumerate() {
        let lineno = li + 1;
        let chars: Vec<char> = line.chars().collect();
        let n = chars.len();
        let mut i = 0usize;
        // A pending header spanning lines needs a separator so idents on
        // either side of the break do not fuse.
        match pending.as_mut() {
            Some(Pending::Fn { header, .. }) => header.push(' '),
            Some(Pending::Impl { text }) => text.push(' '),
            _ => {}
        }
        while i < n {
            let c = chars[i];
            if let Some(p) = pending.as_mut() {
                match p {
                    Pending::Use { text, line } => {
                        if c == ';' {
                            let path: String = text.split_whitespace().collect::<Vec<_>>().join("");
                            out.uses.push(UseRef { path, line: *line });
                            pending = None;
                        } else {
                            text.push(c);
                        }
                        i += 1;
                        continue;
                    }
                    Pending::Impl { text } => {
                        if c == '{' {
                            let (type_, trait_) = parse_impl_header(text);
                            stack.push(Ctx {
                                kind: CtxKind::Impl { type_, trait_ },
                                open_depth: depth,
                            });
                            depth += 1;
                            pending = None;
                        } else if c == ';' {
                            pending = None;
                        } else {
                            text.push(c);
                        }
                        i += 1;
                        continue;
                    }
                    Pending::Fn { name, line, header } => match c {
                        '(' | '[' => {
                            pending_nest += 1;
                            header.push(c);
                            i += 1;
                            continue;
                        }
                        ')' | ']' => {
                            pending_nest = pending_nest.saturating_sub(1);
                            header.push(c);
                            i += 1;
                            continue;
                        }
                        '{' => {
                            let sig = parse_fn_header(header);
                            let def = FnDef {
                                name: std::mem::take(name),
                                impl_type: current_impl_type(&stack),
                                impl_trait: current_impl_trait(&stack),
                                module: current_module(&base_module, &stack),
                                file: info.rel.to_string(),
                                crate_name: info.crate_name.to_string(),
                                kind: info.kind,
                                line: *line,
                                end_line: *line,
                                in_test: f.is_test_line(*line),
                                ret: sig.ret,
                                params: sig.params,
                                mut_self: sig.mut_self,
                                calls: Vec::new(),
                            };
                            out.fns.push(def);
                            stack.push(Ctx {
                                kind: CtxKind::Fn {
                                    idx: out.fns.len() - 1,
                                },
                                open_depth: depth,
                            });
                            depth += 1;
                            pending = None;
                            pending_nest = 0;
                            i += 1;
                            continue;
                        }
                        ';' if pending_nest == 0 => {
                            // Trait method declaration: no body, no node.
                            pending = None;
                            i += 1;
                            continue;
                        }
                        other => {
                            header.push(other);
                            i += 1;
                            continue;
                        }
                    },
                    Pending::Mod { name, line } => {
                        if c == '{' {
                            out.mods.push(ModDecl {
                                name: name.clone(),
                                line: *line,
                            });
                            stack.push(Ctx {
                                kind: CtxKind::Mod {
                                    name: std::mem::take(name),
                                },
                                open_depth: depth,
                            });
                            depth += 1;
                            pending = None;
                        } else if c == ';' {
                            out.mods.push(ModDecl {
                                name: std::mem::take(name),
                                line: *line,
                            });
                            pending = None;
                        } else {
                            i += 1;
                            continue;
                        }
                        i += 1;
                        continue;
                    }
                }
            }
            if c == '{' {
                depth += 1;
                i += 1;
            } else if c == '}' {
                depth = depth.saturating_sub(1);
                if let Some(top) = stack.last() {
                    if top.open_depth == depth {
                        if let CtxKind::Fn { idx } = top.kind {
                            out.fns[idx].end_line = lineno;
                        }
                        stack.pop();
                    }
                }
                i += 1;
            } else if is_ident_start(c) {
                let start = i;
                while i < n && is_ident_char(chars[i]) {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                let line_head: String = chars[..start].iter().collect();
                let at_item = line_head.trim().is_empty();
                let after_qualifiers = line_head
                    .split_whitespace()
                    .all(|w| w == "pub" || w.starts_with("pub("));
                match ident.as_str() {
                    "impl" if at_item => {
                        pending = Some(Pending::Impl {
                            text: String::new(),
                        });
                    }
                    "use" if at_item || after_qualifiers => {
                        pending = Some(Pending::Use {
                            text: String::new(),
                            line: lineno,
                        });
                    }
                    "fn" if line_head.split_whitespace().all(is_fn_qualifier) => {
                        // Next ident is the function name.
                        let mut j = i;
                        while j < n && !is_ident_start(chars[j]) {
                            if matches!(chars[j], '{' | '}' | ';' | '(') {
                                break;
                            }
                            j += 1;
                        }
                        let mut k = j;
                        while k < n && is_ident_char(chars[k]) {
                            k += 1;
                        }
                        if k > j {
                            pending = Some(Pending::Fn {
                                name: chars[j..k].iter().collect(),
                                line: lineno,
                                header: String::new(),
                            });
                            pending_nest = 0;
                            i = k;
                        }
                    }
                    "mod" if at_item || after_qualifiers => {
                        let mut j = i;
                        while j < n && chars[j] == ' ' {
                            j += 1;
                        }
                        let mut k = j;
                        while k < n && is_ident_char(chars[k]) {
                            k += 1;
                        }
                        if k > j {
                            pending = Some(Pending::Mod {
                                name: chars[j..k].iter().collect(),
                                line: lineno,
                            });
                            i = k;
                        }
                    }
                    _ => {
                        // Call site: `ident(` not preceded by `!` (macro
                        // names are not functions) — variant and struct
                        // constructors are CamelCase and skipped.
                        let next = chars.get(i).copied().unwrap_or('\0');
                        let is_call = next == '('
                            && !ident.chars().next().is_some_and(|c| c.is_uppercase())
                            && !CALL_KEYWORDS.contains(&ident.as_str());
                        if is_call {
                            if let Some(idx) = innermost_fn(&stack) {
                                out.fns[idx].calls.push(Call {
                                    name: ident,
                                    line: lineno,
                                });
                            }
                        }
                    }
                }
            } else {
                i += 1;
            }
        }
    }
    // Unclosed blocks at EOF: close every open fn at the last line.
    for ctx in stack {
        if let CtxKind::Fn { idx } = ctx.kind {
            out.fns[idx].end_line = f.code.len();
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn innermost_fn(stack: &[Ctx]) -> Option<usize> {
    stack.iter().rev().find_map(|c| match c.kind {
        CtxKind::Fn { idx } => Some(idx),
        _ => None,
    })
}

fn current_impl_type(stack: &[Ctx]) -> Option<String> {
    stack.iter().rev().find_map(|c| match &c.kind {
        CtxKind::Impl { type_, .. } => type_.clone(),
        _ => None,
    })
}

fn current_impl_trait(stack: &[Ctx]) -> Option<String> {
    stack.iter().rev().find_map(|c| match &c.kind {
        CtxKind::Impl { trait_, .. } => trait_.clone(),
        _ => None,
    })
}

fn current_module(base: &str, stack: &[Ctx]) -> String {
    let mut parts: Vec<&str> = if base.is_empty() {
        Vec::new()
    } else {
        base.split("::").collect()
    };
    for ctx in stack {
        if let CtxKind::Mod { name } = &ctx.kind {
            parts.push(name);
        }
    }
    parts.join("::")
}

/// Parse an impl header (the text between `impl` and `{`) into
/// `(self_type, trait_name)`: last path segment of each side, generics
/// and where-clauses ignored.
fn parse_impl_header(text: &str) -> (Option<String>, Option<String>) {
    let text = match text.find(" where ") {
        Some(p) => &text[..p],
        None => text,
    };
    let mut angle = 0usize;
    let mut seen_any = false;
    let mut trait_side: Option<String> = None;
    let mut last: Option<String> = None;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '<' {
            angle += 1;
            i += 1;
        } else if c == '>' {
            angle = angle.saturating_sub(1);
            i += 1;
        } else if angle == 0 && is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            match ident.as_str() {
                "for" => {
                    // Everything before `for` named the trait.
                    trait_side = last.take();
                }
                "dyn" | "mut" | "const" | "unsafe" => {}
                _ => {
                    last = Some(ident);
                    seen_any = true;
                }
            }
        } else {
            i += 1;
        }
    }
    if !seen_any {
        return (None, None);
    }
    (last, trait_side)
}

/// Parsed pieces of a fn signature (the text between the name and `{`).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FnSig {
    /// Named value parameters as `(name, type-text)`.
    pub params: Vec<(String, String)>,
    /// Whitespace-normalized return type, `None` for `()`.
    pub ret: Option<String>,
    /// True for `&mut self` / `mut self` receivers.
    pub mut_self: bool,
}

/// Parse a fn header: generics are skipped, the first top-level paren
/// group yields the parameters, a following `->` yields the return type
/// (cut at `where`). Tolerant by construction — anything unparseable
/// just produces fewer facts, never an error.
fn parse_fn_header(text: &str) -> FnSig {
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut angle = 0usize;
    let mut open = None;
    for (i, &c) in chars.iter().enumerate() {
        match c {
            '<' => angle += 1,
            '>' => {
                // Ignore `->`: an arrow before the params cannot occur.
                if i == 0 || chars[i - 1] != '-' {
                    angle = angle.saturating_sub(1);
                }
            }
            '(' if angle == 0 => {
                open = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(open) = open else {
        return FnSig::default();
    };
    let mut depth = 1usize;
    let mut close = n;
    for (i, &c) in chars.iter().enumerate().skip(open + 1) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let inner: String = chars[open + 1..close.min(n)].iter().collect();
    let mut sig = FnSig::default();
    for piece in split_top_level(&inner) {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let head: String = piece.split_whitespace().collect::<Vec<_>>().join(" ");
        if head == "self"
            || head.starts_with("self:")
            || head.starts_with("&self")
            || head.starts_with("& self")
            || head.contains("mut self")
            || head.starts_with("&'") && head.ends_with("self")
        {
            sig.mut_self = head.contains("mut self");
            continue;
        }
        if let Some((name, ty)) = piece.split_once(':') {
            let name = name.trim().trim_start_matches("mut ").trim();
            if !name.is_empty() && name.chars().all(is_ident_char) {
                let ty = ty.split_whitespace().collect::<Vec<_>>().join(" ");
                sig.params.push((name.to_string(), ty));
            }
        }
    }
    let rest: String = chars[(close + 1).min(n)..].iter().collect();
    if let Some(arrow) = rest.find("->") {
        let ret = rest[arrow + 2..].trim();
        let ret = match ret.find("where") {
            Some(p) if ret[..p].ends_with(' ') || p == 0 => ret[..p].trim(),
            _ => ret,
        };
        let ret = ret.split_whitespace().collect::<Vec<_>>().join(" ");
        if !ret.is_empty() && ret != "()" {
            sig.ret = Some(ret);
        }
    }
    sig
}

/// Split a parameter list at commas outside `<>`, `()`, `[]`.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0isize;
    let chars: Vec<char> = s.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' if i == 0 || chars[i - 1] != '-' => depth -= 1,
            ')' | ']' => depth -= 1,
            ',' if depth <= 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace graph
// ---------------------------------------------------------------------------

/// The whole-workspace view: every function, plus a name-resolution
/// index over the callable (non-test, library) subset.
#[derive(Debug, Default)]
pub struct WorkspaceGraph {
    /// Every recognized function, files in path order, defs in source
    /// order within a file.
    pub fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl WorkspaceGraph {
    /// Assemble the graph from per-file skeletons (one `FileGraph` per
    /// analyzed file, in deterministic file order).
    pub fn build(files: Vec<FileGraph>) -> Self {
        let mut fns = Vec::new();
        for fg in files {
            fns.extend(fg.fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, d) in fns.iter().enumerate() {
            // Library code cannot call into test regions, test-like
            // files, or binary targets (`main.rs`, `src/bin/`) — edges
            // into them would only manufacture false paths.
            let binary = d.file == "src/main.rs"
                || d.file.ends_with("/src/main.rs")
                || d.file.contains("/src/bin/");
            if d.in_test || d.kind != FileKind::Library || binary {
                continue;
            }
            by_name.entry(d.name.clone()).or_default().push(i);
        }
        WorkspaceGraph { fns, by_name }
    }

    /// Every callable function named `name`.
    pub fn resolve(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Indices of functions matching a predicate.
    pub fn find<P: Fn(&FnDef) -> bool>(&self, pred: P) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| pred(&self.fns[i]))
            .collect()
    }

    /// True when `start` can reach any function in `sinks` through call
    /// edges plus the supplied `bridges` (extra edges modelling data
    /// handoffs the call graph cannot see, e.g. demands deposited in an
    /// `ExecContext` being settled later by `Simulation::finish`).
    pub fn reaches_any(
        &self,
        start: usize,
        sinks: &std::collections::BTreeSet<usize>,
        bridges: &BTreeMap<usize, Vec<usize>>,
    ) -> bool {
        if sinks.contains(&start) {
            return true;
        }
        let mut seen = vec![false; self.fns.len()];
        seen[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(cur) = queue.pop_front() {
            let push = |next: usize,
                        seen: &mut Vec<bool>,
                        queue: &mut std::collections::VecDeque<usize>|
             -> bool {
                if sinks.contains(&next) {
                    return true;
                }
                if !seen[next] {
                    seen[next] = true;
                    queue.push_back(next);
                }
                false
            };
            for call in &self.fns[cur].calls {
                for &next in self.resolve(&call.name) {
                    if push(next, &mut seen, &mut queue) {
                        return true;
                    }
                }
            }
            if let Some(extra) = bridges.get(&cur) {
                for &next in extra {
                    if push(next, &mut seen, &mut queue) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Multi-source forward reachability: `out[i]` is true when any of
    /// `starts` reaches function `i` (inclusive) over call edges. Used
    /// by the ledger-flow rule to prove every charge site sits under a
    /// settlement anchor.
    pub fn reachable_from(&self, starts: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = VecDeque::new();
        for &s in starts {
            if s < seen.len() && !seen[s] {
                seen[s] = true;
                queue.push_back(s);
            }
        }
        while let Some(cur) = queue.pop_front() {
            for call in &self.fns[cur].calls {
                for &next in self.resolve(&call.name) {
                    if !seen[next] {
                        seen[next] = true;
                        queue.push_back(next);
                    }
                }
            }
        }
        seen
    }

    /// The module graph: one node per file-hosted module, with declared
    /// children and imports as edges.
    pub fn modules(files: &[(String, String, FileGraph)]) -> Vec<ModuleNode> {
        files
            .iter()
            .map(|(rel, crate_name, fg)| {
                let m = file_module(rel);
                let path = if m.is_empty() {
                    crate_name.clone()
                } else {
                    format!("{crate_name}::{m}")
                };
                ModuleNode {
                    path,
                    file: rel.clone(),
                    declares: fg.mods.iter().map(|d| d.name.clone()).collect(),
                    uses: fg.uses.iter().map(|u| u.path.clone()).collect(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use crate::FileInfo;

    fn graph_of(rel: &str, src: &str) -> FileGraph {
        let (crate_name, kind) = crate::classify(rel).expect("classifiable");
        let info = FileInfo {
            rel,
            crate_name: &crate_name,
            kind,
        };
        extract(&info, &scan(src))
    }

    #[test]
    fn recognizes_fns_impls_and_calls() {
        let src = "\
impl DiskDevice {
    pub fn serve(&mut self, at: SimInstant) -> Reservation {
        self.machine.set_state(at, ACTIVE);
        helper(at)
    }
}
fn helper(at: SimInstant) -> Reservation {
    make(at)
}
";
        let g = graph_of("crates/sim/src/disk.rs", src);
        assert_eq!(g.fns.len(), 2);
        let serve = &g.fns[0];
        assert_eq!(serve.name, "serve");
        assert_eq!(serve.impl_type.as_deref(), Some("DiskDevice"));
        assert_eq!(serve.impl_trait, None);
        assert_eq!(serve.line, 2);
        assert_eq!(serve.end_line, 5);
        let names: Vec<&str> = serve.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["set_state", "helper"]);
        assert_eq!(g.fns[1].name, "helper");
        assert_eq!(g.fns[1].impl_type, None);
        assert_eq!(g.fns[1].calls[0].name, "make");
    }

    #[test]
    fn trait_impls_and_module_paths() {
        let src = "\
impl Operator for ColScan {
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Batch>, QueryError> {
        ctx.charge_read(t, b, a);
        Ok(None)
    }
}
mod inner {
    pub fn nested() {
        deep();
    }
}
";
        let g = graph_of("crates/query/src/colscan.rs", src);
        let next = &g.fns[0];
        assert_eq!(next.impl_trait.as_deref(), Some("Operator"));
        assert_eq!(next.impl_type.as_deref(), Some("ColScan"));
        assert_eq!(next.module, "colscan");
        let nested = &g.fns[1];
        assert_eq!(nested.module, "colscan::inner");
        assert_eq!(g.mods.len(), 1);
        assert_eq!(g.mods[0].name, "inner");
    }

    #[test]
    fn generic_impl_headers_parse() {
        assert_eq!(
            parse_impl_header("<'a> fmt::Display for Diagnostic<'a> "),
            (Some("Diagnostic".to_string()), Some("Display".to_string()))
        );
        assert_eq!(
            parse_impl_header(" EnergyLedger "),
            (Some("EnergyLedger".to_string()), None)
        );
        assert_eq!(
            parse_impl_header("<C: Sync> Runner<C> "),
            (Some("Runner".to_string()), None)
        );
    }

    #[test]
    fn macros_and_constructors_are_not_calls() {
        let src = "\
fn f() {
    let v = vec![1, 2];
    let s = format!(\"{}\", 1);
    let x = Some(3);
    let e = SimError::UnknownDevice(msg);
    real_call(x);
}
";
        let g = graph_of("crates/sim/src/x.rs", src);
        let names: Vec<&str> = g.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["real_call"]);
    }

    #[test]
    fn multiline_signatures_and_array_semicolons() {
        let src = "\
pub fn run<C, R, F>(&self, configs: &[C], f: F) -> Vec<R>
where
    F: Fn(usize, &C) -> R + Sync,
{
    inner(configs)
}
fn decl_only(x: [u8; 4]);
fn after(x: [u8; 4]) -> u8 {
    x[0]
}
";
        let g = graph_of("crates/sim/src/x.rs", src);
        let names: Vec<&str> = g.fns.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["run", "after"]);
        assert_eq!(g.fns[0].calls[0].name, "inner");
    }

    #[test]
    fn test_region_fns_are_not_resolution_targets() {
        let src = "\
pub fn lib_fn() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
";
        let g = graph_of("crates/sim/src/x.rs", src);
        let wg = WorkspaceGraph::build(vec![g]);
        assert_eq!(wg.resolve("lib_fn").len(), 1);
        assert!(wg.resolve("helper").is_empty());
    }

    #[test]
    fn fn_signatures_yield_params_ret_and_receiver() {
        let src = "\
impl DiskDevice {
    pub fn serve(&mut self, at: SimInstant, bytes: u64) -> Joules {
        body()
    }
    pub fn peek(&self) -> Option<SimInstant> {
        None
    }
}
pub fn run_chaos(
    fleet: &mut [Machine],
    schedule: &ChaosSchedule,
) -> Result<ChaosReport, ClusterError>
where
    ChaosSchedule: Sized,
{
    body()
}
";
        let g = graph_of("crates/sim/src/disk.rs", src);
        let serve = &g.fns[0];
        assert!(serve.mut_self);
        assert_eq!(
            serve.params,
            vec![
                ("at".to_string(), "SimInstant".to_string()),
                ("bytes".to_string(), "u64".to_string()),
            ]
        );
        assert_eq!(serve.ret.as_deref(), Some("Joules"));
        let peek = &g.fns[1];
        assert!(!peek.mut_self);
        assert_eq!(peek.ret.as_deref(), Some("Option<SimInstant>"));
        let chaos = &g.fns[2];
        assert!(!chaos.mut_self);
        assert_eq!(
            chaos.ret.as_deref(),
            Some("Result<ChaosReport, ClusterError>")
        );
        assert_eq!(chaos.params[0].0, "fleet");
        assert_eq!(chaos.params[1].1, "&ChaosSchedule");
    }

    #[test]
    fn generic_fn_headers_find_the_param_list() {
        let src = "\
pub fn run<C: Sync, R, F>(items: &[C], f: F) -> Vec<R> {
    body()
}
fn plain() {
    body()
}
";
        let g = graph_of("crates/sim/src/x.rs", src);
        assert_eq!(g.fns[0].params[0].0, "items");
        assert_eq!(g.fns[0].ret.as_deref(), Some("Vec<R>"));
        assert_eq!(g.fns[1].ret, None);
        assert!(g.fns[1].params.is_empty());
    }

    #[test]
    fn reachable_from_walks_call_edges_forward() {
        let src = "\
pub fn finish() {
    settle();
}
fn settle() {
    book();
}
fn book() {}
fn orphan() {}
";
        let g = graph_of("crates/sim/src/x.rs", src);
        let wg = WorkspaceGraph::build(vec![g]);
        let start = wg.find(|d| d.name == "finish");
        let seen = wg.reachable_from(&start);
        let idx = |n: &str| wg.find(|d| d.name == n)[0];
        assert!(seen[idx("finish")] && seen[idx("settle")] && seen[idx("book")]);
        assert!(!seen[idx("orphan")]);
    }

    #[test]
    fn use_imports_are_collected() {
        let src = "\
use grail_power::units::Joules;
use std::collections::{BTreeMap, BTreeSet};
fn f() {}
";
        let g = graph_of("crates/sim/src/x.rs", src);
        assert_eq!(g.uses.len(), 2);
        assert_eq!(g.uses[0].path, "grail_power::units::Joules");
        assert_eq!(g.uses[0].line, 1);
    }
}
