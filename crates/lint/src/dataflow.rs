//! Intraprocedural abstract interpretation over the token stream.
//!
//! This is the engine behind the `unit-mix` and `raw-energy` rules and
//! the workspace-level `ledger-flow` balance check. It is *not* a Rust
//! parser: it lexes the comment/string-stripped lines of one function
//! body ([`crate::scan`] guarantees column fidelity), splits them into
//! statement fragments at top-level `;`/`{`/`}`/`,`, and evaluates each
//! fragment with a tolerant precedence-climbing expression walker. Any
//! construct the walker does not understand evaluates to
//! [`Kind::Unknown`] and is skipped — the engine is engineered to stay
//! silent rather than guess, because every diagnostic it emits must
//! survive on a clean workspace.
//!
//! Environments are per-function maps from binding name to [`Kind`],
//! seeded from the declared parameter types and updated at `let`
//! bindings and assignments. Tuple/struct patterns bind their names to
//! `Unknown` (sound: `Unknown` never flags). The transfer functions for
//! arithmetic live in [`crate::units::combine`].

use crate::graph::WorkspaceGraph;
use crate::rules::{LEDGER_FILE, LEDGER_FLOW, SINK_METHODS, UNIT_MIX};
use crate::units::{self, Kind};
use crate::{Diagnostic, FileKind};
use std::collections::{BTreeMap, BTreeSet};

/// A finding: `(line, col, end_col, rule, message)` — collected in a
/// set so re-walks of the same tokens (loops, resyncs) dedup naturally.
pub(crate) type Findings = BTreeSet<(usize, usize, usize, &'static str, String)>;

/// Shared evaluation context for one function walk.
pub(crate) struct Ctx<'a> {
    /// Workspace call graph, for return-kind fallback lookups.
    pub wg: &'a WorkspaceGraph,
    /// Accumulated findings.
    pub out: &'a mut Findings,
}

impl Ctx<'_> {
    fn violation(&mut self, sp: &Sp, rule: &'static str, msg: String) {
        self.out
            .insert((sp.line, sp.col, sp.col + sp.len, rule, msg));
    }
}

/// Binding environment: name → kind.
pub(crate) type Env = BTreeMap<String, Kind>;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num,
    Str,
    Life,
    Op(&'static str),
    Ch(char),
}

#[derive(Debug, Clone)]
struct Sp {
    tok: Tok,
    line: usize,
    /// 1-based column (byte offset into the stripped line + 1, which
    /// equals the original column thanks to the length-preserving
    /// strip).
    col: usize,
    len: usize,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

/// Multi-character operators, longest first.
const OPS: &[&str] = &[
    "..=", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "<<", ">>", "..",
];

fn lex(lines: &[(usize, &str)]) -> Vec<Sp> {
    let mut out = Vec::new();
    for &(line, text) in lines {
        let b: Vec<char> = text.chars().collect();
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let start = i;
            if is_ident_start(c) {
                while i < b.len() && crate::scan::is_ident_char(b[i]) {
                    i += 1;
                }
                let s: String = b[start..i].iter().collect();
                out.push(Sp {
                    tok: Tok::Ident(s),
                    line,
                    col: start + 1,
                    len: i - start,
                });
            } else if c.is_ascii_digit() {
                // `1.5` continues the number; `1..n` and `1.joules()`
                // do not.
                while i < b.len()
                    && (crate::scan::is_ident_char(b[i])
                        || (b[i] == '.'
                            && !matches!(b.get(i + 1), Some(&n) if n == '.' || is_ident_start(n))))
                {
                    i += 1;
                }
                out.push(Sp {
                    tok: Tok::Num,
                    line,
                    col: start + 1,
                    len: i - start,
                });
            } else if c == '"' {
                i += 1;
                while i < b.len() && b[i] != '"' {
                    i += 1;
                }
                i = (i + 1).min(b.len());
                out.push(Sp {
                    tok: Tok::Str,
                    line,
                    col: start + 1,
                    len: i - start,
                });
            } else if c == '\'' {
                let mut j = i + 1;
                while j < b.len() && crate::scan::is_ident_char(b[j]) {
                    j += 1;
                }
                if j > i + 1 && b.get(j) != Some(&'\'') {
                    // Lifetime.
                    out.push(Sp {
                        tok: Tok::Life,
                        line,
                        col: start + 1,
                        len: j - i,
                    });
                    i = j;
                } else {
                    // (Blanked) char literal.
                    i += 1;
                    while i < b.len() && b[i] != '\'' {
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    out.push(Sp {
                        tok: Tok::Str,
                        line,
                        col: start + 1,
                        len: i - start,
                    });
                }
            } else {
                let rest: String = b[i..b.len().min(i + 3)].iter().collect();
                if let Some(op) = OPS.iter().find(|op| rest.starts_with(**op)) {
                    out.push(Sp {
                        tok: Tok::Op(op),
                        line,
                        col: start + 1,
                        len: op.len(),
                    });
                    i += op.len();
                } else {
                    out.push(Sp {
                        tok: Tok::Ch(c),
                        line,
                        col: start + 1,
                        len: 1,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Statement walker
// ---------------------------------------------------------------------------

/// Walk one function body (pre-stripped `(line_no, text)` pairs) with
/// the given parameter environment, recording findings into `ctx`.
pub(crate) fn run(lines: &[(usize, &str)], env: &mut Env, ctx: &mut Ctx) {
    eval_stmts(&lex(lines), env, ctx);
}

/// Split a token run into statement fragments at top-level (outside
/// `()`/`[]`) `;`, `{`, `}`, and `,`, and process each. Also used for
/// closure/block bodies discovered mid-expression.
fn eval_stmts(toks: &[Sp], env: &mut Env, ctx: &mut Ctx) {
    let mut frag_start = 0;
    let mut paren = 0usize;
    for (i, sp) in toks.iter().enumerate() {
        match sp.tok {
            Tok::Ch('(') | Tok::Ch('[') => paren += 1,
            Tok::Ch(')') | Tok::Ch(']') => paren = paren.saturating_sub(1),
            Tok::Ch(';') | Tok::Ch('{') | Tok::Ch('}') | Tok::Ch(',') if paren == 0 => {
                fragment(&toks[frag_start..i], env, ctx);
                frag_start = i + 1;
            }
            _ => {}
        }
    }
    fragment(&toks[frag_start..], env, ctx);
}

/// Tokens plausible inside a closure parameter list (`|a, (b, c): &T|`).
fn is_param_tok(t: &Tok) -> bool {
    matches!(
        t,
        Tok::Ident(_)
            | Tok::Life
            | Tok::Op("::")
            | Tok::Ch(',')
            | Tok::Ch(':')
            | Tok::Ch('&')
            | Tok::Ch('(')
            | Tok::Ch(')')
            | Tok::Ch('<')
            | Tok::Ch('>')
            | Tok::Ch('[')
            | Tok::Ch(']')
            | Tok::Ch('*')
            | Tok::Ch('_')
    )
}

fn ident(sp: &Sp) -> Option<&str> {
    match &sp.tok {
        Tok::Ident(s) => Some(s),
        _ => None,
    }
}

/// Index of the first top-level (outside `()`/`[]`) token matching.
fn find_top(toks: &[Sp], pred: impl Fn(&Tok) -> bool) -> Option<usize> {
    let mut depth = 0usize;
    for (i, sp) in toks.iter().enumerate() {
        match sp.tok {
            Tok::Ch('(') | Tok::Ch('[') => depth += 1,
            Tok::Ch(')') | Tok::Ch(']') => depth = depth.saturating_sub(1),
            _ if depth == 0 && pred(&sp.tok) => return Some(i),
            _ => {}
        }
    }
    None
}

fn bind_pattern_unknown(toks: &[Sp], env: &mut Env) {
    for sp in toks {
        if let Some(name) = ident(sp) {
            if name != "mut" && name != "ref" && !name.starts_with(char::is_uppercase) {
                env.insert(name.to_string(), Kind::Unknown);
            }
        }
    }
}

fn fragment(toks: &[Sp], env: &mut Env, ctx: &mut Ctx) {
    let mut toks = toks;
    // Leading statement keywords carry no kind of their own.
    while let Some(first) = toks.first().and_then(ident) {
        match first {
            "return" | "if" | "else" | "while" | "loop" | "match" | "break" | "continue"
            | "unsafe" | "move" | "yield" | "in" | "pub" => toks = &toks[1..],
            "for" => {
                // `for pat in iter` — bind the pattern, walk the iter.
                let Some(pos) = find_top(&toks[1..], |t| matches!(t, Tok::Ident(s) if s == "in"))
                else {
                    return;
                };
                bind_pattern_unknown(&toks[1..1 + pos], env);
                toks = &toks[1 + pos + 1..];
            }
            _ => break,
        }
    }
    if toks.is_empty() {
        return;
    }
    // Match arm: `pat => expr` — bind the pattern, walk the body.
    if let Some(pos) = find_top(toks, |t| t == &Tok::Op("=>")) {
        bind_pattern_unknown(&toks[..pos], env);
        eval_all(&toks[pos + 1..], env, ctx);
        return;
    }
    if ident(&toks[0]) == Some("let") {
        let pat_and_rhs = &toks[1..];
        let Some(eq) = find_top(pat_and_rhs, |t| t == &Tok::Ch('=')) else {
            bind_pattern_unknown(pat_and_rhs, env);
            return;
        };
        let (pat, rhs) = (&pat_and_rhs[..eq], &pat_and_rhs[eq + 1..]);
        let rhs_kind = eval_all(rhs, env, ctx);
        let (names, declared) = match find_top(pat, |t| t == &Tok::Ch(':')) {
            Some(c) => (&pat[..c], declared_kind(&pat[c + 1..])),
            None => (pat, Kind::Unknown),
        };
        let bound: Vec<&str> = names
            .iter()
            .filter_map(ident)
            .filter(|n| *n != "mut" && *n != "ref")
            .collect();
        if bound.len() == 1 {
            let kind = if declared.dimensioned() {
                declared
            } else if rhs_kind != Kind::Unknown {
                rhs_kind
            } else {
                declared
            };
            env.insert(bound[0].to_string(), kind);
        } else {
            bind_pattern_unknown(names, env);
        }
        return;
    }
    // Assignment / compound assignment.
    if let Some(eq) = find_top(toks, |t| t == &Tok::Ch('=')) {
        let (lhs, rhs) = (&toks[..eq], &toks[eq + 1..]);
        let rhs_kind = eval_all(rhs, env, ctx);
        if let [sp] = lhs {
            if let Some(name) = ident(sp) {
                env.insert(name.to_string(), rhs_kind);
            }
        }
        return;
    }
    if let Some(eq) = find_top(toks, |t| {
        matches!(
            t,
            Tok::Op("+=") | Tok::Op("-=") | Tok::Op("*=") | Tok::Op("/=") | Tok::Op("%=")
        )
    }) {
        let (lhs, rhs) = (&toks[..eq], &toks[eq + 1..]);
        let lhs_kind = eval_all(lhs, env, ctx);
        let rhs_kind = eval_all(rhs, env, ctx);
        let op = match &toks[eq].tok {
            Tok::Op(o) => o.chars().next().unwrap_or('+'),
            _ => '+',
        };
        let combined = match units::combine(op, lhs_kind, rhs_kind) {
            Ok(k) => k,
            Err(msg) => {
                ctx.violation(&toks[eq], UNIT_MIX, msg);
                Kind::Unknown
            }
        };
        if let [sp] = lhs {
            if let Some(name) = ident(sp) {
                if combined != Kind::Unknown {
                    env.insert(name.to_string(), combined);
                }
            }
        }
        return;
    }
    eval_all(toks, env, ctx);
}

/// Kind declared by the type half of a `let` pattern: a (possibly
/// referenced) bare unit-type name seeds; anything structured stays
/// `Unknown` except when the first path segment is itself a unit type.
fn declared_kind(toks: &[Sp]) -> Kind {
    let names: Vec<&str> = toks.iter().filter_map(ident).collect();
    match names.as_slice() {
        [one] => units::type_kind(one),
        [first, ..] => match units::type_kind(first) {
            Kind::Scalar | Kind::Bool => Kind::Unknown,
            k => k,
        },
        [] => Kind::Unknown,
    }
}

/// Evaluate a token run as one expression; extra trailing tokens are
/// re-walked for violation coverage but poison the returned kind.
fn eval_all(toks: &[Sp], env: &Env, ctx: &mut Ctx) -> Kind {
    if toks.is_empty() {
        return Kind::Unknown;
    }
    let mut p = Parser {
        toks,
        pos: 0,
        env,
        ctx,
    };
    let k = p.expr();
    let clean = p.pos >= toks.len();
    while p.pos < toks.len() {
        let before = p.pos;
        p.expr();
        if p.pos == before {
            p.pos += 1;
        }
    }
    if clean {
        k
    } else {
        Kind::Unknown
    }
}

// ---------------------------------------------------------------------------
// Expression parser
// ---------------------------------------------------------------------------

struct Parser<'a, 'b> {
    toks: &'a [Sp],
    pos: usize,
    env: &'a Env,
    ctx: &'a mut Ctx<'b>,
}

impl Parser<'_, '_> {
    fn peek(&self) -> Option<&Sp> {
        self.toks.get(self.pos)
    }

    fn take(&mut self) -> Option<Sp> {
        let sp = self.toks.get(self.pos).cloned();
        if sp.is_some() {
            self.pos += 1;
        }
        sp
    }

    fn expr(&mut self) -> Kind {
        let k = self.cmp();
        // Ranges yield iterators, not quantities.
        let mut ranged = false;
        while matches!(
            self.peek().map(|s| &s.tok),
            Some(Tok::Op("..") | Tok::Op("..="))
        ) {
            self.pos += 1;
            self.cmp();
            ranged = true;
        }
        if ranged {
            Kind::Unknown
        } else {
            k
        }
    }

    fn cmp(&mut self) -> Kind {
        let k = self.addsub();
        let mut compared = false;
        while matches!(
            self.peek().map(|s| &s.tok),
            Some(
                Tok::Op("==")
                    | Tok::Op("!=")
                    | Tok::Op("<=")
                    | Tok::Op(">=")
                    | Tok::Op("&&")
                    | Tok::Op("||")
                    | Tok::Ch('<')
                    | Tok::Ch('>')
            )
        ) {
            self.pos += 1;
            self.addsub();
            compared = true;
        }
        if compared {
            Kind::Bool
        } else {
            k
        }
    }

    fn addsub(&mut self) -> Kind {
        let mut k = self.muldiv();
        while matches!(
            self.peek().map(|s| &s.tok),
            Some(Tok::Ch('+') | Tok::Ch('-'))
        ) {
            let op_sp = self.take().unwrap();
            let op = match op_sp.tok {
                Tok::Ch(c) => c,
                _ => '+',
            };
            let r = self.muldiv();
            k = self.combine(&op_sp, op, k, r);
        }
        k
    }

    fn muldiv(&mut self) -> Kind {
        let mut k = self.unary();
        while matches!(
            self.peek().map(|s| &s.tok),
            Some(Tok::Ch('*') | Tok::Ch('/') | Tok::Ch('%'))
        ) {
            let op_sp = self.take().unwrap();
            let op = match op_sp.tok {
                Tok::Ch(c) => c,
                _ => '*',
            };
            let r = self.unary();
            k = self.combine(&op_sp, op, k, r);
        }
        k
    }

    fn combine(&mut self, sp: &Sp, op: char, a: Kind, b: Kind) -> Kind {
        match units::combine(op, a, b) {
            Ok(k) => k,
            Err(msg) => {
                self.ctx.violation(sp, UNIT_MIX, msg);
                Kind::Unknown
            }
        }
    }

    fn unary(&mut self) -> Kind {
        while matches!(
            self.peek().map(|s| &s.tok),
            Some(Tok::Ch('-') | Tok::Ch('!') | Tok::Ch('&') | Tok::Ch('*'))
        ) || self.peek().and_then(ident) == Some("mut")
        {
            self.pos += 1;
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Kind {
        let mut k = self.primary();
        loop {
            match self.peek().map(|s| s.tok.clone()) {
                Some(Tok::Ch('.')) => {
                    self.pos += 1;
                    match self.take() {
                        Some(sp) => match &sp.tok {
                            Tok::Ident(name) if name == "await" => {}
                            Tok::Ident(name) => {
                                if self.peek().map(|s| &s.tok) == Some(&Tok::Ch('(')) {
                                    let name = name.clone();
                                    let args = self.call_args();
                                    k = self.method(k, &sp, &name, &args);
                                } else {
                                    // Plain field access: untracked.
                                    k = Kind::Unknown;
                                }
                            }
                            // Tuple index `.0`.
                            Tok::Num => k = Kind::Unknown,
                            _ => return Kind::Unknown,
                        },
                        None => return Kind::Unknown,
                    }
                }
                Some(Tok::Ident(w)) if w == "as" => {
                    self.pos += 1;
                    // Consume the target type path.
                    while matches!(
                        self.peek().map(|s| &s.tok),
                        Some(Tok::Ident(_) | Tok::Op("::"))
                    ) {
                        self.pos += 1;
                    }
                    if !k.dimensioned() {
                        k = Kind::Scalar;
                    }
                }
                Some(Tok::Ch('?')) => self.pos += 1,
                Some(Tok::Ch('[')) => {
                    self.skip_balanced('[', ']');
                    k = Kind::Unknown;
                }
                _ => break,
            }
        }
        k
    }

    fn skip_balanced(&mut self, open: char, close: char) {
        debug_assert_eq!(self.peek().map(|s| &s.tok), Some(&Tok::Ch(open)));
        let mut depth = 0usize;
        while let Some(sp) = self.take() {
            match sp.tok {
                Tok::Ch(c) if c == open => depth += 1,
                Tok::Ch(c) if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
    }

    /// Consume a turbofish `<...>` if present (depth-balanced; `>>`
    /// closes two).
    fn skip_turbofish(&mut self) {
        if self.peek().map(|s| &s.tok) != Some(&Tok::Ch('<')) {
            return;
        }
        let mut depth = 0isize;
        while let Some(sp) = self.take() {
            match sp.tok {
                Tok::Ch('<') => depth += 1,
                Tok::Op("<<") => depth += 2,
                Tok::Ch('>') => depth -= 1,
                Tok::Op(">>") => depth -= 2,
                _ => {}
            }
            if depth <= 0 {
                return;
            }
        }
    }

    /// Parse a parenthesized argument list; returns `(kind, span)` per
    /// argument. Caller guarantees `peek` is `(`.
    fn call_args(&mut self) -> Vec<(Kind, Sp)> {
        let open = self.pos;
        let mut depth = 0usize;
        let mut close = None;
        for (i, sp) in self.toks[open..].iter().enumerate() {
            match sp.tok {
                Tok::Ch('(') | Tok::Ch('[') => depth += 1,
                Tok::Ch(')') | Tok::Ch(']') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        close = Some(open + i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else {
            // Unbalanced (fragment split inside the list); consume all.
            self.pos = self.toks.len();
            return Vec::new();
        };
        let inner = &self.toks[open + 1..close];
        self.pos = close + 1;
        let mut ranges = Vec::new();
        let mut depth = 0usize;
        let mut start = 0;
        // A `|` at the start of an argument (or right after `move`)
        // opens a closure's parameter list; commas before the matching
        // `|` separate closure params, not call arguments. A `|`
        // elsewhere is bitwise-or and ignored.
        let mut in_closure_params = false;
        for (i, sp) in inner.iter().enumerate() {
            match sp.tok {
                Tok::Ch('(') | Tok::Ch('[') => depth += 1,
                Tok::Ch(')') | Tok::Ch(']') => depth = depth.saturating_sub(1),
                Tok::Ch('|') if depth == 0 => {
                    if in_closure_params {
                        in_closure_params = false;
                    } else if i == start
                        || matches!(inner[i - 1].tok, Tok::Ident(ref w) if w == "move")
                    {
                        in_closure_params = true;
                    }
                }
                Tok::Ch(',') if depth == 0 && !in_closure_params => {
                    ranges.push((start, i));
                    start = i + 1;
                }
                _ => {}
            }
        }
        ranges.push((start, inner.len()));
        let mut args = Vec::new();
        for (a, b) in ranges {
            let frag = &inner[a..b];
            if let Some(first) = frag.first() {
                let kind = eval_all(frag, self.env, self.ctx);
                args.push((kind, first.clone()));
            }
        }
        args
    }

    /// Method-call transfer: sink checks first, then the kind tables,
    /// then the workspace return-type fallback.
    fn method(&mut self, recv: Kind, _sp: &Sp, name: &str, args: &[(Kind, Sp)]) -> Kind {
        if let Some(expect) = units::sink_expectations(name) {
            for (i, want) in expect.iter().enumerate() {
                let (Some(want), Some((got, at))) = (want, args.get(i)) else {
                    continue;
                };
                if let Some((rule, msg)) = units::judge_sink_arg(name, *want, *got) {
                    self.ctx.violation(at, rule, msg);
                }
            }
        }
        match units::method_kind(recv, name) {
            Kind::Unknown => call_ret_kind(self.ctx.wg, name),
            k => k,
        }
    }

    /// Walk a closure body: a braced block is split into statement
    /// fragments under a scoped copy of the environment (closure params
    /// are unknown, outer bindings stay visible); a bare expression is
    /// parsed in place.
    fn closure_body(&mut self) {
        if self.peek().map(|s| &s.tok) != Some(&Tok::Ch('{')) {
            self.expr();
            return;
        }
        let open = self.pos;
        let mut depth = 0usize;
        let mut close = None;
        for (i, sp) in self.toks[open..].iter().enumerate() {
            match sp.tok {
                Tok::Ch('{') => depth += 1,
                Tok::Ch('}') => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(open + i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else {
            self.pos = self.toks.len();
            return;
        };
        let mut scoped = self.env.clone();
        eval_stmts(&self.toks[open + 1..close], &mut scoped, self.ctx);
        self.pos = close + 1;
    }

    fn primary(&mut self) -> Kind {
        let Some(sp) = self.peek().cloned() else {
            return Kind::Unknown;
        };
        match &sp.tok {
            Tok::Num => {
                self.pos += 1;
                Kind::Scalar
            }
            Tok::Str | Tok::Life => {
                self.pos += 1;
                Kind::Unknown
            }
            Tok::Ch('(') => {
                let args = self.call_args();
                match args.as_slice() {
                    [(k, _)] => *k,
                    _ => Kind::Unknown,
                }
            }
            Tok::Ch('[') => {
                self.skip_balanced('[', ']');
                Kind::Unknown
            }
            Tok::Ch('|') => {
                // Closure: skip the parameter list (bounded to tokens
                // plausible in one — a `|` used as bitwise-or bails out
                // here instead of swallowing the rest of the stream),
                // then walk the body.
                self.pos += 1;
                loop {
                    match self.peek() {
                        None => return Kind::Unknown,
                        Some(sp) if sp.tok == Tok::Ch('|') => {
                            self.pos += 1;
                            break;
                        }
                        Some(sp) if is_param_tok(&sp.tok) => self.pos += 1,
                        Some(_) => return Kind::Unknown,
                    }
                }
                self.closure_body();
                Kind::Unknown
            }
            Tok::Op("||") => {
                self.pos += 1;
                self.closure_body();
                Kind::Unknown
            }
            Tok::Ident(first) => {
                self.pos += 1;
                let mut segs = vec![first.clone()];
                while self.peek().map(|s| &s.tok) == Some(&Tok::Op("::")) {
                    self.pos += 1;
                    self.skip_turbofish();
                    match self.peek().map(|s| s.tok.clone()) {
                        Some(Tok::Ident(seg)) => {
                            self.pos += 1;
                            segs.push(seg);
                        }
                        _ => break,
                    }
                }
                if self.peek().map(|s| &s.tok) == Some(&Tok::Ch('!')) {
                    // Macro invocation: walk the payload for coverage.
                    self.pos += 1;
                    match self.peek().map(|s| s.tok.clone()) {
                        Some(Tok::Ch('(') | Tok::Ch('[')) => {
                            self.call_args();
                        }
                        _ => {}
                    }
                    return Kind::Unknown;
                }
                if self.peek().map(|s| &s.tok) == Some(&Tok::Ch('(')) {
                    let args = self.call_args();
                    if segs.len() >= 2 {
                        let (ty, assoc) = (&segs[segs.len() - 2], &segs[segs.len() - 1]);
                        return self.assoc_call(&sp, ty, assoc, &args);
                    }
                    return call_ret_kind(self.ctx.wg, &segs[0]);
                }
                if segs.len() >= 2 {
                    // Path constant: `Joules::ZERO`, `f64::MAX`, enum
                    // variants.
                    let ty = &segs[segs.len() - 2];
                    return match units::type_kind(ty) {
                        Kind::Unknown => Kind::Unknown,
                        k => k,
                    };
                }
                match segs[0].as_str() {
                    "true" | "false" => Kind::Bool,
                    name => self.env.get(name).copied().unwrap_or(Kind::Unknown),
                }
            }
            _ => Kind::Unknown,
        }
    }

    /// Associated call `Type::assoc(args)`: constructors of unit types
    /// yield the type's kind and reject wrong-dimension arguments.
    fn assoc_call(&mut self, sp: &Sp, ty: &str, assoc: &str, args: &[(Kind, Sp)]) -> Kind {
        let k = units::assoc_kind(ty, assoc);
        if k.dimensioned() && k != Kind::Instant {
            if let [(got, at)] = args {
                if got.dimensioned() && got.dim() != k.dim() {
                    self.ctx.violation(
                        at,
                        UNIT_MIX,
                        format!(
                            "`{ty}::{assoc}` is constructed from a {} — wrong dimension for \
                             a `{ty}`",
                            got.label()
                        ),
                    );
                }
            }
        }
        if k == Kind::Unknown {
            // Not a unit type; fall back to workspace return kinds
            // keyed by the function name (covers `Self::helper(...)`).
            let _ = sp;
            return call_ret_kind(self.ctx.wg, assoc);
        }
        k
    }
}

/// Return kind of a named function per the workspace graph: the mapped
/// kind if every function with that name agrees, else `Unknown`.
fn call_ret_kind(wg: &WorkspaceGraph, name: &str) -> Kind {
    let mut k: Option<Kind> = None;
    for &i in wg.resolve(name) {
        let rk = wg.fns[i]
            .ret
            .as_deref()
            .map(units::ret_kind)
            .unwrap_or(Kind::Unknown);
        match k {
            None => k = Some(rk),
            Some(p) if p == rk => {}
            _ => return Kind::Unknown,
        }
    }
    k.unwrap_or(Kind::Unknown)
}

// ---------------------------------------------------------------------------
// Ledger-flow balance
// ---------------------------------------------------------------------------

/// Is this function a settlement anchor — a place where accumulated
/// charges are folded into a report the caller can audit?
fn is_settlement_anchor(d: &crate::graph::FnDef) -> bool {
    if d.in_test || d.kind != FileKind::Library {
        return false;
    }
    d.name == "finish"
        || d.ret.as_deref().is_some_and(|r| {
            let mut word = String::new();
            let mut found = false;
            for c in r.chars().chain(std::iter::once(' ')) {
                if crate::scan::is_ident_char(c) {
                    word.push(c);
                } else {
                    if word.ends_with("Report") {
                        found = true;
                    }
                    word.clear();
                }
            }
            found
        })
}

/// The `ledger-flow` balance rule: every `charge`/`charge_interval`/
/// `transfer` call site outside the ledger itself must sit in a
/// function from which a settlement anchor is reachable *backwards* —
/// i.e. some anchor reaches the charging function through the call
/// graph, so the booked Joules are folded into a report instead of
/// accumulating invisibly. Stays silent when the corpus has no ledger
/// sinks in scope (partial corpora prove nothing).
pub fn ledger_flow(graph: &WorkspaceGraph) -> Vec<Diagnostic> {
    let has_sinks = graph
        .fns
        .iter()
        .any(|d| d.file == LEDGER_FILE && SINK_METHODS.contains(&d.name.as_str()));
    if !has_sinks {
        return Vec::new();
    }
    let anchors: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| is_settlement_anchor(&graph.fns[i]))
        .collect();
    let settled = graph.reachable_from(&anchors);
    let mut out = Vec::new();
    for (i, d) in graph.fns.iter().enumerate() {
        if d.in_test || d.kind != FileKind::Library || d.file == LEDGER_FILE {
            continue;
        }
        for c in &d.calls {
            if !SINK_METHODS.contains(&c.name.as_str()) {
                continue;
            }
            if !settled[i] {
                out.push(Diagnostic::new(
                    d.file.clone(),
                    c.line,
                    LEDGER_FLOW,
                    format!(
                        "`{}` books energy via `{}` but no settlement anchor (a `finish` \
                         or report-producing function) reaches it; the charged Joules \
                         can never be folded into an auditable report",
                        d.qualified(),
                        c.name
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RAW_ENERGY;
    use crate::units::Kind;

    fn walk(body: &str, params: &[(&str, &str)]) -> (Env, Vec<(usize, usize, usize, String)>) {
        let wg = WorkspaceGraph::build(Vec::new());
        let mut out = Findings::new();
        let mut env: Env = params
            .iter()
            .map(|(n, t)| (n.to_string(), units::param_kind(t)))
            .collect();
        {
            let mut ctx = Ctx {
                wg: &wg,
                out: &mut out,
            };
            let lines: Vec<(usize, &str)> =
                body.lines().enumerate().map(|(i, l)| (i + 1, l)).collect();
            run(&lines, &mut env, &mut ctx);
        }
        let v = out
            .into_iter()
            .map(|(l, c, e, r, m)| (l, c, e, format!("{r}: {m}")))
            .collect();
        (env, v)
    }

    #[test]
    fn bindings_track_kinds_through_arithmetic() {
        let (env, v) = walk(
            "let idle = Watts::new(2.0);\n\
             let dt = b - a;\n\
             let e = idle * dt;\n\
             let ratio = e / e;",
            &[("a", "SimInstant"), ("b", "SimInstant")],
        );
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(env.get("idle"), Some(&Kind::Power));
        assert_eq!(env.get("dt"), Some(&Kind::Duration));
        assert_eq!(env.get("e"), Some(&Kind::Energy));
        assert_eq!(env.get("ratio"), Some(&Kind::Scalar));
    }

    #[test]
    fn unit_mixing_is_flagged_at_the_operator() {
        let (_, v) = walk("let bad = e + p;", &[("e", "Joules"), ("p", "Watts")]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].3.contains("unit-mix"), "{v:?}");
        // Operator column: `let bad = e + p;` → '+' at col 13.
        assert_eq!((v[0].0, v[0].1), (1, 13));
    }

    #[test]
    fn raw_edp_products_suggest_delay_product() {
        let (_, v) = walk(
            "let edp = e.joules() * d.as_secs_f64();",
            &[("e", "Joules"), ("d", "SimDuration")],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].3.contains("delay_product"), "{v:?}");
    }

    #[test]
    fn violations_inside_closure_arguments_are_caught() {
        // A two-parameter closure passed as a call argument: the `,`
        // between closure params must not be mistaken for an argument
        // separator, and the braced body must be walked statement by
        // statement.
        let (_, v) = walk(
            "let edp = rows.iter().min_by(|a, b| {\n\
             let ea = a.1.energy.joules() * a.1.elapsed.as_secs_f64();\n\
             let eb = b.1.energy.joules() * b.1.elapsed.as_secs_f64();\n\
             ea.partial_cmp(&eb)\n\
             });",
            &[],
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].3.contains("delay_product"), "{v:?}");
        assert_eq!((v[0].0, v[1].0), (2, 3), "one finding per body line");
    }

    #[test]
    fn closure_bodies_scope_their_bindings() {
        // Bindings made inside a closure body must not leak into (or
        // clobber) the enclosing environment.
        let (env, v) = walk(
            "let e = Joules::new(1.0);\n\
             let f = xs.map(|x| { let e = x.as_secs_f64(); e });\n\
             let total = e + Joules::new(2.0);",
            &[],
        );
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(env.get("e"), Some(&Kind::Energy));
    }

    #[test]
    fn bitwise_or_in_arguments_does_not_swallow_the_stream() {
        // `|` as an operator (not a closure head) must bail out of the
        // closure parse without consuming the rest of the fragment.
        let (_, v) = walk(
            "let m = pack(flags | mask, e.joules() + d.as_secs_f64());",
            &[("e", "Joules"), ("d", "SimDuration")],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].3.contains("unit-mix"), "{v:?}");
    }

    #[test]
    fn typed_delay_product_is_clean() {
        let (env, v) = walk(
            "let edp = e.delay_product(d);",
            &[("e", "Joules"), ("d", "SimDuration")],
        );
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(env.get("edp"), Some(&Kind::Edp));
    }

    #[test]
    fn bare_f64_into_charge_is_flagged() {
        let (_, v) = walk("ledger.charge(id, 3.5);", &[("id", "u32")]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].3.contains("raw-energy"), "{v:?}");
        assert!(v[0].3.contains("Joules::new"), "{v:?}");
    }

    #[test]
    fn raw_roundtrip_into_charge_is_flagged() {
        let (_, v) = walk("ledger.charge(id, e.joules());", &[("e", "Joules")]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].3.starts_with(RAW_ENERGY), "{v:?}");
        assert!(v[0].3.contains("round-trips"), "{v:?}");
    }

    #[test]
    fn typed_charge_and_unknown_args_stay_silent() {
        let (_, v) = walk(
            "ledger.charge(id, e);\n\
             ledger.charge_interval(id, w, d);\n\
             ledger.transfer(src, dst, mystery());",
            &[("e", "Joules"), ("w", "Watts"), ("d", "SimDuration")],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn wrong_dimension_constructor_is_flagged() {
        let (_, v) = walk(
            "let w = Watts::new(d.as_secs_f64());",
            &[("d", "SimDuration")],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].3.contains("wrong dimension"), "{v:?}");
    }

    #[test]
    fn unknown_absorbs_without_noise() {
        let (_, v) = walk(
            "let x = helper(a) + other.field;\n\
             let y = x * 2.0;\n\
             for ev in queue { handle(ev); }\n\
             match st { Some(s) => s + 1.0, None => 0.0 };",
            &[("a", "Joules")],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn shadowing_and_tuple_patterns_reset_kinds() {
        let (env, v) = walk(
            "let e = Joules::new(1.0);\n\
             let (e, t) = split();\n\
             let z = e + q;",
            &[("q", "Watts")],
        );
        // After the tuple rebind `e` is Unknown, so `e + q` is silent.
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(env.get("e"), Some(&Kind::Unknown));
    }

    #[test]
    fn ledger_flow_flags_unanchored_charges() {
        let ledger = "\
impl EnergyLedger {
    pub fn charge(&mut self, id: ComponentId, e: Joules) {}
    pub fn transfer(&mut self, from: ComponentId, to: ComponentId, e: Joules) {}
}
";
        let stray = "\
impl Heater {
    pub fn burn(&mut self, l: &mut EnergyLedger) {
        l.charge(self.id, self.pending);
    }
}
";
        let files = [
            crate::SourceFile {
                rel: "crates/power/src/ledger.rs".into(),
                source: ledger.into(),
            },
            crate::SourceFile {
                rel: "crates/power/src/heater.rs".into(),
                source: stray.into(),
            },
        ];
        let analyses: Vec<_> = files.iter().filter_map(crate::analyze_file).collect();
        let wg = WorkspaceGraph::build(analyses.iter().map(|a| a.graph.clone()).collect());
        let out = ledger_flow(&wg);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, LEDGER_FLOW);
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("Heater::burn"), "{out:?}");
    }

    #[test]
    fn ledger_flow_accepts_report_anchored_charges() {
        let ledger = "\
impl EnergyLedger {
    pub fn charge(&mut self, id: ComponentId, e: Joules) {}
}
";
        let anchored = "\
impl Engine {
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        self.settle();
        Ok(RunReport::default())
    }
    fn settle(&mut self) {
        self.ledger.charge(self.id, self.pending);
    }
}
";
        let files = [
            crate::SourceFile {
                rel: "crates/power/src/ledger.rs".into(),
                source: ledger.into(),
            },
            crate::SourceFile {
                rel: "crates/sim/src/engine.rs".into(),
                source: anchored.into(),
            },
        ];
        let analyses: Vec<_> = files.iter().filter_map(crate::analyze_file).collect();
        let wg = WorkspaceGraph::build(analyses.iter().map(|a| a.graph.clone()).collect());
        let out = ledger_flow(&wg);
        assert!(out.is_empty(), "{out:?}");
    }
}
