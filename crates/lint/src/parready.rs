//! Parallel-readiness audit for `crates/sim`.
//!
//! ROADMAP item 1 wants the simulation event loop sharded across
//! threads, which is only tractable once every piece of shared-mutable
//! state in `grail-sim` is known. This module is the pre-flight: a
//! token rule (`par-readiness`) that flags thread-hostile constructs in
//! sim library code the moment they appear, and a report builder that
//! turns the same signals — plus `&mut self` density and the lock-order
//! graph — into a ranked JSON blocker list CI publishes as an artifact.
//!
//! The rule is deliberately scoped to `crates/sim` library code: other
//! crates may use `Rc`/`RefCell` freely (grail-core's intrusive queues
//! do), but anything that lands in the crate we intend to shard is a
//! blocker the refactor will have to pay down, so it surfaces now, not
//! during the rewrite.

use crate::rules::{token_positions, PAR_READINESS};
use crate::sarif::escape;
use crate::scan::ScannedFile;
use crate::{Diagnostic, FileInfo, FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// `(needle, blocker kind, severity rank, why it blocks sharding)` —
/// lower rank = harder blocker, listed first in the report.
const BLOCKERS: &[(&str, &str, u8, &str)] = &[
    (
        "static mut",
        "global-mutable",
        0,
        "global mutable state races across shards by construction",
    ),
    (
        "RefCell",
        "interior-mutability",
        1,
        "RefCell panics on concurrent borrows; needs Mutex/RwLock or redesign",
    ),
    (
        "UnsafeCell",
        "interior-mutability",
        1,
        "raw interior mutability has no runtime guard at all",
    ),
    (
        "Cell",
        "interior-mutability",
        2,
        "Cell is !Sync; per-shard copies or atomics are required",
    ),
    (
        "OnceCell",
        "interior-mutability",
        2,
        "OnceCell is !Sync; use OnceLock for cross-thread init",
    ),
    (
        "LazyCell",
        "interior-mutability",
        2,
        "LazyCell is !Sync; use LazyLock for cross-thread init",
    ),
    (
        "Rc",
        "non-send-shared-ownership",
        3,
        "Rc is !Send; handles cannot migrate to worker threads (use Arc)",
    ),
    (
        "Weak",
        "non-send-shared-ownership",
        3,
        "rc::Weak is !Send wherever Rc is",
    ),
    (
        "*mut",
        "raw-pointer",
        4,
        "raw pointers opt out of Send/Sync inference; shard safety must be argued by hand",
    ),
    (
        "*const",
        "raw-pointer",
        4,
        "raw pointers opt out of Send/Sync inference; shard safety must be argued by hand",
    ),
];

fn in_scope(info: &FileInfo) -> bool {
    info.crate_name == "sim" && info.kind == FileKind::Library
}

/// The `par-readiness` token rule: flag thread-hostile constructs in
/// `crates/sim` library code (test regions exempt — a test may fake
/// shared state all it wants).
pub fn par_readiness(info: &FileInfo, f: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !in_scope(info) {
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        if f.in_test[i] {
            continue;
        }
        for &(needle, kind, _, why) in BLOCKERS {
            for start in token_positions(code, needle) {
                out.push(
                    Diagnostic::new(
                        info.rel,
                        i + 1,
                        PAR_READINESS,
                        format!(
                            "`{needle}` blocks event-loop sharding ({kind}): {why}; \
                             crates/sim must stay shard-ready (ROADMAP item 1)"
                        ),
                    )
                    .with_span(start + 1, start + 1 + needle.len()),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Report builder
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Blocker {
    severity: u8,
    file: String,
    line: usize,
    col: usize,
    kind: &'static str,
    token: &'static str,
    why: &'static str,
}

/// Build the parallel-readiness report for `crates/sim` as a
/// deterministic pretty-printed JSON document. Sections:
///
/// - `blockers`: ranked thread-hostile constructs (file, line, kind) —
///   the same findings the `par-readiness` rule would flag, including
///   test regions (marked), since test scaffolding still has to compile
///   under a sharded API.
/// - `shared_state`: impl types ranked by `&mut self` method count —
///   the surface that must become shard-local or lock-guarded.
/// - `lock_order`: observed lock-acquisition sequences workspace-wide
///   and any cycles (deadlock risk once sim starts taking locks).
pub fn report_json(files: &[SourceFile]) -> String {
    let mut blockers: Vec<Blocker> = Vec::new();
    let mut mut_methods: BTreeMap<String, (usize, Vec<String>, String)> = BTreeMap::new();
    let mut lock_seqs: BTreeMap<String, Vec<String>> = BTreeMap::new();

    let mut analyses: Vec<_> = files.iter().filter_map(crate::analyze_file).collect();
    analyses.sort_by(|a, b| a.rel.cmp(&b.rel));
    for a in &analyses {
        let sim_lib = a.crate_name == "sim" && a.kind == FileKind::Library;
        if sim_lib {
            for (i, code) in a.scanned.code.iter().enumerate() {
                for &(needle, kind, sev, why) in BLOCKERS {
                    for start in token_positions(code, needle) {
                        blockers.push(Blocker {
                            severity: sev,
                            file: a.rel.clone(),
                            line: i + 1,
                            col: start + 1,
                            kind,
                            token: needle,
                            why,
                        });
                    }
                }
            }
            for d in &a.graph.fns {
                if d.in_test || !d.mut_self {
                    continue;
                }
                let ty = d.impl_type.clone().unwrap_or_else(|| "<free>".into());
                let entry = mut_methods
                    .entry(ty)
                    .or_insert_with(|| (0, Vec::new(), format!("{}:{}", d.file, d.line)));
                entry.0 += 1;
                entry.1.push(d.name.clone());
            }
        }
        // Lock sequences are collected workspace-wide: sim calling into
        // a crate that locks is the same hazard as sim locking itself.
        for d in &a.graph.fns {
            if d.in_test {
                continue;
            }
            let mut seq = Vec::new();
            for ln in d.line..=d.end_line.min(a.scanned.code.len()) {
                let code = &a.scanned.code[ln - 1];
                for name in ["lock", "write", "read"] {
                    for pos in token_positions(code, name) {
                        // Require the method-call shape `.name(`.
                        let bytes = code.as_bytes();
                        if pos == 0 || bytes[pos - 1] != b'.' {
                            continue;
                        }
                        if bytes.get(pos + name.len()) != Some(&b'(') {
                            continue;
                        }
                        // Receiver: the ident chain before the dot.
                        let head = &code[..pos - 1];
                        let recv: String = head
                            .chars()
                            .rev()
                            .take_while(|&c| crate::scan::is_ident_char(c) || c == '.')
                            .collect::<Vec<_>>()
                            .into_iter()
                            .rev()
                            .collect();
                        if recv.is_empty() {
                            continue;
                        }
                        seq.push((ln, pos, recv));
                    }
                }
            }
            if seq.len() >= 2 {
                seq.sort();
                lock_seqs.insert(
                    format!("{}::{}", a.crate_name, d.qualified()),
                    seq.into_iter().map(|(_, _, r)| r).collect(),
                );
            }
        }
    }

    blockers.sort_by(|a, b| {
        (a.severity, &a.file, a.line, a.col).cmp(&(b.severity, &b.file, b.line, b.col))
    });
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    for seq in lock_seqs.values() {
        for w in seq.windows(2) {
            if w[0] != w[1] {
                edges.insert((w[0].clone(), w[1].clone()));
            }
        }
    }
    let cycles: Vec<String> = edges
        .iter()
        .filter(|(a, b)| edges.contains(&(b.clone(), a.clone())) && a < b)
        .map(|(a, b)| format!("{a} <-> {b}"))
        .collect();

    let verdict = if blockers.is_empty() && cycles.is_empty() {
        "ready: no thread-hostile constructs in crates/sim library code"
    } else {
        "blocked: resolve the listed constructs before sharding the event loop"
    };

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"report\": \"grail-lint parallel-readiness audit (crates/sim)\",\n");
    out.push_str(&format!("  \"verdict\": \"{}\",\n", escape(verdict)));
    out.push_str(&format!(
        "  \"summary\": {{ \"blockers\": {}, \"shared_state_types\": {}, \"lock_edges\": {}, \
         \"lock_cycles\": {} }},\n",
        blockers.len(),
        mut_methods.len(),
        edges.len(),
        cycles.len()
    ));
    out.push_str("  \"blockers\": [");
    for (i, b) in blockers.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{ \"rank\": {}, \"file\": \"{}\", \"line\": {}, \"col\": {}, \"kind\": \
             \"{}\", \"token\": \"{}\", \"why\": \"{}\" }}",
            b.severity,
            escape(&b.file),
            b.line,
            b.col,
            escape(b.kind),
            escape(b.token),
            escape(b.why)
        ));
    }
    out.push_str(if blockers.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"shared_state\": [");
    let mut shared: Vec<_> = mut_methods.into_iter().collect();
    shared
        .sort_by(|a, b| (std::cmp::Reverse(a.1 .0), &a.0).cmp(&(std::cmp::Reverse(b.1 .0), &b.0)));
    for (i, (ty, (count, mut names, at))) in shared.into_iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        names.sort();
        names.dedup();
        names.truncate(8);
        let methods = names
            .iter()
            .map(|n| format!("\"{}\"", escape(n)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{ \"type\": \"{}\", \"mut_self_methods\": {}, \"declared_at\": \"{}\", \
             \"methods\": [{}] }}",
            escape(&ty),
            count,
            escape(&at),
            methods
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"lock_order\": {\n    \"edges\": [");
    for (i, (a, b)) in edges.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "      {{ \"before\": \"{}\", \"after\": \"{}\" }}",
            escape(a),
            escape(b)
        ));
    }
    out.push_str(if edges.is_empty() {
        "],\n"
    } else {
        "\n    ],\n"
    });
    out.push_str("    \"cycles\": [");
    for (i, c) in cycles.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("      \"{}\"", escape(c)));
    }
    out.push_str(if cycles.is_empty() {
        "]\n"
    } else {
        "\n    ]\n"
    });
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan;

    fn info(rel: &'static str) -> FileInfo<'static> {
        FileInfo {
            rel,
            crate_name: if rel.contains("/sim/") {
                "sim"
            } else {
                "power"
            },
            kind: FileKind::Library,
        }
    }

    #[test]
    fn flags_thread_hostile_constructs_in_sim() {
        let src = "\
use std::rc::Rc;
pub struct EventQueue {
    inner: RefCell<Vec<Event>>,
    shared: Rc<Config>,
}
";
        let f = scan::scan(src);
        let mut out = Vec::new();
        par_readiness(&info("crates/sim/src/queue.rs"), &f, &mut out);
        let kinds: Vec<&str> = out.iter().map(|d| d.rule).collect();
        assert_eq!(kinds, vec![PAR_READINESS; 3], "{out:?}");
        // RefCell must not double-report as Cell.
        assert_eq!(
            out.iter()
                .filter(|d| d.message.contains("`RefCell`"))
                .count(),
            1,
            "{out:?}"
        );
        assert!(out.iter().all(|d| d.col > 0 && d.end_col > d.col));
    }

    #[test]
    fn other_crates_and_test_regions_are_exempt() {
        let src = "pub struct Pool { cells: RefCell<u32> }\n";
        let f = scan::scan(src);
        let mut out = Vec::new();
        par_readiness(&info("crates/power/src/pool.rs"), &f, &mut out);
        assert!(out.is_empty(), "{out:?}");

        let test_src = "#[cfg(test)]\nmod tests {\n    use std::rc::Rc;\n}\n";
        let tf = scan::scan(test_src);
        let mut tout = Vec::new();
        par_readiness(&info("crates/sim/src/lib.rs"), &tf, &mut tout);
        assert!(tout.is_empty(), "{tout:?}");
    }

    #[test]
    fn report_ranks_blockers_and_counts_shared_state() {
        let files = [
            SourceFile {
                rel: "crates/sim/src/core.rs".into(),
                source: "\
pub struct Sim { q: RefCell<u32> }
impl Sim {
    pub fn step(&mut self) {}
    pub fn rewind(&mut self) {}
    pub fn peek(&self) -> u32 { 0 }
}
static mut TICKS: u64 = 0;
"
                .into(),
            },
            SourceFile {
                rel: "crates/par/src/runner.rs".into(),
                source: "\
impl Runner {
    pub fn drain(&self) {
        let a = self.queue.lock();
        let b = self.results.lock();
    }
}
"
                .into(),
            },
        ];
        let json = report_json(&files);
        assert!(json.contains("\"verdict\": \"blocked"), "{json}");
        // static mut (rank 0) sorts before RefCell (rank 1).
        let smut = json.find("global-mutable").unwrap();
        let refc = json.find("interior-mutability").unwrap();
        assert!(smut < refc, "{json}");
        assert!(
            json.contains("\"type\": \"Sim\", \"mut_self_methods\": 2"),
            "{json}"
        );
        assert!(json.contains("\"before\": \"self.queue\""), "{json}");
        assert!(json.contains("\"cycles\": []"), "{json}");
        // Deterministic output: building twice is byte-identical.
        assert_eq!(json, report_json(&files));
    }
}
