//! The static metric catalog: every metric name in the workspace,
//! registered exactly once.
//!
//! Instrumentation sites pass bare `&'static str` literals; this table
//! is where those names acquire a kind, a unit, and help text for the
//! Prometheus exposition. The `metric-hygiene` lint rule enforces the
//! two invariants the exposition relies on: call sites never build
//! names at runtime (bounded cardinality), and each catalog name
//! appears exactly once.

/// What family a metric belongs to (drives the Prometheus `# TYPE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Last-write (or accumulated) gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
    /// Tumbling-window rate (exported as a gauge of the last window).
    Rate,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn prometheus_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge | MetricKind::Rate => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One registered metric: its dotted name, kind, unit, and help text.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Dotted metric name, as passed at the instrumentation site.
    pub name: &'static str,
    /// Metric family.
    pub kind: MetricKind,
    /// Unit suffix for documentation ("1" for dimensionless counts).
    pub unit: &'static str,
    /// One-line help text for the exposition.
    pub help: &'static str,
}

/// Every metric the workspace emits, in name order. Each name is
/// registered exactly once (asserted by a test and the
/// `metric-hygiene` lint rule).
pub const CATALOG: &[MetricSpec] = &[
    MetricSpec {
        name: "chaos.breaker_trips",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Restarted machines held in circuit-breaker quarantine",
    },
    MetricSpec {
        name: "chaos.cold_boots",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Cold boots billed to the Recovery ledger during chaos runs",
    },
    MetricSpec {
        name: "chaos.event_rate",
        kind: MetricKind::Rate,
        unit: "1/h",
        help: "Chaos schedule events per simulated hour (last closed window)",
    },
    MetricSpec {
        name: "chaos.events",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Chaos schedule events applied (crashes, outages, brownouts, surges)",
    },
    MetricSpec {
        name: "chaos.offered_work",
        kind: MetricKind::Gauge,
        unit: "work",
        help: "Cumulative work offered to the fleet, in demand units",
    },
    MetricSpec {
        name: "chaos.placements",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Placement recomputations during chaos runs",
    },
    MetricSpec {
        name: "chaos.redispatches",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Re-dispatch attempts that recovered stranded work",
    },
    MetricSpec {
        name: "chaos.replicas",
        kind: MetricKind::Gauge,
        unit: "1",
        help: "Effective replica count under the current placement",
    },
    MetricSpec {
        name: "chaos.served_rate",
        kind: MetricKind::Gauge,
        unit: "work/s",
        help: "Work rate currently served under the placement",
    },
    MetricSpec {
        name: "chaos.served_work",
        kind: MetricKind::Gauge,
        unit: "work",
        help: "Cumulative work served to completion, in demand units",
    },
    MetricSpec {
        name: "chaos.shed_rate",
        kind: MetricKind::Gauge,
        unit: "work/s",
        help: "Work rate currently shed by admission control (SLA-visible)",
    },
    MetricSpec {
        name: "chaos.shed_work",
        kind: MetricKind::Gauge,
        unit: "work",
        help: "Cumulative work shed by admission control, in demand units",
    },
    MetricSpec {
        name: "cpu.requests",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Compute reservations issued to the CPU model",
    },
    MetricSpec {
        name: "db.joules_per_query",
        kind: MetricKind::Gauge,
        unit: "J",
        help: "Wall-socket Joules per completed query over the run",
    },
    MetricSpec {
        name: "db.queries",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Queries completed by EnergyAwareDb runs",
    },
    MetricSpec {
        name: "db.query_joules",
        kind: MetricKind::Histogram,
        unit: "J",
        help: "Attributed energy per completed query",
    },
    MetricSpec {
        name: "db.query_rate",
        kind: MetricKind::Rate,
        unit: "1/s",
        help: "Queries completed per simulated second (last closed window)",
    },
    MetricSpec {
        name: "db.query_secs",
        kind: MetricKind::Histogram,
        unit: "s",
        help: "Per-query latency from dispatch to completion",
    },
    MetricSpec {
        name: "driver.jobs",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Jobs completed by the stream driver",
    },
    MetricSpec {
        name: "driver.queue_depth",
        kind: MetricKind::Histogram,
        unit: "1",
        help: "Ready-queue depth observed at each event dispatch",
    },
    MetricSpec {
        name: "fault.degraded_accesses",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Reads served in RAID-degraded mode",
    },
    MetricSpec {
        name: "fault.io_faults",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Injected IO faults surfaced to the driver",
    },
    MetricSpec {
        name: "fault.rebuilds",
        kind: MetricKind::Counter,
        unit: "1",
        help: "RAID rebuilds completed",
    },
    MetricSpec {
        name: "fault.recovery_bills",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Direct Recovery-category bills (crash reboots, replayed work)",
    },
    MetricSpec {
        name: "fault.spin_up_failures",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Disk spin-up attempts that failed",
    },
    MetricSpec {
        name: "io.disk_service_secs",
        kind: MetricKind::Histogram,
        unit: "s",
        help: "Disk service time per request",
    },
    MetricSpec {
        name: "io.requests",
        kind: MetricKind::Counter,
        unit: "1",
        help: "IO requests issued to storage devices",
    },
    MetricSpec {
        name: "io.retries",
        kind: MetricKind::Counter,
        unit: "1",
        help: "IO retries after retryable faults",
    },
    MetricSpec {
        name: "io.ssd_service_secs",
        kind: MetricKind::Histogram,
        unit: "s",
        help: "SSD service time per request",
    },
    MetricSpec {
        name: "power.parks",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Disk park (spin-down) decisions taken",
    },
    MetricSpec {
        name: "power.state_entries",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Power-state entries summed over all device state machines",
    },
    MetricSpec {
        name: "power.transition_joules",
        kind: MetricKind::Gauge,
        unit: "J",
        help: "Energy consumed by power-state transitions alone",
    },
    MetricSpec {
        name: "power.transition_secs",
        kind: MetricKind::Gauge,
        unit: "s",
        help: "Simulated time spent inside power-state transitions",
    },
    MetricSpec {
        name: "power.transitions",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Power-state transitions summed over all device state machines",
    },
    MetricSpec {
        name: "power.unparks",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Disk unpark (spin-up) decisions taken",
    },
    MetricSpec {
        name: "scheduler.admitted",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Queries admitted by the batching admission policy",
    },
    MetricSpec {
        name: "scheduler.batches",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Admission batches released",
    },
    MetricSpec {
        name: "scheduler.cold_boots",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Machines cold-booted by fail-over",
    },
    MetricSpec {
        name: "scheduler.failovers",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Fail-over decisions executed",
    },
    MetricSpec {
        name: "scheduler.placements",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Consolidation placements computed",
    },
    MetricSpec {
        name: "trace.dropped",
        kind: MetricKind::Counter,
        unit: "1",
        help: "Trace events evicted because the recorder ring was full",
    },
];

/// Look up the spec for a dotted metric name.
pub fn spec_for(name: &str) -> Option<&'static MetricSpec> {
    CATALOG
        .binary_search_by(|s| s.name.cmp(name))
        .ok()
        .map(|i| &CATALOG[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_duplicate_free() {
        for w in CATALOG.windows(2) {
            assert!(
                w[0].name < w[1].name,
                "catalog must be sorted, duplicate-free: {} vs {}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        assert_eq!(spec_for("io.requests").unwrap().kind, MetricKind::Counter);
        assert_eq!(
            spec_for("db.query_secs").unwrap().kind,
            MetricKind::Histogram
        );
        assert!(spec_for("no.such.metric").is_none());
    }
}
