//! Scraping: turning the live [`Registry`] into a series of
//! [`Snapshot`]s at fixed simulated intervals.
//!
//! The scraper is driven by the instrumented event loops: whenever
//! simulated time advances to `t`, they call
//! [`Scraper::advance`]`(t, registry)`, which emits one snapshot per
//! interval boundary crossed since the last call (catch-up semantics).
//! The snapshot series is therefore a pure function of the recorded
//! event sequence — identical at any thread count, because a single
//! simulation is always sequential.

use crate::registry::{Histogram, Registry};

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// The histogram state at scrape time.
    pub hist: Histogram,
}

/// The registry's state at one scrape boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The scrape boundary, in simulated nanoseconds.
    pub at_nanos: u64,
    /// Counters in name order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauges in name order.
    pub gauges: Vec<(&'static str, f64)>,
    /// Last-closed-window counts of every rate, in name order.
    pub rates: Vec<(&'static str, u64)>,
    /// Histograms in name order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Capture `reg` at boundary `at_nanos`.
    pub fn capture(at_nanos: u64, reg: &Registry) -> Self {
        Snapshot {
            at_nanos,
            counters: reg.counters().collect(),
            gauges: reg.gauges().collect(),
            rates: reg.rates().map(|(n, r)| (n, r.last())).collect(),
            histograms: reg
                .histograms()
                .map(|(n, h)| HistogramSnapshot {
                    name: n,
                    hist: h.clone(),
                })
                .collect(),
        }
    }

    /// Counter value in this snapshot, or 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Gauge value in this snapshot, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Histogram state in this snapshot, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.hist)
    }
}

/// An ordered run of snapshots at fixed intervals.
pub type SnapshotSeries = Vec<Snapshot>;

/// Emits one [`Snapshot`] per elapsed scrape interval of simulated
/// time. The first snapshot lands at `t = interval` (a scrape at the
/// zero boundary would always be empty).
#[derive(Debug, Clone, PartialEq)]
pub struct Scraper {
    interval_nanos: u64,
    next_due_nanos: u64,
    series: SnapshotSeries,
}

impl Scraper {
    /// New scraper over `interval_nanos` (> 0) intervals.
    pub fn new(interval_nanos: u64) -> Self {
        let interval_nanos = interval_nanos.max(1);
        Scraper {
            interval_nanos,
            next_due_nanos: interval_nanos,
            series: Vec::new(),
        }
    }

    /// Simulated time has reached `now_nanos`: emit every snapshot due
    /// at or before it. Call sites invoke this *before* recording the
    /// metrics of the event at `now_nanos`, so a boundary snapshot
    /// never includes values from events past the boundary it reports.
    pub fn advance(&mut self, now_nanos: u64, reg: &mut Registry) {
        while self.next_due_nanos <= now_nanos {
            reg.roll_rates(self.next_due_nanos);
            self.series
                .push(Snapshot::capture(self.next_due_nanos, reg));
            self.next_due_nanos += self.interval_nanos;
        }
    }

    /// Force one final snapshot at `end_nanos` (the run's horizon),
    /// regardless of interval alignment, unless one was already taken
    /// at exactly that boundary.
    pub fn finish(&mut self, end_nanos: u64, reg: &mut Registry) {
        self.advance(end_nanos, reg);
        if self.series.last().map(|s| s.at_nanos) != Some(end_nanos) {
            reg.roll_rates(end_nanos);
            self.series.push(Snapshot::capture(end_nanos, reg));
        }
    }

    /// Scrape interval in nanoseconds.
    pub fn interval_nanos(&self) -> u64 {
        self.interval_nanos
    }

    /// Snapshots collected so far.
    pub fn series(&self) -> &SnapshotSeries {
        &self.series
    }

    /// Consume the scraper, returning its series.
    pub fn into_series(self) -> SnapshotSeries {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::COUNT_BUCKETS;

    #[test]
    fn scraper_emits_one_snapshot_per_boundary_crossed() {
        let mut reg = Registry::new();
        let mut sc = Scraper::new(100);
        reg.add("a", 1);
        sc.advance(50, &mut reg); // inside first interval: nothing yet
        assert!(sc.series().is_empty());
        reg.add("a", 1);
        sc.advance(350, &mut reg); // crosses 100, 200, 300
        let ats: Vec<u64> = sc.series().iter().map(|s| s.at_nanos).collect();
        assert_eq!(ats, vec![100, 200, 300]);
        assert_eq!(sc.series()[0].counter("a"), 2);
    }

    #[test]
    fn finish_forces_a_final_unaligned_snapshot_once() {
        let mut reg = Registry::new();
        let mut sc = Scraper::new(100);
        reg.set_gauge("g", 1.5);
        sc.finish(250, &mut reg);
        let ats: Vec<u64> = sc.series().iter().map(|s| s.at_nanos).collect();
        assert_eq!(ats, vec![100, 200, 250]);
        let mut sc2 = Scraper::new(100);
        sc2.finish(200, &mut reg); // aligned: no duplicate
        let ats2: Vec<u64> = sc2.series().iter().map(|s| s.at_nanos).collect();
        assert_eq!(ats2, vec![100, 200]);
    }

    #[test]
    fn snapshot_captures_all_families() {
        let mut reg = Registry::new();
        reg.add("c", 7);
        reg.set_gauge("g", 0.25);
        reg.observe("h", COUNT_BUCKETS, 2.0);
        reg.rate_add("r", 10, 5, 3);
        let mut sc = Scraper::new(10);
        sc.advance(25, &mut reg);
        let s = &sc.series()[0];
        assert_eq!(s.at_nanos, 10);
        assert_eq!(s.counter("c"), 7);
        assert_eq!(s.gauge("g"), Some(0.25));
        assert_eq!(s.histogram("h").unwrap().count(), 1);
        // Rate window [0, 10) closed with 3 events.
        assert_eq!(s.rates, vec![("r", 3)]);
        // The next boundary's window [10, 20) closed empty.
        assert_eq!(sc.series()[1].rates, vec![("r", 0)]);
    }
}
