//! Prometheus text exposition (version 0.0.4) for a [`Registry`].
//!
//! Hand-rolled on purpose: a fixed field order, `BTreeMap` iteration,
//! and Rust's shortest-roundtrip `f64` formatting make the output a
//! pure function of the registry contents — identical runs produce
//! byte-identical exposition, a property CI byte-diffs.

use crate::registry::Registry;
use crate::spec::{spec_for, MetricKind};
use std::fmt::Write as _;

/// Prometheus metric name for a dotted grail name: `io.requests` →
/// `grail_io_requests`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("grail_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn header(out: &mut String, name: &str, fallback_kind: MetricKind) {
    let pname = prometheus_name(name);
    match spec_for(name) {
        Some(spec) => {
            let _ = writeln!(out, "# HELP {pname} {} [{}]", spec.help, spec.unit);
            let _ = writeln!(out, "# TYPE {pname} {}", spec.kind.prometheus_type());
        }
        None => {
            let _ = writeln!(out, "# TYPE {pname} {}", fallback_kind.prometheus_type());
        }
    }
}

/// Render `reg` in Prometheus text exposition format. Families appear
/// in a fixed order (counters, gauges, rates, histograms), each in
/// metric-name order.
pub fn to_prometheus(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, v) in reg.counters() {
        header(&mut out, name, MetricKind::Counter);
        let _ = writeln!(out, "{} {v}", prometheus_name(name));
    }
    for (name, v) in reg.gauges() {
        header(&mut out, name, MetricKind::Gauge);
        let _ = writeln!(out, "{} {v}", prometheus_name(name));
    }
    for (name, r) in reg.rates() {
        header(&mut out, name, MetricKind::Rate);
        let _ = writeln!(
            out,
            "{}{{window_nanos=\"{}\"}} {}",
            prometheus_name(name),
            r.window_nanos(),
            r.last()
        );
    }
    for (name, h) in reg.histograms() {
        header(&mut out, name, MetricKind::Histogram);
        let pname = prometheus_name(name);
        let mut cumulative = 0u64;
        for (i, &bound) in h.bounds().iter().enumerate() {
            cumulative += h.counts()[i];
            let _ = writeln!(out, "{pname}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{pname}_sum {}", h.sum());
        let _ = writeln!(out, "{pname}_count {}", h.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::COUNT_BUCKETS;

    #[test]
    fn names_are_sanitized_and_prefixed() {
        assert_eq!(prometheus_name("io.requests"), "grail_io_requests");
        assert_eq!(
            prometheus_name("driver.queue_depth"),
            "grail_driver_queue_depth"
        );
    }

    #[test]
    fn exposition_is_complete_and_cumulative() {
        let mut reg = Registry::new();
        reg.add("io.requests", 3);
        reg.set_gauge("chaos.shed_rate", 0.25);
        reg.rate_add("db.query_rate", 100, 5, 2);
        reg.roll_rates(100);
        reg.observe("driver.queue_depth", COUNT_BUCKETS, 1.0);
        reg.observe("driver.queue_depth", COUNT_BUCKETS, 3.0);
        let text = to_prometheus(&reg);
        assert!(text.contains("# TYPE grail_io_requests counter"));
        assert!(text.contains("grail_io_requests 3\n"));
        assert!(text.contains("# TYPE grail_chaos_shed_rate gauge"));
        assert!(text.contains("grail_chaos_shed_rate 0.25\n"));
        assert!(text.contains("grail_db_query_rate{window_nanos=\"100\"} 2\n"));
        // Buckets are cumulative: the (2, 4] observation adds onto the
        // (0, 1] one.
        assert!(text.contains("grail_driver_queue_depth_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("grail_driver_queue_depth_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("grail_driver_queue_depth_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("grail_driver_queue_depth_sum 4\n"));
        assert!(text.contains("grail_driver_queue_depth_count 2\n"));
        // Catalogued metrics carry HELP lines.
        assert!(text.contains("# HELP grail_io_requests"));
    }

    #[test]
    fn identical_registries_render_identically() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        for reg in [&mut a, &mut b] {
            reg.add("io.requests", 1);
            reg.observe("io.disk_service_secs", crate::SECONDS_BUCKETS, 0.004);
        }
        assert_eq!(to_prometheus(&a), to_prometheus(&b));
    }
}
