//! Watchdog baselines: a flat `{"name": number}` JSON document, plus
//! tolerance comparison and rustc-style drift rendering.
//!
//! The format is deliberately minimal — sorted keys, one entry per
//! line, shortest-roundtrip floats — so a committed baseline diffs
//! cleanly in review and regenerating it from an unchanged run is a
//! byte-identical no-op. Parsing is hand-rolled for the same reason
//! this crate has no dependencies: layer 0 must stay std-only.

/// One metric that drifted beyond its tolerance (or appeared/vanished).
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Baseline key.
    pub key: String,
    /// Committed baseline value (`None` when the key is new).
    pub baseline: Option<f64>,
    /// Current run's value (`None` when the key vanished).
    pub current: Option<f64>,
    /// Relative tolerance the comparison applied.
    pub tolerance: f64,
}

impl Drift {
    /// Signed relative drift, when both sides exist and the baseline is
    /// non-zero.
    pub fn relative(&self) -> Option<f64> {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) if b != 0.0 => Some((c - b) / b),
            _ => None,
        }
    }
}

/// Render `entries` (sorted by the caller) as the baseline document.
pub fn render_baseline(entries: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "  \"{k}\": {v}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("}\n");
    out
}

/// Parse a flat `{"key": number}` JSON document, returning entries in
/// file order. Rejects anything nested or non-numeric.
pub fn parse_baseline(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut entries = Vec::new();
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| "baseline must be a JSON object".to_string())?;
    for part in split_top_level(body) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part
            .split_once(':')
            .ok_or_else(|| format!("missing ':' in baseline entry `{part}`"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("baseline key must be quoted: `{part}`"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("baseline value for `{key}` is not a number: `{value}`"))?;
        entries.push((key.to_string(), value));
    }
    Ok(entries)
}

/// Split on top-level commas (keys never contain commas in this flat
/// format, but quoted splitting keeps the parser honest).
fn split_top_level(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

/// Compare `current` against `baseline` under a per-key relative
/// tolerance. Missing and extra keys always count as drift.
pub fn compare(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    tolerance_for: impl Fn(&str) -> f64,
) -> Vec<Drift> {
    let mut drifts = Vec::new();
    for (k, b) in baseline {
        let tol = tolerance_for(k);
        match current.iter().find(|(ck, _)| ck == k) {
            None => drifts.push(Drift {
                key: k.clone(),
                baseline: Some(*b),
                current: None,
                tolerance: tol,
            }),
            Some((_, c)) => {
                let scale = b.abs().max(f64::MIN_POSITIVE);
                if ((c - b) / scale).abs() > tol {
                    drifts.push(Drift {
                        key: k.clone(),
                        baseline: Some(*b),
                        current: Some(*c),
                        tolerance: tol,
                    });
                }
            }
        }
    }
    for (k, c) in current {
        if !baseline.iter().any(|(bk, _)| bk == k) {
            drifts.push(Drift {
                key: k.clone(),
                baseline: None,
                current: Some(*c),
                tolerance: tolerance_for(k),
            });
        }
    }
    drifts
}

/// Render drifts as rustc-style diagnostics against `baseline_path`,
/// ending with the regeneration hint. Empty input renders empty.
pub fn render_drifts(drifts: &[Drift], baseline_path: &str, regen_cmd: &str) -> String {
    let mut out = String::new();
    for d in drifts {
        let headline = match (d.baseline, d.current) {
            (Some(_), None) => format!("error[watchdog]: `{}` vanished from the run", d.key),
            (None, Some(_)) => format!("error[watchdog]: `{}` is not in the baseline", d.key),
            _ => {
                let rel = d.relative().unwrap_or(f64::INFINITY);
                format!(
                    "error[watchdog]: `{}` drifted {}{:.2}% beyond the ±{:.1}% tolerance",
                    d.key,
                    if rel >= 0.0 { "+" } else { "" },
                    rel * 100.0,
                    d.tolerance * 100.0
                )
            }
        };
        out.push_str(&headline);
        out.push('\n');
        out.push_str(&format!("  --> {baseline_path}\n"));
        out.push_str("   |\n");
        if let Some(b) = d.baseline {
            out.push_str(&format!("   | baseline: {b}\n"));
        }
        if let Some(c) = d.current {
            out.push_str(&format!("   | current:  {c}\n"));
        }
        out.push_str("   |\n");
    }
    if !drifts.is_empty() {
        out.push_str(&format!(
            "error: energy/SLO regression — {} metric(s) drifted beyond tolerance\n",
            drifts.len()
        ));
        out.push_str(&format!(
            "  = help: if the drift is intentional, regenerate the baseline with `{regen_cmd}` and commit the diff\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn render_parse_roundtrip_is_exact() {
        let e = entries(&[
            ("availability", 0.9732),
            ("joules_per_query", 12.25),
            ("shed_rate", 0.011718750000000002),
        ]);
        let text = render_baseline(&e);
        assert_eq!(parse_baseline(&text).unwrap(), e);
        // Regenerating from the parse is byte-identical.
        assert_eq!(render_baseline(&parse_baseline(&text).unwrap()), text);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(parse_baseline("[]").is_err());
        assert!(parse_baseline("{\"a\" 1}").is_err());
        assert!(parse_baseline("{\"a\": \"b\"}").is_err());
        assert!(parse_baseline("{}").unwrap().is_empty());
    }

    #[test]
    fn compare_flags_only_out_of_tolerance_keys() {
        let base = entries(&[("a", 100.0), ("b", 1.0), ("gone", 5.0)]);
        let cur = entries(&[("a", 101.0), ("b", 1.2), ("new", 7.0)]);
        let drifts = compare(&base, &cur, |_| 0.02);
        let keys: Vec<&str> = drifts.iter().map(|d| d.key.as_str()).collect();
        assert_eq!(keys, vec!["b", "gone", "new"]);
        assert!((drifts[0].relative().unwrap() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn rustc_style_rendering_names_the_baseline() {
        let drifts = compare(
            &entries(&[("joules_per_query", 10.0)]),
            &entries(&[("joules_per_query", 11.0)]),
            |_| 0.02,
        );
        let text = render_drifts(&drifts, "crates/bench/baselines/watchdog.json", "regen");
        assert!(text.contains("error[watchdog]: `joules_per_query` drifted +10.00%"));
        assert!(text.contains("--> crates/bench/baselines/watchdog.json"));
        assert!(text.contains("baseline: 10"));
        assert!(text.contains("current:  11"));
        assert!(text.contains("= help: if the drift is intentional"));
        assert_eq!(render_drifts(&[], "p", "c"), "");
    }
}
