//! The deterministic metrics registry: monotone counters, gauges,
//! fixed-bucket histograms, and windowed rates.
//!
//! Everything lives in `BTreeMap`s keyed by `&'static str`, so
//! iteration (and therefore export) order is the lexicographic key
//! order — stable across runs and machines. Histogram bucket bounds are
//! `&'static [f64]`, fixed at first observation: there is no dynamic
//! rebinning that could make output depend on observation order beyond
//! the counts themselves. Rates are keyed on **simulated** time handed
//! in by the caller; no wall clock is ever consulted.

use std::collections::BTreeMap;

/// Upper bounds (inclusive) for IO service-time histograms, in seconds.
pub const SECONDS_BUCKETS: &[f64] = &[
    1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 10.0,
];

/// Upper bounds (inclusive) for small-count histograms (queue depths,
/// retry counts).
pub const COUNT_BUCKETS: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Upper bounds (inclusive) for per-query energy histograms, in Joules.
pub const JOULES_BUCKETS: &[f64] = &[1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6];

/// A fixed-bucket histogram: `counts[i]` observations fell at or below
/// `bounds[i]` (and above `bounds[i - 1]`); the final slot counts
/// overflow beyond the last bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// New empty histogram over `bounds` (must be non-empty and sorted;
    /// enforced by the static bucket constants callers pass).
    pub fn new(bounds: &'static [f64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` slots, last = overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) estimated from bucket counts with
    /// linear interpolation inside the bucket; overflow observations
    /// report the last finite bound. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= rank {
                if i >= self.bounds.len() {
                    // Overflow bucket has no upper bound; report the
                    // last finite edge (an underestimate, flagged in
                    // the docs).
                    return self.bounds[self.bounds.len() - 1];
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let into = (rank - seen as f64) / c as f64;
                return lo + (hi - lo) * into;
            }
            seen += c;
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// Fold `other`'s observations into this histogram. Bounds must be
    /// the same static slice — the caller merges histograms that share a
    /// metric name, and the registry fixes bounds at first use.
    pub fn merge_from(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds.as_ptr(), other.bounds.as_ptr());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The histogram of observations recorded since `earlier` (an older
    /// snapshot of the same histogram). Bounds must match.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        debug_assert_eq!(self.bounds.as_ptr(), earlier.bounds.as_ptr());
        Histogram {
            bounds: self.bounds,
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum - earlier.sum,
        }
    }
}

/// A tumbling-window event counter keyed on simulated time. Windows are
/// `[k·w, (k+1)·w)`; [`RateWindow::last`] reports the most recently
/// *completed* window's count, which is what scrapes export.
#[derive(Debug, Clone, PartialEq)]
pub struct RateWindow {
    window_nanos: u64,
    window_start: u64,
    current: u64,
    last: u64,
    completed: u64,
}

impl RateWindow {
    /// New rate over windows of `window_nanos` (> 0) starting at t = 0.
    pub fn new(window_nanos: u64) -> Self {
        RateWindow {
            window_nanos: window_nanos.max(1),
            window_start: 0,
            current: 0,
            last: 0,
            completed: 0,
        }
    }

    /// Credit `delta` events at simulated time `now` (nanoseconds).
    /// Out-of-order times below the current window credit the current
    /// window — totals stay exact, only the split can shift.
    pub fn add(&mut self, now_nanos: u64, delta: u64) {
        self.roll_to(now_nanos);
        self.current += delta;
    }

    /// Close every window ending at or before `now` (no-op when `now`
    /// is inside the current window).
    pub fn roll_to(&mut self, now_nanos: u64) {
        if now_nanos < self.window_start {
            return;
        }
        let steps = (now_nanos - self.window_start) / self.window_nanos;
        if steps == 0 {
            return;
        }
        self.last = if steps == 1 { self.current } else { 0 };
        self.completed += steps;
        self.window_start += steps * self.window_nanos;
        self.current = 0;
    }

    /// Fold `other` into this rate. Both sides must have the same window
    /// length and an aligned cursor — callers `roll_to` a common instant
    /// on both before merging (the shard-merge path does). Counts in the
    /// matching windows add; `completed` stays the window count of the
    /// aligned cursor, not the sum, since both sides tumbled through the
    /// same simulated span.
    pub fn merge_from(&mut self, other: &RateWindow) {
        debug_assert_eq!(self.window_nanos, other.window_nanos);
        debug_assert_eq!(self.window_start, other.window_start);
        self.current += other.current;
        self.last += other.last;
        self.completed = self.completed.max(other.completed);
    }

    /// Window length in nanoseconds.
    pub fn window_nanos(&self) -> u64 {
        self.window_nanos
    }

    /// Count in the most recently completed window.
    pub fn last(&self) -> u64 {
        self.last
    }

    /// Count accumulated in the (still open) current window.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Number of windows completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

/// The deterministic metrics registry carried by the trace recorder.
///
/// Four families, all statically named: monotone counters, last-write
/// gauges (with an accumulate variant for fan-in from many devices),
/// fixed-bucket histograms, and tumbling-window rates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    rates: BTreeMap<&'static str, RateWindow>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `delta` to the monotone counter `name` (created at zero).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Add `delta` to gauge `name` (created at zero) — fan-in form for
    /// values accumulated across many devices at settlement.
    pub fn add_gauge(&mut self, name: &'static str, delta: f64) {
        *self.gauges.entry(name).or_insert(0.0) += delta;
    }

    /// Record `value` into histogram `name`, created over `bounds` on
    /// first use. Later calls reuse the original bounds.
    pub fn observe(&mut self, name: &'static str, bounds: &'static [f64], value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Credit `delta` events at simulated `now_nanos` into rate `name`,
    /// created over `window_nanos` windows on first use.
    pub fn rate_add(&mut self, name: &'static str, window_nanos: u64, now_nanos: u64, delta: u64) {
        self.rates
            .entry(name)
            .or_insert_with(|| RateWindow::new(window_nanos))
            .add(now_nanos, delta);
    }

    /// Close every rate window ending at or before `now_nanos` (called
    /// by the scraper so exported rates are aligned to scrape time).
    pub fn roll_rates(&mut self, now_nanos: u64) {
        for r in self.rates.values_mut() {
            r.roll_to(now_nanos);
        }
    }

    /// Counter value, or 0 if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Rate by name.
    pub fn rate(&self, name: &str) -> Option<&RateWindow> {
        self.rates.get(name)
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Rates in name order.
    pub fn rates(&self) -> impl Iterator<Item = (&'static str, &RateWindow)> + '_ {
        self.rates.iter().map(|(k, v)| (*k, v))
    }

    /// Fold `other` into this registry: counters and histograms sum,
    /// gauges **add** (the fan-in semantics of [`Registry::add_gauge`] —
    /// every gauge the simulator exports is a settlement accumulation
    /// over devices, so addition is the meaningful combine), and rates
    /// merge window-by-window. Callers merging rate-bearing registries
    /// must first [`Registry::roll_rates`] both sides to a common
    /// instant so cursors align. Merging in a fixed order is the
    /// caller's job; float sums make gauge merges order-sensitive.
    pub fn merge_from(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name).or_insert(0.0) += v;
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge_from(h),
                None => {
                    self.histograms.insert(name, h.clone());
                }
            }
        }
        for (name, r) in &other.rates {
            match self.rates.get_mut(name) {
                Some(mine) => mine.merge_from(r),
                None => {
                    self.rates.insert(name, r.clone());
                }
            }
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.rates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_default_zero() {
        let mut m = Registry::new();
        assert_eq!(m.counter("io.requests"), 0);
        m.add("io.requests", 2);
        m.add("io.requests", 3);
        m.add("io.retries", 1);
        assert_eq!(m.counter("io.requests"), 5);
        assert_eq!(m.counter("io.retries"), 1);
        let names: Vec<_> = m.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["io.requests", "io.retries"]);
    }

    #[test]
    fn histogram_buckets_observations_including_overflow() {
        let mut h = Histogram::new(COUNT_BUCKETS);
        h.observe(0.0); // slot 0 (<= 0.0)
        h.observe(1.0); // slot 1
        h.observe(3.0); // slot 3 (<= 4.0)
        h.observe(1000.0); // overflow
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 1004.0).abs() < 1e-9);
        assert!((h.mean() - 251.0).abs() < 1e-9);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.counts()[COUNT_BUCKETS.len()], 1);
    }

    #[test]
    fn registry_fixes_bounds_at_first_use() {
        let mut m = Registry::new();
        m.observe("svc", SECONDS_BUCKETS, 0.002);
        m.observe("svc", COUNT_BUCKETS, 0.2); // bounds ignored: already created
        let h = m.histogram("svc").unwrap();
        assert_eq!(h.bounds(), SECONDS_BUCKETS);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn bucket_constants_are_sorted() {
        for bounds in [SECONDS_BUCKETS, COUNT_BUCKETS, JOULES_BUCKETS] {
            for w in bounds.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(COUNT_BUCKETS);
        for _ in 0..100 {
            h.observe(3.0); // bucket (2, 4]
        }
        let p50 = h.quantile(0.5);
        assert!(p50 > 2.0 && p50 <= 4.0, "{p50}");
        // All mass in one bucket: p1 and p99 stay inside it too.
        assert!(h.quantile(0.99) <= 4.0);
        assert!(h.quantile(0.01) > 2.0);
    }

    #[test]
    fn quantile_of_overflow_reports_last_finite_bound() {
        let mut h = Histogram::new(COUNT_BUCKETS);
        h.observe(1e9);
        assert_eq!(h.quantile(0.99), COUNT_BUCKETS[COUNT_BUCKETS.len() - 1]);
    }

    #[test]
    fn histogram_delta_subtracts_counts_and_sum() {
        let mut a = Histogram::new(COUNT_BUCKETS);
        a.observe(1.0);
        let earlier = a.clone();
        a.observe(2.0);
        a.observe(1000.0);
        let d = a.delta_since(&earlier);
        assert_eq!(d.count(), 2);
        assert!((d.sum() - 1002.0).abs() < 1e-9);
        assert_eq!(d.counts()[2], 1);
        assert_eq!(d.counts()[COUNT_BUCKETS.len()], 1);
    }

    #[test]
    fn gauges_last_write_wins_and_accumulate() {
        let mut m = Registry::new();
        assert_eq!(m.gauge("x"), None);
        m.set_gauge("x", 2.0);
        m.set_gauge("x", 3.5);
        assert_eq!(m.gauge("x"), Some(3.5));
        m.add_gauge("y", 1.0);
        m.add_gauge("y", 0.5);
        assert_eq!(m.gauge("y"), Some(1.5));
    }

    #[test]
    fn rate_windows_tumble_on_simulated_time() {
        let mut r = RateWindow::new(100);
        r.add(10, 1);
        r.add(20, 2);
        assert_eq!(r.last(), 0); // first window still open
        r.add(110, 5); // rolls into window [100, 200)
        assert_eq!(r.last(), 3);
        assert_eq!(r.current(), 5);
        assert_eq!(r.completed(), 1);
        r.roll_to(350); // skips [200, 300): that window closed empty
        assert_eq!(r.last(), 0);
        assert_eq!(r.completed(), 3);
    }

    #[test]
    fn rate_out_of_order_credits_current_window() {
        let mut r = RateWindow::new(100);
        r.add(150, 1);
        r.add(120, 1); // below window cursor: still counted
        assert_eq!(r.current(), 2);
    }

    #[test]
    fn histogram_merge_sums_counts_and_sum() {
        let mut a = Histogram::new(COUNT_BUCKETS);
        a.observe(1.0);
        a.observe(1000.0);
        let mut b = Histogram::new(COUNT_BUCKETS);
        b.observe(3.0);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert!((a.sum() - 1004.0).abs() < 1e-9);
        assert_eq!(a.counts()[1], 1);
        assert_eq!(a.counts()[3], 1);
        assert_eq!(a.counts()[COUNT_BUCKETS.len()], 1);
    }

    #[test]
    fn rate_merge_adds_aligned_windows() {
        let mut a = RateWindow::new(100);
        let mut b = RateWindow::new(100);
        a.add(10, 2);
        b.add(20, 3);
        a.roll_to(250);
        b.roll_to(250);
        // Both closed [0,100) (last=0 after the skip) and sit in [200,300).
        a.add(210, 1);
        b.add(220, 4);
        a.roll_to(300);
        b.roll_to(300);
        a.merge_from(&b);
        assert_eq!(a.last(), 5);
        assert_eq!(a.completed(), 3);
    }

    #[test]
    fn registry_merge_combines_all_families() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.add("c", 2);
        b.add("c", 3);
        b.add("only_b", 7);
        a.add_gauge("g", 1.5);
        b.add_gauge("g", 2.0);
        a.observe("h", COUNT_BUCKETS, 1.0);
        b.observe("h", COUNT_BUCKETS, 2.0);
        b.observe("h2", SECONDS_BUCKETS, 0.5);
        a.rate_add("r", 100, 10, 1);
        b.rate_add("r", 100, 20, 2);
        a.roll_rates(100);
        b.roll_rates(100);
        a.merge_from(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.gauge("g"), Some(3.5));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h2").unwrap().count(), 1);
        assert_eq!(a.rate("r").unwrap().last(), 3);
    }

    #[test]
    fn registry_rate_fan_in() {
        let mut m = Registry::new();
        m.rate_add("q", 100, 10, 1);
        m.rate_add("q", 999, 120, 1); // window param ignored after creation
        m.roll_rates(200);
        assert_eq!(m.rate("q").unwrap().window_nanos(), 100);
        assert_eq!(m.rate("q").unwrap().last(), 1);
        assert_eq!(m.rate("q").unwrap().completed(), 2);
    }
}
