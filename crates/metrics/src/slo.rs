//! Declarative service-level objectives evaluated over a scrape series,
//! with multi-window burn-rate alerting.
//!
//! Each [`SloSpec`] names the metric(s) it watches and a bound. Per
//! scrape window (the delta between consecutive snapshots) the engine
//! computes a **burn**: the fraction of the objective's bound the
//! window consumed, where 1.0 sits exactly at the bound. Alerts use the
//! standard two-window rule: fire only when *both* the fast (recent)
//! and slow (sustained) trailing means exceed the threshold — a spike
//! alone does not page, a sustained burn does. Everything is a pure
//! function of the snapshot series, so reports are byte-stable.

use crate::scrape::Snapshot;

/// What an objective watches and the bound it must hold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// The `q`-quantile of `histogram`'s per-window observations must
    /// stay at or below `threshold` (e.g. p99 latency).
    QuantileBelow {
        /// Histogram metric name.
        histogram: &'static str,
        /// Quantile in (0, 1].
        q: f64,
        /// Upper bound on the quantile.
        threshold: f64,
    },
    /// `good / total` (per-window deltas of two series) must stay at or
    /// above `floor` (e.g. availability). Windows with no `total`
    /// traffic are vacuously healthy.
    RatioAtLeast {
        /// Numerator metric (counter or gauge).
        good: &'static str,
        /// Denominator metric (counter or gauge).
        total: &'static str,
        /// Lower bound on the ratio.
        floor: f64,
    },
    /// `num / den` (per-window deltas) must stay at or below `ceiling`
    /// (e.g. Joules per query). Windows with no `den` activity are
    /// vacuously healthy.
    RatioBelow {
        /// Numerator metric (counter or gauge).
        num: &'static str,
        /// Denominator metric (counter or gauge).
        den: &'static str,
        /// Upper bound on the ratio.
        ceiling: f64,
    },
}

/// One declarative objective plus its alerting policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Objective name, quoted in reports.
    pub name: &'static str,
    /// What is watched and the bound.
    pub kind: SloKind,
    /// Trailing windows in the fast (recent) alert window.
    pub fast_windows: usize,
    /// Trailing windows in the slow (sustained) alert window.
    pub slow_windows: usize,
    /// Burn level both trailing means must exceed to alert (1.0 = at
    /// the bound; 2.0 = consuming budget twice as fast as allowed).
    pub burn_threshold: f64,
}

/// A two-window burn-rate alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnAlert {
    /// The scrape boundary that fired the alert, in simulated nanos.
    pub at_nanos: u64,
    /// Mean burn over the fast trailing window.
    pub fast_burn: f64,
    /// Mean burn over the slow trailing window.
    pub slow_burn: f64,
}

/// Evaluation outcome for one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveReport {
    /// Objective name.
    pub name: &'static str,
    /// Scrape windows evaluated.
    pub windows: u64,
    /// Windows whose burn exceeded 1.0 (the bound itself).
    pub breaches: u64,
    /// Worst single-window burn seen.
    pub worst_burn: f64,
    /// Scrape boundary of the worst window, in simulated nanos.
    pub worst_at_nanos: u64,
    /// Two-window alerts, in time order.
    pub alerts: Vec<BurnAlert>,
    /// True when no window breached and no alert fired.
    pub ok: bool,
}

/// Evaluation outcome for a whole objective set.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Per-objective outcomes, in spec order.
    pub objectives: Vec<ObjectiveReport>,
}

impl SloReport {
    /// True when every objective held everywhere.
    pub fn ok(&self) -> bool {
        self.objectives.iter().all(|o| o.ok)
    }
}

/// A metric value usable in ratio deltas: counter (u64) or gauge (f64).
fn sample(s: &Snapshot, name: &str) -> f64 {
    match s.gauge(name) {
        Some(v) => v,
        None => s.counter(name) as f64,
    }
}

/// Per-window burn for one objective over `[prev, cur)`. `None` means
/// the window is vacuous (no traffic to judge).
fn window_burn(kind: &SloKind, prev: Option<&Snapshot>, cur: &Snapshot) -> Option<f64> {
    match *kind {
        SloKind::QuantileBelow {
            histogram,
            q,
            threshold,
        } => {
            let cur_h = cur.histogram(histogram)?;
            let delta = match prev.and_then(|p| p.histogram(histogram)) {
                Some(older) => cur_h.delta_since(older),
                None => cur_h.clone(),
            };
            if delta.count() == 0 {
                return None;
            }
            Some(delta.quantile(q) / threshold)
        }
        SloKind::RatioAtLeast { good, total, floor } => {
            let d_total = sample(cur, total) - prev.map(|p| sample(p, total)).unwrap_or(0.0);
            if d_total <= 0.0 {
                return None;
            }
            let d_good = sample(cur, good) - prev.map(|p| sample(p, good)).unwrap_or(0.0);
            let error_rate = (1.0 - d_good / d_total).max(0.0);
            let budget = (1.0 - floor).max(f64::EPSILON);
            Some(error_rate / budget)
        }
        SloKind::RatioBelow { num, den, ceiling } => {
            let d_den = sample(cur, den) - prev.map(|p| sample(p, den)).unwrap_or(0.0);
            if d_den <= 0.0 {
                return None;
            }
            let d_num = sample(cur, num) - prev.map(|p| sample(p, num)).unwrap_or(0.0);
            Some((d_num / d_den) / ceiling)
        }
    }
}

/// Mean of the last `n` entries of `burns` (vacuous windows count as
/// zero burn — no traffic consumes no budget).
fn trailing_mean(burns: &[Option<f64>], n: usize) -> f64 {
    if n == 0 || burns.is_empty() {
        return 0.0;
    }
    let tail = &burns[burns.len().saturating_sub(n)..];
    tail.iter().map(|b| b.unwrap_or(0.0)).sum::<f64>() / tail.len() as f64
}

/// Evaluate `specs` over `series`, one window per consecutive snapshot
/// pair (the first snapshot forms a window from the empty origin).
pub fn evaluate(specs: &[SloSpec], series: &[Snapshot]) -> SloReport {
    let objectives = specs
        .iter()
        .map(|spec| {
            let mut burns: Vec<Option<f64>> = Vec::with_capacity(series.len());
            let mut breaches = 0u64;
            let mut worst_burn = 0.0f64;
            let mut worst_at = 0u64;
            let mut alerts = Vec::new();
            for (i, cur) in series.iter().enumerate() {
                let prev = if i == 0 { None } else { Some(&series[i - 1]) };
                let burn = window_burn(&spec.kind, prev, cur);
                if let Some(b) = burn {
                    if b > 1.0 {
                        breaches += 1;
                    }
                    if b > worst_burn {
                        worst_burn = b;
                        worst_at = cur.at_nanos;
                    }
                }
                burns.push(burn);
                let fast = trailing_mean(&burns, spec.fast_windows);
                let slow = trailing_mean(&burns, spec.slow_windows);
                if fast > spec.burn_threshold && slow > spec.burn_threshold {
                    alerts.push(BurnAlert {
                        at_nanos: cur.at_nanos,
                        fast_burn: fast,
                        slow_burn: slow,
                    });
                }
            }
            let ok = breaches == 0 && alerts.is_empty();
            ObjectiveReport {
                name: spec.name,
                windows: series.len() as u64,
                breaches,
                worst_burn,
                worst_at_nanos: worst_at,
                alerts,
                ok,
            }
        })
        .collect();
    SloReport { objectives }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Registry, SECONDS_BUCKETS};
    use crate::scrape::{Scraper, SnapshotSeries};

    fn series_from(events: &[(u64, f64)], interval: u64, horizon: u64) -> SnapshotSeries {
        let mut reg = Registry::new();
        let mut sc = Scraper::new(interval);
        for &(t, lat) in events {
            sc.advance(t, &mut reg);
            reg.add("q.total", 1);
            if lat >= 0.0 {
                reg.add("q.good", 1);
                reg.observe("q.secs", SECONDS_BUCKETS, lat);
            }
        }
        sc.finish(horizon, &mut reg);
        sc.into_series()
    }

    #[test]
    fn healthy_series_holds_every_objective() {
        let events: Vec<(u64, f64)> = (1..50).map(|i| (i * 10, 0.001)).collect();
        let series = series_from(&events, 100, 500);
        let specs = [
            SloSpec {
                name: "p99-latency",
                kind: SloKind::QuantileBelow {
                    histogram: "q.secs",
                    q: 0.99,
                    threshold: 0.05,
                },
                fast_windows: 2,
                slow_windows: 4,
                burn_threshold: 1.0,
            },
            SloSpec {
                name: "availability",
                kind: SloKind::RatioAtLeast {
                    good: "q.good",
                    total: "q.total",
                    floor: 0.99,
                },
                fast_windows: 2,
                slow_windows: 4,
                burn_threshold: 1.0,
            },
        ];
        let report = evaluate(&specs, &series);
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.objectives[0].breaches, 0);
    }

    #[test]
    fn sustained_failures_breach_and_alert() {
        // Every query bad: availability ratio 0, budget 1% ⇒ burn 100.
        let events: Vec<(u64, f64)> = (1..50).map(|i| (i * 10, -1.0)).collect();
        let series = series_from(&events, 100, 500);
        let spec = SloSpec {
            name: "availability",
            kind: SloKind::RatioAtLeast {
                good: "q.good",
                total: "q.total",
                floor: 0.99,
            },
            fast_windows: 2,
            slow_windows: 4,
            burn_threshold: 2.0,
        };
        let report = evaluate(&[spec], &series);
        assert!(!report.ok());
        let o = &report.objectives[0];
        assert!(o.breaches > 0);
        assert!(!o.alerts.is_empty());
        assert!(o.worst_burn > 2.0);
    }

    #[test]
    fn single_spike_does_not_fire_the_two_window_alert() {
        // One bad window among many good ones; slow window stays calm.
        let mut events: Vec<(u64, f64)> = (1..100).map(|i| (i * 10, 0.001)).collect();
        events[50] = (510, -1.0);
        let series = series_from(&events, 100, 1000);
        let spec = SloSpec {
            name: "availability",
            kind: SloKind::RatioAtLeast {
                good: "q.good",
                total: "q.total",
                floor: 0.5,
            },
            fast_windows: 1,
            slow_windows: 8,
            burn_threshold: 0.15,
        };
        let report = evaluate(&[spec], &series);
        let o = &report.objectives[0];
        assert_eq!(o.breaches, 0, "one bad query in ten stays inside budget");
        assert!(o.alerts.is_empty(), "slow window must veto the spike");
        assert!(o.worst_burn > 0.0);
    }

    #[test]
    fn joules_per_query_ceiling_burns_proportionally() {
        let mut reg = Registry::new();
        let mut sc = Scraper::new(100);
        reg.add("db.queries", 10);
        reg.add_gauge("energy.j", 50.0); // 5 J/query against a 10 J ceiling
        sc.finish(100, &mut reg);
        let spec = SloSpec {
            name: "joules-per-query",
            kind: SloKind::RatioBelow {
                num: "energy.j",
                den: "db.queries",
                ceiling: 10.0,
            },
            fast_windows: 1,
            slow_windows: 1,
            burn_threshold: 1.0,
        };
        let report = evaluate(&[spec], &sc.into_series());
        let o = &report.objectives[0];
        assert!(o.ok);
        assert!((o.worst_burn - 0.5).abs() < 1e-9);
    }
}
