//! `grail-metrics` — a deterministic metrics surface for the simulator.
//!
//! The paper's thesis is that energy must become a first-class,
//! continuously *measured* quantity of a data management system.
//! `grail-trace` records individual events; this crate aggregates them:
//! a [`Registry`] of monotone counters, gauges, fixed-bucket histograms
//! and windowed rates, scraped at configurable **simulated** intervals
//! into a [`SnapshotSeries`] that SLO monitors and exporters consume.
//!
//! ## Determinism contract
//!
//! * Every value is keyed on simulated time (nanosecond counts handed in
//!   by the caller). Nothing here reads a wall clock, an environment
//!   variable, or any other ambient state.
//! * Metric names are `&'static str` literals registered in one place
//!   ([`spec::CATALOG`]); the `metric-hygiene` lint rule rejects
//!   `format!`-built names, so cardinality is bounded at compile time.
//! * All containers iterate in key or insertion order (`BTreeMap`,
//!   `Vec`); exposition output is a pure function of the recorded
//!   values. Identical runs produce byte-identical scrape series,
//!   Prometheus text, and SLO reports — at any `grail-par` thread
//!   count, a property CI asserts on every push.
//!
//! ## Layout
//!
//! * [`registry`] — [`Registry`], [`Histogram`], [`RateWindow`], bucket
//!   bound constants.
//! * [`spec`] — the static metric catalog ([`MetricSpec`], [`CATALOG`]).
//! * [`scrape`] — [`Scraper`], [`Snapshot`], [`SnapshotSeries`].
//! * [`slo`] — declarative objectives with multi-window burn-rate
//!   alerts ([`SloSpec`], [`evaluate`](slo::evaluate)).
//! * [`expo`] — Prometheus text exposition.
//! * [`baseline`] — flat-JSON baselines and rustc-style drift diffs for
//!   the `grail-watchdog` regression gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod baseline;
pub mod expo;
pub mod registry;
pub mod scrape;
pub mod slo;
pub mod spec;

pub use baseline::{compare, parse_baseline, render_baseline, render_drifts, Drift};
pub use expo::to_prometheus;
pub use registry::{
    Histogram, RateWindow, Registry, COUNT_BUCKETS, JOULES_BUCKETS, SECONDS_BUCKETS,
};
pub use scrape::{HistogramSnapshot, Scraper, Snapshot, SnapshotSeries};
pub use slo::{evaluate, BurnAlert, ObjectiveReport, SloKind, SloReport, SloSpec};
pub use spec::{MetricKind, MetricSpec, CATALOG};
